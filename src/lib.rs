//! # PACMAN — reproduction of the ISCA 2022 paper
//!
//! *PACMAN: Attacking ARM Pointer Authentication with Speculative
//! Execution* (Ravichandran, Na, Lang, Yan — MIT CSAIL).
//!
//! This facade crate re-exports the whole workspace so examples, tests and
//! downstream users can depend on a single crate:
//!
//! - [`qarma`] — the QARMA-64 tweakable block cipher (PAC substrate)
//! - [`isa`] — an AArch64-like ISA subset with ARMv8.3 PAC instructions
//! - [`uarch`] — the Apple-M1-like speculative microarchitecture model
//! - [`kernel`] — the XNU-like kernel model (EL0/EL1, kexts, signed vtables)
//! - [`attack`] — the PACMAN attack library itself (the paper's contribution)
//! - [`reference`] — the in-order architectural reference machine and the
//!   differential conformance harness that checks the speculative core
//! - [`gadget`] — the static PACMAN-gadget scanner (§4.3)
//! - [`os`] — PacmanOS, the bare-metal experiment environment (§6.2)
//! - [`mitigations`] — the §9 countermeasure evaluation harness
//!
//! # Quickstart
//!
//! ```
//! use pacman::prelude::*;
//!
//! // Boot a simulated M1-like machine running an XNU-like kernel with the
//! // paper's PoC kexts installed.
//! let mut sys = System::boot(SystemConfig::default());
//!
//! // Pick an attacker-chosen kernel address and build the speculative PAC
//! // oracle of paper §8.1. `true_pac` is evaluation-only ground truth —
//! // the oracle itself never needs it.
//! let set = sys.pick_quiet_dtlb_set();
//! let target = sys.alloc_target(set);
//! let true_pac = sys.true_pac(target);
//!
//! let mut oracle = DataPacOracle::new(&mut sys).expect("oracle setup");
//! let verdict = oracle.test_pac(&mut sys, target, true_pac).expect("trial");
//! assert!(verdict.is_correct());
//!
//! // The defining property: not a single kernel crash.
//! assert_eq!(sys.kernel.crash_count(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pacman_core as attack;
pub use pacman_gadget as gadget;
pub use pacman_isa as isa;
pub use pacman_kernel as kernel;
pub use pacman_mitigations as mitigations;
pub use pacman_os as os;
pub use pacman_qarma as qarma;
pub use pacman_ref as reference;
pub use pacman_uarch as uarch;

/// Convenience re-exports covering the common attack workflow.
pub mod prelude {
    pub use pacman_core::brute::{BruteForcer, BruteOutcome, BruteVerdict};
    pub use pacman_core::cache_probe::CacheDataPacOracle;
    pub use pacman_core::jump2win::{Jump2Win, Jump2WinReport};
    pub use pacman_core::oracle::{
        DataPacOracle, InstrPacOracle, OracleError, OracleVerdict, PacOracle,
    };
    pub use pacman_core::{System, SystemConfig};
    pub use pacman_isa::ptr::{PointerKind, VirtualAddress};
    pub use pacman_kernel::Kernel;
    pub use pacman_uarch::{CoreKind, Machine, MachineConfig, Mitigation, TimingSource};
}
