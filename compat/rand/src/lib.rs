//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments with no crates-registry access,
//! so the real `rand` cannot be downloaded. This vendored stand-in
//! implements exactly the surface the workspace uses — [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen`] / [`Rng::gen_range`] /
//! [`Rng::gen_bool`] — over a deterministic xoshiro256++ generator.
//!
//! It is wired in through `[patch.crates-io]` in the workspace root, so
//! every `use rand::...` in the tree resolves here without source changes.
//! The sequences differ from upstream `rand`, which is fine: nothing in
//! the workspace depends on the exact stream, only on determinism per
//! seed and reasonable statistical quality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The core 64-bit generator state (xoshiro256++).
#[derive(Clone, Debug)]
pub struct CoreRng {
    s: [u64; 4],
}

impl CoreRng {
    /// The raw xoshiro256++ state words (for snapshot/restore).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from raw state words previously returned by
    /// [`CoreRng::state`]; an all-zero state (a fixed point) is nudged
    /// to a nonzero one.
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 of any seed
        // cannot produce four zero words, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

/// Types samplable from the uniform "standard" distribution ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard(rng: &mut CoreRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(rng: &mut CoreRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard(rng: &mut CoreRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample_standard(rng: &mut CoreRng) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut CoreRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut CoreRng) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut CoreRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (both inclusive).
    fn sample_inclusive(rng: &mut CoreRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(rng: &mut CoreRng, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = span + 1;
                // Rejection sampling to avoid modulo bias.
                let zone = u64::MAX - (u64::MAX % span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return (low as $wide).wrapping_add((v % span) as $wide) as $t;
                    }
                }
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one(self, rng: &mut CoreRng) -> T;
}

impl<T: SampleUniform + HasPredecessor> SampleRange<T> for Range<T> {
    fn sample_one(self, rng: &mut CoreRng) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.predecessor())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one(self, rng: &mut CoreRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper for converting an exclusive upper bound to inclusive.
pub trait HasPredecessor {
    /// The value one below `self`.
    fn predecessor(self) -> Self;
}

macro_rules! impl_pred {
    ($($t:ty),*) => {$(
        impl HasPredecessor for $t {
            fn predecessor(self) -> Self { self - 1 }
        }
    )*};
}
impl_pred!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// Access to the core generator.
    fn core(&mut self) -> &mut CoreRng;

    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self.core())
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self.core())
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        f64::sample_standard(self.core()) < p
    }
}

/// Generator implementations (subset of `rand::rngs`).
pub mod rngs {
    use super::{CoreRng, Rng, SeedableRng};

    /// A small, fast, deterministic generator (stand-in for
    /// `rand::rngs::SmallRng`).
    #[derive(Clone, Debug)]
    pub struct SmallRng(CoreRng);

    impl SmallRng {
        /// The raw generator state words, so machine snapshots can
        /// capture an RNG mid-stream (extension beyond upstream `rand`,
        /// which reaches the same via `Serialize` on the rng type).
        pub fn state(&self) -> [u64; 4] {
            self.0.state()
        }

        /// Rebuilds a generator positioned exactly where
        /// [`SmallRng::state`] was taken.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self(CoreRng::from_state(s))
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(CoreRng::from_seed(seed))
        }
    }

    impl Rng for SmallRng {
        fn core(&mut self) -> &mut CoreRng {
            &mut self.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i16 = r.gen_range(-2048i16..2048);
            assert!((-2048..2048).contains(&w));
            let x: u64 = r.gen_range(0..=5u64);
            assert!(x <= 5);
            let y: usize = r.gen_range(0..6usize);
            assert!(y < 6);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert_eq!((0..100).filter(|_| r.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| r.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn full_width_types_sample() {
        let mut r = SmallRng::seed_from_u64(3);
        let _: u128 = r.gen();
        let _: bool = r.gen();
        let _: u16 = r.gen();
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
