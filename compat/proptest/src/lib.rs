//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! This workspace builds in environments with no crates-registry access,
//! so the real `proptest` cannot be downloaded. This vendored stand-in
//! implements the surface the workspace's property tests use: the
//! [`strategy::Strategy`] trait over ranges / tuples / [`strategy::Just`] /
//! `prop_map` / unions, [`arbitrary::any`], `prop::collection::vec`, the
//! [`proptest!`] / [`prop_oneof!`] / `prop_assert*` / [`prop_assume!`]
//! macros, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, deliberately accepted: cases are drawn from
//! a deterministic per-test seed (derived from the test name) instead of
//! an entropy source, and there is no shrinking — a failing case reports
//! the raw inputs' debug formatting via the assertion message and the
//! case index. Determinism actually helps here: failures reproduce
//! exactly under `cargo test`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner configuration and failure types.
pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test as a whole fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Builds the rejection variant.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Runner knobs (subset of upstream's `ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Hard cap on generated cases, counting rejected ones.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases, ..Self::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Drives one `proptest!`-generated test function. `case` generates
    /// inputs from the per-case RNG and runs the body.
    pub fn run(
        test_name: &str,
        config: &ProptestConfig,
        mut case: impl FnMut(&mut rand::rngs::SmallRng) -> Result<(), TestCaseError>,
    ) {
        use rand::SeedableRng;
        // Deterministic seed per test name so failures reproduce.
        let seed = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut index = 0u32;
        while passed < config.cases {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ u64::from(index));
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "proptest '{test_name}': too many prop_assume! rejections \
                         ({rejected}) before reaching {} passing cases",
                        config.cases
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{test_name}' failed at case #{index}: {msg}");
                }
            }
            index += 1;
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value` (subset of
    /// upstream's `Strategy`; sampling replaces the value-tree model and
    /// there is no shrinking).
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe sampling, so strategies of one value type can be mixed.
    trait DynStrategy {
        type Value;
        fn sample_dyn(&self, rng: &mut SmallRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn sample_dyn(&self, rng: &mut SmallRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut SmallRng) -> V {
            self.0.sample_dyn(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among same-valued strategies (the [`crate::prop_oneof!`]
    /// backend).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut SmallRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: rand::SampleUniform + rand::HasPredecessor + Copy + 'static,
        Range<T>: rand::SampleRange<T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: rand::SampleUniform + Copy + 'static,
        RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` — the "any value of `T`" strategy.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Generates any value of `T` from the uniform distribution.
    pub fn any<T: rand::Standard>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            rng.gen()
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed `usize` or a
    /// half-open `usize` range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s of values from `element`, with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Each `fn` item becomes a `#[test]` running
/// [`test_runner::run`] over its generated parameters. Parameters may be
/// `name: Type` (drawn via [`arbitrary::any`]) or `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(stringify!($name), &config, |__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng $($params)*);
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds one parameter list entry
/// per step, sampling from the given or inferred strategy.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident) => {};
    ($rng:ident ,) => {};
    ($rng:ident $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), $rng);
        $crate::__proptest_bind!($rng $($rest)*);
    };
    ($rng:ident $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), $rng);
    };
    ($rng:ident $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty =
            $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng $($rest)*);
    };
    ($rng:ident $name:ident : $ty:ty) => {
        let $name: $ty =
            $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), $rng);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test; a failure fails the case
/// with a message instead of panicking mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal (debug-formats both on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            left,
            right
        );
    }};
}

/// Asserts two expressions are unequal (debug-formats both on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn typed_params_bind(x: u64, flips: bool) {
            prop_assert!(u128::from(x) < (1u128 << 64));
            prop_assert!(usize::from(flips) <= 1);
        }

        #[test]
        fn strategies_compose(e in arb_even(), pick in prop_oneof![Just(1u8), Just(2), 3u8..5]) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!((1..5).contains(&pick));
        }

        #[test]
        fn vec_sizes_respected(
            v in prop::collection::vec(0u64..10, 1..20),
            fixed in prop::collection::vec(any::<u64>(), 4),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_rejects_without_failing(a: u8, b: u8) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_index() {
        crate::test_runner::run("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn runner_is_deterministic() {
        let mut seen = Vec::new();
        for _ in 0..2 {
            let mut vals = Vec::new();
            crate::test_runner::run("det", &ProptestConfig::with_cases(8), |rng| {
                vals.push(crate::strategy::Strategy::sample(&(0u64..1_000_000), rng));
                Ok(())
            });
            seen.push(vals);
        }
        assert_eq!(seen[0], seen[1]);
    }
}
