//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! This workspace builds in environments with no crates-registry access,
//! so the real `criterion` cannot be downloaded. This vendored stand-in
//! implements the surface `perf_micro` uses — [`Criterion::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`] — with a
//! simple wall-clock measurement loop (warmup, auto-calibrated iteration
//! batches, mean / median / min over samples) and a plain-text report.
//! No statistical regression analysis, plots, or saved baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample measurement state handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated number of iterations. The
    /// return value is passed through [`black_box`] so the work is not
    /// optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark driver (subset of upstream's `Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Warm up and calibrate how many iterations fit in one sample.
        let mut iters = 1u64;
        let warmup_deadline = Instant::now() + self.warm_up_time;
        let per_iter = loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            let per_iter = b.elapsed.max(Duration::from_nanos(1)) / (iters as u32).max(1);
            if Instant::now() >= warmup_deadline {
                break per_iter;
            }
            iters = iters.saturating_mul(2).min(1 << 30);
        };
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{id:<40} time: [min {} median {} mean {}]  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            samples.len(),
            iters
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: a generated function that runs each target
/// against the configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let mut hits = 0u64;
        quick().bench_function("counts", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group! {
            name = grp;
            config = super::tests::quick();
            targets = target
        }
        grp();
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(4_500.0), "4.50 us");
        assert_eq!(fmt_ns(7_800_000.0), "7.80 ms");
        assert_eq!(fmt_ns(2_000_000_000.0), "2.00 s");
    }
}
