//! Countermeasure evaluation (paper §9).
//!
//! The paper sketches three defence directions; this crate evaluates each
//! of them (implemented inside `pacman_uarch`'s speculative engine)
//! against the real attack code from `pacman_core`, and measures the
//! performance cost on a PA-heavy benign workload:
//!
//! | §9 direction | [`Mitigation`] | expected outcome |
//! |---|---|---|
//! | PAC-agnostic execution via `isb` after `AUT` | `FenceAfterAut` | both oracles blind; per-`AUT` fence cost on benign code |
//! | PAC-agnostic execution via stalling `AUT` | `NonSpeculativeAut` | both oracles blind; no architectural cost in this model |
//! | Invisible speculation extended to TLBs | `DelayOnMiss` | both oracles blind |
//! | Taint tracking with `AUT` as a source | `TaintAutOutputs` | both oracles blind |
//!
//! It also evaluates the §4.2 *eager squash* ablation: with lazy nested
//! squash the instruction gadget stops working while the data gadget is
//! unaffected.
//!
//! # Example
//!
//! ```
//! use pacman_mitigations::{evaluate, AttackSurface};
//! use pacman_uarch::Mitigation;
//!
//! let baseline = evaluate(Mitigation::None);
//! assert_eq!(baseline.surface, AttackSurface::FullyVulnerable);
//! let fenced = evaluate(Mitigation::FenceAfterAut);
//! assert_eq!(fenced.surface, AttackSurface::Protected);
//! assert!(fenced.benign_cycles > baseline.benign_cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pacman_core::oracle::{DataPacOracle, InstrPacOracle, PacOracle, CORRECT_MISS_THRESHOLD};
use pacman_core::{System, SystemConfig};
use pacman_isa::{Asm, Inst, PacKey, PacModifier, Reg};
use pacman_uarch::{Mitigation, SquashPolicy};

/// How much of the PACMAN attack surface remains under a configuration.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum AttackSurface {
    /// Both oracle variants distinguish correct from incorrect PACs.
    FullyVulnerable,
    /// Only the data gadget works (e.g. no eager nested squash).
    DataGadgetOnly,
    /// Only the instruction gadget works (not expected in practice).
    InstructionGadgetOnly,
    /// Neither oracle variant can distinguish anything.
    Protected,
}

/// Evaluation result for one configuration.
#[derive(Clone, Debug)]
pub struct MitigationReport {
    /// The mitigation evaluated.
    pub mitigation: Mitigation,
    /// Squash policy used.
    pub squash: SquashPolicy,
    /// Whether the data-gadget oracle still classifies correctly.
    pub data_oracle_works: bool,
    /// Whether the instruction-gadget oracle still classifies correctly.
    pub instr_oracle_works: bool,
    /// Cycles of the PA-heavy benign workload under this configuration.
    pub benign_cycles: u64,
    /// Implicit fences injected during the whole run.
    pub fences_injected: u64,
    /// Speculative accesses blocked by taint tracking.
    pub taint_blocked: u64,
    /// Speculative accesses blocked by delay-on-miss.
    pub delay_blocked: u64,
    /// Kernel crashes during evaluation (must stay zero: mitigations must
    /// not convert the attack into a crash storm).
    pub crashes: u64,
}

impl MitigationReport {
    /// The remaining attack surface.
    pub fn surface(&self) -> AttackSurface {
        match (self.data_oracle_works, self.instr_oracle_works) {
            (true, true) => AttackSurface::FullyVulnerable,
            (true, false) => AttackSurface::DataGadgetOnly,
            (false, true) => AttackSurface::InstructionGadgetOnly,
            (false, false) => AttackSurface::Protected,
        }
    }
}

/// Convenience wrapper carrying the surface inline (used by doctests and
/// reports).
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Full report.
    pub report: MitigationReport,
    /// Derived surface.
    pub surface: AttackSurface,
    /// Benign-workload cycles (copied from the report for terseness).
    pub benign_cycles: u64,
}

fn quiet_config(mitigation: Mitigation, squash: SquashPolicy) -> SystemConfig {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    cfg.machine.mitigation = mitigation;
    cfg.machine.squash = squash;
    cfg
}

/// Does an oracle still separate correct from incorrect PACs under this
/// system? Uses a handful of trials of each class.
fn oracle_works(sys: &mut System, oracle: &mut dyn PacOracle, target: u64, true_pac: u16) -> bool {
    let rounds = 3;
    let mut good_hits = 0;
    let mut bad_hits = 0;
    for i in 0..rounds {
        if let Ok(m) = oracle.trial(sys, target, true_pac) {
            if m >= CORRECT_MISS_THRESHOLD {
                good_hits += 1;
            }
        }
        if let Ok(m) = oracle.trial(sys, target, true_pac ^ (1 + i as u16)) {
            if m >= CORRECT_MISS_THRESHOLD {
                bad_hits += 1;
            }
        }
    }
    // The oracle "works" only if it detects the true PAC *and* rejects
    // wrong ones — a constant verdict either way is useless to an
    // attacker.
    good_hits > rounds / 2 && bad_hits <= rounds / 2
}

/// The PA-heavy benign workload: a kernel handler that signs,
/// authenticates and dereferences a pointer in a loop — the pattern
/// Figure 2 makes ubiquitous in PA-enabled code.
fn register_benign_workload(sys: &mut System) -> u64 {
    let data = sys.kernel.alloc_data_page(&mut sys.machine);
    let mut a = Asm::new();
    let top = a.new_label();
    a.mov_imm64(Reg::X11, 100); // iterations
    a.bind(top);
    a.mov_imm64(Reg::X9, data);
    a.push(Inst::Pac { key: PacKey::Ia, rd: Reg::X9, modifier: PacModifier::Zero });
    a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X9, modifier: PacModifier::Zero });
    a.push(Inst::Ldr { rt: Reg::X10, rn: Reg::X9, offset: 0 });
    a.push(Inst::SubImm { rd: Reg::X11, rn: Reg::X11, imm: 1 });
    a.cbnz(Reg::X11, top);
    a.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 });
    a.push(Inst::Eret);
    sys.kernel.register_syscall(&mut sys.machine, &a.assemble().expect("benign workload"))
}

/// Runs the benign workload and returns its cycle cost, excluding the
/// fixed EL0<->EL1 transition overhead (we measure the kernel work the
/// mitigation perturbs, not the syscall trampoline).
fn benign_cycles(sys: &mut System, sc: u64) -> u64 {
    let before = sys.machine.cycles;
    sys.kernel.syscall(&mut sys.machine, sc, &[]).expect("benign workload cannot panic");
    (sys.machine.cycles - before) - 2 * sys.machine.config().latency.syscall_transition
}

/// Evaluates one mitigation with the default (eager) squash policy.
pub fn evaluate(mitigation: Mitigation) -> Evaluation {
    evaluate_with_squash(mitigation, SquashPolicy::Eager)
}

/// Evaluates a (mitigation, squash-policy) pair.
pub fn evaluate_with_squash(mitigation: Mitigation, squash: SquashPolicy) -> Evaluation {
    let mut sys = System::boot(quiet_config(mitigation, squash));
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);

    let mut data_oracle = DataPacOracle::new(&mut sys).expect("oracle setup");
    let data_oracle_works = oracle_works(&mut sys, &mut data_oracle, target, true_pac);

    let mut instr_oracle = InstrPacOracle::new(&mut sys).expect("oracle setup");
    let instr_oracle_works = oracle_works(&mut sys, &mut instr_oracle, target, true_pac);

    let benign_sc = register_benign_workload(&mut sys);
    // Warm up, then measure.
    let _ = benign_cycles(&mut sys, benign_sc);
    let benign = benign_cycles(&mut sys, benign_sc);

    let report = MitigationReport {
        mitigation,
        squash,
        data_oracle_works,
        instr_oracle_works,
        benign_cycles: benign,
        fences_injected: sys.machine.stats.fences_injected,
        taint_blocked: sys.machine.stats.taint_blocked,
        delay_blocked: sys.machine.stats.delay_blocked,
        crashes: sys.kernel.crash_count(),
    };
    let surface = report.surface();
    let benign_cycles = report.benign_cycles;
    Evaluation { report, surface, benign_cycles }
}

/// Evaluates every §9 mitigation plus the baseline.
pub fn evaluate_all() -> Vec<Evaluation> {
    [
        Mitigation::None,
        Mitigation::FenceAfterAut,
        Mitigation::NonSpeculativeAut,
        Mitigation::TaintAutOutputs,
        Mitigation::DelayOnMiss,
    ]
    .into_iter()
    .map(evaluate)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_fully_vulnerable() {
        let e = evaluate(Mitigation::None);
        assert_eq!(e.surface, AttackSurface::FullyVulnerable);
        assert_eq!(e.report.crashes, 0);
    }

    #[test]
    fn fence_after_aut_protects_at_a_cost() {
        let base = evaluate(Mitigation::None);
        let e = evaluate(Mitigation::FenceAfterAut);
        assert_eq!(e.surface, AttackSurface::Protected);
        assert!(e.report.fences_injected > 0, "fences must actually fire");
        assert!(
            e.benign_cycles > base.benign_cycles,
            "PAC-agnostic fencing must cost benign cycles ({} vs {})",
            e.benign_cycles,
            base.benign_cycles
        );
    }

    #[test]
    fn non_speculative_aut_protects_without_benign_cost() {
        let base = evaluate(Mitigation::None);
        let e = evaluate(Mitigation::NonSpeculativeAut);
        assert_eq!(e.surface, AttackSurface::Protected);
        // In this model the stall only affects wrong-path work, so the
        // benign workload sees no meaningful overhead (the paper notes
        // the real cost is the lost speculation, which our IPC-less model
        // does not price). Allow 2% slack for wrong-path cycle charges.
        assert!(
            e.benign_cycles <= base.benign_cycles + base.benign_cycles / 50,
            "unexpected overhead: {} vs {}",
            e.benign_cycles,
            base.benign_cycles
        );
    }

    #[test]
    fn taint_tracking_with_aut_source_protects() {
        let e = evaluate(Mitigation::TaintAutOutputs);
        assert_eq!(e.surface, AttackSurface::Protected);
        assert!(e.report.taint_blocked > 0, "taint blocks must actually fire");
    }

    #[test]
    fn delay_on_miss_protects() {
        let e = evaluate(Mitigation::DelayOnMiss);
        assert_eq!(e.surface, AttackSurface::Protected);
        assert!(e.report.delay_blocked > 0, "delays must actually fire");
    }

    #[test]
    fn lazy_squash_kills_only_the_instruction_gadget() {
        // §4.2: the instruction PACMAN gadget requires eager squash of
        // nested branches; the data gadget does not care.
        let e = evaluate_with_squash(Mitigation::None, SquashPolicy::Lazy);
        assert_eq!(e.surface, AttackSurface::DataGadgetOnly);
    }

    #[test]
    fn no_mitigation_converts_the_attack_into_crashes() {
        for e in evaluate_all() {
            assert_eq!(e.report.crashes, 0, "{:?} caused crashes", e.report.mitigation);
        }
    }
}
