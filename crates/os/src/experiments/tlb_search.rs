//! Automated TLB-parameter search.
//!
//! The paper's §7 sweeps were driven by a human reading latency plots.
//! This experiment automates the discovery: given *no prior knowledge*
//! of strides or associativities, it searches power-of-two strides for
//! the smallest one that produces reload-latency jumps, then finds the
//! minimal eviction-set size at that stride. Applied three times —
//! data-side L1, data-side L2, instruction-side L1 — it reconstructs the
//! Figure 6 organisation:
//!
//! - set count = the smallest conflicting stride (in pages);
//! - associativity = the minimal eviction-set size at that stride.

use pacman_isa::ptr::PAGE_SIZE;

use crate::env::BareMetal;
use crate::experiment::Experiment;

/// Discovered parameters of one TLB level.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct TlbSearchResult {
    /// Smallest conflicting stride, in pages (= set count).
    pub sets: u64,
    /// Minimal eviction-set size (= ways).
    pub ways: usize,
}

/// The full search experiment.
#[derive(Debug, Default)]
pub struct TlbParameterSearch {
    /// Data-side L1 result (expected 256 sets × 12 ways).
    pub dtlb: Option<TlbSearchResult>,
    /// Shared L2 result (expected 2048 sets × 23 ways).
    pub l2: Option<TlbSearchResult>,
    /// Instruction-side L1 result (expected 32 sets × 4 ways).
    pub itlb: Option<TlbSearchResult>,
}

/// Maximum eviction-set size the search will try.
const MAX_N: usize = 32;
/// Samples per probe point.
const SAMPLES: usize = 5;

impl TlbParameterSearch {
    /// Creates the experiment.
    pub fn new() -> Self {
        Self::default()
    }

    /// One trial: cold machine, touch `x`, access `n` candidates at
    /// `stride_pages`, reload `x` and report the median latency.
    fn data_trial(os: &mut BareMetal, x: u64, stride_pages: u64, n: usize) -> u64 {
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            os.quiesce();
            os.load(x).expect("mapped");
            for i in 1..=n as u64 {
                // The 128-byte stagger keeps the candidates out of x's
                // L1D set (the paper's §7.2 formula).
                os.load(x + i * stride_pages * PAGE_SIZE + i * 128).expect("mapped");
            }
            samples.push(os.timed_load(x).expect("mapped"));
        }
        samples.sort_unstable();
        samples[samples.len() / 2]
    }

    /// Instruction-side trial: fetch `x`, fetch candidates, reload as
    /// data (§7.3 methodology).
    fn fetch_trial(os: &mut BareMetal, x: u64, stride_pages: u64, n: usize) -> u64 {
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            os.quiesce();
            os.fetch(x).expect("mapped");
            for i in 1..=n as u64 {
                os.fetch(x + i * stride_pages * PAGE_SIZE + i * 128).expect("mapped");
            }
            samples.push(os.timed_load(x).expect("mapped"));
        }
        samples.sort_unstable();
        samples[samples.len() / 2]
    }

    /// Maps the trial addresses for one (region, stride).
    fn map_trial_pages(os: &mut BareMetal, x: u64, stride_pages: u64) {
        os.map_page_at(x);
        for i in 1..=MAX_N as u64 {
            os.map_page_at(x + i * stride_pages * PAGE_SIZE);
        }
    }

    /// The minimal eviction-set size at `stride` that crosses `threshold`
    /// (in the `rising` direction), if any within [`MAX_N`].
    fn min_n(
        os: &mut BareMetal,
        threshold: u64,
        stride: u64,
        trial: &impl Fn(&mut BareMetal, u64, u64, usize) -> u64,
        rising: bool,
    ) -> Option<usize> {
        let x = os.reserve_span(stride * (MAX_N as u64 + 1) + 1);
        Self::map_trial_pages(os, x, stride);
        (1..=MAX_N).find(|&n| {
            let m = trial(os, x, stride, n);
            if rising {
                m >= threshold
            } else {
                m <= threshold
            }
        })
    }

    /// Parameter inference: the associativity is the minimal eviction-set
    /// size at a stride so large that every candidate surely shares the
    /// target's set; the set count is then the *smallest* stride at which
    /// that same minimal size still evicts (any smaller stride spreads
    /// the candidates over several sets and needs proportionally more of
    /// them).
    fn search(
        os: &mut BareMetal,
        threshold: u64,
        max_stride: u64,
        trial: impl Fn(&mut BareMetal, u64, u64, usize) -> u64,
        rising: bool,
    ) -> Option<TlbSearchResult> {
        let ways = Self::min_n(os, threshold, max_stride, &trial, rising)?;
        let mut sets = max_stride;
        let mut stride = max_stride / 2;
        while stride >= 1 {
            match Self::min_n(os, threshold, stride, &trial, rising) {
                Some(n) if n == ways => {
                    sets = stride;
                    stride /= 2;
                }
                _ => break,
            }
        }
        Some(TlbSearchResult { sets, ways })
    }
}

impl Experiment for TlbParameterSearch {
    fn name(&self) -> &'static str {
        "tlb-parameter-search"
    }

    fn run(&mut self, os: &mut BareMetal, lines: &mut Vec<String>) -> bool {
        // L1 data side: first latency plateau above the hot baseline.
        self.dtlb = Self::search(os, 90, 4096, Self::data_trial, true);
        // L2: deeper plateau (the search naturally lands on the larger
        // stride because smaller strides saturate at the L1-miss level).
        self.l2 = Self::search(os, 110, 4096, Self::data_trial, true);
        // Instruction side: the *drop* below the invisible-entry level.
        self.itlb = Self::search(os, 90, 4096, Self::fetch_trial, false);

        for (name, r, expected) in [
            ("L1 dTLB", self.dtlb, (256, 12)),
            ("L2 TLB", self.l2, (2048, 23)),
            ("L1 iTLB", self.itlb, (32, 4)),
        ] {
            match r {
                Some(res) => lines.push(format!(
                    "{name}: {} sets x {} ways (expected {} x {})",
                    res.sets, res.ways, expected.0, expected.1
                )),
                None => lines.push(format!("{name}: not found")),
            }
        }
        self.dtlb == Some(TlbSearchResult { sets: 256, ways: 12 })
            && self.l2 == Some(TlbSearchResult { sets: 2048, ways: 23 })
            && self.itlb == Some(TlbSearchResult { sets: 32, ways: 4 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runner;

    #[test]
    fn search_rediscovers_figure6_with_no_priors() {
        let mut runner = Runner::new(BareMetal::boot_default());
        let mut exp = TlbParameterSearch::new();
        let report = runner.run(&mut exp);
        assert!(report.ok, "{report}");
        assert_eq!(exp.dtlb, Some(TlbSearchResult { sets: 256, ways: 12 }));
        assert_eq!(exp.l2, Some(TlbSearchResult { sets: 2048, ways: 23 }));
        assert_eq!(exp.itlb, Some(TlbSearchResult { sets: 32, ways: 4 }));
    }
}
