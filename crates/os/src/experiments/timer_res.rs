//! The timer-resolution experiment (§6.1's motivating measurement).

use pacman_uarch::TimingSource;

use crate::env::BareMetal;
use crate::experiment::Experiment;

/// Measures, for every timing source, whether back-to-back loads of a
/// hot line versus a dTLB-missing line are distinguishable — the
/// property that decides whether a timer can drive the attack.
#[derive(Debug, Default)]
pub struct TimerResolution {
    /// `(source, hit_ticks, miss_ticks, usable)` per source.
    pub measurements: Vec<(TimingSource, u64, u64, bool)>,
}

impl TimerResolution {
    /// Creates the experiment.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Experiment for TimerResolution {
    fn name(&self) -> &'static str {
        "timer-resolution"
    }

    fn run(&mut self, os: &mut BareMetal, lines: &mut Vec<String>) -> bool {
        self.measurements.clear();
        let page = os.alloc_pages(1);
        for source in [TimingSource::SystemCounter, TimingSource::Pmc0, TimingSource::MultiThread] {
            os.machine.set_timing_source(source);
            // Hot: warm everything, measure.
            os.load(page).expect("mapped");
            let hit = os.timed_load(page).expect("mapped");
            // Translation-cold, cache-warm: flush only the TLBs. This is
            // the ~55-cycle gap the attack has to resolve; a usable timer
            // needs several ticks across it (quantisation headroom).
            os.flush_tlbs();
            let miss = os.timed_load(page).expect("mapped");
            let usable = miss > hit + 8;
            lines.push(format!(
                "{source:?}: hit {hit} ticks, TLB-cold {miss} ticks -> {}",
                if usable { "usable" } else { "too coarse" }
            ));
            self.measurements.push((source, hit, miss, usable));
        }
        os.machine.set_timing_source(TimingSource::Pmc0);
        // The 24 MHz counter must be the only unusable one.
        let by_source = |s: TimingSource| {
            self.measurements.iter().find(|(src, ..)| *src == s).map(|&(_, _, _, u)| u)
        };
        by_source(TimingSource::SystemCounter) == Some(false)
            && by_source(TimingSource::Pmc0) == Some(true)
            && by_source(TimingSource::MultiThread) == Some(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runner;

    #[test]
    fn only_the_system_counter_is_too_coarse() {
        let mut runner = Runner::new(BareMetal::boot_default());
        let mut exp = TimerResolution::new();
        let report = runner.run(&mut exp);
        assert!(report.ok, "{report}");
        assert_eq!(exp.measurements.len(), 3);
    }
}
