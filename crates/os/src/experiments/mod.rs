//! Built-in PacmanOS experiments.
//!
//! - [`MsrInventory`] — which system registers are accessible, and what
//!   they read (the paper's "probing model-specific registers");
//! - [`TimerResolution`] — effective resolution of every timing source
//!   (the §6.1 investigation that motivated the custom timers);
//! - [`TlbParameterSearch`] — an *automated* rediscovery of the Figure 6
//!   TLB organisation: it is told nothing about strides or ways and
//!   searches the space the way the paper's manual sweeps did.

mod msr;
mod timer_res;
mod tlb_search;

pub use msr::MsrInventory;
pub use timer_res::TimerResolution;
pub use tlb_search::{TlbParameterSearch, TlbSearchResult};
