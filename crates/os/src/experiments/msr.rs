//! The MSR inventory experiment.

use pacman_isa::SysReg;

use crate::env::{BareMetal, MsrAccess};
use crate::experiment::Experiment;

/// Probes every modelled system register at EL1 and records access and
/// value. On the real M1 this is how undocumented registers (like
/// Apple's `PMC0`/`PMCR0`) were mapped out.
#[derive(Debug, Default)]
pub struct MsrInventory {
    results: Vec<(SysReg, MsrAccess)>,
}

impl MsrInventory {
    /// Creates the experiment.
    pub fn new() -> Self {
        Self::default()
    }

    /// The probe results of the last run.
    pub fn results(&self) -> &[(SysReg, MsrAccess)] {
        &self.results
    }
}

impl Experiment for MsrInventory {
    fn name(&self) -> &'static str {
        "msr-inventory"
    }

    fn run(&mut self, os: &mut BareMetal, lines: &mut Vec<String>) -> bool {
        self.results.clear();
        for reg in SysReg::ALL {
            let access = os.probe_msr(reg);
            match access {
                MsrAccess::Readable(v) => lines.push(format!("{reg:<18} readable, value {v:#x}")),
                MsrAccess::Inaccessible => lines.push(format!("{reg:<18} inaccessible")),
            }
            self.results.push((reg, access));
        }
        // At EL1 everything modelled should be readable, and CNTFRQ must
        // report the paper's 24 MHz.
        self.results.iter().all(|(_, a)| matches!(a, MsrAccess::Readable(_)))
            && self
                .results
                .iter()
                .any(|(r, a)| *r == SysReg::CntfrqEl0 && *a == MsrAccess::Readable(24_000_000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runner;

    #[test]
    fn inventory_covers_every_register() {
        let mut runner = Runner::new(BareMetal::boot_default());
        let mut exp = MsrInventory::new();
        let report = runner.run(&mut exp);
        assert!(report.ok, "{report}");
        assert_eq!(exp.results().len(), SysReg::ALL.len());
        assert_eq!(report.lines.len(), SysReg::ALL.len());
    }
}
