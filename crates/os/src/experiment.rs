//! The one-experiment-per-boot harness.

use crate::env::BareMetal;

/// Result of one experiment run.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ExperimentReport {
    /// Experiment name.
    pub name: &'static str,
    /// Human-readable result lines.
    pub lines: Vec<String>,
    /// Simulated cycles the experiment consumed.
    pub cycles: u64,
    /// Whether the experiment's own invariants held.
    pub ok: bool,
}

impl std::fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "[PacmanOS] {} ({} cycles, {})",
            self.name,
            self.cycles,
            if self.ok { "ok" } else { "FAILED" }
        )?;
        for l in &self.lines {
            writeln!(f, "    {l}")?;
        }
        Ok(())
    }
}

/// A single bare-metal experiment. PacmanOS boots, runs exactly one of
/// these, and reports — mirroring the paper's "runs a single experiment
/// directly on the bare hardware".
pub trait Experiment {
    /// Stable experiment name.
    fn name(&self) -> &'static str;
    /// Runs against the bare machine, appending result lines.
    fn run(&mut self, os: &mut BareMetal, lines: &mut Vec<String>) -> bool;
}

/// Boots + runs experiments, quiescing the machine before each.
#[derive(Debug)]
pub struct Runner {
    os: BareMetal,
}

impl Runner {
    /// Wraps a booted environment.
    pub fn new(os: BareMetal) -> Self {
        Self { os }
    }

    /// Access to the underlying environment.
    pub fn os_mut(&mut self) -> &mut BareMetal {
        &mut self.os
    }

    /// Runs one experiment from a quiesced machine.
    pub fn run(&mut self, experiment: &mut dyn Experiment) -> ExperimentReport {
        self.os.quiesce();
        let before = self.os.machine.cycles;
        let mut lines = Vec::new();
        let ok = experiment.run(&mut self.os, &mut lines);
        ExperimentReport {
            name: experiment.name(),
            lines,
            cycles: self.os.machine.cycles - before,
            ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Trivial;
    impl Experiment for Trivial {
        fn name(&self) -> &'static str {
            "trivial"
        }
        fn run(&mut self, os: &mut BareMetal, lines: &mut Vec<String>) -> bool {
            let page = os.alloc_pages(1);
            let cold = os.timed_load(page).expect("mapped");
            lines.push(format!("cold load: {cold} cycles"));
            cold > 0
        }
    }

    #[test]
    fn runner_reports_cycles_and_lines() {
        let mut runner = Runner::new(BareMetal::boot_default());
        let report = runner.run(&mut Trivial);
        assert!(report.ok);
        assert_eq!(report.name, "trivial");
        assert_eq!(report.lines.len(), 1);
        assert!(report.cycles > 0);
        assert!(report.to_string().contains("cold load"));
    }
}
