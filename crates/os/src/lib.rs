//! PacmanOS — the bare-metal experiment environment of paper §6.2.
//!
//! The paper's reverse engineering needed "complete control of the
//! hardware, e.g., configuring and probing arbitrary model-specific
//! registers (MSRs), creating arbitrary paging configurations, and
//! performing noiseless reverse engineering experiments, without
//! interference from other system software" — so the authors wrote
//! PacmanOS, a Rust environment that boots directly on the M1 and runs a
//! single experiment per boot.
//!
//! This crate reproduces that tool against the workspace's simulated
//! machine:
//!
//! - [`BareMetal`] — boots the machine straight into EL1 with no kernel:
//!   MSR probing (by *executing* `MRS`/`MSR`, exactly how a bare-metal
//!   probe discovers which encodings trap), arbitrary page-table
//!   configuration including aliases, and state quiescing between trials;
//! - [`Experiment`] / [`Runner`] — the one-experiment-per-boot harness;
//! - [`experiments`] — built-in experiments: the MSR inventory, timer
//!   resolution measurement, and an automated TLB-parameter search that
//!   rediscovers the Figure 6 organisation without being told any stride.
//!
//! # Example
//!
//! ```
//! use pacman_os::{experiments::MsrInventory, BareMetal, Experiment, Runner};
//!
//! let mut runner = Runner::new(BareMetal::boot_default());
//! let report = runner.run(&mut MsrInventory::new());
//! assert_eq!(report.name, "msr-inventory");
//! assert!(report.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod env;
mod experiment;
pub mod experiments;

pub use env::{BareMetal, MsrAccess};
pub use experiment::{Experiment, ExperimentReport, Runner};
