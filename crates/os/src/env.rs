//! The bare-metal environment: full machine control, no kernel.

use pacman_isa::ptr::{VirtualAddress, PAGE_SIZE};
use pacman_isa::{Asm, Inst, Reg, SysReg};
use pacman_uarch::{AccessOutcome, El, Machine, MachineConfig, Perms, TimingSource, Trap};

/// What a bare-metal MSR probe discovered about one system register.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum MsrAccess {
    /// Readable; carries the value observed.
    Readable(u64),
    /// The `MRS` trapped even at EL1.
    Inaccessible,
}

/// A machine booted straight into EL1 with no operating system.
///
/// PacmanOS owns the whole machine: it runs privileged, maps whatever it
/// wants, and can quiesce all microarchitectural state between trials —
/// the "noiseless experiments" property of §6.2.
#[derive(Debug)]
pub struct BareMetal {
    /// The bare machine.
    pub machine: Machine,
    scratch_code: u64,
    next_va: u64,
}

/// Where PacmanOS places its own probe stub.
const SCRATCH_CODE: u64 = 0xFFFF_FFFF_0000_0000;
/// Base of experiment data mappings.
const DATA_BASE: u64 = 0x0000_0800_0000_0000;

impl BareMetal {
    /// Boots with an explicit machine configuration. OS noise is forced
    /// off — there is no other software on a PacmanOS machine.
    pub fn boot(mut config: MachineConfig) -> Self {
        config.os_noise = 0.0;
        let mut machine = Machine::new(config);
        machine.cpu.el = El::El1;
        // PacmanOS configures the performance counters itself (no kext
        // needed at EL1) and times with PMC0, like the paper's RE setup.
        machine.timers.pmc0_el0_enabled = true;
        machine.set_timing_source(TimingSource::Pmc0);
        machine.map_page(SCRATCH_CODE, Perms::kernel_rwx());
        Self { machine, scratch_code: SCRATCH_CODE, next_va: DATA_BASE }
    }

    /// Boots with the default configuration.
    pub fn boot_default() -> Self {
        Self::boot(MachineConfig::default())
    }

    /// Runs a short privileged program on the bare machine, returning the
    /// final `x0`.
    ///
    /// # Errors
    ///
    /// Propagates any architectural [`Trap`] — on bare metal a trap is
    /// the experiment's answer, not a crash (there is no kernel to kill).
    pub fn run_privileged(&mut self, program: &[Inst]) -> Result<u64, Trap> {
        self.machine.load_program(self.scratch_code, program);
        self.machine.cpu.el = El::El1;
        self.machine.cpu.pc = self.scratch_code;
        self.machine.run(10_000)?;
        Ok(self.machine.cpu.get(Reg::X0))
    }

    /// Probes one MSR by executing `MRS x0, <reg>` at EL1.
    pub fn probe_msr(&mut self, reg: SysReg) -> MsrAccess {
        let mut a = Asm::new();
        a.push(Inst::Mrs { rd: Reg::X0, sysreg: reg });
        a.push(Inst::Hlt);
        match self.run_privileged(&a.assemble().expect("probe stub assembles")) {
            Ok(v) => MsrAccess::Readable(v),
            Err(_) => MsrAccess::Inaccessible,
        }
    }

    /// Writes one MSR by executing `MSR <reg>, x0` at EL1; returns false
    /// if the write trapped.
    pub fn write_msr(&mut self, reg: SysReg, value: u64) -> bool {
        let mut a = Asm::new();
        a.mov_imm64(Reg::X0, value);
        a.push(Inst::Msr { sysreg: reg, rn: Reg::X0 });
        a.push(Inst::Hlt);
        self.run_privileged(&a.assemble().expect("probe stub assembles")).is_ok()
    }

    /// Maps `pages` fresh pages of experiment memory and returns the base
    /// VA. PacmanOS maps experiment data user-accessible so the timed
    /// load helpers (which model EL0 measurement code) work unchanged.
    pub fn alloc_pages(&mut self, pages: u64) -> u64 {
        let align = 2048 * PAGE_SIZE;
        let base = self.next_va.div_ceil(align) * align;
        self.next_va = base + pages * PAGE_SIZE;
        for i in 0..pages {
            self.machine.map_page(base + i * PAGE_SIZE, Perms::user_rwx());
        }
        base
    }

    /// Reserves a `pages`-page span of VA space without mapping it (for
    /// experiments that map strided subsets themselves).
    pub fn reserve_span(&mut self, pages: u64) -> u64 {
        let align = 2048 * PAGE_SIZE;
        let base = self.next_va.div_ceil(align) * align;
        self.next_va = base + pages * PAGE_SIZE;
        base
    }

    /// Maps a fresh frame at exactly `va`.
    pub fn map_page_at(&mut self, va: u64) {
        self.machine.map_page(va, Perms::user_rwx());
    }

    /// Maps a single page at an arbitrary, possibly aliased VA — the
    /// "creating arbitrary paging configurations" capability.
    pub fn map_alias(&mut self, va: u64, pfn: u64) {
        self.machine.map_alias(va, pfn, Perms::user_rwx());
    }

    /// Allocates a raw physical frame for aliasing games.
    pub fn alloc_frame(&mut self) -> u64 {
        self.machine.alloc_frame()
    }

    /// Quiesces all microarchitectural state (caches, TLBs) so the next
    /// trial starts from a known-cold machine.
    pub fn quiesce(&mut self) {
        self.machine.mem.tlbs.flush();
        self.machine.mem.l1i.flush();
        self.machine.mem.l1d.flush();
        self.machine.mem.l2c.flush();
    }

    /// Flushes the TLB hierarchy only (a `tlbi vmalle1`-style invalidate),
    /// leaving the caches warm — isolates translation latency.
    pub fn flush_tlbs(&mut self) {
        self.machine.mem.tlbs.flush();
    }

    /// A timed load of `va` under the current timing source.
    ///
    /// # Errors
    ///
    /// Propagates traps from unmapped experiment addresses.
    pub fn timed_load(&mut self, va: u64) -> Result<u64, Trap> {
        self.machine.timed_user_load(va)
    }

    /// An untimed warming load.
    ///
    /// # Errors
    ///
    /// Propagates traps from unmapped experiment addresses.
    pub fn load(&mut self, va: u64) -> Result<AccessOutcome, Trap> {
        self.machine.user_load(va)
    }

    /// An instruction fetch of `va` (branch-into semantics).
    ///
    /// # Errors
    ///
    /// Propagates traps from unmapped experiment addresses.
    pub fn fetch(&mut self, va: u64) -> Result<AccessOutcome, Trap> {
        self.machine.user_fetch(va)
    }

    /// The dTLB set a VA maps to (diagnostics).
    pub fn dtlb_set_of(&self, va: u64) -> u64 {
        VirtualAddress::new(va).vpn() % 256
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boots_privileged_with_pmc0() {
        let mut os = BareMetal::boot_default();
        assert_eq!(os.machine.cpu.el, El::El1);
        assert_eq!(os.machine.timing_source(), TimingSource::Pmc0);
        assert_eq!(os.machine.config().os_noise, 0.0);
        // PMC0 readable without any kext.
        assert!(matches!(os.probe_msr(SysReg::Pmc0), MsrAccess::Readable(_)));
    }

    #[test]
    fn msr_inventory_distinguishes_readable_registers() {
        let mut os = BareMetal::boot_default();
        assert!(matches!(os.probe_msr(SysReg::CntfrqEl0), MsrAccess::Readable(24_000_000)));
        assert!(matches!(os.probe_msr(SysReg::ApiaKeyLo), MsrAccess::Readable(_)));
        // Write a key, read it back through the probe path.
        assert!(os.write_msr(SysReg::ApiaKeyLo, 0xDEAD_BEEF));
        assert!(matches!(os.probe_msr(SysReg::ApiaKeyLo), MsrAccess::Readable(0xDEAD_BEEF)));
        // CNTPCT is read-only: writes trap even at EL1.
        assert!(!os.write_msr(SysReg::CntpctEl0, 0));
    }

    #[test]
    fn quiesce_makes_trials_noiseless() {
        let mut os = BareMetal::boot_default();
        let page = os.alloc_pages(1);
        // Two identical cold trials must measure identically up to the
        // bounded measurement noise.
        let mut samples = Vec::new();
        for _ in 0..8 {
            os.quiesce();
            samples.push(os.timed_load(page).unwrap());
        }
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        assert!(max - min <= 4, "cold trials spread too much: {samples:?}");
        // And warm loads are clearly faster.
        let warm = os.timed_load(page).unwrap();
        assert!(warm + 20 < min, "warm {warm} vs cold {min}");
    }

    #[test]
    fn arbitrary_aliasing_is_possible() {
        let mut os = BareMetal::boot_default();
        let frame = os.alloc_frame();
        os.map_alias(0x100_0000, frame);
        os.map_alias(0x200_0000, frame);
        os.machine.user_store(0x100_0000, 0x77).unwrap();
        let v = os.machine.mem.debug_read_u64(0x200_0000).unwrap();
        assert_eq!(v, 0x77, "aliases must share the frame");
    }

    #[test]
    fn traps_are_answers_not_crashes() {
        let mut os = BareMetal::boot_default();
        let mut a = Asm::new();
        a.mov_imm64(Reg::X9, 0x00AA_0000_0000_1234); // non-canonical
        a.push(Inst::Ldr { rt: Reg::X0, rn: Reg::X9, offset: 0 });
        a.push(Inst::Hlt);
        assert!(os.run_privileged(&a.assemble().unwrap()).is_err());
        // The environment is still usable afterwards.
        let page = os.alloc_pages(1);
        assert!(os.load(page).is_ok());
    }
}
