//! The crash-kill-restart drill for durable campaigns (DESIGN.md §13).
//!
//! A real `pacman-cli daemon` process serves a real campaign over a
//! Unix socket; the test SIGKILLs it the moment a `checkpoint_written`
//! record proves a snapshot is durably on disk, restarts it with
//! `--resume`, reattaches to the interrupted session, and stitches the
//! two halves of the record stream together. The stitched `job_output`
//! stream must be *byte-identical* to a one-shot CLI run of the same
//! command — the durability machinery is only correct if a client
//! cannot tell the restart ever happened.
//!
//! The job is sized so its record count lands strictly between one and
//! two checkpoint intervals: exactly one periodic checkpoint is ever
//! cut, so the on-disk watermark cannot race ahead of what reached the
//! client's socket before the kill.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use pacman_telemetry::json::{parse, Value};

const CMD: &str = "oracle --trials 4 --seed 11 --quiet-noise --jobs 1";
const CHECKPOINT_EVERY: u64 = 5;
const DEADLINE: Duration = Duration::from_secs(60);

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pacman-cli")
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pacman-restart-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create drill dir");
    dir
}

fn spawn_daemon(dir: &Path, resume: bool) -> (Child, PathBuf) {
    let socket = dir.join("pacmand.sock");
    let state = dir.join("state");
    let log = std::fs::File::create(dir.join(if resume { "daemon2.out" } else { "daemon1.out" }))
        .expect("create daemon log");
    let mut cmd = Command::new(bin());
    cmd.arg("daemon")
        .args(["--socket", socket.to_str().unwrap()])
        .args(["--state-dir", state.to_str().unwrap()])
        .args(["--checkpoint-every", &CHECKPOINT_EVERY.to_string()])
        .args(["--workers", "1"])
        .stdout(log)
        .stderr(Stdio::null());
    if resume {
        cmd.arg("--resume");
    }
    let child = cmd.spawn().expect("spawn pacman-cli daemon");
    let start = Instant::now();
    while !socket.exists() {
        assert!(start.elapsed() < DEADLINE, "daemon never created {}", socket.display());
        std::thread::sleep(Duration::from_millis(20));
    }
    (child, socket)
}

fn connect(socket: &Path) -> (BufReader<UnixStream>, UnixStream) {
    let start = Instant::now();
    loop {
        match UnixStream::connect(socket) {
            Ok(stream) => {
                stream.set_read_timeout(Some(DEADLINE)).expect("set read timeout");
                let reader = BufReader::new(stream.try_clone().expect("clone stream"));
                return (reader, stream);
            }
            Err(e) => {
                assert!(start.elapsed() < DEADLINE, "cannot connect to daemon: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn send(writer: &mut UnixStream, line: &str) {
    writer.write_all(line.as_bytes()).expect("send request");
    writer.write_all(b"\n").expect("send newline");
    writer.flush().expect("flush request");
}

/// Reads one protocol record; `None` on EOF (daemon gone).
fn read_record(reader: &mut BufReader<UnixStream>) -> Option<Value> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(parse(line.trim_end()).expect("daemon sent unparsable record")),
        Err(e) => panic!("reading from daemon failed: {e}"),
    }
}

fn record_type(v: &Value) -> String {
    v.get("type").and_then(Value::as_str).unwrap_or("?").to_string()
}

fn output_line(v: &Value) -> String {
    v.get("line").and_then(Value::as_str).expect("job_output carries a line").to_string()
}

fn wait_exit(child: &mut Child) {
    let start = Instant::now();
    loop {
        if child.try_wait().expect("try_wait").is_some() {
            return;
        }
        assert!(start.elapsed() < DEADLINE, "daemon did not exit");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn a_sigkilled_daemon_resumes_with_a_byte_identical_stitched_stream() {
    let dir = temp_dir();

    // Reference: the same command as a one-shot CLI run.
    let metrics = dir.join("oneshot.jsonl");
    let status = Command::new(bin())
        .args(CMD.split_whitespace())
        .args(["--metrics-out", metrics.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run one-shot reference");
    assert!(status.success(), "one-shot reference run failed");
    let expected: Vec<String> =
        std::fs::read_to_string(&metrics).unwrap().lines().map(str::to_string).collect();
    // The drill needs the job to straddle exactly one checkpoint
    // boundary (see module docs); re-size CMD if this ever fails.
    assert!(
        expected.len() as u64 > CHECKPOINT_EVERY && (expected.len() as u64) < 2 * CHECKPOINT_EVERY,
        "reference run produced {} records; need one checkpoint interval straddled",
        expected.len()
    );

    // Phase 1: serve the campaign, SIGKILL on the first durable
    // checkpoint. Everything already written to the socket is still
    // readable after the kill; drain it to EOF.
    let (mut daemon1, socket) = spawn_daemon(&dir, false);
    let (mut reader, mut writer) = connect(&socket);
    send(&mut writer, r#"{"type":"open_session","session":"drill"}"#);
    send(&mut writer, &format!(r#"{{"type":"submit","session":"drill","command":"{CMD}"}}"#));
    let mut pre: Vec<String> = Vec::new();
    let mut checkpointed = false;
    while let Some(record) = read_record(&mut reader) {
        match record_type(&record).as_str() {
            "job_output" => pre.push(output_line(&record)),
            "checkpoint_written" => {
                daemon1.kill().expect("SIGKILL daemon");
                checkpointed = true;
            }
            "job_failed" | "error" => panic!("daemon refused the drill job: {record:?}"),
            _ => {}
        }
        if checkpointed {
            // Keep draining delivered-but-unread records until EOF.
            while let Some(r) = read_record(&mut reader) {
                if record_type(&r) == "job_output" {
                    pre.push(output_line(&r));
                }
            }
            break;
        }
    }
    assert!(checkpointed, "stream ended before any checkpoint_written record");
    wait_exit(&mut daemon1);
    assert!(
        pre.len() as u64 >= CHECKPOINT_EVERY,
        "client saw {} records but the checkpoint counted {CHECKPOINT_EVERY}: \
         the durable-watermark FIFO ordering is broken",
        pre.len()
    );

    // Phase 2: restart with --resume, reattach, and collect the rest.
    let (mut daemon2, socket) = spawn_daemon(&dir, true);
    let (mut reader, mut writer) = connect(&socket);
    send(&mut writer, r#"{"type":"open_session","session":"drill"}"#);
    let mut emitted: Option<u64> = None;
    let mut post: Vec<String> = Vec::new();
    while let Some(record) = read_record(&mut reader) {
        match record_type(&record).as_str() {
            "resumed" => {
                emitted = record.get("emitted").and_then(Value::as_u64);
            }
            "job_output" => post.push(output_line(&record)),
            "job_done" => break,
            "job_failed" | "error" => panic!("resumed job failed: {record:?}"),
            _ => {}
        }
    }
    let emitted = emitted.expect("no resumed record before the replayed output") as usize;
    assert_eq!(emitted as u64, CHECKPOINT_EVERY, "checkpoint watermark");

    // Orderly shutdown: close the session, then drain the daemon.
    send(&mut writer, r#"{"type":"close_session","session":"drill"}"#);
    while let Some(record) = read_record(&mut reader) {
        if record_type(&record) == "session_closed" {
            break;
        }
    }
    send(&mut writer, r#"{"type":"shutdown"}"#);
    wait_exit(&mut daemon2);

    // The restarted daemon announced the resumption before serving.
    let announce = std::fs::read_to_string(dir.join("daemon2.out")).unwrap();
    assert!(
        announce.contains("daemon_resumed"),
        "daemon2 stdout missing the daemon_resumed record: {announce:?}"
    );

    // Stitch: first `emitted` pre-crash lines, then everything the
    // resumed daemon streamed. Byte-identical to the one-shot run.
    pre.truncate(emitted);
    let stitched: Vec<String> = pre.into_iter().chain(post).collect();
    assert_eq!(stitched, expected, "stitched stream diverged from the one-shot run");

    let _ = std::fs::remove_dir_all(&dir);
}
