//! Thread-local bridge from the CLI's record emission to a daemon
//! session's [`JobSink`].
//!
//! When `pacmand` runs a client-submitted command line through
//! `dispatch`, the command's code path is exactly the one-shot CLI's —
//! same `Emitter`, same records. The only difference is an installed
//! job context: every JSONL line the `Emitter` produces is also teed,
//! verbatim, onto the session stream as a `job_output` record, and
//! campaign drivers stream `job_progress` as shards merge. With no
//! context installed (the ordinary CLI process), every hook here is a
//! no-op costing one thread-local read.
//!
//! The context is thread-local on purpose: daemon workers run jobs
//! from different sessions concurrently in one process, and a sink
//! installed per worker thread cannot leak records across tenants.

use std::cell::RefCell;

use pacman_daemon::JobSink;

thread_local! {
    static ACTIVE: RefCell<Option<JobSink>> = const { RefCell::new(None) };
}

/// Restores the previous job context when dropped, so a job's sink
/// never outlives its dispatch even on the error path.
pub struct Guard {
    prev: Option<JobSink>,
}

impl Drop for Guard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ACTIVE.with(|a| *a.borrow_mut() = prev);
    }
}

/// Installs `sink` as this thread's job context for the guard's
/// lifetime.
pub fn install(sink: JobSink) -> Guard {
    let prev = ACTIVE.with(|a| a.borrow_mut().replace(sink));
    Guard { prev }
}

/// Whether a job context is installed on this thread.
pub fn active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Tees one emitted JSONL line (trailing newline tolerated) onto the
/// session stream; no-op without a context.
pub fn tee(line: &str) {
    ACTIVE.with(|a| {
        if let Some(sink) = a.borrow().as_ref() {
            sink.record(line.trim_end());
        }
    });
}

/// Streams a shard-merge progress notification; no-op without a
/// context.
pub fn progress(shard: usize, shards: usize, completed: usize, retries: u64) {
    ACTIVE.with(|a| {
        if let Some(sink) = a.borrow().as_ref() {
            sink.progress(shard, shards, completed, retries);
        }
    });
}
