//! A small dependency-free argument parser for the CLI.

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` / `--flag` options.
#[derive(Clone, Eq, PartialEq, Debug, Default)]
pub struct Args {
    /// The subcommand (first non-option token).
    pub command: Option<String>,
    /// An optional positional sub-argument after the subcommand
    /// (e.g. the experiment name in `profile oracle`). Commands that
    /// take no subject reject it during option validation.
    pub subject: Option<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Parse errors.
#[derive(Clone, Eq, PartialEq, Debug)]
pub enum ArgsError {
    /// `--key` given where a value was expected to follow but another
    /// option appeared.
    MissingValue(String),
    /// A positional argument after the subcommand.
    UnexpectedPositional(String),
    /// An option's value failed to parse.
    BadValue {
        /// The option name.
        key: String,
        /// The raw value.
        value: String,
    },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(k) => write!(f, "option --{k} expects a value"),
            ArgsError::UnexpectedPositional(p) => write!(f, "unexpected argument '{p}'"),
            ArgsError::BadValue { key, value } => {
                write!(f, "option --{key} got unparsable value '{value}'")
            }
        }
    }
}

impl std::error::Error for ArgsError {}

/// Options that never take a value.
const FLAG_NAMES: &[&str] = &[
    "quiet-noise",
    "full",
    "track-stack",
    "json",
    "help",
    "stdio",
    "shutdown",
    "resume",
    "attach",
];

impl Args {
    /// Parses a token stream (without the program name).
    ///
    /// # Errors
    ///
    /// See [`ArgsError`].
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgsError> {
        let mut out = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if FLAG_NAMES.contains(&name) {
                    out.flags.push(name.to_string());
                } else {
                    let value = iter
                        .next()
                        .filter(|v| !v.starts_with("--"))
                        .ok_or_else(|| ArgsError::MissingValue(name.to_string()))?;
                    out.options.insert(name.to_string(), value);
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else if out.subject.is_none() {
                out.subject = Some(tok);
            } else {
                return Err(ArgsError::UnexpectedPositional(tok));
            }
        }
        Ok(out)
    }

    /// Whether `--name` was given (flags only).
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Names of every `--key value` option present (per-command
    /// validation rejects names the command does not define).
    pub fn option_names(&self) -> impl Iterator<Item = &str> {
        self.options.keys().map(String::as_str)
    }

    /// Names of every bare flag present.
    pub fn flag_names(&self) -> impl Iterator<Item = &str> {
        self.flags.iter().map(String::as_str)
    }

    /// A parsed numeric option with default.
    ///
    /// # Errors
    ///
    /// [`ArgsError::BadValue`] if present but unparsable.
    pub fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgsError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgsError::BadValue { key: name.to_string(), value: v.clone() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgsError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_options_and_flags() {
        let a = parse("oracle --trials 50 --seed 9 --quiet-noise").unwrap();
        assert_eq!(a.command.as_deref(), Some("oracle"));
        assert_eq!(a.get_num("trials", 0usize).unwrap(), 50);
        assert_eq!(a.get_num("seed", 1u64).unwrap(), 9);
        assert!(a.flag("quiet-noise"));
        assert!(!a.flag("full"));
    }

    #[test]
    fn telemetry_flags_parse() {
        let a = parse("oracle --json --metrics-out out.jsonl --trials 3").unwrap();
        assert!(a.flag("json"));
        assert_eq!(a.get("metrics-out"), Some("out.jsonl"));
        assert_eq!(a.get_num("trials", 0usize).unwrap(), 3);
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("census").unwrap();
        assert_eq!(a.get_num("functions", 123usize).unwrap(), 123);
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            parse("oracle --trials --quiet-noise"),
            Err(ArgsError::MissingValue("trials".into()))
        );
        assert_eq!(parse("oracle --trials"), Err(ArgsError::MissingValue("trials".into())));
    }

    #[test]
    fn bad_value_is_an_error() {
        let a = parse("oracle --trials banana").unwrap();
        assert!(matches!(a.get_num("trials", 0usize), Err(ArgsError::BadValue { .. })));
    }

    #[test]
    fn one_subject_parses_and_a_second_positional_is_rejected() {
        let a = parse("profile oracle --top 5").unwrap();
        assert_eq!(a.command.as_deref(), Some("profile"));
        assert_eq!(a.subject.as_deref(), Some("oracle"));
        assert_eq!(a.get_num("top", 0usize).unwrap(), 5);
        assert!(matches!(parse("oracle stray extra"), Err(ArgsError::UnexpectedPositional(_))));
    }

    #[test]
    fn option_and_flag_names_enumerate() {
        let a = parse("oracle --trials 3 --channel data --json --quiet-noise").unwrap();
        let mut opts: Vec<&str> = a.option_names().collect();
        opts.sort_unstable();
        assert_eq!(opts, ["channel", "trials"]);
        let flags: Vec<&str> = a.flag_names().collect();
        assert_eq!(flags, ["json", "quiet-noise"]);
    }

    #[test]
    fn empty_invocation_has_no_command() {
        let a = parse("").unwrap();
        assert_eq!(a.command, None);
    }
}
