//! `pacman-cli` — drive the PACMAN reproduction from the command line.
//!
//! ```text
//! pacman-cli <command> [options]
//!
//! commands:
//!   oracle       run the §8.1 PAC oracle and print verdicts
//!   brute        brute-force a PAC over a candidate window (§8.2)
//!   jump2win     the §8.3 end-to-end control-flow hijack
//!   sweep        the §7 reverse-engineering sweeps (Figures 5–6)
//!   census       the §4.3 gadget census over a synthetic image
//!   conform      differential conformance fuzzing of the speculative
//!                core against the architectural reference machine
//!   mitigations  the §9 countermeasure matrix
//!   os           PacmanOS (§6.2) bare-metal experiments
//!   timeline     print the Figure 3 speculation-event timelines
//!   verify       diff `BENCH_<id>.json` artefacts against the paper claims
//!
//! common options:
//!   --seed N          kernel key seed (default 0xA11CE)
//!   --quiet-noise     disable the OS-noise model
//!   --channel C       oracle channel: data | instr | cache (default data)
//!   --trials N        oracle trials per class (default 50)
//!   --window N        brute/jump2win candidate-window width (default 512;
//!                     --full sweeps all 65536)
//!   --functions N     census image size (default 2000)
//!   --track-stack     census: enable stack-slot dataflow
//!   --dir D           verify: artefact directory (default `$PACMAN_BENCH_DIR`,
//!                     then the current directory)
//!   --json            emit JSONL records on stdout (one per trial/event,
//!                     final metrics snapshot last)
//!   --metrics-out F   write the same JSONL stream to file F
//! ```
//!
//! Every command speaks JSONL when `--json` or `--metrics-out` is given.
//! `verify` loads the `BENCH_<id>.json` artefacts a `cargo bench` run
//! wrote, diffs each field against the paper's claims with per-metric
//! tolerance bands (see `pacman_bench::claims`), prints the pass/fail
//! matrix, and exits nonzero if anything is out of tolerance or missing.

mod args;
mod commands;
mod jobctx;
mod service;

use args::Args;

fn main() {
    let parsed = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run 'pacman-cli --help' for usage");
            std::process::exit(2);
        }
    };
    if parsed.flag("help") || parsed.command.is_none() {
        print!("{}", commands::USAGE);
        return;
    }
    let code = match commands::dispatch(&parsed) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    };
    std::process::exit(code);
}
