//! Subcommand implementations.

use std::error::Error;

use pacman_core::brute::BruteForcer;
use pacman_core::cache_probe::CacheDataPacOracle;
use pacman_core::jump2win::Jump2Win;
use pacman_core::oracle::{DataPacOracle, InstrPacOracle, PacOracle};
use pacman_core::report::Table;
use pacman_core::sweep::{data_tlb_sweep, derive_hierarchy, experiment_machine, itlb_sweep};
use pacman_core::{System, SystemConfig};
use pacman_gadget::{scan_image, synthesize, ImageSpec, ScanConfig};
use pacman_isa::ptr::with_pac_field;
use pacman_isa::PacKey;
use pacman_mitigations::evaluate_all;
use pacman_os::experiments::{MsrInventory, TimerResolution, TlbParameterSearch};
use pacman_os::{BareMetal, Runner};

use crate::args::Args;

/// The usage text (also shown for `--help`).
pub const USAGE: &str = "\
pacman-cli - drive the PACMAN (ISCA 2022) reproduction

usage: pacman-cli <command> [options]

commands:
  oracle       run the section-8.1 PAC oracle and print verdicts
  brute        brute-force a PAC over a candidate window (section 8.2)
  jump2win     the section-8.3 end-to-end control-flow hijack
  sweep        the section-7 reverse-engineering sweeps (Figures 5-6)
  census       the section-4.3 gadget census over a synthetic image
  mitigations  the section-9 countermeasure matrix
  os           PacmanOS (section 6.2) bare-metal experiments
  timeline     print the Figure 3 speculation-event timelines

options:
  --seed N        kernel key seed          --quiet-noise   disable OS noise
  --channel C     data|instr|cache         --trials N      oracle trials
  --window N      brute candidate window   --full          sweep all 65536
  --functions N   census image size        --track-stack   deep census dataflow
  --help          this text
";

type CliResult = Result<(), Box<dyn Error>>;

/// Routes a parsed command line to its implementation.
///
/// # Errors
///
/// Any subcommand failure (bad options, oracle errors, failed attacks).
pub fn dispatch(args: &Args) -> CliResult {
    match args.command.as_deref() {
        Some("oracle") => cmd_oracle(args),
        Some("brute") => cmd_brute(args),
        Some("jump2win") => cmd_jump2win(args),
        Some("sweep") => cmd_sweep(args),
        Some("census") => cmd_census(args),
        Some("mitigations") => cmd_mitigations(args),
        Some("os") => cmd_os(args),
        Some("timeline") => cmd_timeline(args),
        Some(other) => Err(format!("unknown command '{other}' (try --help)").into()),
        None => unreachable!("main prints usage for empty command"),
    }
}

fn boot(args: &Args) -> Result<System, Box<dyn Error>> {
    let mut cfg = SystemConfig::default();
    cfg.kernel_seed = args.get_num("seed", 0xA11CEu64)?;
    if args.flag("quiet-noise") {
        cfg.machine.os_noise = 0.0;
    }
    Ok(System::boot(cfg))
}

fn make_oracle(args: &Args, sys: &mut System) -> Result<Box<dyn PacOracle>, Box<dyn Error>> {
    Ok(match args.get("channel").unwrap_or("data") {
        "data" => Box::new(DataPacOracle::new(sys)?),
        "instr" => Box::new(InstrPacOracle::new(sys)?),
        "cache" => Box::new(CacheDataPacOracle::new(sys)?),
        other => return Err(format!("unknown channel '{other}' (data|instr|cache)").into()),
    })
}

fn cmd_oracle(args: &Args) -> CliResult {
    let trials: usize = args.get_num("trials", 50)?;
    let mut sys = boot(args)?;
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set)
        + if args.get("channel") == Some("cache") {
            pacman_core::cache_probe::quiet_target_offset()
        } else {
            0
        };
    let true_pac = sys.true_pac(target);
    let mut oracle = make_oracle(args, &mut sys)?;
    println!("target {target:#x} (dTLB set {set}), {trials} trials per class");
    let mut good = 0usize;
    let mut clean = 0usize;
    for i in 0..trials {
        if oracle.test_pac(&mut sys, target, true_pac)?.is_correct() {
            good += 1;
        }
        let wrong = true_pac ^ (1 + i as u16);
        if !oracle.test_pac(&mut sys, target, wrong)?.is_correct() {
            clean += 1;
        }
    }
    println!("correct PAC detected:   {good}/{trials}");
    println!("wrong PAC rejected:     {clean}/{trials}");
    println!("kernel crashes:         {}", sys.kernel.crash_count());
    Ok(())
}

fn cmd_brute(args: &Args) -> CliResult {
    let window: u32 = if args.flag("full") { 65536 } else { args.get_num("window", 512)? };
    let mut sys = boot(args)?;
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target); // positions the demo window
    let start = true_pac.wrapping_sub((window / 2) as u16);
    let oracle = DataPacOracle::new(&mut sys)?.with_samples(5);
    let mut bf = BruteForcer::new(oracle);
    println!("sweeping {window} candidates for the PAC of {target:#x} ...");
    let outcome =
        bf.brute(&mut sys, target, (0..window).map(|i| start.wrapping_add(i as u16)))?;
    match outcome.found {
        Some(p) => println!("FOUND: PAC = {p:#06x} after {} guesses", outcome.guesses_tested),
        None => println!("no PAC found in the window ({} guesses)", outcome.guesses_tested),
    }
    let clock = sys.machine.config().clock_hz;
    println!("simulated cost: {:.2} ms/guess, crashes: {}", outcome.ms_per_guess(clock), outcome.crashes);
    Ok(())
}

fn cmd_jump2win(args: &Args) -> CliResult {
    let window: u32 = if args.flag("full") { 65536 } else { args.get_num("window", 512)? };
    let mut sys = boot(args)?;
    let mut driver = Jump2Win::new().with_samples(3).with_train_iters(16);
    if window < 65536 {
        let t1 = sys.true_pac_with_salt(PacKey::Ia, sys.cpp.win_fn);
        let t2 = sys.true_pac_with_salt(PacKey::Da, sys.cpp.obj1);
        let centre = |t: u16| (t.wrapping_sub((window / 2) as u16), window);
        driver.phase_windows = Some([centre(t1), centre(t2)]);
    }
    let report = driver.run(&mut sys)?;
    println!("PAC(win, IA)    = {:#06x}", report.pac_win);
    println!("PAC(vtable, DA) = {:#06x}", report.pac_vtable);
    println!("guesses tested  = {}", report.guesses_tested);
    println!("hijacked        = {}", report.hijacked);
    println!("kernel crashes  = {}", report.crashes);
    if !report.hijacked {
        return Err("control flow was not hijacked".into());
    }
    Ok(())
}

fn cmd_sweep(_args: &Args) -> CliResult {
    let mut m = experiment_machine();
    println!("Figure 5(a) knees:");
    let data = data_tlb_sweep(&mut m, &[256, 2048])?;
    println!("  dTLB   (stride 256 x 16KB): N = {:?}", data[0].knee_above(90));
    println!("  L2 TLB (stride 2048 x 16KB): N = {:?}", data[1].knee_above(110));
    let instr = itlb_sweep(&mut m, &[32])?;
    println!("  iTLB   (stride 32 x 16KB, drop): N = {:?}", instr[0].knee_below(90));
    let mut m2 = experiment_machine();
    let f = derive_hierarchy(&mut m2)?;
    println!(
        "Figure 6: iTLB {}w x 32s | dTLB {}w x 256s | L2 {}w x 2048s | victim migration: {}",
        f.itlb_ways, f.dtlb_ways, f.l2_ways, f.itlb_victims_visible_to_loads
    );
    Ok(())
}

fn cmd_census(args: &Args) -> CliResult {
    let functions: usize = args.get_num("functions", 2000)?;
    let image = synthesize(&ImageSpec { functions, seed: 0xC0DE, ..ImageSpec::default() });
    let config = ScanConfig { track_stack: args.flag("track-stack"), ..ScanConfig::default() };
    let report = scan_image(&image.bytes, &config);
    println!("image: {} functions, {} instructions", functions, image.instructions);
    println!("gadgets: {} total ({} data, {} instruction)", report.total(), report.data_count(), report.instruction_count());
    println!("mean branch->transmit distance: {:.1}", report.mean_distance());
    Ok(())
}

fn cmd_mitigations(_args: &Args) -> CliResult {
    let evals = evaluate_all();
    let baseline = evals[0].benign_cycles as f64;
    let mut t = Table::new("mitigation matrix", &["mitigation", "surface", "benign overhead"]);
    for e in &evals {
        let overhead = 100.0 * (e.benign_cycles as f64 - baseline) / baseline;
        t.row(&[
            format!("{:?}", e.report.mitigation),
            format!("{:?}", e.surface),
            format!("{overhead:+.1}%"),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn cmd_os(_args: &Args) -> CliResult {
    let mut runner = Runner::new(BareMetal::boot_default());
    print!("{}", runner.run(&mut MsrInventory::new()));
    print!("{}", runner.run(&mut TimerResolution::new()));
    print!("{}", runner.run(&mut TlbParameterSearch::new()));
    Ok(())
}

fn cmd_timeline(args: &Args) -> CliResult {
    let mut sys = boot(args)?;
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    for (label, pac) in [("CORRECT", true_pac), ("WRONG", true_pac ^ 5)] {
        for _ in 0..16 {
            sys.kernel.syscall(&mut sys.machine, sys.gadget.instr_gadget, &[0, 0, 1])?;
        }
        let mut payload = [0u8; 24];
        payload[16..].copy_from_slice(&with_pac_field(target, pac).to_le_bytes());
        let buf = sys.write_payload(&payload);
        sys.machine.trace.enable();
        sys.kernel.syscall(&mut sys.machine, sys.gadget.instr_gadget, &[buf, 24, 0])?;
        let events = sys.machine.trace.take();
        sys.machine.trace.disable();
        println!("--- instruction gadget, {label} PAC ---");
        for e in events.iter().rev().take(8).rev() {
            println!("  {e}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).expect("parses")
    }

    #[test]
    fn unknown_commands_error() {
        assert!(dispatch(&parse("frobnicate")).is_err());
    }

    #[test]
    fn oracle_command_runs_end_to_end() {
        dispatch(&parse("oracle --trials 2 --quiet-noise")).expect("oracle runs");
    }

    #[test]
    fn oracle_cache_channel_runs() {
        dispatch(&parse("oracle --trials 1 --channel cache --quiet-noise")).expect("cache oracle");
    }

    #[test]
    fn oracle_rejects_bad_channels() {
        assert!(dispatch(&parse("oracle --trials 1 --channel pigeon --quiet-noise")).is_err());
    }

    #[test]
    fn brute_command_finds_the_pac_in_a_small_window() {
        dispatch(&parse("brute --window 8 --quiet-noise")).expect("brute runs");
    }

    #[test]
    fn jump2win_command_succeeds_with_a_window() {
        dispatch(&parse("jump2win --window 12 --quiet-noise")).expect("jump2win runs");
    }

    #[test]
    fn census_command_runs() {
        dispatch(&parse("census --functions 50 --track-stack")).expect("census runs");
    }

    #[test]
    fn timeline_command_runs() {
        dispatch(&parse("timeline --quiet-noise")).expect("timeline runs");
    }
}
