//! Subcommand implementations.

use std::error::Error;

use pacman_core::brute::BruteForcer;
use pacman_core::cache_probe::CacheDataPacOracle;
use pacman_core::jump2win::Jump2Win;
use pacman_core::oracle::{DataPacOracle, InstrPacOracle, PacOracle};
use pacman_core::report::Table;
use pacman_core::sweep::{data_tlb_sweep, derive_hierarchy, experiment_machine, itlb_sweep};
use pacman_core::telemetry::{recorded_test_pac, TrialLog};
use pacman_core::{System, SystemConfig};
use pacman_gadget::{scan_image, synthesize, ImageSpec, ScanConfig};
use pacman_isa::ptr::with_pac_field;
use pacman_isa::PacKey;
use pacman_mitigations::evaluate_all;
use pacman_os::experiments::{MsrInventory, TimerResolution, TlbParameterSearch};
use pacman_os::{BareMetal, Runner};
use pacman_telemetry::json::{to_jsonl_line, Value};
use pacman_telemetry::Snapshot;

use crate::args::Args;

/// The usage text (also shown for `--help`).
pub const USAGE: &str = "\
pacman-cli - drive the PACMAN (ISCA 2022) reproduction

usage: pacman-cli <command> [options]

commands:
  oracle       run the section-8.1 PAC oracle and print verdicts
  brute        brute-force a PAC over a candidate window (section 8.2)
  jump2win     the section-8.3 end-to-end control-flow hijack
  sweep        the section-7 reverse-engineering sweeps (Figures 5-6)
  census       the section-4.3 gadget census over a synthetic image
  mitigations  the section-9 countermeasure matrix
  os           PacmanOS (section 6.2) bare-metal experiments
  timeline     print the Figure 3 speculation-event timelines

options:
  --seed N        kernel key seed          --quiet-noise   disable OS noise
  --channel C     data|instr|cache         --trials N      oracle trials
  --window N      brute candidate window   --full          sweep all 65536
  --functions N   census image size        --track-stack   deep census dataflow
  --json          emit JSONL on stdout     --metrics-out F write JSONL to file F
  --help          this text

With --json (or --metrics-out) the oracle, brute, sweep and timeline
commands emit one JSON record per trial/event followed by a final
'metrics' record holding the full counter/histogram snapshot.
";

type CliResult = Result<(), Box<dyn Error>>;

/// Routes a parsed command line to its implementation.
///
/// # Errors
///
/// Any subcommand failure (bad options, oracle errors, failed attacks).
pub fn dispatch(args: &Args) -> CliResult {
    match args.command.as_deref() {
        Some("oracle") => cmd_oracle(args),
        Some("brute") => cmd_brute(args),
        Some("jump2win") => cmd_jump2win(args),
        Some("sweep") => cmd_sweep(args),
        Some("census") => cmd_census(args),
        Some("mitigations") => cmd_mitigations(args),
        Some("os") => cmd_os(args),
        Some("timeline") => cmd_timeline(args),
        Some(other) => Err(format!("unknown command '{other}' (try --help)").into()),
        None => unreachable!("main prints usage for empty command"),
    }
}

fn boot(args: &Args) -> Result<System, Box<dyn Error>> {
    let mut cfg =
        SystemConfig { kernel_seed: args.get_num("seed", 0xA11CEu64)?, ..SystemConfig::default() };
    if args.flag("quiet-noise") {
        cfg.machine.os_noise = 0.0;
    }
    Ok(System::boot(cfg))
}

/// JSONL sink for `--json` (stdout) and `--metrics-out` (file). Inactive
/// when neither was requested, at the cost of one branch per record.
struct Emitter {
    json_stdout: bool,
    out_path: Option<String>,
    lines: Vec<String>,
}

impl Emitter {
    fn from_args(args: &Args) -> Self {
        Self {
            json_stdout: args.flag("json"),
            out_path: args.get("metrics-out").map(String::from),
            lines: Vec::new(),
        }
    }

    /// Whether any JSONL output was requested.
    fn active(&self) -> bool {
        self.json_stdout || self.out_path.is_some()
    }

    /// Whether the human-readable report should be suppressed (stdout is
    /// reserved for JSONL).
    fn quiet(&self) -> bool {
        self.json_stdout
    }

    fn record(&mut self, value: &Value) {
        if !self.active() {
            return;
        }
        let line = to_jsonl_line(value);
        if self.json_stdout {
            print!("{line}");
        }
        self.lines.push(line);
    }

    /// Appends the final `metrics` record built from `snap`, then writes
    /// the accumulated stream to `--metrics-out` if given.
    fn finish(mut self, snap: &Snapshot) -> Result<(), Box<dyn Error>> {
        let mut fields = vec![("record".to_string(), Value::str("metrics"))];
        if let Value::Object(rest) = snap.to_json() {
            fields.extend(rest);
        }
        self.record(&Value::Object(fields));
        if let Some(path) = &self.out_path {
            std::fs::write(path, self.lines.concat())?;
        }
        Ok(())
    }
}

fn make_oracle(args: &Args, sys: &mut System) -> Result<Box<dyn PacOracle>, Box<dyn Error>> {
    Ok(match args.get("channel").unwrap_or("data") {
        "data" => Box::new(DataPacOracle::new(sys)?),
        "instr" => Box::new(InstrPacOracle::new(sys)?),
        "cache" => Box::new(CacheDataPacOracle::new(sys)?),
        other => return Err(format!("unknown channel '{other}' (data|instr|cache)").into()),
    })
}

fn cmd_oracle(args: &Args) -> CliResult {
    let trials: usize = args.get_num("trials", 50)?;
    let mut emit = Emitter::from_args(args);
    let mut sys = boot(args)?;
    if emit.active() {
        sys.telemetry.set_enabled(true);
    }
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set)
        + if args.get("channel") == Some("cache") {
            pacman_core::cache_probe::quiet_target_offset()
        } else {
            0
        };
    let true_pac = sys.true_pac(target);
    let mut oracle = make_oracle(args, &mut sys)?;
    let mut log = if emit.active() { TrialLog::new() } else { TrialLog::disabled() };
    if !emit.quiet() {
        println!("target {target:#x} (dTLB set {set}), {trials} trials per class");
    }
    let mut good = 0usize;
    let mut clean = 0usize;
    for i in 0..trials {
        let v = recorded_test_pac(
            oracle.as_mut(),
            &mut sys,
            &mut log,
            target,
            true_pac,
            Some(true_pac),
        )?;
        if v.is_correct() {
            good += 1;
        }
        let wrong = true_pac ^ (1 + i as u16);
        let v =
            recorded_test_pac(oracle.as_mut(), &mut sys, &mut log, target, wrong, Some(true_pac))?;
        if !v.is_correct() {
            clean += 1;
        }
    }
    for r in log.records() {
        emit.record(&r.to_json());
    }
    if !emit.quiet() {
        println!("correct PAC detected:   {good}/{trials}");
        println!("wrong PAC rejected:     {clean}/{trials}");
        println!("kernel crashes:         {}", sys.kernel.crash_count());
    }
    emit.finish(&sys.telemetry_snapshot())
}

fn cmd_brute(args: &Args) -> CliResult {
    let window: u32 = if args.flag("full") { 65536 } else { args.get_num("window", 512)? };
    let mut emit = Emitter::from_args(args);
    let mut sys = boot(args)?;
    if emit.active() {
        sys.telemetry.set_enabled(true);
    }
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target); // positions the demo window
    let start = true_pac.wrapping_sub((window / 2) as u16);
    let oracle = DataPacOracle::new(&mut sys)?.with_samples(5);
    let mut bf = BruteForcer::new(oracle);
    if !emit.quiet() {
        println!("sweeping {window} candidates for the PAC of {target:#x} ...");
    }
    let outcome = bf.brute(&mut sys, target, (0..window).map(|i| start.wrapping_add(i as u16)))?;
    let clock = sys.machine.config().clock_hz;
    emit.record(&Value::Object(vec![
        ("record".into(), Value::str("brute")),
        ("target".into(), Value::UInt(target)),
        (
            "found".into(),
            match outcome.found {
                Some(p) => Value::UInt(u64::from(p)),
                None => Value::Null,
            },
        ),
        ("guesses_tested".into(), Value::UInt(outcome.guesses_tested)),
        ("syscalls".into(), Value::UInt(outcome.syscalls)),
        ("cycles".into(), Value::UInt(outcome.cycles)),
        ("crashes".into(), Value::UInt(outcome.crashes)),
        ("ms_per_guess".into(), Value::Float(outcome.ms_per_guess(clock))),
    ]));
    if !emit.quiet() {
        match outcome.found {
            Some(p) => println!("FOUND: PAC = {p:#06x} after {} guesses", outcome.guesses_tested),
            None => println!("no PAC found in the window ({} guesses)", outcome.guesses_tested),
        }
        println!(
            "simulated cost: {:.2} ms/guess, crashes: {}",
            outcome.ms_per_guess(clock),
            outcome.crashes
        );
    }
    emit.finish(&sys.telemetry_snapshot())
}

fn cmd_jump2win(args: &Args) -> CliResult {
    let window: u32 = if args.flag("full") { 65536 } else { args.get_num("window", 512)? };
    let mut sys = boot(args)?;
    let mut driver = Jump2Win::new().with_samples(3).with_train_iters(16);
    if window < 65536 {
        let t1 = sys.true_pac_with_salt(PacKey::Ia, sys.cpp.win_fn);
        let t2 = sys.true_pac_with_salt(PacKey::Da, sys.cpp.obj1);
        let centre = |t: u16| (t.wrapping_sub((window / 2) as u16), window);
        driver.phase_windows = Some([centre(t1), centre(t2)]);
    }
    let report = driver.run(&mut sys)?;
    println!("PAC(win, IA)    = {:#06x}", report.pac_win);
    println!("PAC(vtable, DA) = {:#06x}", report.pac_vtable);
    println!("guesses tested  = {}", report.guesses_tested);
    println!("hijacked        = {}", report.hijacked);
    println!("kernel crashes  = {}", report.crashes);
    if !report.hijacked {
        return Err("control flow was not hijacked".into());
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> CliResult {
    let mut emit = Emitter::from_args(args);
    let mut m = experiment_machine();
    if !emit.quiet() {
        println!("Figure 5(a) knees:");
    }
    let data = data_tlb_sweep(&mut m, &[256, 2048])?;
    let instr = itlb_sweep(&mut m, &[32])?;
    for series in data.iter().chain(instr.iter()) {
        emit.record(&Value::Object(vec![
            ("record".into(), Value::str("sweep_series")),
            ("label".into(), Value::str(series.label.clone())),
            ("stride".into(), Value::UInt(series.stride)),
            (
                "points".into(),
                Value::Array(
                    series
                        .points
                        .iter()
                        .map(|p| {
                            Value::Object(vec![
                                ("n".into(), Value::UInt(p.n as u64)),
                                ("median".into(), Value::UInt(p.median)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }
    if !emit.quiet() {
        println!("  dTLB   (stride 256 x 16KB): N = {:?}", data[0].knee_above(90));
        println!("  L2 TLB (stride 2048 x 16KB): N = {:?}", data[1].knee_above(110));
        println!("  iTLB   (stride 32 x 16KB, drop): N = {:?}", instr[0].knee_below(90));
    }
    let mut m2 = experiment_machine();
    let f = derive_hierarchy(&mut m2)?;
    emit.record(&Value::Object(vec![
        ("record".into(), Value::str("hierarchy")),
        ("itlb_ways".into(), Value::UInt(f.itlb_ways as u64)),
        ("dtlb_ways".into(), Value::UInt(f.dtlb_ways as u64)),
        ("l2_ways".into(), Value::UInt(f.l2_ways as u64)),
        ("itlb_victims_visible_to_loads".into(), Value::Bool(f.itlb_victims_visible_to_loads)),
    ]));
    if !emit.quiet() {
        println!(
            "Figure 6: iTLB {}w x 32s | dTLB {}w x 256s | L2 {}w x 2048s | victim migration: {}",
            f.itlb_ways, f.dtlb_ways, f.l2_ways, f.itlb_victims_visible_to_loads
        );
    }
    // The sweeps drive the machines directly (no System), so export their
    // microarchitectural totals by hand for the final metrics record.
    let mut reg = pacman_telemetry::Registry::new();
    m.export_telemetry(&mut reg);
    m2.export_telemetry(&mut reg);
    emit.finish(&reg.snapshot())
}

fn cmd_census(args: &Args) -> CliResult {
    let functions: usize = args.get_num("functions", 2000)?;
    let image = synthesize(&ImageSpec { functions, seed: 0xC0DE, ..ImageSpec::default() });
    let config = ScanConfig { track_stack: args.flag("track-stack"), ..ScanConfig::default() };
    let report = scan_image(&image.bytes, &config);
    println!("image: {} functions, {} instructions", functions, image.instructions);
    println!(
        "gadgets: {} total ({} data, {} instruction)",
        report.total(),
        report.data_count(),
        report.instruction_count()
    );
    println!("mean branch->transmit distance: {:.1}", report.mean_distance());
    Ok(())
}

fn cmd_mitigations(_args: &Args) -> CliResult {
    let evals = evaluate_all();
    let baseline = evals[0].benign_cycles as f64;
    let mut t = Table::new("mitigation matrix", &["mitigation", "surface", "benign overhead"]);
    for e in &evals {
        let overhead = 100.0 * (e.benign_cycles as f64 - baseline) / baseline;
        t.row(&[
            format!("{:?}", e.report.mitigation),
            format!("{:?}", e.surface),
            format!("{overhead:+.1}%"),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn cmd_os(_args: &Args) -> CliResult {
    let mut runner = Runner::new(BareMetal::boot_default());
    print!("{}", runner.run(&mut MsrInventory::new()));
    print!("{}", runner.run(&mut TimerResolution::new()));
    print!("{}", runner.run(&mut TlbParameterSearch::new()));
    Ok(())
}

fn cmd_timeline(args: &Args) -> CliResult {
    let mut emit = Emitter::from_args(args);
    let mut sys = boot(args)?;
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let sc = sys.gadget.instr_gadget;
    for (label, pac) in [("CORRECT", true_pac), ("WRONG", true_pac ^ 5)] {
        for _ in 0..16 {
            sys.kernel.syscall(&mut sys.machine, sc, &[0, 0, 1])?;
        }
        let mut payload = [0u8; 24];
        payload[16..].copy_from_slice(&with_pac_field(target, pac).to_le_bytes());
        let buf = sys.write_payload(&payload);
        // Scoped tracing: enabled for exactly this syscall, previous
        // recorder state restored afterwards.
        let kernel = &mut sys.kernel;
        let (result, events) = sys.machine.with_trace(|m| kernel.syscall(m, sc, &[buf, 24, 0]));
        result?;
        if !emit.quiet() {
            println!("--- instruction gadget, {label} PAC ---");
        }
        for e in events.iter().rev().take(8).rev() {
            emit.record(&Value::Object(vec![
                ("record".into(), Value::str("spec_event")),
                ("guess".into(), Value::str(label)),
                ("event".into(), Value::str(e.to_string())),
            ]));
            if !emit.quiet() {
                println!("  {e}");
            }
        }
    }
    emit.finish(&sys.telemetry_snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).expect("parses")
    }

    #[test]
    fn unknown_commands_error() {
        assert!(dispatch(&parse("frobnicate")).is_err());
    }

    #[test]
    fn oracle_command_runs_end_to_end() {
        dispatch(&parse("oracle --trials 2 --quiet-noise")).expect("oracle runs");
    }

    #[test]
    fn oracle_cache_channel_runs() {
        dispatch(&parse("oracle --trials 1 --channel cache --quiet-noise")).expect("cache oracle");
    }

    #[test]
    fn oracle_rejects_bad_channels() {
        assert!(dispatch(&parse("oracle --trials 1 --channel pigeon --quiet-noise")).is_err());
    }

    #[test]
    fn brute_command_finds_the_pac_in_a_small_window() {
        dispatch(&parse("brute --window 8 --quiet-noise")).expect("brute runs");
    }

    #[test]
    fn jump2win_command_succeeds_with_a_window() {
        dispatch(&parse("jump2win --window 12 --quiet-noise")).expect("jump2win runs");
    }

    #[test]
    fn census_command_runs() {
        dispatch(&parse("census --functions 50 --track-stack")).expect("census runs");
    }

    #[test]
    fn timeline_command_runs() {
        dispatch(&parse("timeline --quiet-noise")).expect("timeline runs");
    }

    #[test]
    fn oracle_metrics_out_writes_valid_jsonl() {
        let path = std::env::temp_dir().join("pacman_cli_oracle_metrics_test.jsonl");
        let path_str = path.to_str().expect("utf-8 temp path");
        dispatch(&parse(&format!("oracle --trials 2 --quiet-noise --metrics-out {path_str}")))
            .expect("oracle runs");
        let text = std::fs::read_to_string(&path).expect("metrics file written");
        std::fs::remove_file(&path).ok();
        let records = pacman_telemetry::json::parse_jsonl(&text).expect("valid JSONL");
        // 2 trials per class = 4 trial records, then the metrics snapshot.
        assert_eq!(records.len(), 5);
        for r in &records[..4] {
            assert_eq!(r.get("record").and_then(Value::as_str), Some("trial"));
            assert_eq!(r.get("channel").and_then(Value::as_str), Some("dtlb-data"));
            assert!(r.get("correct").and_then(Value::as_bool).is_some());
            assert!(r.get("ground_truth").and_then(Value::as_bool).is_some());
            assert!(r.get("cycles").and_then(Value::as_u64).unwrap() > 0);
        }
        let metrics = &records[4];
        assert_eq!(metrics.get("record").and_then(Value::as_str), Some("metrics"));
        let counters = metrics.get("counters").expect("counters object");
        // Every modelled TLB and cache level must show activity.
        for series in [
            "tlb.itlb.user.hits",
            "tlb.itlb.user.misses",
            "tlb.itlb.kernel.hits",
            "tlb.itlb.kernel.misses",
            "tlb.dtlb.hits",
            "tlb.dtlb.misses",
            "tlb.l2.hits",
            "tlb.l2.misses",
            "cache.l1i.hits",
            "cache.l1i.misses",
            "cache.l1d.hits",
            "cache.l1d.misses",
            "cache.l2.hits",
            "cache.l2.misses",
            "oracle.trials",
        ] {
            let v = counters.get(series).and_then(Value::as_u64);
            assert!(v.is_some_and(|v| v > 0), "counter {series} missing or zero: {v:?}");
        }
        assert!(metrics.get("histograms").and_then(|h| h.get("oracle.trial.cycles")).is_some());
    }

    #[test]
    fn sweep_metrics_out_includes_series_and_machine_counters() {
        let path = std::env::temp_dir().join("pacman_cli_sweep_metrics_test.jsonl");
        let path_str = path.to_str().expect("utf-8 temp path");
        dispatch(&parse(&format!("sweep --metrics-out {path_str}"))).expect("sweep runs");
        let text = std::fs::read_to_string(&path).expect("metrics file written");
        std::fs::remove_file(&path).ok();
        let records = pacman_telemetry::json::parse_jsonl(&text).expect("valid JSONL");
        assert!(records
            .iter()
            .any(|r| r.get("record").and_then(Value::as_str) == Some("sweep_series")));
        let metrics = records.last().expect("metrics record");
        assert_eq!(metrics.get("record").and_then(Value::as_str), Some("metrics"));
        let walks =
            metrics.get("counters").and_then(|c| c.get("tlb.walks")).and_then(Value::as_u64);
        assert!(walks.is_some_and(|w| w > 0), "sweeps must cause page walks: {walks:?}");
    }
}
