//! Subcommand implementations.

use std::error::Error;

use pacman_bench::claims;
use pacman_core::conformance::{run_conformance, ConformConfig};
use pacman_core::fault::{FaultPlan, Tolerance};
use pacman_core::jump2win::Jump2Win;
use pacman_core::parallel::{
    oracle_distribution, oracle_distribution_observed, parallel_brute, parallel_jump2win,
    parallel_sweep, Channel, ExperimentError, SweepKind,
};
use pacman_core::report::Table;
use pacman_core::sweep::{derive_hierarchy, experiment_machine};
use pacman_core::{System, SystemConfig};
use pacman_gadget::{parallel_census, ImageSpec, ScanConfig};
use pacman_isa::ptr::with_pac_field;
use pacman_isa::PacKey;
use pacman_mitigations::evaluate_all;
use pacman_os::experiments::{MsrInventory, TimerResolution, TlbParameterSearch};
use pacman_os::{BareMetal, Runner};
use pacman_ref::{self_test, Divergence, SelfTestResult};
use pacman_telemetry::json::{to_jsonl_line, Value};
use pacman_telemetry::{trace, Snapshot};

use crate::args::Args;
use crate::jobctx;
use crate::service;

/// The usage text (also shown for `--help`).
pub const USAGE: &str = "\
pacman-cli - drive the PACMAN (ISCA 2022) reproduction

usage: pacman-cli <command> [options]

commands:
  oracle       run the section-8.1 PAC oracle and print verdicts
  brute        brute-force a PAC over a candidate window (section 8.2)
  jump2win     the section-8.3 end-to-end control-flow hijack
  sweep        the section-7 reverse-engineering sweeps (Figures 5-6)
  census       the section-4.3 gadget census over a synthetic image
  conform      differential conformance fuzzing of the speculative core
               against the architectural reference machine
  profile      run an experiment (oracle|brute) with the simulator
               self-profiler and flight recorder armed, write a Chrome
               trace and print hot-opcode/hot-block reports
  mitigations  the section-9 countermeasure matrix
  os           PacmanOS (section 6.2) bare-metal experiments
  timeline     print the Figure 3 speculation-event timelines
  verify       diff BENCH_<id>.json artifacts against the paper claims
  daemon       run pacmand, the multi-tenant experiment daemon: serve
               sessions over a Unix socket (or --stdio), schedule
               submitted command lines fair-share across tenants, and
               stream results back incrementally (DESIGN.md section 12)
  client       drive a running pacmand: submit one job and stream its
               session records, ping/status, or request shutdown

options:
  --seed N        kernel key seed          --quiet-noise   disable OS noise
  --channel C     data|instr|cache         --trials N      oracle trials
  --window N      brute candidate window   --full          sweep all 65536
  --functions N   census image size        --track-stack   deep census dataflow
  --programs N    conform program count    --steps N       conform step budget
  --skip-self-test  conform: skip the injected-bug self-test
  --dir D         verify artifact dir      --help          this text
  --only ID       verify: check a single artifact's claims (skips history)
  --json          emit JSONL on stdout     --metrics-out F write JSONL to file F
  --jobs N        worker threads (default: PACMAN_JOBS, else all cores)
  --runner B      execution backend: 'executor' (persistent work-stealing
                  pool, the default) or 'scoped' (spawn-per-run baseline);
                  default: PACMAN_RUNNER, else executor
  --fault-rate R  injected fault rate in [0,1] (default: PACMAN_FAULT_RATE
                  when PACMAN_FAULT_SEED is set, else off; 0 disables)
  --trace-out F   record shard/fault lifecycle spans during the run and
                  write them as Chrome trace-event JSON to F (open in
                  Perfetto or chrome://tracing)
  --top N         profile: rows per hot-opcode/hot-block table (def. 10)

daemon/client options:
  --socket P          socket path (default pacmand.sock)
  --stdio             daemon: serve one session stream on stdin/stdout
  --workers N         daemon: job worker threads (default: --jobs rules)
  --session-queue N   daemon: queued jobs per session before
                      backpressure (default 16)
  --session-parallel N  daemon: in-flight jobs per session (default 1)
  --job-attempts N    daemon: attempts per job before job_failed (def. 1)
  --state-dir D       daemon: durable mode — write checksummed snapshots
                      of in-flight state to D/pacmand.snapshot
  --checkpoint-every N  daemon: checkpoint cadence in output records
                      (default 256; a final checkpoint is cut on drain)
  --resume            daemon: load the --state-dir snapshot at boot and
                      continue interrupted sessions mid-stream
  --session S         client: session name (default cli)
  --submit CMD        client: submit one quoted command line as a job
  --attach            client: reattach to --session (e.g. one resumed by
                      a restarted daemon) and stream it to completion
  --shutdown          client: ask the daemon to drain and exit

Trial-driving commands (oracle, brute, jump2win, sweep, census,
conform) shard their work across --jobs worker threads; for a fixed
--seed the merged result is identical at every job count and on either
--runner backend.

'conform' runs seeded random programs on the speculative core and on an
in-order architectural reference machine in lockstep, asserting
committed-state equivalence (registers, memory, exception PC/cause) at
every retire boundary. Any diverging program is shrunk to a minimal
reproducer ('conform' JSONL records). Unless --skip-self-test is given
it then re-runs the harness against deliberately broken speculative
cores and fails unless every injected bug is detected.

Sharded commands run fault-tolerantly: a panicking or faulted shard is
retried within a bounded budget, and a shard that exhausts it surfaces
as a typed partial-result error (per-shard 'shard_failure' JSONL
records, nonzero exit) instead of a crash. Setting PACMAN_FAULT_SEED
(with PACMAN_FAULT_RATE or --fault-rate) deterministically injects
shard panics, timing-noise spikes and artifact-write errors to exercise
those paths; retried runs stay bit-identical to fault-free ones.

'profile <experiment>' reruns oracle or brute with the per-opcode
retire profiler and the flight recorder enabled: it writes --trace-out
(default trace.json) and prints top-N hot-opcode and hot-basic-block
tables plus a decode/dispatch/memory/QARMA phase breakdown attributing
simulated cycles and wall-clock time.

Every command emits JSONL when --json (or --metrics-out) is given: one
JSON record per trial/event/row, and - for commands that drive the
simulated machine - a final 'metrics' record holding the full
counter/histogram snapshot (including the runner.retries /
runner.shard_failures / runner.faults_injected execution counters).
'verify' ends with a 'verify_summary' record and exits nonzero if any
paper claim is out of tolerance.
";

/// The `--key value` options and bare flags each command accepts.
/// Anything else is a usage error: a misspelled option must fail
/// loudly, not parse as an ignored key.
fn command_spec(command: &str) -> Option<(&'static [&'static str], &'static [&'static str])> {
    Some(match command {
        "oracle" => (
            &[
                "seed",
                "trials",
                "channel",
                "jobs",
                "runner",
                "fault-rate",
                "metrics-out",
                "trace-out",
            ],
            &["json", "quiet-noise"],
        ),
        "brute" => (
            &["seed", "window", "jobs", "runner", "fault-rate", "metrics-out", "trace-out"],
            &["json", "quiet-noise", "full"],
        ),
        "jump2win" => (
            &["seed", "window", "jobs", "runner", "fault-rate", "metrics-out"],
            &["json", "quiet-noise", "full"],
        ),
        // --quiet-noise is a no-op for sweep (its machines already run
        // noise-free) but stays accepted for invocation compatibility.
        "sweep" => (
            &["jobs", "runner", "fault-rate", "metrics-out", "trace-out"],
            &["json", "quiet-noise"],
        ),
        "census" => (&["functions", "jobs", "runner", "metrics-out"], &["json", "track-stack"]),
        "conform" => (
            &[
                "programs",
                "seed",
                "steps",
                "jobs",
                "runner",
                "fault-rate",
                "metrics-out",
                "trace-out",
            ],
            &["json", "skip-self-test"],
        ),
        "profile" => (
            &[
                "seed",
                "trials",
                "window",
                "channel",
                "jobs",
                "runner",
                "fault-rate",
                "metrics-out",
                "trace-out",
                "top",
            ],
            &["json", "quiet-noise"],
        ),
        "mitigations" => (&["metrics-out"], &["json"]),
        "os" => (&["metrics-out"], &["json"]),
        "timeline" => (&["seed", "metrics-out"], &["json", "quiet-noise"]),
        "verify" => (&["dir", "only", "metrics-out"], &["json"]),
        "daemon" => (
            &[
                "socket",
                "workers",
                "session-queue",
                "session-parallel",
                "job-attempts",
                "state-dir",
                "checkpoint-every",
            ],
            &["stdio", "resume"],
        ),
        "client" => (&["socket", "session", "submit"], &["shutdown", "attach"]),
        _ => return None,
    })
}

/// Commands that take a positional subject after the command word.
const SUBJECT_COMMANDS: &[&str] = &["profile"];

/// Rejects options/flags the command does not define.
fn validate_options(command: &str, args: &Args) -> CliResult {
    let Some((options, flags)) = command_spec(command) else {
        return Err(format!("unknown command '{command}' (try --help)").into());
    };
    if let Some(subject) = &args.subject {
        if !SUBJECT_COMMANDS.contains(&command) {
            return Err(format!("unexpected argument '{subject}' for '{command}'").into());
        }
    }
    for name in args.option_names() {
        if !options.contains(&name) {
            return Err(format!("unknown option --{name} for '{command}' (try --help)").into());
        }
    }
    for name in args.flag_names() {
        if name != "help" && !flags.contains(&name) {
            return Err(format!("unknown flag --{name} for '{command}' (try --help)").into());
        }
    }
    Ok(())
}

type CliResult = Result<(), Box<dyn Error>>;

/// Routes a parsed command line to its implementation.
///
/// # Errors
///
/// Any subcommand failure (bad options, oracle errors, failed attacks).
pub fn dispatch(args: &Args) -> CliResult {
    // A typed error, not a panic: `main` prints usage before dispatch,
    // but the daemon feeds client-submitted command lines straight in,
    // and an empty one must come back as a job failure — never abort
    // the process.
    let Some(command) = args.command.as_deref() else {
        return Err("no command given (try --help)".into());
    };
    validate_options(command, args)?;
    apply_runner(args)?;
    match command {
        "oracle" => cmd_oracle(args),
        "brute" => cmd_brute(args),
        "jump2win" => cmd_jump2win(args),
        "sweep" => cmd_sweep(args),
        "census" => cmd_census(args),
        "conform" => cmd_conform(args),
        "profile" => cmd_profile(args),
        "mitigations" => cmd_mitigations(args),
        "os" => cmd_os(args),
        "timeline" => cmd_timeline(args),
        "verify" => cmd_verify(args),
        "daemon" => service::cmd_daemon(args),
        "client" => service::cmd_client(args),
        other => unreachable!("validate_options rejected '{other}'"),
    }
}

fn config(args: &Args) -> Result<SystemConfig, Box<dyn Error>> {
    let mut cfg =
        SystemConfig { kernel_seed: args.get_num("seed", 0xA11CEu64)?, ..SystemConfig::default() };
    if args.flag("quiet-noise") {
        cfg.machine.os_noise = 0.0;
    }
    Ok(cfg)
}

fn boot(args: &Args) -> Result<System, Box<dyn Error>> {
    Ok(System::boot(config(args)?))
}

/// The resolved `--jobs` worker count (defaults to `PACMAN_JOBS`, else
/// the machine's available parallelism).
fn jobs(args: &Args) -> Result<usize, Box<dyn Error>> {
    Ok(args.get_num("jobs", pacman_runner::default_jobs())?.max(1))
}

/// Applies `--runner` by pinning the process-wide execution backend
/// (overriding `PACMAN_RUNNER`); without the option the environment /
/// default resolution stands.
fn apply_runner(args: &Args) -> CliResult {
    let Some(raw) = args.get("runner") else { return Ok(()) };
    let Some(backend) = pacman_runner::RunnerBackend::parse(raw) else {
        return Err(format!("--runner '{raw}' is not 'executor' or 'scoped'").into());
    };
    pacman_runner::force_backend(Some(backend));
    Ok(())
}

/// The resolved fault-tolerance policy: `PACMAN_FAULT_SEED` /
/// `PACMAN_FAULT_RATE` from the environment, with `--fault-rate`
/// overriding the rate (0 disables injection even when the environment
/// enables it; the retry budget applies either way).
fn tolerance(args: &Args) -> Result<Tolerance, Box<dyn Error>> {
    let mut tol = Tolerance::from_env();
    if let Some(raw) = args.get("fault-rate") {
        let rate: f64 = raw.parse().map_err(|_| format!("--fault-rate '{raw}' is not a number"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("--fault-rate {rate} is outside [0, 1]").into());
        }
        tol.faults = tol.faults.with_rate(rate);
    }
    Ok(tol)
}

/// Reports a sharded experiment failure: one `shard_failure` JSONL
/// record per permanently failed or cancelled shard, a closing
/// `partial_failure` summary, then the (nonzero-exit) error. Everything
/// already emitted stays flushed — partial evidence is the point.
fn fail_sharded(mut emit: Emitter, err: ExperimentError) -> Box<dyn Error> {
    if let ExperimentError::Shards(partial) = &err {
        for f in &partial.failures {
            emit.record(&Value::Object(vec![
                ("record".into(), Value::str("shard_failure")),
                ("shard".into(), Value::UInt(f.shard as u64)),
                ("attempts".into(), Value::UInt(u64::from(f.attempts))),
                ("panicked".into(), Value::Bool(f.panicked)),
                ("cancelled".into(), Value::Bool(f.cancelled)),
                ("message".into(), Value::str(f.message.clone())),
            ]));
        }
        emit.record(&Value::Object(vec![
            ("record".into(), Value::str("partial_failure")),
            ("shards_total".into(), Value::UInt(partial.total as u64)),
            ("shards_completed".into(), Value::UInt(partial.completed as u64)),
            ("retries".into(), Value::UInt(partial.retries)),
            ("failures".into(), Value::UInt(partial.failures.len() as u64)),
        ]));
        eprintln!("error: {partial}");
    }
    if let Err(close_err) = emit.close() {
        eprintln!("error: {close_err}");
    }
    Box::new(err)
}

/// The `--metrics-out` file with line-commit durability: every record
/// is written and flushed as one complete line, and a write that fails
/// partway is rolled back to the last committed line boundary. The
/// partial-failure and panic-isolation paths rely on this — records
/// emitted before a shard failure must survive on disk as parseable
/// JSONL with no truncated trailing line, even if the process dies
/// before `close()` runs.
struct MetricsFile {
    path: String,
    file: std::fs::File,
    /// Bytes known to hold complete, flushed JSONL lines.
    committed: u64,
}

impl MetricsFile {
    /// Appends one complete line, flushing it through to the OS. On any
    /// failure the file is truncated back to the last committed line so
    /// no torn tail is ever observable.
    fn append_line(&mut self, line: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        let result = self.file.write_all(line).and_then(|()| self.file.flush());
        match result {
            Ok(()) => {
                self.committed += line.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Best effort: a failed rollback leaves the tail torn,
                // but the write error is surfaced either way.
                let _ = self.file.set_len(self.committed);
                Err(e)
            }
        }
    }
}

/// JSONL sink for `--json` (stdout) and `--metrics-out` (file). Inactive
/// when neither was requested, at the cost of one branch per record.
struct Emitter {
    json_stdout: bool,
    out: Option<MetricsFile>,
    write_error: Option<std::io::Error>,
}

impl Emitter {
    /// Builds the sink, creating the `--metrics-out` file *eagerly*: an
    /// unwritable path must fail before any trials run, not after the
    /// whole experiment has completed.
    fn from_args(args: &Args) -> Result<Self, Box<dyn Error>> {
        let out = match args.get("metrics-out") {
            Some(path) => {
                let file = std::fs::File::create(path)
                    .map_err(|e| format!("cannot create --metrics-out file '{path}': {e}"))?;
                Some(MetricsFile { path: path.to_string(), file, committed: 0 })
            }
            None => None,
        };
        Ok(Self { json_stdout: args.flag("json"), out, write_error: None })
    }

    /// Whether any JSONL output was requested. A daemon job context
    /// counts: the session stream consumes the records even when the
    /// submitted command line asked for no local sink.
    fn active(&self) -> bool {
        self.json_stdout || self.out.is_some() || jobctx::active()
    }

    /// Whether the human-readable report should be suppressed (stdout
    /// is reserved for JSONL, or belongs to the daemon process, whose
    /// tenants only see their session stream).
    fn quiet(&self) -> bool {
        self.json_stdout || jobctx::active()
    }

    fn record(&mut self, value: &Value) {
        if !self.active() {
            return;
        }
        let line = to_jsonl_line(value);
        jobctx::tee(&line);
        if self.json_stdout {
            print!("{line}");
        }
        // After a write error the file stays frozen at its last
        // committed line; close() surfaces the first failure.
        if self.write_error.is_none() {
            if let Some(out) = &mut self.out {
                if let Err(e) = out.append_line(line.as_bytes()) {
                    self.write_error = Some(e);
                }
            }
        }
    }

    /// Appends the final `metrics` record built from `snap`, then closes.
    fn finish(mut self, snap: &Snapshot) -> CliResult {
        let mut fields = vec![("record".to_string(), Value::str("metrics"))];
        if let Value::Object(rest) = snap.to_json() {
            fields.extend(rest);
        }
        self.record(&Value::Object(fields));
        self.close()
    }

    /// Reports any write failure (every record line was already flushed
    /// through when it was committed).
    fn close(mut self) -> CliResult {
        if let Some(out) = &self.out {
            if let Some(e) = self.write_error.take() {
                return Err(format!("writing --metrics-out file '{}' failed: {e}", out.path).into());
            }
        }
        Ok(())
    }
}

/// Arms the process-wide flight recorder when `--trace-out` was given,
/// returning the destination path. Stale events from an earlier
/// in-process command are discarded — the trace should cover exactly
/// this run.
fn trace_arm(args: &Args) -> Option<String> {
    let path = args.get("trace-out")?.to_string();
    trace::recorder().take();
    trace::enable();
    Some(path)
}

/// Stops recording and writes the collected spans as a Chrome
/// trace-event JSON file (no-op when `--trace-out` was absent). Runs on
/// the failure path too: a faulted run's trace is exactly the one worth
/// opening in Perfetto.
fn trace_write(path: Option<&String>) -> CliResult {
    let Some(path) = path else { return Ok(()) };
    trace::disable();
    let events = trace::recorder().take();
    std::fs::write(path, trace::chrome_trace_json(&events))
        .map_err(|e| format!("cannot write --trace-out file '{path}': {e}").into())
}

/// The values `--channel` accepts.
const CHANNELS: &[&str] = &["data", "instr", "cache"];

/// Rejects an unknown `--channel` up front, before the system boots and
/// trials run.
fn validate_channel(args: &Args) -> CliResult {
    let channel = args.get("channel").unwrap_or("data");
    if CHANNELS.contains(&channel) {
        Ok(())
    } else {
        Err(format!("unknown channel '{channel}' (data|instr|cache)").into())
    }
}

/// Maps a validated `--channel` value onto the parallel-driver selector.
fn channel_of(args: &Args) -> Channel {
    match args.get("channel").unwrap_or("data") {
        "instr" => Channel::Instr,
        "cache" => Channel::Cache,
        _ => Channel::Data,
    }
}

fn cmd_oracle(args: &Args) -> CliResult {
    validate_channel(args)?;
    let trials: usize = args.get_num("trials", 50)?;
    let jobs = jobs(args)?;
    let tol = tolerance(args)?;
    let mut emit = Emitter::from_args(args)?;
    let tr = trace_arm(args);
    let cfg = config(args)?;
    let out = match oracle_distribution_observed(
        &cfg,
        channel_of(args),
        1,
        trials,
        jobs,
        emit.active(),
        &tol,
        |i, tp| tp ^ (1 + i as u16),
        // Live per-shard progress onto the session stream when running
        // as a daemon job; a no-op in one-shot runs.
        |p| jobctx::progress(p.shard, p.shards, p.completed, p.retries),
    ) {
        Ok(out) => out,
        Err(e) => {
            let _ = trace_write(tr.as_ref());
            return Err(fail_sharded(emit, e));
        }
    };
    if !emit.quiet() {
        println!("target {:#x}, {trials} trials per class, {jobs} jobs", out.target);
    }
    for r in &out.records {
        emit.record(&r.to_json());
    }
    if !emit.quiet() {
        println!("correct PAC detected:   {}/{trials}", out.correct_detected);
        println!("wrong PAC rejected:     {}/{trials}", out.incorrect_clean);
        println!("kernel crashes:         {}", out.crashes);
    }
    emit.finish(&out.telemetry.snapshot())?;
    trace_write(tr.as_ref())
}

fn cmd_brute(args: &Args) -> CliResult {
    let window: u32 = if args.flag("full") { 65536 } else { args.get_num("window", 512)? };
    let jobs = jobs(args)?;
    let tol = tolerance(args)?;
    let mut emit = Emitter::from_args(args)?;
    let tr = trace_arm(args);
    let cfg = config(args)?;
    // A probe boot positions the demo window around the true PAC (the
    // kernel seed pins the layout, so every shard sees the same target).
    let mut probe = System::boot(cfg.clone());
    let set = probe.pick_quiet_dtlb_set();
    let target = probe.alloc_target(set);
    let true_pac = probe.true_pac(target);
    let clock = probe.machine.config().clock_hz;
    let start = true_pac.wrapping_sub((window / 2) as u16);
    let candidates: Vec<u16> = (0..window).map(|i| start.wrapping_add(i as u16)).collect();
    if !emit.quiet() {
        println!("sweeping {window} candidates for the PAC of {target:#x} ({jobs} jobs) ...");
    }
    let out = match parallel_brute(&cfg, Channel::Data, 5, &candidates, jobs, emit.active(), &tol) {
        Ok(out) => out,
        Err(e) => {
            let _ = trace_write(tr.as_ref());
            return Err(fail_sharded(emit, e));
        }
    };
    let outcome = out.outcome;
    emit.record(&Value::Object(vec![
        ("record".into(), Value::str("brute")),
        ("target".into(), Value::UInt(target)),
        ("jobs".into(), Value::UInt(jobs as u64)),
        (
            "found".into(),
            match outcome.found {
                Some(p) => Value::UInt(u64::from(p)),
                None => Value::Null,
            },
        ),
        ("guesses_tested".into(), Value::UInt(outcome.guesses_tested)),
        ("syscalls".into(), Value::UInt(outcome.syscalls)),
        ("cycles".into(), Value::UInt(outcome.cycles)),
        ("crashes".into(), Value::UInt(outcome.crashes)),
        ("ms_per_guess".into(), Value::Float(outcome.ms_per_guess(clock))),
    ]));
    if !emit.quiet() {
        match outcome.found {
            Some(p) => println!("FOUND: PAC = {p:#06x} after {} guesses", outcome.guesses_tested),
            None => println!("no PAC found in the window ({} guesses)", outcome.guesses_tested),
        }
        println!(
            "simulated cost: {:.2} ms/guess, crashes: {}",
            outcome.ms_per_guess(clock),
            outcome.crashes
        );
    }
    emit.finish(&out.telemetry.snapshot())?;
    trace_write(tr.as_ref())
}

fn cmd_jump2win(args: &Args) -> CliResult {
    let window: u32 = if args.flag("full") { 65536 } else { args.get_num("window", 512)? };
    let jobs = jobs(args)?;
    let tol = tolerance(args)?;
    let mut emit = Emitter::from_args(args)?;
    let cfg = config(args)?;
    let mut driver = Jump2Win::new().with_samples(3).with_train_iters(16);
    if window < 65536 {
        // Demo windows centred on the true PACs; a probe boot reads them
        // (both phases share the probe's kernel seed and layout).
        let probe = System::boot(cfg.clone());
        let t1 = probe.true_pac_with_salt(PacKey::Ia, probe.cpp.win_fn);
        let t2 = probe.true_pac_with_salt(PacKey::Da, probe.cpp.obj1);
        let centre = |t: u16| (t.wrapping_sub((window / 2) as u16), window);
        driver.phase_windows = Some([centre(t1), centre(t2)]);
    }
    let (report, telemetry) = match parallel_jump2win(&cfg, &driver, jobs, emit.active(), &tol) {
        Ok(out) => out,
        Err(e) => return Err(fail_sharded(emit, e)),
    };
    emit.record(&Value::Object(vec![
        ("record".into(), Value::str("jump2win")),
        ("jobs".into(), Value::UInt(jobs as u64)),
        ("pac_win".into(), Value::UInt(u64::from(report.pac_win))),
        ("pac_vtable".into(), Value::UInt(u64::from(report.pac_vtable))),
        ("guesses_tested".into(), Value::UInt(report.guesses_tested)),
        ("syscalls".into(), Value::UInt(report.syscalls)),
        ("cycles".into(), Value::UInt(report.cycles)),
        ("crashes".into(), Value::UInt(report.crashes)),
        ("hijacked".into(), Value::Bool(report.hijacked)),
    ]));
    if !emit.quiet() {
        println!("PAC(win, IA)    = {:#06x}", report.pac_win);
        println!("PAC(vtable, DA) = {:#06x}", report.pac_vtable);
        println!("guesses tested  = {}", report.guesses_tested);
        println!("hijacked        = {}", report.hijacked);
        println!("kernel crashes  = {}", report.crashes);
    }
    // Flush the JSONL stream before reporting the attack verdict, so a
    // failed hijack still leaves complete machine-readable evidence.
    emit.finish(&telemetry.snapshot())?;
    if !report.hijacked {
        return Err("control flow was not hijacked".into());
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> CliResult {
    let jobs = jobs(args)?;
    let tol = tolerance(args)?;
    let mut emit = Emitter::from_args(args)?;
    let tr = trace_arm(args);
    if !emit.quiet() {
        println!("Figure 5(a) knees:");
    }
    let swept = parallel_sweep(SweepKind::DataTlb, &[256, 2048], jobs, &tol)
        .and_then(|data| Ok((data, parallel_sweep(SweepKind::Itlb, &[32], jobs, &tol)?)));
    let ((data, mut reg), (instr, instr_reg)) = match swept {
        Ok(out) => out,
        Err(e) => {
            let _ = trace_write(tr.as_ref());
            return Err(fail_sharded(emit, e));
        }
    };
    reg.merge(&instr_reg);
    for series in data.iter().chain(instr.iter()) {
        emit.record(&Value::Object(vec![
            ("record".into(), Value::str("sweep_series")),
            ("label".into(), Value::str(series.label.clone())),
            ("stride".into(), Value::UInt(series.stride)),
            (
                "points".into(),
                Value::Array(
                    series
                        .points
                        .iter()
                        .map(|p| {
                            Value::Object(vec![
                                ("n".into(), Value::UInt(p.n as u64)),
                                ("median".into(), Value::UInt(p.median)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }
    if !emit.quiet() {
        println!("  dTLB   (stride 256 x 16KB): N = {:?}", data[0].knee_above(90));
        println!("  L2 TLB (stride 2048 x 16KB): N = {:?}", data[1].knee_above(110));
        println!("  iTLB   (stride 32 x 16KB, drop): N = {:?}", instr[0].knee_below(90));
    }
    let mut m2 = experiment_machine();
    let f = derive_hierarchy(&mut m2)?;
    emit.record(&Value::Object(vec![
        ("record".into(), Value::str("hierarchy")),
        ("itlb_ways".into(), Value::UInt(f.itlb_ways as u64)),
        ("dtlb_ways".into(), Value::UInt(f.dtlb_ways as u64)),
        ("l2_ways".into(), Value::UInt(f.l2_ways as u64)),
        ("itlb_victims_visible_to_loads".into(), Value::Bool(f.itlb_victims_visible_to_loads)),
    ]));
    if !emit.quiet() {
        println!(
            "Figure 6: iTLB {}w x 32s | dTLB {}w x 256s | L2 {}w x 2048s | victim migration: {}",
            f.itlb_ways, f.dtlb_ways, f.l2_ways, f.itlb_victims_visible_to_loads
        );
    }
    // The sweeps drive the machines directly (no System); the parallel
    // driver already merged their microarchitectural totals, so only the
    // hierarchy-derivation machine still needs a hand export.
    m2.export_telemetry(&mut reg);
    emit.finish(&reg.snapshot())?;
    trace_write(tr.as_ref())
}

fn cmd_census(args: &Args) -> CliResult {
    let functions: usize = args.get_num("functions", 2000)?;
    let jobs = jobs(args)?;
    let mut emit = Emitter::from_args(args)?;
    let spec = ImageSpec { functions, seed: 0xC0DE, ..ImageSpec::default() };
    let config = ScanConfig { track_stack: args.flag("track-stack"), ..ScanConfig::default() };
    let report = parallel_census(&spec, &config, jobs);
    emit.record(&Value::Object(vec![
        ("record".into(), Value::str("census")),
        ("functions".into(), Value::UInt(functions as u64)),
        ("jobs".into(), Value::UInt(jobs as u64)),
        ("instructions".into(), Value::UInt(report.instructions as u64)),
        ("total_gadgets".into(), Value::UInt(report.total() as u64)),
        ("data_gadgets".into(), Value::UInt(report.data_count() as u64)),
        ("instruction_gadgets".into(), Value::UInt(report.instruction_count() as u64)),
        ("track_stack".into(), Value::Bool(config.track_stack)),
        ("mean_distance".into(), Value::Float(report.mean_distance())),
    ]));
    if !emit.quiet() {
        println!("image: {} functions, {} instructions", functions, report.instructions);
        println!(
            "gadgets: {} total ({} data, {} instruction)",
            report.total(),
            report.data_count(),
            report.instruction_count()
        );
        println!("mean branch->transmit distance: {:.1}", report.mean_distance());
    }
    emit.close()
}

/// One `conform` JSONL record per (minimized) divergence: the full
/// repro — scenario seed, retire step, mismatch kind/detail and the
/// program/handler listings — so a CI failure ships its own test case.
fn divergence_record(d: &Divergence) -> Value {
    let listing = |insts: &[String]| Value::Array(insts.iter().map(Value::str).collect());
    Value::Object(vec![
        ("record".into(), Value::str("conform")),
        ("seed".into(), Value::UInt(d.seed)),
        ("step".into(), Value::UInt(d.step)),
        ("pc".into(), Value::UInt(d.pc)),
        ("kind".into(), Value::str(d.kind)),
        ("detail".into(), Value::str(d.detail.clone())),
        ("program".into(), listing(&d.program_text())),
        ("handler".into(), listing(&d.handler_text())),
    ])
}

/// One `conform_self_test` JSONL record per deliberately broken core.
fn self_test_record(r: &SelfTestResult) -> Value {
    let mut fields = vec![
        ("record".into(), Value::str("conform_self_test")),
        ("bug".into(), Value::str(r.name)),
        ("scenarios_run".into(), Value::UInt(r.scenarios_run)),
        ("detected".into(), Value::Bool(r.detected())),
    ];
    if let Some(d) = &r.divergence {
        fields.push(("seed".into(), Value::UInt(d.seed)));
        fields.push(("kind".into(), Value::str(d.kind)));
        fields.push(("detail".into(), Value::str(d.detail.clone())));
        fields.push((
            "program".into(),
            Value::Array(d.program_text().iter().map(|s| Value::str(s.clone())).collect()),
        ));
    }
    Value::Object(fields)
}

/// Scenarios per broken configuration the self-test may burn before
/// giving up (detection typically lands within the first handful).
const SELF_TEST_BUDGET: u64 = 64;

fn cmd_conform(args: &Args) -> CliResult {
    let programs: usize = args.get_num("programs", 500)?;
    let seed: u64 = args.get_num("seed", 7)?;
    let max_steps: u64 = args.get_num("steps", 512)?;
    let jobs = jobs(args)?;
    let tol = tolerance(args)?;
    let mut emit = Emitter::from_args(args)?;
    let tr = trace_arm(args);
    let cfg = ConformConfig { programs, seed, max_steps, ..ConformConfig::default() };
    if !emit.quiet() {
        println!(
            "differential conformance: {programs} programs, seed {seed:#x}, \
             {max_steps}-step budget, {jobs} jobs ..."
        );
    }
    let report = match run_conformance(&cfg, jobs, &tol) {
        Ok(report) => report,
        Err(e) => {
            let _ = trace_write(tr.as_ref());
            return Err(fail_sharded(emit, e));
        }
    };
    for d in &report.divergences {
        emit.record(&divergence_record(d));
        if !emit.quiet() {
            println!(
                "DIVERGENCE seed {:#x} step {} pc {:#x} [{}]: {}",
                d.seed, d.step, d.pc, d.kind, d.detail
            );
            for line in d.program_text() {
                println!("    {line}");
            }
        }
    }
    if !emit.quiet() {
        println!("programs: {}, divergences: {}", report.programs, report.divergences.len());
    }

    let self_results = if args.flag("skip-self-test") {
        Vec::new()
    } else {
        self_test(seed, SELF_TEST_BUDGET, max_steps)
    };
    let detected = self_results.iter().filter(|r| r.detected()).count();
    for r in &self_results {
        emit.record(&self_test_record(r));
        if !emit.quiet() {
            match &r.divergence {
                Some(d) => println!(
                    "self-test {}: detected after {} scenarios ({} at step {})",
                    r.name, r.scenarios_run, d.kind, d.step
                ),
                None => println!(
                    "self-test {}: NOT detected within {} scenarios",
                    r.name, r.scenarios_run
                ),
            }
        }
    }

    let self_test_ok = detected == self_results.len();
    let ok = report.conforms() && self_test_ok;
    emit.record(&Value::Object(vec![
        ("record".into(), Value::str("conform_summary")),
        ("programs".into(), Value::UInt(report.programs)),
        ("seed".into(), Value::UInt(seed)),
        ("jobs".into(), Value::UInt(jobs as u64)),
        ("divergences".into(), Value::UInt(report.divergences.len() as u64)),
        ("self_test_bugs_detected".into(), Value::UInt(detected as u64)),
        ("self_test_expected".into(), Value::UInt(self_results.len() as u64)),
        ("retries".into(), Value::UInt(report.retries)),
        ("ok".into(), Value::Bool(ok)),
    ]));
    // Flush the JSONL stream (divergence repros included) before the
    // verdict decides the exit code, like jump2win does.
    emit.finish(&report.telemetry.snapshot())?;
    trace_write(tr.as_ref())?;
    if !report.conforms() {
        return Err(format!(
            "speculative core diverged from the reference machine on {} of {} programs",
            report.divergences.len(),
            report.programs
        )
        .into());
    }
    if !self_test_ok {
        return Err(format!(
            "conformance self-test missed {} of {} injected bugs",
            self_results.len() - detected,
            self_results.len()
        )
        .into());
    }
    Ok(())
}

/// Experiments `profile` can rerun with the self-profiler armed (the
/// System-driven attacks; sweep and census build their machines outside
/// the config path the profile flag rides on).
const PROFILE_EXPERIMENTS: &[&str] = &["oracle", "brute"];

/// Groups `profile.<kind>.<key>.<field>` counters from a snapshot by
/// their middle component (mnemonic, block PC, or phase name).
fn profile_family<'a>(
    snap: &'a Snapshot,
    prefix: &str,
) -> std::collections::BTreeMap<&'a str, std::collections::BTreeMap<&'a str, u64>> {
    let mut out: std::collections::BTreeMap<&str, std::collections::BTreeMap<&str, u64>> =
        std::collections::BTreeMap::new();
    for (name, &v) in &snap.counters {
        let Some(rest) = name.strip_prefix(prefix) else { continue };
        let Some((key, field)) = rest.rsplit_once('.') else { continue };
        out.entry(key).or_default().insert(field, v);
    }
    out
}

fn cmd_profile(args: &Args) -> CliResult {
    let experiment = args.subject.as_deref().unwrap_or("oracle");
    if !PROFILE_EXPERIMENTS.contains(&experiment) {
        return Err(format!("profile cannot run '{experiment}' (oracle|brute)").into());
    }
    validate_channel(args)?;
    let top = args.get_num("top", 10usize)?.max(1);
    let jobs = jobs(args)?;
    let tol = tolerance(args)?;
    let trials: usize = args.get_num("trials", 8)?;
    let window: u32 = args.get_num("window", 64)?;
    let mut emit = Emitter::from_args(args)?;
    // Profiling exists to produce the trace and the report, so the
    // recorder is always armed; --trace-out only moves the destination.
    let trace_path = args.get("trace-out").unwrap_or("trace.json").to_string();
    trace::recorder().take();
    trace::enable();
    let mut cfg = config(args)?;
    cfg.machine.profile = true;
    if !emit.quiet() {
        println!("profiling '{experiment}' ({jobs} jobs) ...");
    }
    let run = match experiment {
        "oracle" => {
            oracle_distribution(&cfg, channel_of(args), 1, trials, jobs, true, &tol, |i, tp| {
                tp ^ (1 + i as u16)
            })
            .map(|out| out.telemetry)
        }
        _ => {
            // Same probe-boot window placement as cmd_brute.
            let mut probe = System::boot(cfg.clone());
            let set = probe.pick_quiet_dtlb_set();
            let target = probe.alloc_target(set);
            let start = probe.true_pac(target).wrapping_sub((window / 2) as u16);
            let candidates: Vec<u16> = (0..window).map(|i| start.wrapping_add(i as u16)).collect();
            parallel_brute(&cfg, Channel::Data, 5, &candidates, jobs, true, &tol)
                .map(|out| out.telemetry)
        }
    };
    let registry = match run {
        Ok(reg) => reg,
        Err(e) => {
            let _ = trace_write(Some(&trace_path));
            return Err(fail_sharded(emit, e));
        }
    };
    let snap = registry.snapshot();
    trace::disable();
    let dropped = trace::recorder().dropped();
    let events = trace::recorder().take();
    std::fs::write(&trace_path, trace::chrome_trace_json(&events))
        .map_err(|e| format!("cannot write --trace-out file '{trace_path}': {e}"))?;

    let opcodes = profile_family(&snap, "profile.opcode.");
    let blocks = profile_family(&snap, "profile.block.");
    let phases = profile_family(&snap, "profile.phase.");
    let field = |f: &std::collections::BTreeMap<&str, u64>, k: &str| f.get(k).copied().unwrap_or(0);
    let mut op_rows: Vec<(&str, u64, u64)> =
        opcodes.iter().map(|(k, f)| (*k, field(f, "retired"), field(f, "cycles"))).collect();
    op_rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    op_rows.truncate(top);
    let mut block_rows: Vec<(&str, u64, u64, u64)> = blocks
        .iter()
        .map(|(k, f)| (*k, field(f, "entries"), field(f, "insts"), field(f, "cycles")))
        .collect();
    block_rows.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(b.0)));
    block_rows.truncate(top);

    for (rank, (mnem, retired, cycles)) in op_rows.iter().enumerate() {
        emit.record(&Value::Object(vec![
            ("record".into(), Value::str("profile_opcode")),
            ("rank".into(), Value::UInt(rank as u64 + 1)),
            ("opcode".into(), Value::str(*mnem)),
            ("retired".into(), Value::UInt(*retired)),
            ("cycles".into(), Value::UInt(*cycles)),
        ]));
    }
    for (rank, (pc, entries, insts, cycles)) in block_rows.iter().enumerate() {
        emit.record(&Value::Object(vec![
            ("record".into(), Value::str("profile_block")),
            ("rank".into(), Value::UInt(rank as u64 + 1)),
            ("pc".into(), Value::str(*pc)),
            ("entries".into(), Value::UInt(*entries)),
            ("insts".into(), Value::UInt(*insts)),
            ("cycles".into(), Value::UInt(*cycles)),
        ]));
    }
    for (phase, f) in &phases {
        emit.record(&Value::Object(vec![
            ("record".into(), Value::str("profile_phase")),
            ("phase".into(), Value::str(*phase)),
            ("events".into(), Value::UInt(field(f, "events"))),
            ("cycles".into(), Value::UInt(field(f, "cycles"))),
            ("wall_ns".into(), Value::UInt(field(f, "wall_ns"))),
        ]));
    }
    emit.record(&Value::Object(vec![
        ("record".into(), Value::str("profile_summary")),
        ("experiment".into(), Value::str(experiment)),
        ("trace_path".into(), Value::str(trace_path.clone())),
        ("trace_events".into(), Value::UInt(events.len() as u64)),
        ("trace_dropped".into(), Value::UInt(dropped)),
        ("opcodes_seen".into(), Value::UInt(opcodes.len() as u64)),
        ("blocks_seen".into(), Value::UInt(blocks.len() as u64)),
    ]));

    if !emit.quiet() {
        let mut t = Table::new(
            format!("hot opcodes (top {} of {} by simulated cycles)", op_rows.len(), opcodes.len()),
            &["opcode", "retired", "cycles", "cyc/inst"],
        );
        for (mnem, retired, cycles) in &op_rows {
            t.row(&[
                (*mnem).to_string(),
                retired.to_string(),
                cycles.to_string(),
                format!("{:.1}", *cycles as f64 / (*retired).max(1) as f64),
            ]);
        }
        println!("{t}");
        let mut t = Table::new(
            format!(
                "hot blocks (top {} of {} by simulated cycles)",
                block_rows.len(),
                blocks.len()
            ),
            &["block", "entries", "insts", "cycles"],
        );
        for (pc, entries, insts, cycles) in &block_rows {
            t.row(&[(*pc).to_string(), entries.to_string(), insts.to_string(), cycles.to_string()]);
        }
        println!("{t}");
        let mut t = Table::new("pipeline phases", &["phase", "events", "sim cycles", "wall ns"]);
        for (phase, f) in &phases {
            t.row(&[
                (*phase).to_string(),
                field(f, "events").to_string(),
                field(f, "cycles").to_string(),
                field(f, "wall_ns").to_string(),
            ]);
        }
        println!("{t}");
        println!("trace: {trace_path} ({} events, {dropped} dropped)", events.len());
    }
    emit.finish(&snap)
}

fn cmd_mitigations(args: &Args) -> CliResult {
    let mut emit = Emitter::from_args(args)?;
    let evals = evaluate_all();
    let baseline = evals[0].benign_cycles as f64;
    let mut t = Table::new("mitigation matrix", &["mitigation", "surface", "benign overhead"]);
    for e in &evals {
        let overhead = 100.0 * (e.benign_cycles as f64 - baseline) / baseline;
        emit.record(&Value::Object(vec![
            ("record".into(), Value::str("mitigation")),
            ("mitigation".into(), Value::str(format!("{:?}", e.report.mitigation))),
            ("surface".into(), Value::str(format!("{:?}", e.surface))),
            ("data_oracle_works".into(), Value::Bool(e.report.data_oracle_works)),
            ("instr_oracle_works".into(), Value::Bool(e.report.instr_oracle_works)),
            ("benign_cycles".into(), Value::UInt(e.benign_cycles)),
            ("benign_overhead_pct".into(), Value::Float(overhead)),
        ]));
        t.row(&[
            format!("{:?}", e.report.mitigation),
            format!("{:?}", e.surface),
            format!("{overhead:+.1}%"),
        ]);
    }
    if !emit.quiet() {
        println!("{t}");
    }
    emit.close()
}

fn cmd_os(args: &Args) -> CliResult {
    let mut emit = Emitter::from_args(args)?;
    let mut runner = Runner::new(BareMetal::boot_default());
    let mut msr = MsrInventory::new();
    let mut timer = TimerResolution::new();
    let mut tlb = TlbParameterSearch::new();
    let experiments: [&mut dyn pacman_os::Experiment; 3] = [&mut msr, &mut timer, &mut tlb];
    for experiment in experiments {
        let report = runner.run(experiment);
        emit.record(&Value::Object(vec![
            ("record".into(), Value::str("os_experiment")),
            ("name".into(), Value::str(report.name)),
            ("cycles".into(), Value::UInt(report.cycles)),
            ("ok".into(), Value::Bool(report.ok)),
            ("lines".into(), Value::Array(report.lines.iter().map(Value::str).collect())),
        ]));
        if !emit.quiet() {
            print!("{report}");
        }
    }
    emit.close()
}

fn cmd_timeline(args: &Args) -> CliResult {
    let mut emit = Emitter::from_args(args)?;
    let mut sys = boot(args)?;
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let sc = sys.gadget.instr_gadget;
    for (label, pac) in [("CORRECT", true_pac), ("WRONG", true_pac ^ 5)] {
        for _ in 0..16 {
            sys.kernel.syscall(&mut sys.machine, sc, &[0, 0, 1])?;
        }
        let mut payload = [0u8; 24];
        payload[16..].copy_from_slice(&with_pac_field(target, pac).to_le_bytes());
        let buf = sys.write_payload(&payload);
        // Scoped tracing: enabled for exactly this syscall, previous
        // recorder state restored afterwards.
        let kernel = &mut sys.kernel;
        let (result, events) = sys.machine.with_trace(|m| kernel.syscall(m, sc, &[buf, 24, 0]));
        result?;
        if !emit.quiet() {
            println!("--- instruction gadget, {label} PAC ---");
        }
        for e in events.iter().rev().take(8).rev() {
            emit.record(&Value::Object(vec![
                ("record".into(), Value::str("spec_event")),
                ("guess".into(), Value::str(label)),
                ("event".into(), Value::str(e.to_string())),
            ]));
            if !emit.quiet() {
                println!("  {e}");
            }
        }
    }
    emit.finish(&sys.telemetry_snapshot())
}

/// Renders the actual value of one claim field for the matrix, truncated
/// so serialized tables/charts do not blow the column out.
fn render_got(value: Option<&Value>) -> String {
    match value {
        None => "-".into(),
        Some(v) => {
            let s = v.to_string();
            if s.chars().count() > 24 {
                let head: String = s.chars().take(21).collect();
                format!("{head}...")
            } else {
                s
            }
        }
    }
}

/// One JSONL `verdict` record of the verification stream.
fn verdict_record(
    artifact: &str,
    field: &str,
    paper: &str,
    expected: &str,
    got: &str,
    status: &str,
) -> Value {
    Value::Object(vec![
        ("record".into(), Value::str("verdict")),
        ("artifact".into(), Value::str(artifact)),
        ("field".into(), Value::str(field)),
        ("paper".into(), Value::str(paper)),
        ("expected".into(), Value::str(expected)),
        ("got".into(), Value::str(got)),
        ("status".into(), Value::str(status)),
    ])
}

/// The verify-history file name, colocated with the artifacts it scores.
const VERIFY_HISTORY: &str = "BENCH_verify_history.jsonl";

/// Reads the last record of the verify-history file, if one exists.
fn last_history_entry(path: &std::path::Path) -> Option<Value> {
    let text = std::fs::read_to_string(path).ok()?;
    let line = text.lines().rev().find(|l| !l.trim().is_empty())?;
    pacman_telemetry::json::parse(line.trim()).ok()
}

/// The current short commit hash, or `"unknown"` outside a git checkout.
fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Appends one JSONL record to the verify-history file.
fn append_history(path: &std::path::Path, entry: &Value) -> CliResult {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open verify history '{}': {e}", path.display()))?;
    file.write_all(to_jsonl_line(entry).as_bytes())
        .map_err(|e| format!("writing verify history '{}': {e}", path.display()).into())
}

fn cmd_verify(args: &Args) -> CliResult {
    let mut emit = Emitter::from_args(args)?;
    let dir = match args.get("dir") {
        Some(d) => d.to_string(),
        None => std::env::var("PACMAN_BENCH_DIR").unwrap_or_else(|_| ".".into()),
    };
    let only = match args.get("only") {
        Some(id) if !claims::ARTIFACT_IDS.contains(&id) => {
            return Err(format!(
                "--only got unknown artifact '{id}' (expected one of: {})",
                claims::ARTIFACT_IDS.join(", ")
            )
            .into());
        }
        other => other,
    };
    let checked: Vec<&str> =
        claims::ARTIFACT_IDS.iter().copied().filter(|id| only.is_none_or(|o| o == *id)).collect();
    let mut table = Table::new(
        format!("paper-claims verification ({dir})"),
        &["artifact", "field", "paper claim", "expected", "got", "status"],
    );
    let (mut pass, mut fail, mut missing) = (0usize, 0usize, 0usize);
    let mut artifacts_loaded = 0usize;
    for id in checked.iter().copied() {
        let path = std::path::Path::new(&dir).join(format!("BENCH_{id}.json"));
        let artifact = match std::fs::read_to_string(&path) {
            Ok(text) => match pacman_telemetry::json::parse(text.trim()) {
                Ok(v) => v,
                Err(e) => {
                    fail += 1;
                    let why = format!("unparseable: {e}");
                    table.row_of(&[id, "(artifact)", "-", "valid JSON", why.as_str(), "fail"]);
                    emit.record(&verdict_record(id, "(artifact)", "-", "valid JSON", &why, "fail"));
                    continue;
                }
            },
            Err(_) => {
                missing += 1;
                table.row_of(&[id, "(artifact)", "-", "file present", "absent", "missing"]);
                emit.record(&verdict_record(
                    id,
                    "(artifact)",
                    "-",
                    "file present",
                    "absent",
                    "missing",
                ));
                continue;
            }
        };
        artifacts_loaded += 1;
        for claim in claims::for_artifact(id) {
            let verdict = claim.check(&artifact);
            match verdict {
                claims::Verdict::Pass => pass += 1,
                claims::Verdict::Fail(_) => fail += 1,
                claims::Verdict::Missing => missing += 1,
            }
            let got = render_got(artifact.get(claim.field));
            let expected = claim.expect.describe();
            table.row_of(&[
                claim.artifact,
                claim.field,
                claim.paper,
                expected.as_str(),
                got.as_str(),
                verdict.status(),
            ]);
            emit.record(&verdict_record(
                id,
                claim.field,
                claim.paper,
                &expected,
                &got,
                verdict.status(),
            ));
        }
    }
    let ok = fail == 0 && missing == 0;
    if !emit.quiet() {
        println!("{table}");
        println!(
            "claims: {pass} pass, {fail} fail, {missing} missing \
             ({artifacts_loaded}/{} artifacts loaded from '{dir}')",
            checked.len()
        );
        println!("verdict: {}", if ok { "all claims in tolerance" } else { "OUT OF TOLERANCE" });
    }
    // Pre-epoch clocks warn and record the 0 sentinel — the shared
    // policy in `pacman_daemon::clock`, which session timestamps use
    // too.
    let timestamp = pacman_daemon::clock::unix_seconds_now();
    let summary = Value::Object(vec![
        ("record".into(), Value::str("verify_summary")),
        ("commit".into(), Value::str(current_commit())),
        ("timestamp".into(), Value::UInt(timestamp)),
        ("dir".into(), Value::str(dir.clone())),
        ("artifacts_expected".into(), Value::UInt(checked.len() as u64)),
        ("artifacts_loaded".into(), Value::UInt(artifacts_loaded as u64)),
        ("pass".into(), Value::UInt(pass as u64)),
        ("fail".into(), Value::UInt(fail as u64)),
        ("missing".into(), Value::UInt(missing as u64)),
        ("faults_active".into(), Value::Bool(FaultPlan::from_env().is_active())),
        ("ok".into(), Value::Bool(ok)),
    ]);
    // Cross-PR history: append this run (keyed by commit + timestamp) to
    // the history file and diff it against the previous entry. A history
    // write error must not mask an out-of-tolerance verdict, so it is
    // deferred below the claims check. `--only` runs check a subset, so
    // recording them would make the pass/fail trend incomparable across
    // entries — they stay out of the history.
    let history_path = std::path::Path::new(&dir).join(VERIFY_HISTORY);
    let previous = last_history_entry(&history_path);
    let history_result =
        if only.is_none() { append_history(&history_path, &summary) } else { Ok(()) };
    if !emit.quiet() && only.is_none() {
        match &previous {
            Some(prev) => {
                let num = |v: &Value, k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
                println!(
                    "history: pass {} -> {pass}, fail {} -> {fail}, missing {} -> {missing} \
                     (previous commit {})",
                    num(prev, "pass"),
                    num(prev, "fail"),
                    num(prev, "missing"),
                    prev.get("commit").and_then(Value::as_str).unwrap_or("?"),
                );
            }
            None => println!("history: first recorded verification for '{dir}'"),
        }
    }
    emit.record(&summary);
    emit.close()?;
    if !ok {
        return Err(format!("{fail} claim(s) out of tolerance, {missing} missing").into());
    }
    history_result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).expect("parses")
    }

    #[test]
    fn unknown_commands_error() {
        assert!(dispatch(&parse("frobnicate")).is_err());
    }

    #[test]
    fn an_empty_command_is_a_usage_error_not_a_panic() {
        // The daemon reuses dispatch for client-submitted command
        // lines; an empty line must surface as a typed error.
        let err = dispatch(&parse("")).expect_err("empty command errors");
        assert!(err.to_string().contains("no command"), "{err}");
    }

    #[test]
    fn oracle_command_runs_end_to_end() {
        dispatch(&parse("oracle --trials 2 --quiet-noise")).expect("oracle runs");
    }

    #[test]
    fn oracle_cache_channel_runs() {
        dispatch(&parse("oracle --trials 1 --channel cache --quiet-noise")).expect("cache oracle");
    }

    #[test]
    fn oracle_rejects_bad_channels() {
        assert!(dispatch(&parse("oracle --trials 1 --channel pigeon --quiet-noise")).is_err());
    }

    #[test]
    fn brute_command_finds_the_pac_in_a_small_window() {
        dispatch(&parse("brute --window 8 --quiet-noise")).expect("brute runs");
    }

    #[test]
    fn jump2win_command_succeeds_with_a_window() {
        dispatch(&parse("jump2win --window 12 --quiet-noise")).expect("jump2win runs");
    }

    #[test]
    fn census_command_runs() {
        dispatch(&parse("census --functions 50 --track-stack")).expect("census runs");
    }

    #[test]
    fn timeline_command_runs() {
        dispatch(&parse("timeline --quiet-noise")).expect("timeline runs");
    }

    #[test]
    fn oracle_metrics_out_writes_valid_jsonl() {
        let path = std::env::temp_dir().join("pacman_cli_oracle_metrics_test.jsonl");
        let path_str = path.to_str().expect("utf-8 temp path");
        dispatch(&parse(&format!("oracle --trials 2 --quiet-noise --metrics-out {path_str}")))
            .expect("oracle runs");
        let text = std::fs::read_to_string(&path).expect("metrics file written");
        std::fs::remove_file(&path).ok();
        let records = pacman_telemetry::json::parse_jsonl(&text).expect("valid JSONL");
        // 2 trials per class = 4 trial records, then the metrics snapshot.
        assert_eq!(records.len(), 5);
        for r in &records[..4] {
            assert_eq!(r.get("record").and_then(Value::as_str), Some("trial"));
            assert_eq!(r.get("channel").and_then(Value::as_str), Some("dtlb-data"));
            assert!(r.get("correct").and_then(Value::as_bool).is_some());
            assert!(r.get("ground_truth").and_then(Value::as_bool).is_some());
            assert!(r.get("cycles").and_then(Value::as_u64).unwrap() > 0);
        }
        let metrics = &records[4];
        assert_eq!(metrics.get("record").and_then(Value::as_str), Some("metrics"));
        let counters = metrics.get("counters").expect("counters object");
        // Every modelled TLB and cache level must show activity.
        for series in [
            "tlb.itlb.user.hits",
            "tlb.itlb.user.misses",
            "tlb.itlb.kernel.hits",
            "tlb.itlb.kernel.misses",
            "tlb.dtlb.hits",
            "tlb.dtlb.misses",
            "tlb.l2.hits",
            "tlb.l2.misses",
            "cache.l1i.hits",
            "cache.l1i.misses",
            "cache.l1d.hits",
            "cache.l1d.misses",
            "cache.l2.hits",
            "cache.l2.misses",
            "oracle.trials",
        ] {
            let v = counters.get(series).and_then(Value::as_u64);
            assert!(v.is_some_and(|v| v > 0), "counter {series} missing or zero: {v:?}");
        }
        assert!(metrics.get("histograms").and_then(|h| h.get("oracle.trial.cycles")).is_some());
    }

    /// Fresh temp dir for one test; removed by the caller.
    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pacman_cli_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn read_jsonl(path: &std::path::Path) -> Vec<Value> {
        let text = std::fs::read_to_string(path).expect("metrics file written");
        pacman_telemetry::json::parse_jsonl(&text).expect("valid JSONL")
    }

    #[test]
    fn unknown_options_and_flags_are_rejected() {
        let err = dispatch(&parse("oracle --banana 1")).expect_err("unknown option");
        assert!(err.to_string().contains("--banana"), "{err}");
        let err = dispatch(&parse("sweep --track-stack")).expect_err("foreign flag");
        assert!(err.to_string().contains("--track-stack"), "{err}");
        let err = dispatch(&parse("census --trials 3")).expect_err("foreign option");
        assert!(err.to_string().contains("--trials"), "{err}");
    }

    #[test]
    fn metrics_out_fails_eagerly_for_unwritable_paths() {
        let err = dispatch(&parse(
            "oracle --trials 1 --metrics-out /nonexistent-dir-3313/deeper/out.jsonl",
        ))
        .expect_err("unwritable metrics path");
        assert!(err.to_string().contains("cannot create --metrics-out"), "{err}");
    }

    #[test]
    fn jump2win_metrics_out_includes_report_and_snapshot() {
        let dir = temp_dir("jump2win");
        let path = dir.join("out.jsonl");
        let path_str = path.to_str().expect("utf-8 temp path");
        dispatch(&parse(&format!("jump2win --window 12 --quiet-noise --metrics-out {path_str}")))
            .expect("jump2win runs");
        let records = read_jsonl(&path);
        std::fs::remove_dir_all(&dir).ok();
        let j2w = records
            .iter()
            .find(|r| r.get("record").and_then(Value::as_str) == Some("jump2win"))
            .expect("jump2win record");
        assert_eq!(j2w.get("hijacked").and_then(Value::as_bool), Some(true));
        assert!(j2w.get("guesses_tested").and_then(Value::as_u64).unwrap() > 0);
        let metrics = records.last().expect("metrics record");
        assert_eq!(metrics.get("record").and_then(Value::as_str), Some("metrics"));
    }

    #[test]
    fn census_mitigations_and_os_emit_jsonl() {
        let dir = temp_dir("humanonly");
        let path = dir.join("out.jsonl");
        let path_str = path.to_str().expect("utf-8 temp path");

        dispatch(&parse(&format!("census --functions 50 --metrics-out {path_str}")))
            .expect("census runs");
        let records = read_jsonl(&path);
        assert_eq!(records[0].get("record").and_then(Value::as_str), Some("census"));
        assert!(records[0].get("total_gadgets").and_then(Value::as_u64).unwrap() > 0);

        dispatch(&parse(&format!("mitigations --metrics-out {path_str}")))
            .expect("mitigations runs");
        let records = read_jsonl(&path);
        assert!(records.len() > 3, "one record per mitigation row");
        for r in &records {
            assert_eq!(r.get("record").and_then(Value::as_str), Some("mitigation"));
            assert!(r.get("surface").and_then(Value::as_str).is_some());
        }

        dispatch(&parse(&format!("os --metrics-out {path_str}"))).expect("os runs");
        let records = read_jsonl(&path);
        assert_eq!(records.len(), 3, "one record per PacmanOS experiment");
        for r in &records {
            assert_eq!(r.get("record").and_then(Value::as_str), Some("os_experiment"));
            assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_passes_over_example_artifacts() {
        let dir = temp_dir("verify_pass");
        for id in claims::ARTIFACT_IDS {
            claims::example_artifact(id).write_to(&dir).expect("example artifact");
        }
        let out = dir.join("verdicts.jsonl");
        let cmd = format!("verify --dir {} --metrics-out {}", dir.display(), out.display());
        dispatch(&parse(&cmd)).expect("all example artifacts verify");
        let records = read_jsonl(&out);
        std::fs::remove_dir_all(&dir).ok();
        let summary = records.last().expect("verify_summary record");
        assert_eq!(summary.get("record").and_then(Value::as_str), Some("verify_summary"));
        assert_eq!(summary.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            summary.get("artifacts_loaded").and_then(Value::as_u64),
            Some(claims::ARTIFACT_IDS.len() as u64)
        );
        let verdicts =
            records.iter().filter(|r| r.get("record").and_then(Value::as_str) == Some("verdict"));
        let statuses: Vec<_> = verdicts
            .map(|r| r.get("status").and_then(Value::as_str).unwrap().to_string())
            .collect();
        assert!(!statuses.is_empty());
        assert!(statuses.iter().all(|s| s == "pass"), "all verdicts pass: {statuses:?}");
    }

    #[test]
    fn verify_fails_on_a_perturbed_artifact() {
        let dir = temp_dir("verify_fail");
        for id in claims::ARTIFACT_IDS {
            claims::example_artifact(id).write_to(&dir).expect("example artifact");
        }
        // Perturb one structural value out of tolerance.
        std::fs::write(
            dir.join("BENCH_fig6.json"),
            "{\"record\":\"bench\",\"experiment\":\"fig6\",\"itlb_ways\":99}\n",
        )
        .expect("perturbed artifact");
        let err = dispatch(&parse(&format!("verify --dir {}", dir.display())))
            .expect_err("perturbed artifact must fail verification");
        std::fs::remove_dir_all(&dir).ok();
        assert!(err.to_string().contains("out of tolerance"), "{err}");
    }

    #[test]
    fn jobs_option_is_accepted_by_trial_commands() {
        dispatch(&parse("oracle --trials 2 --quiet-noise --jobs 4")).expect("oracle --jobs");
        dispatch(&parse("brute --window 8 --quiet-noise --jobs 2")).expect("brute --jobs");
        dispatch(&parse("census --functions 50 --jobs 3")).expect("census --jobs");
        let err = dispatch(&parse("mitigations --jobs 2")).expect_err("foreign option");
        assert!(err.to_string().contains("--jobs"), "{err}");
    }

    #[test]
    fn runner_option_selects_a_backend_and_rejects_junk() {
        struct Unforce;
        impl Drop for Unforce {
            fn drop(&mut self) {
                pacman_runner::force_backend(None);
            }
        }
        let _unforce = Unforce;
        dispatch(&parse("census --functions 50 --jobs 2 --runner executor"))
            .expect("census --runner executor");
        dispatch(&parse("census --functions 50 --jobs 2 --runner scoped"))
            .expect("census --runner scoped");
        let err = dispatch(&parse("oracle --trials 2 --quiet-noise --runner turbo"))
            .expect_err("junk backend");
        assert!(err.to_string().contains("--runner"), "{err}");
        let err = dispatch(&parse("mitigations --runner executor")).expect_err("foreign option");
        assert!(err.to_string().contains("--runner"), "{err}");
    }

    #[test]
    fn verify_history_appends_and_diffs() {
        let dir = temp_dir("verify_history");
        for id in claims::ARTIFACT_IDS {
            claims::example_artifact(id).write_to(&dir).expect("example artifact");
        }
        let cmd = format!("verify --dir {}", dir.display());
        dispatch(&parse(&cmd)).expect("first verify");
        dispatch(&parse(&cmd)).expect("second verify");
        let records = read_jsonl(&dir.join(VERIFY_HISTORY));
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(records.len(), 2, "one history entry per run");
        for r in &records {
            assert_eq!(r.get("record").and_then(Value::as_str), Some("verify_summary"));
            assert!(r.get("commit").and_then(Value::as_str).is_some());
            assert!(r.get("timestamp").and_then(Value::as_u64).is_some());
            assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
            assert!(r.get("pass").and_then(Value::as_u64).unwrap() > 0);
        }
    }

    #[test]
    fn verify_only_checks_one_artifact_and_skips_history() {
        let dir = temp_dir("verify_only");
        claims::example_artifact("perf_trace").write_to(&dir).expect("example artifact");
        let out = dir.join("only.jsonl");
        let cmd = format!(
            "verify --dir {} --only perf_trace --metrics-out {}",
            dir.display(),
            out.display()
        );
        dispatch(&parse(&cmd)).expect("single present artifact passes despite 19 absent ones");
        let records = read_jsonl(&out);
        let history = dir.join(VERIFY_HISTORY);
        let history_exists = history.exists();
        let err = dispatch(&parse(&format!("verify --dir {} --only nonsense", dir.display())))
            .expect_err("unknown --only id");
        std::fs::remove_dir_all(&dir).ok();
        assert!(!history_exists, "--only runs must not pollute the verify history");
        assert!(err.to_string().contains("unknown artifact 'nonsense'"), "{err}");
        let summary = records.last().expect("verify_summary");
        assert_eq!(summary.get("record").and_then(Value::as_str), Some("verify_summary"));
        assert_eq!(summary.get("artifacts_expected").and_then(Value::as_u64), Some(1));
        assert_eq!(summary.get("missing").and_then(Value::as_u64), Some(0));
        assert_eq!(summary.get("ok").and_then(Value::as_bool), Some(true));
        assert!(records.iter().all(|r| r
            .get("artifact")
            .and_then(Value::as_str)
            .unwrap_or("perf_trace")
            == "perf_trace"));
    }

    #[test]
    fn verify_reports_missing_artifacts() {
        let dir = temp_dir("verify_missing");
        let err = dispatch(&parse(&format!("verify --dir {}", dir.display())))
            .expect_err("empty artifact dir must fail verification");
        std::fs::remove_dir_all(&dir).ok();
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn sweep_metrics_out_includes_series_and_machine_counters() {
        let path = std::env::temp_dir().join("pacman_cli_sweep_metrics_test.jsonl");
        let path_str = path.to_str().expect("utf-8 temp path");
        dispatch(&parse(&format!("sweep --metrics-out {path_str}"))).expect("sweep runs");
        let text = std::fs::read_to_string(&path).expect("metrics file written");
        std::fs::remove_file(&path).ok();
        let records = pacman_telemetry::json::parse_jsonl(&text).expect("valid JSONL");
        assert!(records
            .iter()
            .any(|r| r.get("record").and_then(Value::as_str) == Some("sweep_series")));
        let metrics = records.last().expect("metrics record");
        assert_eq!(metrics.get("record").and_then(Value::as_str), Some("metrics"));
        let walks =
            metrics.get("counters").and_then(|c| c.get("tlb.walks")).and_then(Value::as_u64);
        assert!(walks.is_some_and(|w| w > 0), "sweeps must cause page walks: {walks:?}");
    }

    /// Drops `runner.*` counters from every metrics record so a faulted
    /// run can be compared bit-for-bit against its fault-free baseline:
    /// the retry bookkeeping is the only permitted difference.
    fn without_runner_counters(records: &[Value]) -> Vec<Value> {
        records
            .iter()
            .cloned()
            .map(|record| match record {
                Value::Object(fields) => Value::Object(
                    fields
                        .into_iter()
                        .map(|(key, value)| match (key.as_str(), value) {
                            ("counters", Value::Object(counters)) => (
                                key,
                                Value::Object(
                                    counters
                                        .into_iter()
                                        .filter(|(name, _)| !name.starts_with("runner."))
                                        .collect(),
                                ),
                            ),
                            (_, value) => (key, value),
                        })
                        .collect(),
                ),
                other => other,
            })
            .collect()
    }

    fn runner_counter(records: &[Value], name: &str) -> u64 {
        records
            .last()
            .expect("metrics record")
            .get("counters")
            .expect("counters object")
            .get(name)
            .and_then(Value::as_u64)
            .unwrap_or(0)
    }

    #[test]
    fn faulted_runs_within_budget_match_fault_free_baselines() {
        let dir = temp_dir("faults_budget");
        for (tag, cmd) in [
            ("oracle", "oracle --trials 4 --jobs 4 --quiet-noise"),
            ("brute", "brute --window 8 --jobs 4 --quiet-noise"),
        ] {
            let base = dir.join(format!("{tag}_base.jsonl"));
            dispatch(&parse(&format!("{cmd} --fault-rate 0 --metrics-out {}", base.display())))
                .expect("fault-free baseline");
            let baseline = read_jsonl(&base);
            // Fault decisions are a pure function of (plan seed, rate,
            // site, shard, attempt) — not of wall-clock or scheduling —
            // so walking a small rate ladder deterministically finds a
            // rate that injects at least one fault while every shard
            // still survives its retry budget. The ladder, not a pinned
            // rate, keeps this test valid under any PACMAN_FAULT_SEED
            // the environment may export.
            let mut matched = false;
            for rate in ["0.2", "0.25", "0.3", "0.35"] {
                let out = dir.join(format!("{tag}_{rate}.jsonl"));
                let run = dispatch(&parse(&format!(
                    "{cmd} --fault-rate {rate} --metrics-out {}",
                    out.display()
                )));
                if run.is_err() {
                    continue; // budget exhausted at this rate; try lower odds elsewhere
                }
                let faulted = read_jsonl(&out);
                if runner_counter(&faulted, "runner.retries") == 0 {
                    continue; // no fault fired; climb the ladder
                }
                assert!(runner_counter(&faulted, "runner.faults_injected") > 0);
                assert_eq!(runner_counter(&faulted, "runner.shard_failures"), 0);
                assert_eq!(
                    without_runner_counters(&faulted),
                    without_runner_counters(&baseline),
                    "{tag}: retried aggregates must be bit-identical to the fault-free run"
                );
                matched = true;
                break;
            }
            assert!(matched, "{tag}: no ladder rate injected faults within the retry budget");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_rate_one_exhausts_the_budget_with_a_typed_partial_failure() {
        let dir = temp_dir("faults_exhaust");
        let out = dir.join("out.jsonl");
        // Rate 1.0 fires on every (shard, attempt) decision regardless of
        // seed, so every shard must exhaust its budget: a typed partial
        // failure with per-shard evidence, never a panic.
        let err = dispatch(&parse(&format!(
            "oracle --trials 4 --jobs 2 --quiet-noise --fault-rate 1 --metrics-out {}",
            out.display()
        )))
        .expect_err("rate 1.0 must exhaust every shard's retry budget");
        let records = read_jsonl(&out);
        std::fs::remove_dir_all(&dir).ok();
        assert!(err.to_string().contains("shards completed"), "{err}");
        let failures: Vec<_> = records
            .iter()
            .filter(|r| r.get("record").and_then(Value::as_str) == Some("shard_failure"))
            .collect();
        assert!(!failures.is_empty(), "per-shard failure evidence must be recorded");
        for f in &failures {
            assert!(f.get("shard").and_then(Value::as_u64).is_some());
            assert!(f.get("attempts").and_then(Value::as_u64).is_some());
            assert!(f.get("panicked").and_then(Value::as_bool).is_some());
            assert!(f.get("message").and_then(Value::as_str).is_some());
        }
        let partial = records
            .iter()
            .find(|r| r.get("record").and_then(Value::as_str) == Some("partial_failure"))
            .expect("partial_failure summary record");
        assert_eq!(partial.get("shards_completed").and_then(Value::as_u64), Some(0));
        assert!(partial.get("shards_total").and_then(Value::as_u64).unwrap() > 0);
        assert_eq!(
            partial.get("failures").and_then(Value::as_u64),
            partial.get("shards_total").and_then(Value::as_u64)
        );
    }

    #[test]
    fn fault_rate_option_is_validated() {
        let err = dispatch(&parse("oracle --trials 1 --fault-rate 1.5")).expect_err("rate > 1");
        assert!(err.to_string().contains("outside [0, 1]"), "{err}");
        let err = dispatch(&parse("oracle --trials 1 --fault-rate nan-ish")).expect_err("garbage");
        assert!(err.to_string().contains("not a number"), "{err}");
        let err = dispatch(&parse("census --fault-rate 0.5")).expect_err("foreign option");
        assert!(err.to_string().contains("--fault-rate"), "{err}");
    }

    /// Serializes tests that arm the process-wide flight recorder: two
    /// concurrent `trace_arm`/`take` sequences would steal each other's
    /// events. Tests that never enable tracing are unaffected.
    static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
        TRACE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn profile_command_writes_a_round_trippable_trace_and_hot_reports() {
        let _guard = trace_lock();
        let dir = temp_dir("profile");
        let trace_path = dir.join("trace.json");
        let out = dir.join("out.jsonl");
        dispatch(&parse(&format!(
            "profile oracle --trials 2 --quiet-noise --top 5 --trace-out {} --metrics-out {}",
            trace_path.display(),
            out.display()
        )))
        .expect("profile oracle runs");
        let text = std::fs::read_to_string(&trace_path).expect("trace written");
        let events = trace::parse_chrome_trace(&text).expect("trace round-trips");
        // Concurrent tests may add events to the global recorder, so
        // assert supersets only: this run's lifecycle spans must be in.
        assert!(!events.is_empty());
        assert!(events.iter().any(|e| e.name == "shards.run"), "run-level span present");
        assert!(events.iter().any(|e| e.name == "shard.exec"), "per-shard spans present");
        let records = read_jsonl(&out);
        let opcode_rows: Vec<_> = records
            .iter()
            .filter(|r| r.get("record").and_then(Value::as_str) == Some("profile_opcode"))
            .collect();
        assert!(!opcode_rows.is_empty() && opcode_rows.len() <= 5, "top-N opcode rows");
        for r in &opcode_rows {
            assert!(r.get("retired").and_then(Value::as_u64).unwrap() > 0);
            assert!(r.get("cycles").and_then(Value::as_u64).unwrap() > 0);
        }
        assert!(records
            .iter()
            .any(|r| r.get("record").and_then(Value::as_str) == Some("profile_block")));
        let phase_rows: Vec<_> = records
            .iter()
            .filter(|r| r.get("record").and_then(Value::as_str) == Some("profile_phase"))
            .collect();
        assert_eq!(phase_rows.len(), 4, "decode/dispatch/memory/qarma");
        let summary = records
            .iter()
            .find(|r| r.get("record").and_then(Value::as_str) == Some("profile_summary"))
            .expect("profile_summary record");
        assert!(summary.get("trace_events").and_then(Value::as_u64).unwrap() > 0);
        // The merged machine snapshot carries the raw profile counters.
        let metrics = records.last().expect("metrics record");
        assert_eq!(metrics.get("record").and_then(Value::as_str), Some("metrics"));
        let counters = metrics.get("counters").expect("counters object");
        assert!(
            counters.get("profile.opcode.ldr.retired").and_then(Value::as_u64).unwrap() > 0,
            "profiled loads must be attributed"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_rejects_unknown_experiments_and_foreign_subjects() {
        let err = dispatch(&parse("profile sweep")).expect_err("unsupported experiment");
        assert!(err.to_string().contains("profile cannot run"), "{err}");
        let err = dispatch(&parse("oracle extra --trials 1")).expect_err("foreign subject");
        assert!(err.to_string().contains("unexpected argument 'extra'"), "{err}");
    }

    #[test]
    fn trace_out_on_oracle_emits_a_valid_chrome_trace() {
        let _guard = trace_lock();
        let dir = temp_dir("trace_out");
        let trace_path = dir.join("oracle_trace.json");
        dispatch(&parse(&format!(
            "oracle --trials 2 --quiet-noise --trace-out {}",
            trace_path.display()
        )))
        .expect("oracle runs");
        let text = std::fs::read_to_string(&trace_path).expect("trace written");
        let events = trace::parse_chrome_trace(&text).expect("trace parses");
        assert!(events.iter().any(|e| e.name == "shard.queue_wait"));
        assert!(events.iter().any(|e| e.name == "shards.run"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_out_survives_a_faulted_partial_failure() {
        let _guard = trace_lock();
        let dir = temp_dir("trace_fault");
        let trace_path = dir.join("faulted_trace.json");
        dispatch(&parse(&format!(
            "oracle --trials 2 --jobs 2 --quiet-noise --fault-rate 1 --trace-out {}",
            trace_path.display()
        )))
        .expect_err("rate 1.0 exhausts the budget");
        let text = std::fs::read_to_string(&trace_path).expect("trace written on failure too");
        let events = trace::parse_chrome_trace(&text).expect("trace parses");
        assert!(events.iter().any(|e| e.name == "shard.retry"), "injected faults visible");
        assert!(events.iter().any(|e| e.name == "shard.fail"), "permanent failures visible");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_out_has_no_truncated_trailing_line_after_partial_failure() {
        let dir = temp_dir("faults_durability");
        let out = dir.join("out.jsonl");
        dispatch(&parse(&format!(
            "oracle --trials 4 --jobs 2 --quiet-noise --fault-rate 1 --metrics-out {}",
            out.display()
        )))
        .expect_err("rate 1.0 must exhaust every shard's retry budget");
        let text = std::fs::read_to_string(&out).expect("metrics file written");
        std::fs::remove_dir_all(&dir).ok();
        // Every record emitted before the failure must be durable as a
        // complete line: newline-terminated, no torn tail.
        assert!(!text.is_empty(), "partial evidence must be on disk");
        assert!(text.ends_with('\n'), "no truncated trailing line");
        let records = pacman_telemetry::json::parse_jsonl(&text).expect("valid JSONL");
        assert!(records
            .iter()
            .any(|r| r.get("record").and_then(Value::as_str) == Some("shard_failure")));
    }

    #[test]
    fn emitter_latches_write_errors_and_freezes_the_file() {
        let dir = temp_dir("emitter_errors");
        let path = dir.join("frozen.jsonl");
        std::fs::write(&path, "").expect("create");
        // A read-only handle makes every write fail, exercising the
        // error-latching path without faking a full disk.
        let file = std::fs::OpenOptions::new().read(true).open(&path).expect("read-only open");
        let out = MetricsFile { path: path.display().to_string(), file, committed: 0 };
        let mut emit = Emitter { json_stdout: false, out: Some(out), write_error: None };
        emit.record(&Value::Object(vec![("record".into(), Value::str("a"))]));
        emit.record(&Value::Object(vec![("record".into(), Value::str("b"))]));
        let err = emit.close().expect_err("write failure surfaces on close");
        assert!(err.to_string().contains("frozen.jsonl"), "{err}");
        let text = std::fs::read_to_string(&path).expect("readable");
        std::fs::remove_dir_all(&dir).ok();
        assert!(text.is_empty(), "nothing past the committed boundary: {text:?}");
    }

    #[test]
    fn verify_summary_records_whether_faults_were_active() {
        let dir = temp_dir("verify_faults_field");
        for id in claims::ARTIFACT_IDS {
            claims::example_artifact(id).write_to(&dir).expect("example artifact");
        }
        let out = dir.join("verdicts.jsonl");
        let cmd = format!("verify --dir {} --metrics-out {}", dir.display(), out.display());
        dispatch(&parse(&cmd)).expect("verify runs");
        let records = read_jsonl(&out);
        std::fs::remove_dir_all(&dir).ok();
        let summary = records.last().expect("verify_summary record");
        let faults_active = summary.get("faults_active").and_then(Value::as_bool);
        assert_eq!(faults_active, Some(pacman_core::FaultPlan::from_env().is_active()));
    }
}
