//! The `daemon` and `client` subcommands: `pacmand` serving over a
//! Unix socket or stdio, and a line-protocol client for driving it.
//!
//! The daemon side wires three pieces together: `pacman_daemon`'s
//! scheduling core, the CLI's own `dispatch` as the [`JobRunner`] (so a
//! submitted command line behaves exactly like the one-shot CLI), and
//! the [`jobctx`](crate::jobctx) thread-local that tees every emitted
//! record onto the owning session's stream. Protocol and lifecycle
//! semantics are documented in DESIGN.md §12.

use std::error::Error;
use std::sync::{Arc, Mutex};

use pacman_daemon::net;
use pacman_daemon::{CheckpointPolicy, Daemon, DaemonConfig, JobRunner, JobSink};
use pacman_telemetry::json::{to_jsonl_line, Value};

use crate::args::Args;
use crate::commands;
use crate::jobctx;

type CliResult = Result<(), Box<dyn Error>>;

/// Commands a daemon job may run: the trial-driving and reporting
/// commands. Excluded: `profile` (arms the process-wide profiler and
/// flight recorder, which cannot be scoped to one tenant) and the
/// `daemon`/`client` entry points themselves.
const JOB_COMMANDS: &[&str] = &[
    "oracle",
    "brute",
    "jump2win",
    "sweep",
    "census",
    "conform",
    "mitigations",
    "os",
    "timeline",
    "verify",
];

/// Runs client-submitted command lines through the CLI's `dispatch`
/// with the session's [`JobSink`] installed, so every `Emitter` record
/// tees verbatim onto the session stream and campaign drivers report
/// live shard progress.
pub struct DispatchRunner;

impl JobRunner for DispatchRunner {
    fn run(&self, command: &str, sink: &JobSink) -> Result<(), String> {
        let parsed =
            Args::parse(command.split_whitespace().map(String::from)).map_err(|e| e.to_string())?;
        let Some(cmd) = parsed.command.as_deref() else {
            return Err("no command given".to_string());
        };
        if !JOB_COMMANDS.contains(&cmd) {
            return Err(format!("command '{cmd}' is not available as a daemon job"));
        }
        // Process-global switches would let one tenant reconfigure
        // every other tenant's execution; refuse them per job.
        if parsed.get("runner").is_some() {
            return Err(
                "--runner pins the process-wide backend; configure the daemon, not a job".into()
            );
        }
        if parsed.get("trace-out").is_some() {
            return Err(
                "--trace-out arms the process-wide flight recorder; unavailable in daemon jobs"
                    .into(),
            );
        }
        let _guard = jobctx::install(sink.clone());
        commands::dispatch(&parsed).map_err(|e| e.to_string())
    }
}

fn daemon_config(args: &Args) -> Result<DaemonConfig, Box<dyn Error>> {
    let defaults = DaemonConfig::default();
    Ok(DaemonConfig {
        workers: args.get_num("workers", defaults.workers)?.max(1),
        session_queue: args.get_num("session-queue", defaults.session_queue)?.max(1),
        session_parallel: args.get_num("session-parallel", defaults.session_parallel)?.max(1),
        job_attempts: args.get_num("job-attempts", defaults.job_attempts)?.max(1),
    })
}

/// Builds the durable-mode [`CheckpointPolicy`] from `--state-dir` /
/// `--checkpoint-every`, wired to the machine pool: checkpoints carry
/// donated warm-machine snapshots, and a resumed daemon seeds its pool
/// from them so the first post-restart leases skip the cold boot.
fn checkpoint_policy(args: &Args, state_dir: &str) -> Result<CheckpointPolicy, Box<dyn Error>> {
    let dir = std::path::PathBuf::from(state_dir);
    std::fs::create_dir_all(&dir)
        .map_err(|e| format!("cannot create state dir '{state_dir}': {e}"))?;
    let mut policy = CheckpointPolicy::new(dir.join("pacmand.snapshot"), {
        args.get_num("checkpoint-every", 256u64)?.max(1)
    });
    pacman_core::pool::arm_donation(true);
    policy.collect_machines = Some(Arc::new(pacman_core::pool::take_donations));
    policy.seed_machines = Some(Arc::new(pacman_core::pool::seed));
    Ok(policy)
}

/// `pacman-cli daemon`: serve sessions until a client sends `shutdown`
/// (socket mode) or stdin reaches EOF (`--stdio`), then drain and
/// print the `daemon_drained` record. With `--state-dir` the daemon is
/// durable (periodic snapshots, `--resume` continues a killed run).
pub fn cmd_daemon(args: &Args) -> CliResult {
    let daemon = match args.get("state-dir") {
        Some(dir) => {
            let policy = checkpoint_policy(args, dir)?;
            Arc::new(Daemon::start_durable(
                daemon_config(args)?,
                Arc::new(DispatchRunner),
                policy,
                args.flag("resume"),
            ))
        }
        None => {
            if args.flag("resume") {
                return Err("--resume needs --state-dir to know where the snapshot lives".into());
            }
            Arc::new(Daemon::start(daemon_config(args)?, Arc::new(DispatchRunner)))
        }
    };
    // Announce the resume outcome (daemon_resumed or resume_warning)
    // before serving, so operators and drill scripts see it even though
    // no client connection exists yet.
    if let Some(report) = daemon.resume_report() {
        print!("{}", to_jsonl_line(&report));
        use std::io::Write;
        let _ = std::io::stdout().flush();
    }
    if args.flag("stdio") {
        let writer = Arc::new(Mutex::new(std::io::stdout()));
        net::serve_connection(&daemon, std::io::stdin().lock(), Arc::clone(&writer));
        let report = daemon.drain();
        use std::io::Write;
        let mut w = writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = w.write_all(to_jsonl_line(&report).as_bytes());
        let _ = w.flush();
        return Ok(());
    }
    serve_socket(args, daemon)
}

#[cfg(unix)]
fn serve_socket(args: &Args, daemon: Arc<Daemon>) -> CliResult {
    let path = args.get("socket").unwrap_or("pacmand.sock");
    eprintln!("pacmand: listening on {path}");
    let report = net::serve_unix(daemon, std::path::Path::new(path))
        .map_err(|e| format!("serving '{path}' failed: {e}"))?;
    print!("{}", to_jsonl_line(&report));
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(_args: &Args, _daemon: Arc<Daemon>) -> CliResult {
    Err("unix sockets are unavailable on this platform; use 'daemon --stdio'".into())
}

/// One request line, JSON-escaped through the shared serializer so
/// submitted command text survives quoting intact.
fn request(kind: &str, fields: &[(&str, &str)]) -> String {
    let mut obj = vec![("type".to_string(), Value::str(kind))];
    for (k, v) in fields {
        obj.push(((*k).to_string(), Value::str(*v)));
    }
    to_jsonl_line(&Value::Object(obj))
}

/// `pacman-cli client`: submit one job over the daemon socket and
/// stream its session records to stdout, and/or request shutdown.
/// Without `--submit` or `--shutdown` it pings the daemon and prints
/// the status record.
pub fn cmd_client(args: &Args) -> CliResult {
    client_impl(args)
}

#[cfg(unix)]
fn client_impl(args: &Args) -> CliResult {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let path = args.get("socket").unwrap_or("pacmand.sock");
    let stream = UnixStream::connect(path)
        .map_err(|e| format!("cannot connect to pacmand at '{path}': {e}"))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let read_record =
        |reader: &mut BufReader<UnixStream>| -> Result<Option<Value>, Box<dyn Error>> {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            print!("{line}");
            let value = pacman_telemetry::json::parse(line.trim_end())
                .map_err(|e| format!("daemon sent unparsable record: {e}"))?;
            Ok(Some(value))
        };

    let mut job_failed = false;
    if let Some(command) = args.get("submit") {
        let session = args.get("session").unwrap_or("cli");
        writer.write_all(request("open_session", &[("session", session)]).as_bytes())?;
        writer.write_all(
            request("submit", &[("session", session), ("command", command)]).as_bytes(),
        )?;
        writer.write_all(request("close_session", &[("session", session)]).as_bytes())?;
        writer.flush()?;
        while let Some(record) = read_record(&mut reader)? {
            match record.get("type").and_then(Value::as_str) {
                Some("job_failed") => job_failed = true,
                Some("session_closed") => break,
                // A refused open/submit means session_closed never
                // comes; stop reading instead of hanging.
                Some("error") => {
                    job_failed = true;
                    break;
                }
                _ => {}
            }
        }
    } else if args.flag("attach") {
        // Reattach to an existing session — typically one a restarted
        // daemon resumed from a checkpoint — and stream it to
        // completion: read until the in-flight job finishes, then close
        // the session and wait for its terminal record.
        let session = args.get("session").unwrap_or("cli");
        writer.write_all(request("open_session", &[("session", session)]).as_bytes())?;
        writer.flush()?;
        while let Some(record) = read_record(&mut reader)? {
            match record.get("type").and_then(Value::as_str) {
                Some("job_done") => {
                    writer
                        .write_all(request("close_session", &[("session", session)]).as_bytes())?;
                    writer.flush()?;
                }
                Some("job_failed") => job_failed = true,
                Some("session_closed") => break,
                Some("error") => {
                    job_failed = true;
                    break;
                }
                _ => {}
            }
        }
    } else if !args.flag("shutdown") {
        writer.write_all(request("ping", &[]).as_bytes())?;
        writer.write_all(request("status", &[]).as_bytes())?;
        writer.flush()?;
        let _ = read_record(&mut reader)?;
        let _ = read_record(&mut reader)?;
    }
    if args.flag("shutdown") {
        writer.write_all(request("shutdown", &[]).as_bytes())?;
        writer.flush()?;
    }
    if job_failed {
        return Err("daemon job failed (see the job_failed/error record above)".into());
    }
    Ok(())
}

#[cfg(not(unix))]
fn client_impl(_args: &Args) -> CliResult {
    Err("unix sockets are unavailable on this platform".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit_and_collect(daemon: &Daemon, session: &str, command: &str) -> (Vec<Value>, bool) {
        let handle = daemon.open_session(session).unwrap();
        handle.submit(command).unwrap();
        let mut records = Vec::new();
        let mut failed = false;
        while let Some(r) = handle.next_record() {
            match r.get("type").and_then(Value::as_str) {
                Some("job_done") => break,
                Some("job_failed") => {
                    failed = true;
                    records.push(r);
                    break;
                }
                _ => records.push(r),
            }
        }
        let _ = handle.close();
        (records, failed)
    }

    fn output_lines(records: &[Value]) -> Vec<String> {
        records
            .iter()
            .filter(|r| r.get("type").and_then(Value::as_str) == Some("job_output"))
            .map(|r| r.get("line").and_then(Value::as_str).unwrap().to_string())
            .collect()
    }

    #[test]
    fn a_daemon_job_streams_the_same_records_as_a_one_shot_run() {
        let dir = std::env::temp_dir().join(format!("pacmand-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("oneshot.jsonl");
        let cmd = "oracle --trials 2 --seed 11 --quiet-noise --jobs 2";

        // One-shot CLI run, records captured via --metrics-out.
        let one_shot = format!("{cmd} --metrics-out {}", metrics.display());
        let parsed = Args::parse(one_shot.split_whitespace().map(String::from)).unwrap();
        commands::dispatch(&parsed).unwrap();
        let file = std::fs::read_to_string(&metrics).unwrap();
        let file_lines: Vec<&str> = file.lines().collect();

        // The same command as a daemon job, records teed by jobctx.
        let daemon = Daemon::start(
            DaemonConfig { workers: 1, ..DaemonConfig::default() },
            Arc::new(DispatchRunner),
        );
        let (records, failed) = submit_and_collect(&daemon, "parity", cmd);
        assert!(!failed);
        let streamed = output_lines(&records);
        assert_eq!(streamed, file_lines, "daemon stream diverged from the one-shot CLI run");
        // Campaign progress rode along: one record per merged shard,
        // the count matching the plan each record reports.
        let progress: Vec<_> = records
            .iter()
            .filter(|r| r.get("type").and_then(Value::as_str) == Some("job_progress"))
            .collect();
        assert!(!progress.is_empty(), "no job_progress records streamed");
        let shards = progress[0].get("shards").and_then(Value::as_u64).unwrap() as usize;
        assert_eq!(progress.len(), shards);
        daemon.drain();
        let _ = std::fs::remove_file(&metrics);
    }

    #[test]
    fn forbidden_job_commands_fail_the_job_not_the_daemon() {
        let daemon = Daemon::start(
            DaemonConfig { workers: 1, ..DaemonConfig::default() },
            Arc::new(DispatchRunner),
        );
        for cmd in [
            "profile oracle",
            "daemon",
            "client",
            "oracle --runner scoped",
            "oracle --trace-out t.json",
            "",
        ] {
            let session = format!("forbid-{}", cmd.split_whitespace().next().unwrap_or("empty"));
            let (records, failed) = submit_and_collect(&daemon, &session, cmd);
            assert!(failed, "command {cmd:?} should be refused, records: {records:?}");
        }
        // The daemon still runs legitimate jobs afterwards.
        let (_, failed) = submit_and_collect(&daemon, "after", "timeline --seed 1 --quiet-noise");
        assert!(!failed);
        daemon.drain();
    }
}
