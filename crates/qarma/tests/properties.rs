//! Algebraic property tests for the QARMA-64 cipher and the PAC
//! truncation rule (the crate's fidelity argument: no official test
//! vectors exist offline, so correctness rests on these invariants
//! holding for *arbitrary* keys, tweaks and plaintexts — not just the
//! frozen regression vectors in the unit tests).

use pacman_qarma::{pac_field_bits, PacComputer, Qarma64, QarmaKey};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decryption inverts encryption for every (key, tweak, plaintext):
    /// the three-round Even–Mansour structure with the reflector is a
    /// permutation per (key, tweak), which is what lets AUT recompute
    /// and compare the PAC that PAC embedded.
    #[test]
    fn decrypt_inverts_encrypt(
        w0 in any::<u64>(),
        k0 in any::<u64>(),
        tweak in any::<u64>(),
        plaintext in any::<u64>(),
    ) {
        let cipher = Qarma64::new(QarmaKey::new(w0, k0));
        let ct = cipher.encrypt(plaintext, tweak);
        prop_assert_eq!(cipher.decrypt(ct, tweak), plaintext);
    }

    /// The PAC always fits its truncation field: `64 - va_bits` bits,
    /// matching the paper's §1/§2.2 arithmetic (11 bits at a 53-bit VA,
    /// 16 at 48, 31 at 33), and the mask covers exactly the upper field.
    #[test]
    fn pac_respects_the_truncation_width(
        key in any::<u128>(),
        pointer in any::<u64>(),
        modifier in any::<u64>(),
        va_bits in 33u32..=63,
    ) {
        let unit = PacComputer::new(QarmaKey::from_u128(key), va_bits);
        let bits = unit.pac_bits();
        prop_assert_eq!(bits, 64 - va_bits);
        prop_assert_eq!(bits, pac_field_bits(va_bits));
        let pac = unit.pac(pointer, modifier);
        prop_assert!(pac < (1u64 << bits), "pac {pac:#x} exceeds {bits} bits");
        prop_assert_eq!(unit.pac_mask().count_ones(), bits);
        prop_assert_eq!(unit.pac_mask().trailing_zeros(), va_bits);
        // The PAC field of the pointer must not influence its own PAC
        // (hardware signs the canonical address).
        prop_assert_eq!(pac, unit.pac(pointer | unit.pac_mask(), modifier));
    }

    /// Tweak avalanche: flipping any single tweak bit flips about half
    /// of the 64 ciphertext bits on average. Averaged over all 64
    /// single-bit flips of one (key, tweak, plaintext) sample, the mean
    /// Hamming distance must sit near 32 — a weak tweak schedule (the
    /// classic QARMA implementation mistake) fails this immediately.
    #[test]
    fn single_tweak_bit_flips_avalanche(
        w0 in any::<u64>(),
        k0 in any::<u64>(),
        tweak in any::<u64>(),
        plaintext in any::<u64>(),
    ) {
        let cipher = Qarma64::new(QarmaKey::new(w0, k0));
        let base = cipher.encrypt(plaintext, tweak);
        let total: u32 = (0..64)
            .map(|bit| (cipher.encrypt(plaintext, tweak ^ (1u64 << bit)) ^ base).count_ones())
            .sum();
        let mean = f64::from(total) / 64.0;
        prop_assert!(
            (26.0..=38.0).contains(&mean),
            "mean tweak-flip Hamming distance {mean:.1} is far from 32"
        );
    }
}
