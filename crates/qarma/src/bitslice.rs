//! Bitsliced QARMA-64: 64 independent encryptions per cipher pass.
//!
//! The scalar cipher spends its time shuffling 4-bit cells one at a time.
//! Bitslicing transposes the problem: the state becomes sixteen cells of
//! four *bit planes*, where plane `b` of cell `i` is a `u64` holding bit
//! `b` of that cell across 64 independent lanes. Every cell operation
//! then acts on all 64 lanes at once:
//!
//! - the S-box becomes a sum of 16 boolean minterms over the four input
//!   planes (shared two-bit subproducts keep it cheap);
//! - ShuffleCells / the tweak permutation `h` move whole plane groups;
//! - MixColumns' cell rotations become plane-index rotations;
//! - the tweak LFSR `omega` is a fixed plane shuffle plus one XOR.
//!
//! Lane transposition uses the Hacker's-Delight 64×64 bit-matrix
//! transpose; the same involution converts back, so lane `j` of the
//! output corresponds to lane `j` of the inputs.
//!
//! The §8.2 brute-forcer uses this through
//! [`crate::PacComputer::pac_many`] to evaluate 64 PAC guesses per pass;
//! equality with the scalar cipher is pinned by the tests below on every
//! S-box and round-count variant.

use crate::cells::{MIX_EXP, TAU, TAU_INV};
use crate::cipher::{Qarma64, ALPHA, C};
use crate::tweak::{H, LFSR_CELLS};

/// Lanes processed per bitsliced pass.
pub const LANES: usize = 64;

/// Sixteen cells × four bit planes; `state[i][b]` is bit `b` of cell `i`
/// across all 64 lanes.
type State = [[u64; 4]; 16];

/// In-place 64×64 bit-matrix transpose (Hacker's Delight §7-3). An
/// involution: applying it twice restores the input.
fn transpose64(a: &mut [u64; 64]) {
    let mut j: u32 = 32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = (a[k] ^ (a[k + j as usize] >> j)) & m;
            a[k] ^= t;
            a[k + j as usize] ^= t << j;
            k = (k + j as usize + 1) & !(j as usize);
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Splits 64 lane values into 64 bit planes (`planes[b]` = bit `b` of
/// every lane). The internal lane order inside a plane is a fixed
/// permutation of the input order; [`from_planes`] applies the inverse,
/// so end-to-end lane `j` maps to lane `j`.
fn to_planes(vals: &[u64; 64]) -> [u64; 64] {
    let mut a = *vals;
    transpose64(&mut a);
    a.reverse();
    a
}

/// Inverse of [`to_planes`].
fn from_planes(planes: &[u64; 64]) -> [u64; 64] {
    let mut a = *planes;
    a.reverse();
    transpose64(&mut a);
    a
}

/// Regroups raw bit planes into the cell-major state layout (cell 0 is
/// the most significant nibble, so its planes are bits 60..=63).
fn unpack_state(planes: &[u64; 64]) -> State {
    let mut s = [[0u64; 4]; 16];
    for (i, cell) in s.iter_mut().enumerate() {
        for (b, plane) in cell.iter_mut().enumerate() {
            *plane = planes[60 - 4 * i + b];
        }
    }
    s
}

/// Inverse of [`unpack_state`].
fn pack_state(s: &State) -> [u64; 64] {
    let mut planes = [0u64; 64];
    for (i, cell) in s.iter().enumerate() {
        for (b, plane) in cell.iter().enumerate() {
            planes[60 - 4 * i + b] = *plane;
        }
    }
    planes
}

/// XORs a scalar constant into every lane: set bits flip whole planes.
fn xor_scalar(s: &mut State, x: u64) {
    for (i, cell) in s.iter_mut().enumerate() {
        for (b, plane) in cell.iter_mut().enumerate() {
            if (x >> (60 - 4 * i + b)) & 1 == 1 {
                *plane = !*plane;
            }
        }
    }
}

/// Plane-wise XOR of two states (per-lane tweak material).
fn xor_state(s: &mut State, t: &State) {
    for (cell, tcell) in s.iter_mut().zip(t.iter()) {
        for (plane, tplane) in cell.iter_mut().zip(tcell.iter()) {
            *plane ^= *tplane;
        }
    }
}

/// `new[i] = old[perm[i]]`, matching [`crate::cells::permute`].
fn permute_cells(s: &State, perm: &[usize; 16]) -> State {
    std::array::from_fn(|i| s[perm[i]])
}

/// 4-bit left rotation in the plane domain: output bit `b` is input bit
/// `(b - r) mod 4`, so plane `b` comes from plane `(b + 4 - r) % 4`.
fn rot_planes(p: [u64; 4], r: usize) -> [u64; 4] {
    std::array::from_fn(|b| p[(b + 4 - r) % 4])
}

/// Bitsliced MixColumns, mirroring [`crate::cells::mix_columns`].
fn mix_columns(s: &State) -> State {
    let mut out = [[0u64; 4]; 16];
    for col in 0..4 {
        for row in 0..4 {
            let mut acc = [0u64; 4];
            for (j, &exp) in MIX_EXP.iter().enumerate() {
                if j == 0 {
                    continue; // zero coefficient on the diagonal
                }
                let src = rot_planes(s[4 * ((row + j) % 4) + col], exp as usize);
                for (a, v) in acc.iter_mut().zip(src.iter()) {
                    *a ^= v;
                }
            }
            out[4 * row + col] = acc;
        }
    }
    out
}

/// Applies a 4-bit S-box to one cell's planes as a sum of minterms: the
/// two-bit subproducts `lo`/`hi` are shared, so each of the 16 minterms
/// costs one AND.
fn sbox_cell(x: [u64; 4], table: &[u8; 16]) -> [u64; 4] {
    let (n0, n1, n2, n3) = (!x[0], !x[1], !x[2], !x[3]);
    let lo = [n1 & n0, n1 & x[0], x[1] & n0, x[1] & x[0]];
    let hi = [n3 & n2, n3 & x[2], x[3] & n2, x[3] & x[2]];
    let mut out = [0u64; 4];
    for (v, &y) in table.iter().enumerate() {
        let minterm = hi[v >> 2] & lo[v & 3];
        for (b, plane) in out.iter_mut().enumerate() {
            if (y >> b) & 1 == 1 {
                *plane |= minterm;
            }
        }
    }
    out
}

fn sub_cells(s: &State, table: &[u8; 16]) -> State {
    std::array::from_fn(|i| sbox_cell(s[i], table))
}

/// Bitsliced tweak LFSR step, mirroring [`crate::tweak::omega`]:
/// `(b3, b2, b1, b0) -> (b0 ^ b1, b3, b2, b1)`.
fn omega_planes(p: [u64; 4]) -> [u64; 4] {
    [p[1], p[2], p[3], p[0] ^ p[1]]
}

/// Inverse of [`omega_planes`].
fn omega_inv_planes(p: [u64; 4]) -> [u64; 4] {
    [p[3] ^ p[0], p[0], p[1], p[2]]
}

/// Bitsliced [`crate::tweak::update`]: permute with `h`, LFSR the
/// designated cells.
fn tweak_update(t: &State) -> State {
    let mut out = permute_cells(t, &H);
    for &i in &LFSR_CELLS {
        out[i] = omega_planes(out[i]);
    }
    out
}

/// Bitsliced [`crate::tweak::downdate`] without the final `h⁻¹` packing
/// detour: invert the LFSR cells, then invert the permutation (applying
/// `h` to indices is equivalent to permuting by `H_INV`).
fn tweak_downdate(t: &State) -> State {
    let mut cells = *t;
    for &i in &LFSR_CELLS {
        cells[i] = omega_inv_planes(cells[i]);
    }
    let mut out = [[0u64; 4]; 16];
    for (i, &src) in H.iter().enumerate() {
        out[src] = cells[i];
    }
    out
}

/// One bitsliced forward round body (tweakey already XORed in).
fn forward_round(s: &State, sbox: &[u8; 16], short: bool) -> State {
    let mixed = if short { *s } else { mix_columns(&permute_cells(s, &TAU)) };
    sub_cells(&mixed, sbox)
}

/// One bitsliced backward round body (caller XORs the tweakey after).
fn backward_round(s: &State, sbox_inv: &[u8; 16], short: bool) -> State {
    let subbed = sub_cells(s, sbox_inv);
    if short {
        subbed
    } else {
        permute_cells(&mix_columns(&subbed), &TAU_INV)
    }
}

/// The bitsliced central pseudo-reflector.
fn pseudo_reflect(s: &State, k1: u64) -> State {
    let mut mixed = mix_columns(&permute_cells(s, &TAU));
    xor_scalar(&mut mixed, k1);
    permute_cells(&mixed, &TAU_INV)
}

impl Qarma64 {
    /// Encrypts 64 independent blocks, each under its own tweak, in one
    /// bitsliced pass. Lane `j` of the result is exactly
    /// `self.encrypt(pts[j], tweaks[j])`.
    pub fn encrypt64(&self, pts: &[u64; 64], tweaks: &[u64; 64]) -> [u64; 64] {
        let r = self.rounds_count();
        let (w0, k0, w1, k1) = self.schedule_keys();
        let (sbox, sbox_inv) = self.sbox_tables();

        let mut s = unpack_state(&to_planes(pts));
        let mut t = unpack_state(&to_planes(tweaks));
        xor_scalar(&mut s, w0);
        for (i, &c) in C.iter().enumerate().take(r) {
            xor_scalar(&mut s, k0 ^ c);
            xor_state(&mut s, &t);
            s = forward_round(&s, sbox, i == 0);
            t = tweak_update(&t);
        }
        xor_scalar(&mut s, w1);
        xor_state(&mut s, &t);
        s = forward_round(&s, sbox, false);
        s = pseudo_reflect(&s, k1);
        s = backward_round(&s, sbox_inv, false);
        xor_scalar(&mut s, w0);
        xor_state(&mut s, &t);
        for (i, &c) in C.iter().enumerate().take(r).rev() {
            t = tweak_downdate(&t);
            s = backward_round(&s, sbox_inv, i == 0);
            xor_scalar(&mut s, k0 ^ ALPHA ^ c);
            xor_state(&mut s, &t);
        }
        xor_scalar(&mut s, w1);
        from_planes(&pack_state(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::QarmaKey;
    use crate::sbox::Sigma;
    use crate::Rounds;

    /// SplitMix64: a tiny deterministic generator for test vectors.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn transpose_is_an_involution() {
        let mut seed = 7u64;
        let orig: [u64; 64] = std::array::from_fn(|_| splitmix(&mut seed));
        let mut a = orig;
        transpose64(&mut a);
        assert_ne!(a, orig, "transpose of random data must move bits");
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn plane_roundtrip_preserves_lanes() {
        let mut seed = 99u64;
        let vals: [u64; 64] = std::array::from_fn(|_| splitmix(&mut seed));
        assert_eq!(from_planes(&to_planes(&vals)), vals);
        let state = unpack_state(&to_planes(&vals));
        assert_eq!(from_planes(&pack_state(&state)), vals);
    }

    #[test]
    fn bitsliced_tweak_schedule_matches_scalar() {
        use crate::tweak::{downdate, update};
        let mut seed = 3u64;
        let tweaks: [u64; 64] = std::array::from_fn(|_| splitmix(&mut seed));
        let state = unpack_state(&to_planes(&tweaks));
        let up = from_planes(&pack_state(&tweak_update(&state)));
        let down = from_planes(&pack_state(&tweak_downdate(&state)));
        for j in 0..64 {
            assert_eq!(up[j], update(tweaks[j]), "update lane {j}");
            assert_eq!(down[j], downdate(tweaks[j]), "downdate lane {j}");
        }
    }

    #[test]
    fn bitsliced_sbox_matches_scalar() {
        for sigma in [Sigma::Sigma0, Sigma::Sigma1, Sigma::Sigma2] {
            let table = sigma.table();
            // All 16 nibble values broadcast across dedicated lanes.
            let vals: [u64; 64] = std::array::from_fn(|j| (j % 16) as u64);
            let state = unpack_state(&to_planes(&vals));
            let out = from_planes(&pack_state(&sub_cells(&state, table)));
            for (j, &v) in vals.iter().enumerate() {
                // Cell 15 (least significant nibble) holds the value; all
                // other cells are zero and map through the S-box too.
                let expect = u64::from(table[(v & 0xF) as usize])
                    | (0..15).fold(0u64, |acc, i| acc | u64::from(table[0]) << (60 - 4 * i));
                assert_eq!(out[j], expect, "lane {j}");
            }
        }
    }

    #[test]
    fn encrypt64_matches_scalar_across_variants() {
        let mut seed = 0xACE1u64;
        for (rounds, sigma) in
            [(Rounds::R7, Sigma::Sigma1), (Rounds::R5, Sigma::Sigma0), (Rounds::R5, Sigma::Sigma2)]
        {
            let key = QarmaKey::new(splitmix(&mut seed), splitmix(&mut seed));
            let cipher = Qarma64::with_params(key, rounds, sigma);
            let pts: [u64; 64] = std::array::from_fn(|_| splitmix(&mut seed));
            let tweaks: [u64; 64] = std::array::from_fn(|_| splitmix(&mut seed));
            let sliced = cipher.encrypt64(&pts, &tweaks);
            for j in 0..64 {
                assert_eq!(
                    sliced[j],
                    cipher.encrypt(pts[j], tweaks[j]),
                    "lane {j} diverges for {rounds:?}/{sigma:?}"
                );
            }
        }
    }

    #[test]
    fn encrypt64_handles_shared_tweak_and_edge_blocks() {
        let cipher = Qarma64::new(QarmaKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9));
        let pts: [u64; 64] = std::array::from_fn(|j| match j {
            0 => 0,
            1 => u64::MAX,
            j => 0x0001_0000_0000_0000u64.wrapping_mul(j as u64),
        });
        let sliced = cipher.encrypt64(&pts, &[42u64; 64]);
        for j in 0..64 {
            assert_eq!(sliced[j], cipher.encrypt(pts[j], 42));
        }
    }
}
