//! The QARMA-64 cipher core: whitening, forward rounds, central
//! pseudo-reflector, and backward rounds.

use crate::cells::{mix_columns, pack, permute, unpack, TAU, TAU_INV};
use crate::sbox::{sub_cells, Sigma};
use crate::tweak;

/// Round constants, taken from the digits of pi as in the PRINCE/QARMA
/// lineage. `C[0]` is zero so the first round is the "short" round.
pub(crate) const C: [u64; 8] = [
    0x0000000000000000,
    0x13198A2E03707344,
    0xA4093822299F31D0,
    0x082EFA98EC4E6C89,
    0x452821E638D01377,
    0xBE5466CF34E90C6C,
    0x3F84D5B5B5470917,
    0x9216D5D98979FB1B,
];

/// The reflection constant alpha that breaks the alpha-reflection symmetry
/// between the forward and backward halves.
pub(crate) const ALPHA: u64 = 0xC0AC29B7C97C50DD;

/// Number of forward rounds (the cipher runs `2r + 2` S-box layers total).
///
/// The QARMA paper proposes r in {5, 6, 7} for QARMA-64; ARM PAC
/// implementations use a short-round variant. We default to 7 (full
/// security margin) and keep 5 available for throughput experiments.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum Rounds {
    /// 5 forward rounds (the lightweight proposal).
    R5,
    /// 7 forward rounds (the conservative proposal; default).
    #[default]
    R7,
}

impl Rounds {
    fn count(self) -> usize {
        match self {
            Rounds::R5 => 5,
            Rounds::R7 => 7,
        }
    }
}

/// A 128-bit QARMA key split into the whitening key `w0` and core key `k0`.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub struct QarmaKey {
    w0: u64,
    k0: u64,
}

impl QarmaKey {
    /// Creates a key from its whitening half `w0` and core half `k0`.
    ///
    /// # Example
    ///
    /// ```
    /// use pacman_qarma::QarmaKey;
    /// let key = QarmaKey::new(0x1111, 0x2222);
    /// assert_eq!(key.w0(), 0x1111);
    /// assert_eq!(key.k0(), 0x2222);
    /// ```
    pub fn new(w0: u64, k0: u64) -> Self {
        Self { w0, k0 }
    }

    /// Creates a key from a single 128-bit value (high half = `w0`).
    pub fn from_u128(key: u128) -> Self {
        Self { w0: (key >> 64) as u64, k0: key as u64 }
    }

    /// The whitening key half.
    pub fn w0(&self) -> u64 {
        self.w0
    }

    /// The core key half.
    pub fn k0(&self) -> u64 {
        self.k0
    }

    /// Packs the key back into a 128-bit value (high half = `w0`).
    pub fn to_u128(self) -> u128 {
        (u128::from(self.w0) << 64) | u128::from(self.k0)
    }

    /// The derived second whitening key `w1 = o(w0)`, where `o` is the
    /// orthomorphism `o(x) = (x >>> 1) XOR (x >> 63)`.
    fn w1(&self) -> u64 {
        self.w0.rotate_right(1) ^ (self.w0 >> 63)
    }

    /// The derived reflector key `k1 = M * k0`.
    fn k1(&self) -> u64 {
        pack(&mix_columns(&unpack(self.k0)))
    }
}

/// A QARMA-64 tweakable block cipher instance.
///
/// Encrypts 64-bit blocks under a 64-bit tweak. See the crate docs for the
/// fidelity statement; see [`crate::PacComputer`] for the PAC-specific
/// truncation wrapper.
///
/// # Example
///
/// ```
/// use pacman_qarma::{Qarma64, QarmaKey, Rounds, Sigma};
///
/// let cipher = Qarma64::with_params(QarmaKey::new(1, 2), Rounds::R5, Sigma::Sigma0);
/// let ct = cipher.encrypt(42, 7);
/// assert_eq!(cipher.decrypt(ct, 7), 42);
/// ```
#[derive(Copy, Clone, Debug)]
pub struct Qarma64 {
    key: QarmaKey,
    rounds: Rounds,
    sbox: [u8; 16],
    sbox_inv: [u8; 16],
}

impl Qarma64 {
    /// Creates a cipher with the default parameters (r = 7, sigma1).
    pub fn new(key: QarmaKey) -> Self {
        Self::with_params(key, Rounds::default(), Sigma::default())
    }

    /// Creates a cipher with explicit round count and S-box choice.
    pub fn with_params(key: QarmaKey, rounds: Rounds, sigma: Sigma) -> Self {
        Self { key, rounds, sbox: *sigma.table(), sbox_inv: *sigma.inverse_table() }
    }

    /// The key this instance was constructed with.
    pub fn key(&self) -> QarmaKey {
        self.key
    }

    /// S-box tables for the bitsliced engine (forward, inverse).
    pub(crate) fn sbox_tables(&self) -> (&[u8; 16], &[u8; 16]) {
        (&self.sbox, &self.sbox_inv)
    }

    /// Forward-round count for the bitsliced engine.
    pub(crate) fn rounds_count(&self) -> usize {
        self.rounds.count()
    }

    /// The full key schedule `(w0, k0, w1, k1)` for the bitsliced engine.
    pub(crate) fn schedule_keys(&self) -> (u64, u64, u64, u64) {
        (self.key.w0, self.key.k0, self.key.w1(), self.key.k1())
    }

    /// One forward round: add round tweakey, then (except in the short
    /// round) ShuffleCells and MixColumns, then SubCells.
    fn forward_round(&self, state: u64, tweakey: u64, short: bool) -> u64 {
        let mut cells = unpack(state ^ tweakey);
        if !short {
            cells = mix_columns(&permute(&cells, &TAU));
        }
        cells = sub_cells(&cells, &self.sbox);
        pack(&cells)
    }

    /// Exact inverse of [`Self::forward_round`].
    fn backward_round(&self, state: u64, tweakey: u64, short: bool) -> u64 {
        let mut cells = sub_cells(&unpack(state), &self.sbox_inv);
        if !short {
            cells = permute(&mix_columns(&cells), &TAU_INV);
        }
        pack(&cells) ^ tweakey
    }

    /// The central pseudo-reflector: shuffle, multiply by the involutory
    /// matrix, add the reflector key, unshuffle.
    fn pseudo_reflect(&self, state: u64, k1: u64) -> u64 {
        let cells = permute(&unpack(state), &TAU);
        let mixed = mix_columns(&cells);
        let keyed = unpack(pack(&mixed) ^ k1);
        pack(&permute(&keyed, &TAU_INV))
    }

    /// Exact inverse of [`Self::pseudo_reflect`]. Although the MixColumns
    /// matrix is involutory, the reflector as a whole is not (the key is
    /// added *after* the matrix), so decryption needs the explicit inverse:
    /// unshuffle happens by first re-shuffling, removing the key, then
    /// applying `M` again.
    fn pseudo_reflect_inv(&self, state: u64, k1: u64) -> u64 {
        let cells = unpack(pack(&permute(&unpack(state), &TAU)) ^ k1);
        let unmixed = mix_columns(&cells);
        pack(&permute(&unmixed, &TAU_INV))
    }

    /// Encrypts one 64-bit block under the given tweak.
    #[allow(clippy::needless_range_loop)] // indexing C alongside the tweak mutation reads clearer
    pub fn encrypt(&self, plaintext: u64, tweak: u64) -> u64 {
        let r = self.rounds.count();
        let (w0, k0) = (self.key.w0, self.key.k0);
        let (w1, k1) = (self.key.w1(), self.key.k1());

        let mut s = plaintext ^ w0;
        let mut t = tweak;
        for i in 0..r {
            s = self.forward_round(s, k0 ^ t ^ C[i], i == 0);
            t = tweak::update(t);
        }
        // Whitening round into the reflector.
        s = self.forward_round(s, w1 ^ t, false);
        s = self.pseudo_reflect(s, k1);
        s = self.backward_round(s, w0 ^ t, false);
        for i in (0..r).rev() {
            t = tweak::downdate(t);
            s = self.backward_round(s, k0 ^ ALPHA ^ t ^ C[i], i == 0);
        }
        s ^ w1
    }

    /// Decrypts one 64-bit block under the given tweak.
    ///
    /// Exact inverse of [`Self::encrypt`] for the same key and tweak.
    #[allow(clippy::needless_range_loop)]
    pub fn decrypt(&self, ciphertext: u64, tweak: u64) -> u64 {
        let r = self.rounds.count();
        let (w0, k0) = (self.key.w0, self.key.k0);
        let (w1, k1) = (self.key.w1(), self.key.k1());

        let mut s = ciphertext ^ w1;
        let mut t = tweak;
        // Replay the backward half forwards (inverting it), tracking the
        // tweak through the same schedule positions encryption used.
        for i in 0..r {
            s = self.forward_round(s, k0 ^ ALPHA ^ t ^ C[i], i == 0);
            t = tweak::update(t);
        }
        s = self.forward_round(s, w0 ^ t, false);
        s = self.pseudo_reflect_inv(s, k1);
        s = self.backward_round(s, w1 ^ t, false);
        for i in (0..r).rev() {
            t = tweak::downdate(t);
            s = self.backward_round(s, k0 ^ t ^ C[i], i == 0);
        }
        s ^ w0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> Qarma64 {
        Qarma64::new(QarmaKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9))
    }

    #[test]
    fn decrypt_inverts_encrypt_on_fixed_cases() {
        let c = cipher();
        for (pt, tw) in [
            (0u64, 0u64),
            (u64::MAX, u64::MAX),
            (0xfb623599da6e8127, 0x477d469dec0b8762),
            (0x0123456789abcdef, 0xfedcba9876543210),
        ] {
            assert_eq!(c.decrypt(c.encrypt(pt, tw), tw), pt);
        }
    }

    #[test]
    fn r5_variant_also_roundtrips() {
        let c = Qarma64::with_params(QarmaKey::new(3, 9), Rounds::R5, Sigma::Sigma2);
        let ct = c.encrypt(0x1122334455667788, 0x99aabbccddeeff00);
        assert_eq!(c.decrypt(ct, 0x99aabbccddeeff00), 0x1122334455667788);
    }

    #[test]
    fn frozen_regression_vectors() {
        // Golden outputs frozen from this implementation. If these change,
        // every PAC ever minted by the kernel model changes too, which would
        // silently invalidate recorded experiment transcripts.
        let c = cipher();
        let v1 = c.encrypt(0xfb623599da6e8127, 0x477d469dec0b8762);
        let v2 = c.encrypt(0x0000000000000000, 0x0000000000000000);
        let v3 = c.encrypt(0xffffffffffffffff, 0x0000000000000001);
        // The actual constants are asserted in `tests/regression.rs` after
        // first generation; here we only pin mutual distinctness and
        // determinism.
        assert_eq!(v1, c.encrypt(0xfb623599da6e8127, 0x477d469dec0b8762));
        assert_ne!(v1, v2);
        assert_ne!(v2, v3);
        assert_ne!(v1, v3);
    }

    #[test]
    fn tweak_matters() {
        let c = cipher();
        let pt = 0xdead_beef_cafe_f00d;
        assert_ne!(c.encrypt(pt, 1), c.encrypt(pt, 2));
    }

    #[test]
    fn key_matters() {
        let c1 = Qarma64::new(QarmaKey::new(1, 2));
        let c2 = Qarma64::new(QarmaKey::new(1, 3));
        let c3 = Qarma64::new(QarmaKey::new(2, 2));
        let pt = 0x0102_0304_0506_0708;
        assert_ne!(c1.encrypt(pt, 0), c2.encrypt(pt, 0));
        assert_ne!(c1.encrypt(pt, 0), c3.encrypt(pt, 0));
    }

    #[test]
    fn plaintext_avalanche() {
        // Flipping one plaintext bit should flip roughly half the
        // ciphertext bits (we accept a generous 16..48 window).
        let c = cipher();
        let tw = 0x1111_2222_3333_4444;
        let base = c.encrypt(0x5555_5555_5555_5555, tw);
        let mut min_flips = 64;
        for bit in 0..64 {
            let flipped = c.encrypt(0x5555_5555_5555_5555 ^ (1u64 << bit), tw);
            let flips = (base ^ flipped).count_ones();
            min_flips = min_flips.min(flips);
        }
        assert!(min_flips >= 16, "weak diffusion: only {min_flips} output bits flipped");
    }

    #[test]
    fn tweak_avalanche() {
        let c = cipher();
        let pt = 0x5555_5555_5555_5555;
        let base = c.encrypt(pt, 0);
        for bit in 0..64 {
            let flips = (base ^ c.encrypt(pt, 1u64 << bit)).count_ones();
            assert!(flips >= 16, "tweak bit {bit} flipped only {flips} output bits");
        }
    }

    #[test]
    fn key_halves_roundtrip_through_u128() {
        let k = QarmaKey::new(0xAAAA_BBBB_CCCC_DDDD, 0x1111_2222_3333_4444);
        assert_eq!(QarmaKey::from_u128(k.to_u128()), k);
    }

    #[test]
    fn encryption_is_a_bijection_over_a_sample() {
        use std::collections::HashSet;
        let c = cipher();
        let mut seen = HashSet::new();
        for i in 0..4096u64 {
            assert!(seen.insert(c.encrypt(i, 7)), "collision at input {i}");
        }
    }
}
