//! QARMA-64: the tweakable block cipher behind ARM Pointer Authentication.
//!
//! ARMv8.3 Pointer Authentication computes a Pointer Authentication Code
//! (PAC) by encrypting the pointer under a 128-bit secret key with the
//! pointer's *context* (salt) as the tweak, then truncating the ciphertext
//! into the pointer's unused upper bits. The recommended cipher is QARMA
//! (R. Avanzi, *The QARMA Block Cipher Family*, ToSC 2017), a three-round
//! Even–Mansour construction with a reflector, operating on sixteen 4-bit
//! cells.
//!
//! This crate is a from-scratch implementation of the QARMA-64 structure —
//! whitening, `r` forward rounds, a central pseudo-reflector, and `r`
//! backward rounds — with the MIDORI cell shuffle, the involutory
//! `circ(0, rho^1, rho^2, rho^1)` MixColumns matrix, the sigma S-boxes, and
//! the tweak-schedule cell permutation `h` with an LFSR `omega` on cells
//! {0, 1, 3, 4}.
//!
//! # Fidelity note
//!
//! Official QARMA test vectors are not available in this offline
//! environment, so this implementation is validated by algebraic property
//! (decryption inverts encryption for all keys/tweaks, full avalanche in
//! key, tweak and plaintext, involutory MixColumns, bijective S-boxes) and
//! by frozen regression vectors generated from this implementation. For the
//! PACMAN reproduction this is sufficient: the attack treats the PAC
//! function as an opaque keyed PRF and only its *keyed unpredictability*
//! and *determinism* matter.
//!
//! # Example
//!
//! ```
//! use pacman_qarma::{Qarma64, QarmaKey};
//!
//! let key = QarmaKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9);
//! let cipher = Qarma64::new(key);
//! let ct = cipher.encrypt(0xfb623599da6e8127, 0x477d469dec0b8762);
//! assert_eq!(cipher.decrypt(ct, 0x477d469dec0b8762), 0xfb623599da6e8127);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitslice;
mod cells;
mod cipher;
mod pac;
mod sbox;
mod tweak;

pub use bitslice::LANES as BITSLICE_LANES;
pub use cipher::{Qarma64, QarmaKey, Rounds};
pub use pac::{pac_field_bits, PacComputer};
pub use sbox::Sigma;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_doc_example_holds() {
        let key = QarmaKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9);
        let cipher = Qarma64::new(key);
        let ct = cipher.encrypt(0xfb623599da6e8127, 0x477d469dec0b8762);
        assert_eq!(cipher.decrypt(ct, 0x477d469dec0b8762), 0xfb623599da6e8127);
    }
}
