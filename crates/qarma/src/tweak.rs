//! The QARMA tweak schedule.
//!
//! Between rounds the 64-bit tweak is updated by a cell permutation `h`
//! followed by an LFSR `omega` applied to cells {0, 1, 3, 4}. Both steps
//! are bijective, so the schedule can be run backwards for the reflected
//! rounds.

use crate::cells::{pack, permute, unpack};

/// The tweak-schedule cell permutation `h`: `new[i] = old[H[i]]`.
pub(crate) const H: [usize; 16] = [6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11];

/// Inverse of [`H`].
pub(crate) const H_INV: [usize; 16] = [4, 5, 6, 7, 11, 1, 0, 8, 12, 13, 14, 15, 9, 10, 2, 3];

/// Cells to which the LFSR is applied on every tweak update.
pub(crate) const LFSR_CELLS: [usize; 4] = [0, 1, 3, 4];

/// One step of the 4-bit maximal-period LFSR `omega`:
/// `(b3, b2, b1, b0) -> (b0 XOR b1, b3, b2, b1)`.
pub(crate) fn omega(cell: u8) -> u8 {
    let c = cell & 0xF;
    let b0 = c & 1;
    let b1 = (c >> 1) & 1;
    ((b0 ^ b1) << 3) | (c >> 1)
}

/// Inverse LFSR step: recovers `cell` such that `omega(cell) == input`.
pub(crate) fn omega_inv(cell: u8) -> u8 {
    let c = cell & 0xF;
    let b3 = (c >> 3) & 1;
    let b1 = c & 1; // old b1 ended up in new b0
    let old_b0 = b3 ^ b1;
    ((c << 1) & 0xF) | old_b0
}

/// Advances the tweak by one round: permute with `h`, then LFSR the
/// designated cells.
pub(crate) fn update(tweak: u64) -> u64 {
    let mut cells = permute(&unpack(tweak), &H);
    for &i in &LFSR_CELLS {
        cells[i] = omega(cells[i]);
    }
    pack(&cells)
}

/// Rewinds the tweak by one round (exact inverse of [`update`]).
pub(crate) fn downdate(tweak: u64) -> u64 {
    let mut cells = unpack(tweak);
    for &i in &LFSR_CELLS {
        cells[i] = omega_inv(cells[i]);
    }
    pack(&permute(&cells, &H_INV))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_inv_inverts_h() {
        for i in 0..16 {
            assert_eq!(H_INV[H[i]], i);
        }
    }

    #[test]
    fn h_is_a_permutation() {
        let mut seen = [false; 16];
        for &t in &H {
            assert!(!seen[t]);
            seen[t] = true;
        }
    }

    #[test]
    fn omega_is_bijective_with_inverse() {
        let mut seen = [false; 16];
        for c in 0..16u8 {
            let o = omega(c);
            assert!(o < 16);
            assert!(!seen[o as usize], "omega not bijective");
            seen[o as usize] = true;
            assert_eq!(omega_inv(o), c);
        }
    }

    #[test]
    fn omega_has_long_period_from_nonzero_state() {
        // A maximal-period 4-bit LFSR cycles through all 15 non-zero states.
        let mut c = 1u8;
        let mut period = 0;
        loop {
            c = omega(c);
            period += 1;
            if c == 1 {
                break;
            }
            assert!(period <= 16, "LFSR failed to cycle");
        }
        assert_eq!(period, 15, "omega should have period 15 on non-zero cells");
    }

    #[test]
    fn update_downdate_roundtrip() {
        for &t in &[0u64, 1, 0x0123_4567_89AB_CDEF, u64::MAX, 0x8000_0000_0000_0000] {
            assert_eq!(downdate(update(t)), t);
            assert_eq!(update(downdate(t)), t);
        }
    }

    #[test]
    fn update_changes_the_tweak() {
        // The zero tweak is a fixed point of the LFSR but not of h on a
        // non-uniform state; a non-trivial tweak must move.
        let t = 0x0123_4567_89AB_CDEF;
        assert_ne!(update(t), t);
    }

    #[test]
    fn repeated_updates_do_not_cycle_quickly() {
        let t0 = 0xDEAD_BEEF_0BAD_F00D;
        let mut t = t0;
        for round in 1..=16 {
            t = update(t);
            assert_ne!(t, t0, "tweak schedule cycled after {round} rounds");
        }
    }
}
