//! PAC computation: truncating QARMA ciphertext into a pointer's spare bits.
//!
//! ARMv8.3 computes `PAC = trunc(QARMA_K(pointer, modifier))` where the
//! modifier (salt) is, e.g., the stack pointer for return addresses or the
//! object address for vtable entries. The PACMAN paper's platform (macOS
//! 12.2.1 on M1) uses 48-bit virtual addresses with 16 KB pages, leaving a
//! 16-bit PAC field (paper §7.1).

use crate::cipher::{Qarma64, QarmaKey};

/// Returns the number of PAC bits available for a given virtual-address
/// width, matching the ARMv8.3 layout where the PAC occupies bits
/// `[va_bits, 63]` of the pointer (sign/select bit folded in).
///
/// # Example
///
/// ```
/// // macOS 12.2.1 on M1: 48-bit VAs => 16-bit PACs (paper §7.1).
/// assert_eq!(pacman_qarma::pac_field_bits(48), 16);
/// ```
///
/// # Panics
///
/// Panics if `va_bits` is not in `33..=63`.
pub fn pac_field_bits(va_bits: u32) -> u32 {
    assert!((33..=63).contains(&va_bits), "va_bits must be in 33..=63");
    64 - va_bits
}

/// Computes PACs for pointers under one 128-bit key.
///
/// This is the hardware PAC unit's datapath: one QARMA-64 instance plus the
/// truncation rule. The microarchitecture model calls [`PacComputer::pac`]
/// from its `PACxx` instructions and compares against the embedded field in
/// `AUTxx`.
///
/// # Example
///
/// ```
/// use pacman_qarma::{PacComputer, QarmaKey};
///
/// let pacs = PacComputer::new(QarmaKey::new(0xabc, 0xdef), 48);
/// let pac = pacs.pac(0x0000_7fff_dead_0000, 0x1234);
/// assert!(pac < (1 << 16));
/// // Deterministic: same pointer + same modifier => same PAC.
/// assert_eq!(pac, pacs.pac(0x0000_7fff_dead_0000, 0x1234));
/// ```
#[derive(Copy, Clone, Debug)]
pub struct PacComputer {
    cipher: Qarma64,
    va_bits: u32,
}

impl PacComputer {
    /// Creates a PAC unit for `va_bits`-wide virtual addresses.
    ///
    /// # Panics
    ///
    /// Panics if `va_bits` is not in `33..=63`.
    pub fn new(key: QarmaKey, va_bits: u32) -> Self {
        let _ = pac_field_bits(va_bits); // validate
        Self { cipher: Qarma64::new(key), va_bits }
    }

    /// The virtual-address width this unit was configured for.
    pub fn va_bits(&self) -> u32 {
        self.va_bits
    }

    /// Number of bits in the PAC field.
    pub fn pac_bits(&self) -> u32 {
        pac_field_bits(self.va_bits)
    }

    /// Bit mask covering the PAC field within a 64-bit pointer.
    pub fn pac_mask(&self) -> u64 {
        (u64::MAX >> self.va_bits) << self.va_bits
    }

    /// Computes the PAC for a pointer and modifier.
    ///
    /// Only the low `va_bits` of the pointer participate (the PAC field is
    /// masked out before encryption, since it is where the PAC will be
    /// stored), mirroring the hardware behaviour of signing the canonical
    /// address.
    pub fn pac(&self, pointer: u64, modifier: u64) -> u64 {
        let canonical = pointer & !self.pac_mask();
        let ct = self.cipher.encrypt(canonical, modifier);
        self.fold(ct)
    }

    /// Folds the full ciphertext into the field width so every ciphertext
    /// bit influences the PAC (hardware truncates; folding keeps the
    /// 16-bit PAC sensitive to all 64 output bits, strictly stronger).
    fn fold(&self, ct: u64) -> u64 {
        let bits = self.pac_bits();
        let mut folded = ct;
        let mut width = 64;
        while width > bits {
            width /= 2;
            folded = (folded ^ (folded >> width)) & ((1u64 << width) - 1);
        }
        folded & ((1u64 << bits) - 1)
    }

    /// Computes the PACs of 64 pointers under one shared modifier in a
    /// single bitsliced cipher pass ([`crate::bitslice::LANES`] lanes).
    /// Lane `j` of the result equals `self.pac(pointers[j], modifier)`.
    pub fn pac_batch(&self, pointers: &[u64; 64], modifier: u64) -> [u64; 64] {
        let mask = !self.pac_mask();
        let canonical: [u64; 64] = std::array::from_fn(|j| pointers[j] & mask);
        let cts = self.cipher.encrypt64(&canonical, &[modifier; 64]);
        std::array::from_fn(|j| self.fold(cts[j]))
    }

    /// [`PacComputer::pac_batch`] over an arbitrary-length slice: chunks
    /// of 64 run bitsliced (a short tail pads with zero pointers whose
    /// results are discarded). Element `j` equals
    /// `self.pac(pointers[j], modifier)`.
    pub fn pac_many(&self, pointers: &[u64], modifier: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(pointers.len());
        for chunk in pointers.chunks(64) {
            let mut block = [0u64; 64];
            block[..chunk.len()].copy_from_slice(chunk);
            let pacs = self.pac_batch(&block, modifier);
            out.extend_from_slice(&pacs[..chunk.len()]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> PacComputer {
        PacComputer::new(QarmaKey::new(0x1020_3040_5060_7080, 0x0a0b_0c0d_0e0f_1011), 48)
    }

    #[test]
    fn pac_fits_in_field() {
        let u = unit();
        for p in [0u64, 0xFFFF_FFFF_FFFF, 0x7000_0000_0000, 0x1234_5678_9ABC] {
            assert!(u.pac(p, 0) < (1 << 16));
        }
    }

    #[test]
    fn pac_mask_covers_upper_16_bits_for_48bit_va() {
        assert_eq!(unit().pac_mask(), 0xFFFF_0000_0000_0000);
    }

    #[test]
    fn pac_ignores_existing_pac_field_bits() {
        // Signing an already-signed (or corrupted) pointer must depend only
        // on the canonical address bits.
        let u = unit();
        let p = 0x0000_7fff_0000_1234;
        assert_eq!(u.pac(p, 9), u.pac(p | 0xABCD_0000_0000_0000, 9));
    }

    #[test]
    fn modifier_changes_pac_with_high_probability() {
        let u = unit();
        let p = 0x0000_7fff_0000_1234;
        let mut distinct = 0;
        for m in 0..64u64 {
            if u.pac(p, m) != u.pac(p, m + 1) {
                distinct += 1;
            }
        }
        // With a 16-bit PAC, accidental collisions happen with probability
        // 2^-16 per pair; 64 consecutive collisions would be a bug.
        assert!(distinct >= 60, "modifier barely affects PAC ({distinct}/64 changed)");
    }

    #[test]
    fn pointer_low_bits_change_pac() {
        let u = unit();
        let mut distinct = 0;
        for bit in 0..48 {
            if u.pac(1u64 << bit, 0) != u.pac(0, 0) {
                distinct += 1;
            }
        }
        assert!(distinct >= 44, "pointer bits barely affect PAC ({distinct}/48)");
    }

    #[test]
    fn different_keys_give_different_pacs() {
        let a = PacComputer::new(QarmaKey::new(1, 2), 48);
        let b = PacComputer::new(QarmaKey::new(1, 3), 48);
        let mut same = 0;
        for p in 0..256u64 {
            if a.pac(p << 14, 0) == b.pac(p << 14, 0) {
                same += 1;
            }
        }
        // Expected collisions: 256 / 2^16 < 1; allow a little slack.
        assert!(same <= 3, "keys nearly share a PAC function ({same}/256 equal)");
    }

    #[test]
    fn field_bits_for_other_va_widths() {
        assert_eq!(pac_field_bits(39), 25);
        assert_eq!(pac_field_bits(52), 12);
        // The paper's §1 quotes the 11..=31 bit PAC size range.
        assert!(pac_field_bits(33) == 31 && pac_field_bits(53) == 11);
    }

    #[test]
    #[should_panic(expected = "va_bits")]
    fn invalid_va_width_panics() {
        let _ = pac_field_bits(64);
    }

    #[test]
    fn pac_distribution_is_roughly_uniform() {
        // Chi-square-lite: bucket 4096 PACs of consecutive pointers into 16
        // buckets by top nibble; no bucket should be wildly off 256.
        let u = unit();
        let mut buckets = [0u32; 16];
        for i in 0..4096u64 {
            let pac = u.pac(i << 14, 0xAB);
            buckets[(pac >> 12) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((128..=384).contains(&b), "bucket {i} has {b} hits (expected ~256)");
        }
    }
}
