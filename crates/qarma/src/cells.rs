//! Cell-level state manipulation for QARMA-64.
//!
//! The 64-bit state is viewed as sixteen 4-bit cells. Cell 0 is the most
//! significant nibble, cell 15 the least significant, matching the QARMA
//! paper's internal-state convention. Cells are arranged row-major into a
//! 4x4 matrix for the MixColumns step: cell index `4 * row + col`.

/// Sixteen 4-bit cells unpacked from a 64-bit state word.
pub(crate) type Cells = [u8; 16];

/// Unpacks a 64-bit state into cells (cell 0 = most significant nibble).
pub(crate) fn unpack(x: u64) -> Cells {
    let mut cells = [0u8; 16];
    for (i, cell) in cells.iter_mut().enumerate() {
        *cell = ((x >> (60 - 4 * i)) & 0xF) as u8;
    }
    cells
}

/// Packs sixteen 4-bit cells back into a 64-bit state word.
///
/// Cells must each fit in 4 bits; upper bits are masked defensively.
pub(crate) fn pack(cells: &Cells) -> u64 {
    let mut x = 0u64;
    for (i, &cell) in cells.iter().enumerate() {
        x |= u64::from(cell & 0xF) << (60 - 4 * i);
    }
    x
}

/// The MIDORI cell shuffle tau used by QARMA's ShuffleCells step.
///
/// `new[i] = old[TAU[i]]`.
pub(crate) const TAU: [usize; 16] = [0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2];

/// Inverse of [`TAU`], computed once for clarity in tests and decryption.
pub(crate) const TAU_INV: [usize; 16] = [0, 5, 15, 10, 13, 8, 2, 7, 11, 14, 4, 1, 6, 3, 9, 12];

/// Applies a cell permutation `perm` to the state: `new[i] = old[perm[i]]`.
pub(crate) fn permute(cells: &Cells, perm: &[usize; 16]) -> Cells {
    let mut out = [0u8; 16];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = cells[perm[i]];
    }
    out
}

/// Left-rotates a 4-bit cell by `r` bits.
pub(crate) fn rot4(cell: u8, r: u32) -> u8 {
    let c = u32::from(cell & 0xF);
    (((c << r) | (c >> (4 - r))) & 0xF) as u8
}

/// Exponent row of the involutory QARMA-64 MixColumns matrix
/// `M = circ(0, rho^1, rho^2, rho^1)`.
///
/// Entry 0 denotes the zero element of the ring (no contribution), not the
/// identity rotation; entries 1 and 2 are rotations by that many bits.
pub(crate) const MIX_EXP: [u32; 4] = [0, 1, 2, 1];

/// MixColumns with the involutory matrix `M = circ(0, rho, rho^2, rho)`.
///
/// Operates column-wise on the row-major 4x4 cell matrix. Because the first
/// circulant entry is the ring's zero, each output cell is the XOR of the
/// *other three* cells of its column, each rotated.
pub(crate) fn mix_columns(cells: &Cells) -> Cells {
    let mut out = [0u8; 16];
    for col in 0..4 {
        for row in 0..4 {
            let mut acc = 0u8;
            for (j, &exp) in MIX_EXP.iter().enumerate() {
                if j == 0 {
                    continue; // zero coefficient on the diagonal
                }
                let src = cells[4 * ((row + j) % 4) + col];
                acc ^= rot4(src, exp);
            }
            out[4 * row + col] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for &x in &[0u64, u64::MAX, 0x0123_4567_89AB_CDEF, 0xDEAD_BEEF_CAFE_F00D] {
            assert_eq!(pack(&unpack(x)), x);
        }
    }

    #[test]
    fn cell_zero_is_most_significant_nibble() {
        let cells = unpack(0xF000_0000_0000_0001);
        assert_eq!(cells[0], 0xF);
        assert_eq!(cells[15], 0x1);
    }

    #[test]
    fn tau_inv_inverts_tau() {
        for i in 0..16 {
            assert_eq!(TAU_INV[TAU[i]], i, "TAU_INV is not the inverse at {i}");
        }
        let state = unpack(0x0123_4567_89AB_CDEF);
        let shuffled = permute(&state, &TAU);
        assert_eq!(permute(&shuffled, &TAU_INV), state);
    }

    #[test]
    fn tau_is_a_permutation() {
        let mut seen = [false; 16];
        for &t in &TAU {
            assert!(!seen[t], "duplicate index {t} in TAU");
            seen[t] = true;
        }
    }

    #[test]
    fn rot4_behaves_as_4bit_rotation() {
        assert_eq!(rot4(0b0001, 1), 0b0010);
        assert_eq!(rot4(0b1000, 1), 0b0001);
        assert_eq!(rot4(0b1001, 2), 0b0110);
        for c in 0..16u8 {
            assert_eq!(rot4(rot4(c, 1), 3), c);
        }
    }

    #[test]
    fn mix_columns_is_involutory() {
        // M is self-inverse; this is what lets QARMA share circuitry between
        // encryption and decryption, and what `cipher.rs` relies on.
        for &x in
            &[0u64, 0x0123_4567_89AB_CDEF, 0xFFFF_0000_FFFF_0000, 0x1111_2222_3333_4444, u64::MAX]
        {
            let cells = unpack(x);
            let twice = mix_columns(&mix_columns(&cells));
            assert_eq!(twice, cells, "M^2 != I for state {x:#x}");
        }
    }

    #[test]
    fn mix_columns_diffuses_within_column() {
        // A single-cell difference must spread to the other three cells of
        // its column and nowhere else.
        let zero = [0u8; 16];
        let mut one = zero;
        one[0] = 0x1; // row 0, col 0
        let mixed = mix_columns(&one);
        assert_eq!(mixed[0], 0, "diagonal coefficient must be zero");
        assert_ne!(mixed[4], 0);
        assert_ne!(mixed[8], 0);
        assert_ne!(mixed[12], 0);
        for col in 1..4 {
            for row in 0..4 {
                assert_eq!(mixed[4 * row + col], 0, "difference leaked across columns");
            }
        }
    }
}
