//! The QARMA sigma S-box family.
//!
//! QARMA defines three 4-bit S-boxes. `sigma0` is an involution borrowed
//! from MIDORI-style designs and intended for lightweight hardware;
//! `sigma1` is the cipher's recommended default; `sigma2` maximises
//! nonlinearity. ARM implementations use `sigma1`-class boxes.

/// Selects which of the three QARMA S-boxes the cipher instance uses.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum Sigma {
    /// The involutory S-box sigma0.
    Sigma0,
    /// The default QARMA-64 S-box sigma1 (used by this crate by default).
    #[default]
    Sigma1,
    /// The high-nonlinearity S-box sigma2.
    Sigma2,
}

const SIGMA0: [u8; 16] = [0, 14, 2, 10, 9, 15, 8, 11, 6, 4, 3, 7, 13, 12, 1, 5];
const SIGMA1: [u8; 16] = [10, 13, 14, 6, 15, 7, 3, 5, 9, 8, 0, 12, 11, 1, 2, 4];
const SIGMA2: [u8; 16] = [11, 6, 8, 15, 12, 0, 9, 14, 3, 7, 4, 5, 13, 2, 1, 10];

/// Compile-time inversion of a 4-bit S-box table.
const fn invert(fwd: [u8; 16]) -> [u8; 16] {
    let mut inv = [0u8; 16];
    let mut x = 0;
    while x < 16 {
        inv[fwd[x] as usize] = x as u8;
        x += 1;
    }
    inv
}

const SIGMA0_INV: [u8; 16] = invert(SIGMA0);
const SIGMA1_INV: [u8; 16] = invert(SIGMA1);
const SIGMA2_INV: [u8; 16] = invert(SIGMA2);

impl Sigma {
    /// Returns the forward lookup table of this S-box.
    pub fn table(self) -> &'static [u8; 16] {
        match self {
            Sigma::Sigma0 => &SIGMA0,
            Sigma::Sigma1 => &SIGMA1,
            Sigma::Sigma2 => &SIGMA2,
        }
    }

    /// Returns the inverse lookup table of this S-box. The inverses are
    /// computed at compile time; this is a table reference, not a
    /// per-call recomputation.
    pub fn inverse_table(self) -> &'static [u8; 16] {
        match self {
            Sigma::Sigma0 => &SIGMA0_INV,
            Sigma::Sigma1 => &SIGMA1_INV,
            Sigma::Sigma2 => &SIGMA2_INV,
        }
    }

    /// Applies the S-box to a single 4-bit cell.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `cell` does not fit in 4 bits.
    pub fn apply(self, cell: u8) -> u8 {
        debug_assert!(cell < 16, "S-box input must be a nibble");
        self.table()[(cell & 0xF) as usize]
    }
}

/// Applies the S-box to every cell of the state.
pub(crate) fn sub_cells(cells: &[u8; 16], table: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for (o, &c) in out.iter_mut().zip(cells.iter()) {
        *o = table[(c & 0xF) as usize];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijective(t: &[u8; 16]) {
        let mut seen = [false; 16];
        for &v in t {
            assert!(v < 16);
            assert!(!seen[v as usize], "S-box not bijective: duplicate {v}");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn all_sboxes_are_bijective() {
        for s in [Sigma::Sigma0, Sigma::Sigma1, Sigma::Sigma2] {
            assert_bijective(s.table());
        }
    }

    #[test]
    fn sigma0_is_an_involution() {
        let t = Sigma::Sigma0.table();
        for x in 0..16u8 {
            assert_eq!(t[t[x as usize] as usize], x);
        }
    }

    #[test]
    fn inverse_table_inverts() {
        for s in [Sigma::Sigma0, Sigma::Sigma1, Sigma::Sigma2] {
            let inv = s.inverse_table();
            for x in 0..16u8 {
                assert_eq!(inv[s.apply(x) as usize], x);
            }
        }
    }

    #[test]
    fn sboxes_have_no_fixed_point_structure_leak() {
        // Nonlinearity sanity: no S-box may be affine. A cheap necessary
        // check: sigma(x) ^ sigma(x ^ 1) must not be constant.
        for s in [Sigma::Sigma0, Sigma::Sigma1, Sigma::Sigma2] {
            let d0 = s.apply(0) ^ s.apply(1);
            let constant = (0..16u8).step_by(2).all(|x| s.apply(x) ^ s.apply(x ^ 1) == d0);
            assert!(!constant, "{s:?} looks affine in bit 0");
        }
    }

    #[test]
    fn sub_cells_applies_per_cell() {
        let cells = [0u8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];
        let out = sub_cells(&cells, Sigma::Sigma1.table());
        assert_eq!(out.to_vec(), Sigma::Sigma1.table().to_vec());
    }
}
