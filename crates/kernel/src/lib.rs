//! An XNU-like kernel model for the PACMAN reproduction.
//!
//! The paper's victim is the macOS kernel: PA-protected, reachable through
//! syscalls, extensible through kexts, and fatally allergic to PAC
//! failures (a failed `AUT` whose result is dereferenced architecturally
//! panics the machine, renewing the per-boot PA keys — the
//! security-by-crash property the PACMAN attack defeats).
//!
//! This crate provides:
//!
//! - [`Kernel`] — boots on a [`pacman_uarch::Machine`]: installs per-boot
//!   random PA keys, maps the syscall vector and a userspace syscall stub,
//!   dispatches syscalls by running real EL1 code on the simulated core,
//!   and converts EL1 traps into panics + reboots (with key renewal and
//!   crash accounting).
//! - [`kext`] — loadable kernel extensions mirroring the paper's PoC
//!   setup: the §8.1 PACMAN-gadget kext (data and instruction variants,
//!   Listing 1), the iTLB jump-pad kext, the §8.3 C++-style
//!   signed-vtable kext with a `win()` function, and the §6.1 kext that
//!   exposes `PMC0` to userspace.
//!
//! # Example
//!
//! ```
//! use pacman_kernel::{Kernel, kext::GadgetKext};
//! use pacman_uarch::{Machine, MachineConfig};
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! let mut kernel = Kernel::boot(&mut machine, 7);
//! let kext = GadgetKext::install(&mut kernel, &mut machine);
//! // Training call: branch taken, kext-internal valid pointer — no crash.
//! kernel
//!     .syscall(&mut machine, kext.data_gadget, &[0, 0, 1])
//!     .expect("training call must not panic the kernel");
//! assert_eq!(kernel.crash_count(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
pub mod kext;
pub mod layout;

pub use kernel::{Kernel, KernelError};
