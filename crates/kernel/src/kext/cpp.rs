//! The §8.3 Jump2Win victim: C++-style method dispatch over signed
//! vtables (Listing 2, Figure 9).
//!
//! Kernel data holds two adjacent objects. `object1` starts with a
//! buffer; `object2` starts with its PA-protected vtable pointer. A
//! buffer-overflow syscall lets the attacker overflow `object1.buf` into
//! `object2`'s vtable pointer; a dispatch syscall performs the two-step
//! authenticated method call of Listing 2. The kext also ships a `win()`
//! function that is *not* reachable through any legitimate vtable, plus
//! key/salt-matched PACMAN gadget syscalls the attacker uses to
//! brute-force the two PACs Figure 9 requires.

use pacman_isa::ptr::VirtualAddress;
use pacman_isa::{Asm, Inst, PacKey, PacModifier, Reg};
use pacman_uarch::Machine;

use crate::kernel::{load_kernel_program, read_kernel_u64, write_kernel_u64};
use crate::layout;
use crate::Kernel;

/// Value `win()` writes into the flag: proof of control-flow hijack.
pub const WIN_MAGIC: u64 = 0x57494E21_57494E21;
/// Value the legitimate method writes into the flag.
pub const NORMAL_MAGIC: u64 = 0x6E6F726D_6E6F726D;

/// Byte offset of `object1.buf` within the object page.
pub const BUF_OFFSET: u64 = 0;
/// Size of `object1` (and thus the offset of `object2`).
pub const OBJ2_OFFSET: u64 = 48;
/// Offset of the re-initialised protected pointer inside each gadget
/// object.
pub const GADGET_FP_OFFSET: u64 = 16;

/// Handles to the installed kext.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct CppKext {
    /// Overflow syscall: `x0` = user buffer, `x1` = length; copies into
    /// `object1.buf`.
    pub overflow: u64,
    /// Dispatch syscall: `x1` = method index; performs Listing 2.
    pub dispatch: u64,
    /// Listing-1-style gadget whose `AUT` uses the IA key with the object
    /// address as salt — brute-forces vtable-entry PACs.
    pub gadget_ia: u64,
    /// Gadget whose `AUT` uses the DA key with the object address as salt
    /// — brute-forces vtable-pointer PACs.
    pub gadget_da: u64,
    /// VA of `object1` (its buffer starts here).
    pub obj1: u64,
    /// VA of `object2` (its signed vtable pointer lives here).
    pub obj2: u64,
    /// VA of the legitimate vtable.
    pub vtable: u64,
    /// VA of the legitimate method.
    pub method_normal: u64,
    /// VA of the `win()` function the attacker redirects to.
    pub win_fn: u64,
    /// VA of the flag the methods write.
    flag: u64,
    /// Gadget object pages.
    pub gadget_obj_ia: u64,
    /// Gadget object page for the DA-key gadget.
    pub gadget_obj_da: u64,
}

impl CppKext {
    /// Loads the kext: allocates objects and vtable, signs all protected
    /// pointers under the current per-boot keys, and registers the four
    /// syscalls.
    pub fn install(kernel: &mut Kernel, machine: &mut Machine) -> Self {
        let objects = kernel.alloc_data_page(machine);
        let obj1 = objects;
        let obj2 = objects + OBJ2_OFFSET;
        let vtable = kernel.alloc_data_page(machine);
        let flag = kernel.alloc_data_page(machine);
        let gadget_obj_ia = kernel.alloc_data_page(machine);
        let gadget_obj_da = kernel.alloc_data_page(machine);

        // Methods live on separate pages so the BTB-predicted target and
        // the verified pointer are in different pages (§4.2 constraint).
        // They are placed at computed VAs whose dTLB sets (40/41) stay
        // clear of the pages the syscall path touches on every call
        // (syscall table, scratch, object pages) — a brute force against
        // `win()` monitors win's set, so that set must be quiet.
        let method_base = layout::PLACED_REGION_BASE + 0x2_0000_0000;
        let method_normal = method_base + 40 * pacman_isa::ptr::PAGE_SIZE;
        let win_fn = method_base + 41 * pacman_isa::ptr::PAGE_SIZE;
        machine.map_page(method_normal, pacman_uarch::Perms::kernel_rx());
        machine.map_page(win_fn, pacman_uarch::Perms::kernel_rx());
        load_kernel_program(machine, method_normal, &Self::method(flag, NORMAL_MAGIC));
        load_kernel_program(machine, win_fn, &Self::method(flag, WIN_MAGIC));

        let kext = Self {
            overflow: 0,
            dispatch: 0,
            gadget_ia: 0,
            gadget_da: 0,
            obj1,
            obj2,
            vtable,
            method_normal,
            win_fn,
            flag,
            gadget_obj_ia,
            gadget_obj_da,
        };
        kext.initialize_objects(kernel, machine);

        let overflow = kernel.register_syscall(machine, &Self::overflow_handler(obj1));
        let dispatch = kernel.register_syscall(machine, &Self::dispatch_handler(obj2));
        let gadget_ia = kernel.register_syscall(
            machine,
            &Self::gadget_handler(gadget_obj_ia, method_normal, obj2, PacKey::Ia),
        );
        let gadget_da = kernel.register_syscall(
            machine,
            &Self::gadget_handler(gadget_obj_da, vtable, obj2, PacKey::Da),
        );

        Self { overflow, dispatch, gadget_ia, gadget_da, ..kext }
    }

    /// (Re-)signs the legitimate object graph under the *current* keys —
    /// what object construction does. Also used after a kernel panic,
    /// when a reboot has renewed the keys and invalidated every stored
    /// PAC.
    pub fn initialize_objects(&self, kernel: &mut Kernel, machine: &mut Machine) {
        let _ = kernel;
        let ia = machine.cpu.pac_computer(PacKey::Ia);
        let da = machine.cpu.pac_computer(PacKey::Da);
        // vtable[0] = &method_normal, signed with IA and the object salt.
        write_kernel_u64(
            machine,
            self.vtable,
            pacman_isa::ptr::sign(&ia, self.method_normal, self.obj2),
        );
        // object2.vtable_ptr = &vtable, signed with DA and the object salt.
        write_kernel_u64(machine, self.obj2, pacman_isa::ptr::sign(&da, self.vtable, self.obj2));
        write_kernel_u64(machine, self.flag, 0);
    }

    fn method(flag: u64, magic: u64) -> Vec<Inst> {
        let mut a = Asm::new();
        a.mov_imm64(Reg::X9, flag);
        a.mov_imm64(Reg::X10, magic);
        a.push(Inst::Str { rt: Reg::X10, rn: Reg::X9, offset: 0 });
        a.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 });
        a.push(Inst::Eret);
        a.assemble().expect("method assembles")
    }

    fn overflow_handler(obj1: u64) -> Vec<Inst> {
        let mut a = Asm::new();
        a.mov_imm64(Reg::X9, obj1 + BUF_OFFSET);
        super::emit_memcpy_from_user(&mut a);
        a.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 });
        a.push(Inst::Eret);
        a.assemble().expect("overflow handler assembles")
    }

    /// Listing 2: `vtable_ptr = AUT_DA(*obj); fp = AUT_IA(vtable_ptr[i]);
    /// call fp;`.
    fn dispatch_handler(obj2: u64) -> Vec<Inst> {
        let mut a = Asm::new();
        a.mov_imm64(Reg::X9, obj2);
        a.push(Inst::Ldr { rt: Reg::X10, rn: Reg::X9, offset: 0 });
        a.push(Inst::Aut { key: PacKey::Da, rd: Reg::X10, modifier: PacModifier::Reg(Reg::X9) });
        a.push(Inst::LslImm { rd: Reg::X11, rn: Reg::X1, shift: 3 });
        a.push(Inst::AddReg { rd: Reg::X11, rn: Reg::X10, rm: Reg::X11 });
        a.push(Inst::Ldr { rt: Reg::X12, rn: Reg::X11, offset: 0 });
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X12, modifier: PacModifier::Reg(Reg::X9) });
        a.push(Inst::Blr { rn: Reg::X12 });
        // Methods return from the syscall themselves.
        a.assemble().expect("dispatch handler assembles")
    }

    /// A Listing-1 gadget whose AUT key/salt match the dispatch path, so
    /// the §8.2 brute force recovers PACs that are valid for Figure 9.
    /// ABI: `x0` = user buffer, `x1` = length, `x2` = cond.
    fn gadget_handler(obj: u64, benign: u64, salt: u64, key: PacKey) -> Vec<Inst> {
        let mut a = Asm::new();
        let skip = a.new_label();
        a.mov_imm64(Reg::X9, obj);
        a.mov_imm64(Reg::X13, salt);
        a.mov_imm64(Reg::X14, benign);
        a.push(Inst::Pac { key, rd: Reg::X14, modifier: PacModifier::Reg(Reg::X13) });
        a.push(Inst::Str { rt: Reg::X14, rn: Reg::X9, offset: GADGET_FP_OFFSET as i16 });
        super::emit_memcpy_from_user(&mut a);
        // The copy loop clobbers x13; reload the salt before the gadget.
        a.mov_imm64(Reg::X13, salt);
        a.cbz(Reg::X2, skip);
        a.push(Inst::Ldr { rt: Reg::X14, rn: Reg::X9, offset: GADGET_FP_OFFSET as i16 });
        a.push(Inst::Aut { key, rd: Reg::X14, modifier: PacModifier::Reg(Reg::X13) });
        a.push(Inst::Ldr { rt: Reg::X15, rn: Reg::X14, offset: 0 });
        a.bind(skip);
        a.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 });
        a.push(Inst::Eret);
        a.assemble().expect("gadget handler assembles")
    }

    /// Current value of the flag the methods write.
    pub fn flag_value(&self, machine: &Machine) -> u64 {
        read_kernel_u64(machine, self.flag)
    }

    /// The dTLB-relevant vpns touched by this kext's handlers on every
    /// call.
    pub fn hot_data_vpns(&self) -> Vec<u64> {
        vec![
            VirtualAddress::new(self.obj1).vpn(),
            VirtualAddress::new(self.vtable).vpn(),
            VirtualAddress::new(self.flag).vpn(),
            VirtualAddress::new(self.gadget_obj_ia).vpn(),
            VirtualAddress::new(self.gadget_obj_da).vpn(),
            VirtualAddress::new(layout::SYSCALL_TABLE).vpn(),
            // Benign targets of the gadget syscalls: speculatively loaded
            // on copy-loop boundary mispredictions.
            VirtualAddress::new(self.method_normal).vpn(),
        ]
    }

    /// Ground truth for evaluation: the correct PAC of `pointer` under
    /// `key` with the object salt.
    pub fn debug_true_pac(&self, machine: &Machine, key: PacKey, pointer: u64) -> u16 {
        let pacs = machine.cpu.pac_computer(key);
        pacman_isa::ptr::pac_field(pacman_isa::ptr::sign(&pacs, pointer, self.obj2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_isa::ptr::with_pac_field;
    use pacman_uarch::MachineConfig;

    fn setup() -> (Machine, Kernel, CppKext) {
        let mut m = Machine::new(MachineConfig { os_noise: 0.0, ..MachineConfig::default() });
        let mut k = Kernel::boot(&mut m, 1234);
        let c = CppKext::install(&mut k, &mut m);
        (m, k, c)
    }

    #[test]
    fn legitimate_dispatch_calls_the_normal_method() {
        let (mut m, mut k, c) = setup();
        k.syscall(&mut m, c.dispatch, &[0, 0]).unwrap();
        assert_eq!(c.flag_value(&m), NORMAL_MAGIC);
        assert_eq!(k.crash_count(), 0);
    }

    #[test]
    fn overflow_reaches_object2s_vtable_pointer() {
        let (mut m, mut k, c) = setup();
        let original = read_kernel_u64(&m, c.obj2);
        let mut payload = vec![0u8; (OBJ2_OFFSET + 8) as usize];
        payload[OBJ2_OFFSET as usize..].copy_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
        assert!(m.mem.debug_write_bytes(layout::USER_SCRATCH, &payload));
        k.syscall(&mut m, c.overflow, &[layout::USER_SCRATCH, payload.len() as u64]).unwrap();
        assert_ne!(read_kernel_u64(&m, c.obj2), original);
        assert_eq!(read_kernel_u64(&m, c.obj2), 0xDEAD_BEEF);
    }

    #[test]
    fn naive_vtable_swap_without_pacs_panics_the_kernel() {
        // The Pointer Authentication success story: without PACMAN, the
        // attacker's overwrite crashes on dispatch.
        let (mut m, mut k, c) = setup();
        let mut payload = vec![0u8; (OBJ2_OFFSET + 8) as usize];
        payload[OBJ2_OFFSET as usize..].copy_from_slice(&(c.obj1 + BUF_OFFSET).to_le_bytes());
        m.mem.debug_write_bytes(layout::USER_SCRATCH, &payload);
        k.syscall(&mut m, c.overflow, &[layout::USER_SCRATCH, payload.len() as u64]).unwrap();
        let err = k.syscall(&mut m, c.dispatch, &[0, 0]).unwrap_err();
        assert!(matches!(err, crate::KernelError::Panic { .. }));
        assert_eq!(k.crash_count(), 1);
        assert_ne!(c.flag_value(&m), WIN_MAGIC);
    }

    #[test]
    fn jump2win_succeeds_with_correct_pacs() {
        // Figure 9 end-to-end, using ground-truth PACs (the attack crate
        // recovers the same values via the PAC oracle).
        let (mut m, mut k, c) = setup();
        let pac_win = c.debug_true_pac(&m, PacKey::Ia, c.win_fn);
        let fake_vtable = c.obj1 + BUF_OFFSET;
        let pac_vt = c.debug_true_pac(&m, PacKey::Da, fake_vtable);

        let mut payload = vec![0u8; (OBJ2_OFFSET + 8) as usize];
        payload[0..8].copy_from_slice(&with_pac_field(c.win_fn, pac_win).to_le_bytes());
        payload[OBJ2_OFFSET as usize..]
            .copy_from_slice(&with_pac_field(fake_vtable, pac_vt).to_le_bytes());
        m.mem.debug_write_bytes(layout::USER_SCRATCH, &payload);

        k.syscall(&mut m, c.overflow, &[layout::USER_SCRATCH, payload.len() as u64]).unwrap();
        k.syscall(&mut m, c.dispatch, &[0, 0]).unwrap();
        assert_eq!(c.flag_value(&m), WIN_MAGIC, "control flow must reach win()");
        assert_eq!(k.crash_count(), 0, "the hijack must be crash-free");
    }

    #[test]
    fn gadget_salts_match_the_dispatch_path() {
        // The PACs the gadgets verify are the PACs dispatch consumes.
        let (mut m, mut k, c) = setup();
        // Training calls work (valid pointer, cond=1).
        for _ in 0..8 {
            k.syscall(&mut m, c.gadget_ia, &[0, 0, 1]).unwrap();
            k.syscall(&mut m, c.gadget_da, &[0, 0, 1]).unwrap();
        }
        assert_eq!(k.crash_count(), 0);
    }

    #[test]
    fn gadget_ia_leaks_the_win_pac_speculatively() {
        let (mut m, mut k, c) = setup();
        let true_pac = c.debug_true_pac(&m, PacKey::Ia, c.win_fn);
        for _ in 0..64 {
            k.syscall(&mut m, c.gadget_ia, &[0, 0, 1]).unwrap();
        }
        let win_vpn = VirtualAddress::new(c.win_fn).vpn();

        m.mem.tlbs.flush();
        let mut payload = [0u8; 24];
        payload[16..].copy_from_slice(&with_pac_field(c.win_fn, true_pac).to_le_bytes());
        m.mem.debug_write_bytes(layout::USER_SCRATCH, &payload);
        k.syscall(&mut m, c.gadget_ia, &[layout::USER_SCRATCH, 24, 0]).unwrap();
        assert!(m.mem.tlbs.dtlb().contains(win_vpn), "correct PAC leaves a footprint");

        m.mem.tlbs.flush();
        payload[16..].copy_from_slice(&with_pac_field(c.win_fn, true_pac ^ 3).to_le_bytes());
        m.mem.debug_write_bytes(layout::USER_SCRATCH, &payload);
        k.syscall(&mut m, c.gadget_ia, &[layout::USER_SCRATCH, 24, 0]).unwrap();
        assert!(!m.mem.tlbs.dtlb().contains(win_vpn), "wrong PAC leaves none");
        assert_eq!(k.crash_count(), 0);
    }

    #[test]
    fn reinitialize_after_reboot_restores_dispatch() {
        let (mut m, mut k, c) = setup();
        // Crash the kernel (naive overwrite), then re-initialise.
        let mut payload = vec![0u8; (OBJ2_OFFSET + 8) as usize];
        payload[OBJ2_OFFSET as usize..].copy_from_slice(&(c.obj1).to_le_bytes());
        m.mem.debug_write_bytes(layout::USER_SCRATCH, &payload);
        k.syscall(&mut m, c.overflow, &[layout::USER_SCRATCH, payload.len() as u64]).unwrap();
        assert!(k.syscall(&mut m, c.dispatch, &[0, 0]).is_err());
        c.initialize_objects(&mut k, &mut m);
        k.syscall(&mut m, c.dispatch, &[0, 0]).unwrap();
        assert_eq!(c.flag_value(&m), NORMAL_MAGIC);
    }
}
