//! Jump-pad syscalls for kernel-iTLB self-eviction (§8.1).
//!
//! The L1 iTLBs are private per privilege level, so a userspace attacker
//! cannot observe a kernel instruction fetch directly. The paper's trick:
//! make the *kernel* evict the target entry from its own iTLB by invoking
//! a few syscalls whose handlers live at kernel VAs in the same iTLB set
//! (stride 32 × 16 KB). The evicted entry migrates into the shared L1
//! dTLB, where userspace Prime+Probe can see it.

use pacman_isa::ptr::{VirtualAddress, PAGE_SIZE};
use pacman_isa::{Asm, Inst, Reg};
use pacman_uarch::{Machine, Perms};

use crate::layout;
use crate::Kernel;

/// Number of iTLB sets (Figure 6: 4 ways × 32 sets).
const ITLB_SETS: u64 = 32;
/// Number of dTLB sets (Figure 6).
const DTLB_SETS: u64 = 256;

/// A group of jump-pad syscalls targeting one iTLB set.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct JumpPads {
    /// Syscall numbers of the pads, in eviction order.
    pub syscalls: Vec<u64>,
    /// The kernel VAs the pad handlers live at.
    pub pad_vas: Vec<u64>,
    itlb_set: u64,
}

impl JumpPads {
    /// Installs `count` pads whose handlers map to the same kernel iTLB
    /// set as `target_va`, while avoiding the target's *dTLB* set (so the
    /// pads' own migrated entries do not pollute the probed set).
    pub fn install_for_target(
        kernel: &mut Kernel,
        machine: &mut Machine,
        target_va: u64,
        count: usize,
    ) -> Self {
        let target_vpn = VirtualAddress::new(target_va).vpn();
        let itlb_set = target_vpn % ITLB_SETS;
        let target_dtlb_set = target_vpn % DTLB_SETS;

        // Pads live 4 GiB into the placed region (disjoint from target
        // pages), which is 256-set aligned.
        let base = layout::PLACED_REGION_BASE + 0x1_0000_0000;
        debug_assert_eq!(VirtualAddress::new(base).vpn() % DTLB_SETS, 0);

        let mut pad_vas = Vec::with_capacity(count);
        let mut k = 1u64;
        while pad_vas.len() < count {
            let vpn_offset = itlb_set + ITLB_SETS * k;
            // Skip strides whose dTLB set collides with the target's.
            if vpn_offset % DTLB_SETS != target_dtlb_set {
                pad_vas.push(base + vpn_offset * PAGE_SIZE);
            }
            k += 1;
        }

        let mut handler = Asm::new();
        handler.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 });
        handler.push(Inst::Eret);
        let program = handler.assemble().expect("pad handler assembles");

        let mut syscalls = Vec::with_capacity(count);
        for &va in &pad_vas {
            machine.map_page(va, Perms::kernel_rx());
            syscalls.push(kernel.register_syscall_at(machine, va, &program));
        }
        Self { syscalls, pad_vas, itlb_set }
    }

    /// The kernel iTLB set these pads occupy.
    pub fn itlb_set(&self) -> u64 {
        self.itlb_set
    }

    /// Triggers every pad once, in order — the §8.1 step (5) eviction.
    pub fn evict(&self, kernel: &mut Kernel, machine: &mut Machine) {
        for &sc in &self.syscalls {
            kernel
                .syscall(machine, sc, &[])
                .expect("jump pads are trivial handlers and cannot panic");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_uarch::{FetchWorld, MachineConfig, TlbEntry};

    fn setup() -> (Machine, Kernel) {
        let mut m = Machine::new(MachineConfig { os_noise: 0.0, ..MachineConfig::default() });
        let k = Kernel::boot(&mut m, 5);
        (m, k)
    }

    #[test]
    fn pads_share_the_targets_itlb_set_but_not_its_dtlb_set() {
        let (mut m, mut k) = setup();
        let target = 0xFFFF_FFF1_8000_0000u64 + 37 * PAGE_SIZE;
        let pads = JumpPads::install_for_target(&mut k, &mut m, target, 4);
        let tvpn = VirtualAddress::new(target).vpn();
        assert_eq!(pads.pad_vas.len(), 4);
        for &va in &pads.pad_vas {
            let vpn = VirtualAddress::new(va).vpn();
            assert_eq!(vpn % 32, tvpn % 32, "pad must share the iTLB set");
            assert_ne!(vpn % 256, tvpn % 256, "pad must avoid the target's dTLB set");
            assert_ne!(vpn, tvpn);
        }
    }

    #[test]
    fn eviction_migrates_a_planted_itlb_entry_into_the_dtlb() {
        let (mut m, mut k) = setup();
        let target = 0xFFFF_FFF1_8000_0000u64 + 11 * PAGE_SIZE;
        m.map_page(target, Perms::kernel_rwx());
        let pads = JumpPads::install_for_target(&mut k, &mut m, target, 4);
        let tvpn = VirtualAddress::new(target).vpn();

        // Plant the target's translation in the kernel iTLB only — what a
        // successful instruction-gadget speculation leaves behind.
        m.mem.tlbs.fill_fetch(
            FetchWorld::Kernel,
            TlbEntry { vpn: tvpn, pfn: 1, perms: Perms::kernel_rwx() },
        );
        assert!(m.mem.tlbs.itlb(FetchWorld::Kernel).contains(tvpn));
        assert!(!m.mem.tlbs.dtlb().contains(tvpn));

        pads.evict(&mut k, &mut m);

        assert!(
            !m.mem.tlbs.itlb(FetchWorld::Kernel).contains(tvpn),
            "pads must evict the target from the kernel iTLB"
        );
        assert!(
            m.mem.tlbs.dtlb().contains(tvpn),
            "the victim entry must re-home into the shared dTLB"
        );
        assert_eq!(k.crash_count(), 0);
    }

    #[test]
    fn pads_skip_dtlb_colliding_strides() {
        let (mut m, mut k) = setup();
        // A target whose (vpn >> 5) & 7 residue would make stride k=2
        // collide: vpn % 256 = itlb_set + 64.
        let base = 0xFFFF_FFF1_8000_0000u64;
        let target = base + (64 + 5) * PAGE_SIZE; // vpn%32 = 5, vpn%256 = 69
        let pads = JumpPads::install_for_target(&mut k, &mut m, target, 4);
        let tdtlb = VirtualAddress::new(target).vpn() % 256;
        for &va in &pads.pad_vas {
            assert_ne!(VirtualAddress::new(va).vpn() % 256, tdtlb);
        }
    }
}
