//! The Listing-1 kext: a vulnerable syscall containing PACMAN gadgets.
//!
//! Each handler reproduces the paper's Listing 1 faithfully:
//!
//! 1. construct a fresh `obj_t` — re-sign the protected function pointer
//!    (`obj = new obj_t`, line 7), so training calls always see a valid
//!    pointer regardless of earlier corruption;
//! 2. `memcpy(obj.buf, str, len)` — the buffer overflow (line 9), which
//!    for `len > 16` overwrites the protected pointer;
//! 3. `if (cond) { auted = AUT(obj.fp); transmit(auted) }` — the PACMAN
//!    gadget (lines 11–14), with a load transmit (data gadget, Figure
//!    3(a)) or an indirect call transmit (instruction gadget, Figure 3(b)).

use pacman_isa::ptr::{VirtualAddress, PAGE_SIZE};
use pacman_isa::{Asm, Inst, PacKey, PacModifier, Reg};
use pacman_uarch::{Machine, Perms};

use crate::kernel::read_kernel_u64;
use crate::layout;
use crate::Kernel;

/// Byte offset of the protected function pointer inside `obj_t`
/// (`char buf[10]` rounded up to alignment, Listing 1).
pub const FP_OFFSET: u64 = 16;

/// Handles to the installed gadget kext.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct GadgetKext {
    /// Syscall number of the data-gadget handler (Figure 3(a)).
    pub data_gadget: u64,
    /// Syscall number of the instruction-gadget handler (Figure 3(b)).
    pub instr_gadget: u64,
    /// Syscall number of the store-transmit variant (paper §4.1: "The
    /// transmission operation can be either a load or store instruction,
    /// as long as the processor issues store requests speculatively").
    pub store_gadget: u64,
    /// Kernel VA of the data gadget's `obj_t`.
    pub obj_data: u64,
    /// Kernel VA of the instruction gadget's `obj_t`.
    pub obj_instr: u64,
    /// Benign kernel data page the data gadget's original pointer targets.
    pub benign_data: u64,
    /// Benign kernel function the instruction gadget's original pointer
    /// targets (and the BTB-trained target of its `blr`).
    pub benign_fn: u64,
}

impl GadgetKext {
    /// Loads the kext: allocates the victim objects and registers both
    /// gadget syscalls.
    ///
    /// Syscall ABI (both handlers): `x0` = user source buffer, `x1` =
    /// copy length, `x2` = cond. A training call is `(0, 0, 1)`; a
    /// PAC-test call passes a 24-byte payload whose last 8 bytes are the
    /// guess-signed pointer, with `cond = 0`.
    pub fn install(kernel: &mut Kernel, machine: &mut Machine) -> Self {
        let obj_data = kernel.alloc_data_page(machine);
        let obj_instr = kernel.alloc_data_page(machine);
        let benign_data = kernel.alloc_data_page(machine);

        // Benign function: just returns from the syscall.
        let benign_fn = kernel.alloc_code_page(machine);
        let mut b = Asm::new();
        b.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 });
        b.push(Inst::Eret);
        crate::kernel::load_kernel_program(machine, benign_fn, &b.assemble().expect("benign fn"));

        let data_gadget =
            kernel.register_syscall(machine, &Self::handler(obj_data, benign_data, Transmit::Load));
        let instr_gadget =
            kernel.register_syscall(machine, &Self::handler(obj_instr, benign_fn, Transmit::Call));
        // The store variant shares the data gadget's object: its benign
        // path must *store* to a writable page, which benign_data is.
        let store_gadget = kernel
            .register_syscall(machine, &Self::handler(obj_data, benign_data, Transmit::Store));

        Self {
            data_gadget,
            instr_gadget,
            store_gadget,
            obj_data,
            obj_instr,
            benign_data,
            benign_fn,
        }
    }

    fn handler(obj_va: u64, benign_target: u64, transmit: Transmit) -> Vec<Inst> {
        let mut a = Asm::new();
        let skip = a.new_label();
        // obj = new obj_t: re-sign the protected pointer in place.
        a.mov_imm64(Reg::X9, obj_va);
        a.mov_imm64(Reg::X14, benign_target);
        a.push(Inst::Pac { key: PacKey::Ia, rd: Reg::X14, modifier: PacModifier::Zero });
        a.push(Inst::Str { rt: Reg::X14, rn: Reg::X9, offset: FP_OFFSET as i16 });
        // memcpy(obj.buf, str, strlen(str)) — the overflow.
        super::emit_memcpy_from_user(&mut a);
        // if (cond) { ... }  — BR1 of the PACMAN gadget.
        a.cbz(Reg::X2, skip);
        a.push(Inst::Ldr { rt: Reg::X14, rn: Reg::X9, offset: FP_OFFSET as i16 });
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X14, modifier: PacModifier::Zero });
        match transmit {
            Transmit::Load => {
                a.push(Inst::Ldr { rt: Reg::X15, rn: Reg::X14, offset: 0 });
            }
            Transmit::Store => {
                a.push(Inst::Str { rt: Reg::XZR, rn: Reg::X14, offset: 0 });
            }
            Transmit::Call => {
                a.push(Inst::Blr { rn: Reg::X14 });
            }
        }
        a.bind(skip);
        a.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 });
        a.push(Inst::Eret);
        a.assemble().expect("gadget handler assembles")
    }

    /// Maps a fresh kernel page whose dTLB set index is exactly
    /// `dtlb_set`, for use as an attack target pointer. Returns its VA.
    /// Executable and readable, so it works with both gadget variants.
    ///
    /// # Panics
    ///
    /// Panics if `dtlb_set >= 256`.
    pub fn alloc_target_page(machine: &mut Machine, dtlb_set: usize) -> u64 {
        assert!(dtlb_set < 256, "the dTLB has 256 sets");
        // 2 GiB into the placed region, which is 256-set aligned.
        let base = layout::PLACED_REGION_BASE + 0x8000_0000;
        debug_assert_eq!(VirtualAddress::new(base).vpn() % 256, 0);
        let va = base + (dtlb_set as u64) * PAGE_SIZE;
        machine.map_page(va, Perms::kernel_rwx());
        va
    }

    /// The dTLB-relevant virtual page numbers this kext's handlers touch
    /// on every invocation (object pages) — attack code must keep its
    /// monitored set clear of these.
    pub fn hot_data_vpns(&self) -> Vec<u64> {
        vec![
            VirtualAddress::new(self.obj_data).vpn(),
            VirtualAddress::new(self.obj_instr).vpn(),
            VirtualAddress::new(layout::SYSCALL_TABLE).vpn(),
            // The copy loop's boundary misprediction speculatively runs the
            // gadget with the freshly signed *benign* pointer, so the
            // benign pages' sets see a fill on most calls too.
            VirtualAddress::new(self.benign_data).vpn(),
            VirtualAddress::new(self.benign_fn).vpn(),
        ]
    }

    /// Reads the current (possibly corrupted) signed pointer stored in the
    /// data-gadget object — evaluation helper.
    pub fn debug_read_fp_data(&self, machine: &Machine) -> u64 {
        read_kernel_u64(machine, self.obj_data + FP_OFFSET)
    }
}

#[derive(Copy, Clone, Eq, PartialEq, Debug)]
enum Transmit {
    Load,
    Store,
    Call,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_isa::ptr::{pac_field, with_pac_field};
    use pacman_uarch::MachineConfig;

    fn setup() -> (Machine, Kernel, GadgetKext) {
        let mut m = Machine::new(MachineConfig { os_noise: 0.0, ..MachineConfig::default() });
        let mut k = Kernel::boot(&mut m, 99);
        let g = GadgetKext::install(&mut k, &mut m);
        (m, k, g)
    }

    fn write_user_payload(m: &mut Machine, signed_ptr: u64) -> u64 {
        let buf = layout::USER_SCRATCH;
        let mut payload = [0u8; 24];
        payload[16..24].copy_from_slice(&signed_ptr.to_le_bytes());
        assert!(m.mem.debug_write_bytes(buf, &payload));
        buf
    }

    #[test]
    fn training_calls_never_crash() {
        let (mut m, mut k, g) = setup();
        for _ in 0..64 {
            k.syscall(&mut m, g.data_gadget, &[0, 0, 1]).unwrap();
            k.syscall(&mut m, g.instr_gadget, &[0, 0, 1]).unwrap();
        }
        assert_eq!(k.crash_count(), 0);
    }

    #[test]
    fn object_is_reconstructed_each_call() {
        let (mut m, mut k, g) = setup();
        // Corrupt the object with garbage...
        let buf = write_user_payload(&mut m, 0xBAD0_BAD0_BAD0_BAD0);
        k.syscall(&mut m, g.data_gadget, &[buf, 24, 0]).unwrap();
        assert_eq!(g.debug_read_fp_data(&m), 0xBAD0_BAD0_BAD0_BAD0);
        // ...then a training call re-signs a valid pointer and survives.
        k.syscall(&mut m, g.data_gadget, &[0, 0, 1]).unwrap();
        assert_eq!(k.crash_count(), 0);
        let fp = g.debug_read_fp_data(&m);
        assert_eq!(pacman_isa::ptr::canonicalize(fp), g.benign_data);
    }

    #[test]
    fn architectural_use_of_wrong_pac_still_crashes() {
        // Sanity: the gadget only avoids crashes because cond=0 keeps the
        // AUT speculative. With cond=1 and a bad PAC it panics — the
        // security-by-crash baseline.
        let (mut m, mut k, g) = setup();
        let target = GadgetKext::alloc_target_page(&mut m, 7);
        let true_pac = k.debug_true_pac(&m, target);
        let wrong = with_pac_field(target, true_pac ^ 1);
        let buf = write_user_payload(&mut m, wrong);
        let err = k.syscall(&mut m, g.data_gadget, &[buf, 24, 1]).unwrap_err();
        assert!(matches!(err, crate::KernelError::Panic { .. }));
        assert_eq!(k.crash_count(), 1);
    }

    #[test]
    fn speculative_use_of_wrong_pac_never_crashes() {
        let (mut m, mut k, g) = setup();
        let target = GadgetKext::alloc_target_page(&mut m, 7);
        // Train the gadget branch taken.
        for _ in 0..64 {
            k.syscall(&mut m, g.data_gadget, &[0, 0, 1]).unwrap();
        }
        // 100 wrong guesses with cond=0: zero crashes.
        for guess in 0..100u16 {
            let buf = write_user_payload(&mut m, with_pac_field(target, guess));
            k.syscall(&mut m, g.data_gadget, &[buf, 24, 0]).unwrap();
        }
        assert_eq!(k.crash_count(), 0);
    }

    #[test]
    fn correct_pac_leaves_a_dtlb_footprint_and_wrong_pac_does_not() {
        // The microarchitectural heart of Figure 8(a), without the
        // Prime+Probe machinery: after a speculative gadget run with the
        // correct PAC the target page's translation is in the dTLB; with a
        // wrong PAC it is not.
        let (mut m, mut k, g) = setup();
        let target = GadgetKext::alloc_target_page(&mut m, 7);
        let target_vpn = VirtualAddress::new(target).vpn();
        let true_pac = k.debug_true_pac(&m, target);
        for _ in 0..64 {
            k.syscall(&mut m, g.data_gadget, &[0, 0, 1]).unwrap();
        }

        // Wrong PAC.
        m.mem.tlbs.flush();
        let buf = write_user_payload(&mut m, with_pac_field(target, true_pac ^ 0x10));
        // Re-train after flush? The bimodal predictor survives a flush
        // (it is not a TLB), so the branch is still predicted taken.
        k.syscall(&mut m, g.data_gadget, &[buf, 24, 0]).unwrap();
        assert!(
            !m.mem.tlbs.dtlb().contains(target_vpn),
            "wrong PAC must not touch the target translation"
        );

        // Correct PAC.
        m.mem.tlbs.flush();
        let buf = write_user_payload(&mut m, with_pac_field(target, true_pac));
        k.syscall(&mut m, g.data_gadget, &[buf, 24, 0]).unwrap();
        assert!(
            m.mem.tlbs.dtlb().contains(target_vpn),
            "correct PAC must load the target page speculatively"
        );
        assert_eq!(k.crash_count(), 0);
    }

    #[test]
    fn instruction_gadget_footprint_lands_in_the_kernel_itlb() {
        // Figure 3(d): with the correct PAC the eager squash fetches the
        // verified pointer — visible in the kernel iTLB (not the user's).
        let (mut m, mut k, g) = setup();
        let target = GadgetKext::alloc_target_page(&mut m, 9);
        let target_vpn = VirtualAddress::new(target).vpn();
        let true_pac = k.debug_true_pac(&m, target);
        for _ in 0..64 {
            k.syscall(&mut m, g.instr_gadget, &[0, 0, 1]).unwrap();
        }

        m.mem.tlbs.flush();
        let buf = write_user_payload(&mut m, with_pac_field(target, true_pac));
        k.syscall(&mut m, g.instr_gadget, &[buf, 24, 0]).unwrap();
        assert!(
            m.mem.tlbs.itlb(pacman_uarch::FetchWorld::Kernel).contains(target_vpn),
            "correct PAC must fetch the verified pointer into the kernel iTLB"
        );

        m.mem.tlbs.flush();
        let buf = write_user_payload(&mut m, with_pac_field(target, true_pac ^ 0x800));
        k.syscall(&mut m, g.instr_gadget, &[buf, 24, 0]).unwrap();
        assert!(
            !m.mem.tlbs.itlb(pacman_uarch::FetchWorld::Kernel).contains(target_vpn),
            "wrong PAC must not fetch the verified pointer"
        );
        assert_eq!(k.crash_count(), 0);
    }

    #[test]
    fn store_transmit_gadget_leaks_like_the_load_variant() {
        // §4.1: speculative stores translate (filling the TLB) without
        // committing data, so a store works as the transmit too.
        let (mut m, mut k, g) = setup();
        let target = GadgetKext::alloc_target_page(&mut m, 17);
        let target_vpn = VirtualAddress::new(target).vpn();
        let true_pac = k.debug_true_pac(&m, target);
        for _ in 0..64 {
            k.syscall(&mut m, g.store_gadget, &[0, 0, 1]).unwrap();
        }
        m.mem.tlbs.flush();
        let buf = write_user_payload(&mut m, with_pac_field(target, true_pac));
        let before = m.mem.debug_read_u64(target).unwrap();
        k.syscall(&mut m, g.store_gadget, &[buf, 24, 0]).unwrap();
        assert!(m.mem.tlbs.dtlb().contains(target_vpn), "store transmit must fill the dTLB");
        assert_eq!(
            m.mem.debug_read_u64(target).unwrap(),
            before,
            "a speculative store must never commit data"
        );
        m.mem.tlbs.flush();
        let buf = write_user_payload(&mut m, with_pac_field(target, true_pac ^ 2));
        k.syscall(&mut m, g.store_gadget, &[buf, 24, 0]).unwrap();
        assert!(!m.mem.tlbs.dtlb().contains(target_vpn));
        assert_eq!(k.crash_count(), 0);
    }

    #[test]
    fn instruction_gadget_trace_matches_figure_3d() {
        // The recorded speculation events must follow the paper's
        // Figure 3(d) timeline: shadow opens, AUT verifies, BR2 fetches
        // its BTB-predicted target, eager squash redirects to the
        // verified pointer, shadow closes.
        use pacman_uarch::SpecEvent;
        let (mut m, mut k, g) = setup();
        let target = GadgetKext::alloc_target_page(&mut m, 21);
        let true_pac = k.debug_true_pac(&m, target);
        for _ in 0..64 {
            k.syscall(&mut m, g.instr_gadget, &[0, 0, 1]).unwrap();
        }
        m.trace.enable();
        let buf = write_user_payload(&mut m, with_pac_field(target, true_pac));
        k.syscall(&mut m, g.instr_gadget, &[buf, 24, 0]).unwrap();
        let events = m.trace.take();
        m.trace.disable();

        let aut_valid =
            events.iter().position(|e| matches!(e, SpecEvent::AutExecuted { valid: true, .. }));
        let btb = events.iter().position(|e| matches!(e, SpecEvent::BtbPredictedFetch { .. }));
        let squash = events.iter().position(
            |e| matches!(e, SpecEvent::EagerSquashRedirect { actual, .. } if *actual == target),
        );
        let (aut_valid, btb, squash) = (
            aut_valid.expect("AUT must verify"),
            btb.expect("BR2 must fetch the BTB prediction"),
            squash.expect("eager squash must redirect to the verified pointer"),
        );
        assert!(aut_valid < squash, "AUT resolves before the redirect");
        assert!(btb < squash, "BTB fetch precedes the eager squash");

        // And with a wrong PAC the squash path faults instead.
        m.trace.enable();
        let buf = write_user_payload(&mut m, with_pac_field(target, true_pac ^ 7));
        k.syscall(&mut m, g.instr_gadget, &[buf, 24, 0]).unwrap();
        let events = m.trace.take();
        assert!(
            events.iter().any(|e| matches!(e, SpecEvent::AutExecuted { valid: false, .. })),
            "wrong PAC must fail verification"
        );
        assert!(
            events.iter().any(|e| matches!(e, SpecEvent::FaultSuppressed { .. })),
            "the corrupt pointer must fault speculatively"
        );
        assert!(
            !events.iter().any(
                |e| matches!(e, SpecEvent::EagerSquashRedirect { actual, .. } if *actual == target)
            ),
            "no redirect to the target without a valid PAC"
        );
        assert_eq!(k.crash_count(), 0);
    }

    #[test]
    fn target_pages_land_in_the_requested_dtlb_set() {
        let (mut m, _k, _g) = setup();
        for set in [0usize, 7, 130, 255] {
            let va = GadgetKext::alloc_target_page(&mut m, set);
            assert_eq!(VirtualAddress::new(va).vpn() % 256, set as u64);
        }
    }

    #[test]
    fn pac_field_of_debug_sign_matches_true_pac() {
        let (m, k, _g) = setup();
        let target = 0xFFFF_FFF1_8000_4000u64;
        assert_eq!(pac_field(k.debug_sign_ia_zero(&m, target)), k.debug_true_pac(&m, target));
    }
}
