//! The §6.1 kext exposing Apple performance counters to userspace.
//!
//! `PMC0` is kernel-only by default (Table 1). The paper's reverse
//! engineering used a kext that writes the `PMCR0` control register to
//! make it readable at EL0. The actual attacks do *not* rely on this —
//! they use the multi-thread timer — but the Figure 5/7 experiments do.

use pacman_isa::{Asm, Inst, Reg, SysReg};
use pacman_uarch::Machine;

use crate::Kernel;

/// Handle to the installed PMC kext.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct PmcKext {
    /// Syscall that sets the `PMCR0` EL0-enable bit (`x0` = 1 to enable,
    /// 0 to disable).
    pub set_el0_access: u64,
}

impl PmcKext {
    /// Loads the kext.
    pub fn install(kernel: &mut Kernel, machine: &mut Machine) -> Self {
        let mut a = Asm::new();
        a.push(Inst::Msr { sysreg: SysReg::Pmcr0, rn: Reg::X0 });
        a.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 });
        a.push(Inst::Eret);
        let set_el0_access = kernel.register_syscall(machine, &a.assemble().expect("pmc kext"));
        Self { set_el0_access }
    }

    /// Enables EL0 reads of `PMC0` (what the paper's reverse-engineering
    /// setup does).
    pub fn enable(&self, kernel: &mut Kernel, machine: &mut Machine) {
        kernel.syscall(machine, self.set_el0_access, &[1]).expect("PMCR0 write cannot fault");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_uarch::{MachineConfig, TimingSource};

    #[test]
    fn kext_unlocks_pmc0_for_userspace() {
        let mut m = Machine::new(MachineConfig { os_noise: 0.0, ..MachineConfig::default() });
        let mut k = Kernel::boot(&mut m, 3);
        let pmc = PmcKext::install(&mut k, &mut m);

        m.set_timing_source(TimingSource::Pmc0);
        assert!(m.read_timer().is_none(), "PMC0 must start EL0-inaccessible");
        pmc.enable(&mut k, &mut m);
        assert!(m.read_timer().is_some(), "kext must unlock PMC0 at EL0");
    }
}
