//! Loadable kernel extensions reproducing the paper's PoC victims.
//!
//! - [`GadgetKext`] — Listing 1: a syscall with a buffer overflow into a
//!   freshly constructed object holding a PA-protected function pointer,
//!   followed by a PACMAN gadget (data and instruction variants).
//! - [`JumpPads`] — the §8.1 helper syscalls whose handlers live at
//!   computed kernel VAs, used to self-evict a target entry from the
//!   kernel L1 iTLB into the shared dTLB.
//! - [`CppKext`] — §8.3: two adjacent objects with signed vtable
//!   pointers, a C++-style method-dispatch syscall (Listing 2), a `win()`
//!   function, and key/salt-matched PACMAN gadgets for the Jump2Win
//!   brute-force phase.
//! - [`PmcKext`] — §6.1: flips the `PMCR0` bit that exposes the `PMC0`
//!   cycle counter to userspace.

pub mod cpp;
pub mod gadget;
pub mod jumppad;
pub mod pmc;

pub use cpp::CppKext;
pub use gadget::GadgetKext;
pub use jumppad::JumpPads;
pub use pmc::PmcKext;

use pacman_isa::{Asm, Inst, Reg};

/// Emits the byte-wise `memcpy(dst_base, src = x0, len = x1)` loop used by
/// the vulnerable handlers (the paper's Listing 1 line 9). `dst` must
/// already be in `x9`. Clobbers `x10..=x13`.
pub(crate) fn emit_memcpy_from_user(a: &mut Asm) {
    let done = a.new_label();
    let top = a.new_label();
    a.push(Inst::MovZ { rd: Reg::X10, imm: 0, shift: 0 });
    a.bind(top);
    a.push(Inst::CmpReg { rn: Reg::X10, rm: Reg::X1 });
    a.b_cond(pacman_isa::Cond::Ge, done);
    a.push(Inst::AddReg { rd: Reg::X11, rn: Reg::X0, rm: Reg::X10 });
    a.push(Inst::Ldrb { rt: Reg::X12, rn: Reg::X11, offset: 0 });
    a.push(Inst::AddReg { rd: Reg::X13, rn: Reg::X9, rm: Reg::X10 });
    a.push(Inst::Strb { rt: Reg::X12, rn: Reg::X13, offset: 0 });
    a.push(Inst::AddImm { rd: Reg::X10, rn: Reg::X10, imm: 1 });
    a.b(top);
    a.bind(done);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use pacman_uarch::{Machine, MachineConfig};

    #[test]
    fn memcpy_loop_copies_user_bytes_into_kernel_memory() {
        let mut m = Machine::new(MachineConfig { os_noise: 0.0, ..MachineConfig::default() });
        let mut k = Kernel::boot(&mut m, 1);
        let dst = k.alloc_data_page(&mut m);

        let mut a = Asm::new();
        a.mov_imm64(Reg::X9, dst);
        emit_memcpy_from_user(&mut a);
        a.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 });
        a.push(Inst::Eret);
        let sc = k.register_syscall(&mut m, &a.assemble().unwrap());

        // User buffer with a recognisable pattern.
        let ubuf = crate::layout::USER_SCRATCH;
        for (i, b) in (0u8..24).enumerate() {
            let pa = m
                .mem
                .tables
                .translate(&m.mem.phys, pacman_isa::ptr::VirtualAddress::new(ubuf + i as u64))
                .unwrap();
            m.mem.phys.write_u8(pa, b.wrapping_mul(3));
        }
        k.syscall(&mut m, sc, &[ubuf, 24]).unwrap();
        for i in 0..24u64 {
            let got = m.mem.debug_read_u8(dst + i).unwrap();
            assert_eq!(got, (i as u8).wrapping_mul(3), "byte {i} miscopied");
        }
        // Zero-length copy is a no-op.
        k.syscall(&mut m, sc, &[ubuf, 0]).unwrap();
    }
}
