//! Kernel address-space layout.
//!
//! All kernel virtual addresses live in the TTBR1 half (bit 47 set, so
//! canonical kernel pointers read `0xFFFF_...`). The regions below are
//! chosen so that their dTLB set indices stay out of the way of attack
//! experiments unless an experiment deliberately collides with them.

use pacman_isa::ptr::PAGE_SIZE;

/// Entry point of the syscall dispatcher (the exception vector).
pub const SYSCALL_VECTOR: u64 = 0xFFFF_FFF0_0000_0000;

/// Base of the syscall handler table (one 8-byte entry per syscall).
pub const SYSCALL_TABLE: u64 = 0xFFFF_FFF0_0001_0000;

/// Base of the bump-allocated kext code region.
pub const KEXT_TEXT_BASE: u64 = 0xFFFF_FFF0_0100_0000;

/// Base of the bump-allocated kernel data region.
pub const KERNEL_DATA_BASE: u64 = 0xFFFF_FFF0_2000_0000;

/// Region reserved for pages placed at *computed* virtual addresses
/// (jump pads, attack targets). 1 GiB wide.
pub const PLACED_REGION_BASE: u64 = 0xFFFF_FFF1_0000_0000;

/// Userspace address of the syscall stub (`svc; hlt`) every simulated
/// process uses to enter the kernel.
pub const USER_SYSCALL_STUB: u64 = 0x0000_0000_003F_C000;

/// Userspace scratch page used by the stub-driven syscall path.
pub const USER_SCRATCH: u64 = 0x0000_0000_003E_0000;

/// Number of bytes reserved for the syscall table (bounds the number of
/// registrable syscalls).
pub const SYSCALL_TABLE_BYTES: u64 = PAGE_SIZE;

/// Maximum number of syscalls.
pub const MAX_SYSCALLS: u64 = SYSCALL_TABLE_BYTES / 8;

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_isa::ptr::{is_canonical, PointerKind, VirtualAddress};

    #[test]
    fn kernel_addresses_are_canonical_kernel_pointers() {
        for va in
            [SYSCALL_VECTOR, SYSCALL_TABLE, KEXT_TEXT_BASE, KERNEL_DATA_BASE, PLACED_REGION_BASE]
        {
            assert!(is_canonical(va), "{va:#x} not canonical");
            assert_eq!(VirtualAddress::new(va).kind(), PointerKind::Kernel);
        }
    }

    #[test]
    fn user_addresses_are_canonical_user_pointers() {
        for va in [USER_SYSCALL_STUB, USER_SCRATCH] {
            assert!(is_canonical(va));
            assert_eq!(VirtualAddress::new(va).kind(), PointerKind::User);
        }
    }

    #[test]
    fn regions_are_page_aligned_and_disjoint() {
        let regions =
            [SYSCALL_VECTOR, SYSCALL_TABLE, KEXT_TEXT_BASE, KERNEL_DATA_BASE, PLACED_REGION_BASE];
        for r in regions {
            assert_eq!(r % PAGE_SIZE, 0, "{r:#x} not page-aligned");
        }
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
