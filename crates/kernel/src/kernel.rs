//! The kernel proper: boot, keys, syscall dispatch, panic handling.

use pacman_isa::ptr::{self, PAGE_SIZE};
use pacman_isa::{Asm, Inst, PacKey, Reg, SysReg};
use pacman_uarch::{El, Machine, Perms, Trap};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::layout;

/// Errors surfaced by the syscall path.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum KernelError {
    /// The kernel took an architectural trap at EL1 and panicked. The
    /// machine has been rebooted: PA keys were renewed and crash
    /// accounting updated — every previously minted PAC is now stale.
    Panic {
        /// The trap that killed the kernel.
        trap: Trap,
    },
    /// Unknown syscall number.
    BadSyscall {
        /// The offending number.
        num: u64,
    },
    /// The handler exceeded its instruction budget.
    Runaway,
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::Panic { trap } => write!(f, "kernel panic: {trap}"),
            KernelError::BadSyscall { num } => write!(f, "unknown syscall {num}"),
            KernelError::Runaway => write!(f, "syscall handler exceeded its budget"),
        }
    }
}

impl std::error::Error for KernelError {}

/// The booted kernel.
#[derive(Debug)]
pub struct Kernel {
    syscalls: Vec<u64>, // handler VAs, indexed by syscall number
    next_code_va: u64,
    next_data_va: u64,
    crash_count: u64,
    boots: u64,
    rng: SmallRng,
}

impl Kernel {
    /// Boots the kernel on `machine`: randomises the PA keys, maps the
    /// syscall vector, table and user stub, and installs the dispatcher.
    pub fn boot(machine: &mut Machine, seed: u64) -> Self {
        let mut kernel = Self {
            syscalls: Vec::new(),
            next_code_va: layout::KEXT_TEXT_BASE,
            next_data_va: layout::KERNEL_DATA_BASE,
            crash_count: 0,
            boots: 0,
            rng: SmallRng::seed_from_u64(seed),
        };
        kernel.bring_up(machine);
        kernel
    }

    fn bring_up(&mut self, machine: &mut Machine) {
        self.boots += 1;
        self.randomize_keys(machine);

        machine.map_page(layout::SYSCALL_VECTOR, Perms::kernel_rx());
        machine.map_page(layout::SYSCALL_TABLE, Perms::kernel_rw());
        machine.map_page(layout::USER_SYSCALL_STUB, Perms::user_rx());
        machine.map_page(layout::USER_SCRATCH, Perms::user_rw());

        // Dispatcher: x16 = syscall number; branch through the handler
        // table. The indirect `br` trains the BTB per last handler, which
        // is exactly the real-world predictor behaviour syscall-heavy
        // attacks contend with.
        let mut d = Asm::new();
        d.mov_imm64(Reg::X9, layout::SYSCALL_TABLE);
        d.push(Inst::LslImm { rd: Reg::X10, rn: Reg::X16, shift: 3 });
        d.push(Inst::AddReg { rd: Reg::X9, rn: Reg::X9, rm: Reg::X10 });
        d.push(Inst::Ldr { rt: Reg::X9, rn: Reg::X9, offset: 0 });
        d.push(Inst::Br { rn: Reg::X9 });
        let dispatcher = d.assemble().expect("dispatcher assembles");
        load_kernel_program(machine, layout::SYSCALL_VECTOR, &dispatcher);
        machine.set_vbar(layout::SYSCALL_VECTOR);

        // User stub: svc; hlt.
        let mut s = Asm::new();
        s.push(Inst::Svc { imm: 0 });
        s.push(Inst::Hlt);
        let stub = s.assemble().expect("stub assembles");
        machine.load_program(layout::USER_SYSCALL_STUB, &stub);

        // Re-install handler table entries after a reboot.
        for (num, &va) in self.syscalls.clone().iter().enumerate() {
            self.write_table_entry(machine, num as u64, va);
        }
    }

    fn randomize_keys(&mut self, machine: &mut Machine) {
        for lo_hi in [
            (SysReg::ApiaKeyLo, SysReg::ApiaKeyHi),
            (SysReg::ApibKeyLo, SysReg::ApibKeyHi),
            (SysReg::ApdaKeyLo, SysReg::ApdaKeyHi),
            (SysReg::ApdbKeyLo, SysReg::ApdbKeyHi),
            (SysReg::ApgaKeyLo, SysReg::ApgaKeyHi),
        ] {
            machine.cpu.keys.write_half(lo_hi.0, self.rng.gen());
            machine.cpu.keys.write_half(lo_hi.1, self.rng.gen());
        }
    }

    fn write_table_entry(&mut self, machine: &mut Machine, num: u64, handler_va: u64) {
        assert!(num < layout::MAX_SYSCALLS, "syscall table full");
        let slot = layout::SYSCALL_TABLE + num * 8;
        write_kernel_u64(machine, slot, handler_va);
    }

    /// Number of kernel panics so far. The PACMAN attack's defining
    /// property (paper abstract) is keeping this at zero.
    pub fn crash_count(&self) -> u64 {
        self.crash_count
    }

    /// Number of boots (1 + crash count).
    pub fn boots(&self) -> u64 {
        self.boots
    }

    // ----- kext services ------------------------------------------------

    /// Allocates and maps a fresh executable kernel code page, returning
    /// its VA (kext loading).
    pub fn alloc_code_page(&mut self, machine: &mut Machine) -> u64 {
        let va = self.next_code_va;
        self.next_code_va += PAGE_SIZE;
        machine.map_page(va, Perms::kernel_rx());
        va
    }

    /// Allocates and maps a fresh kernel data page, returning its VA.
    pub fn alloc_data_page(&mut self, machine: &mut Machine) -> u64 {
        let va = self.next_data_va;
        self.next_data_va += PAGE_SIZE;
        machine.map_page(va, Perms::kernel_rw());
        va
    }

    /// Registers `program` as a syscall handler on a fresh code page and
    /// returns the syscall number.
    pub fn register_syscall(&mut self, machine: &mut Machine, program: &[Inst]) -> u64 {
        let va = self.alloc_code_page(machine);
        self.register_syscall_at(machine, va, program)
    }

    /// Registers `program` as a syscall handler at an already mapped
    /// executable kernel VA (used by the jump-pad kext, which needs
    /// handlers at *computed* addresses).
    pub fn register_syscall_at(&mut self, machine: &mut Machine, va: u64, program: &[Inst]) -> u64 {
        load_kernel_program(machine, va, program);
        let num = self.syscalls.len() as u64;
        self.syscalls.push(va);
        self.write_table_entry(machine, num, va);
        num
    }

    /// The handler VA of a registered syscall.
    pub fn syscall_handler_va(&self, num: u64) -> Option<u64> {
        self.syscalls.get(num as usize).copied()
    }

    // ----- syscall path --------------------------------------------------

    /// Performs a syscall from EL0 through the user stub: `x16 = num`,
    /// `x0..=x5 = args`. Returns the handler's `x0`.
    ///
    /// # Errors
    ///
    /// - [`KernelError::BadSyscall`] for unregistered numbers (checked
    ///   host-side; the dispatcher itself is trusted).
    /// - [`KernelError::Panic`] if the handler traps at EL1 — the kernel
    ///   then *reboots*: keys are renewed, microarchitectural state is
    ///   flushed, and the crash counter increments.
    pub fn syscall(
        &mut self,
        machine: &mut Machine,
        num: u64,
        args: &[u64],
    ) -> Result<u64, KernelError> {
        if num >= self.syscalls.len() as u64 {
            return Err(KernelError::BadSyscall { num });
        }
        assert!(args.len() <= 6, "at most six syscall arguments");
        machine.cpu.el = El::El0;
        machine.cpu.set(Reg::X16, num);
        for (i, &a) in args.iter().enumerate() {
            machine.cpu.set(Reg::x(i as u8), a);
        }
        for i in args.len()..6 {
            machine.cpu.set(Reg::x(i as u8), 0);
        }
        machine.cpu.pc = layout::USER_SYSCALL_STUB;
        match machine.run(1_000_000) {
            Ok(pacman_uarch::Stop::Hlt) => Ok(machine.cpu.get(Reg::X0)),
            Ok(pacman_uarch::Stop::InstLimit) => Err(KernelError::Runaway),
            Err(trap) => {
                self.panic_and_reboot(machine);
                Err(KernelError::Panic { trap })
            }
        }
    }

    fn panic_and_reboot(&mut self, machine: &mut Machine) {
        self.crash_count += 1;
        // A reboot renews the PA keys (paper §1: "Restarting a program
        // after a crash results in changed PACs") and clears transient
        // microarchitectural state.
        machine.cpu.saved = None;
        machine.cpu.el = El::El0;
        machine.mem.tlbs.flush();
        machine.mem.l1i.flush();
        machine.mem.l1d.flush();
        machine.mem.l2c.flush();
        machine.bimodal.reset();
        machine.btb.reset();
        machine.rsb.reset();
        self.boots += 1;
        self.randomize_keys(machine);
    }

    // ----- ground-truth helpers (evaluation only) -------------------------

    /// Signs `pointer` with the kernel IA key and a zero modifier —
    /// ground truth for evaluating oracles. A real attacker cannot call
    /// this; tests and benches use it to label trials.
    pub fn debug_sign_ia_zero(&self, machine: &Machine, pointer: u64) -> u64 {
        ptr::sign(&machine.cpu.pac_computer(PacKey::Ia), pointer, 0)
    }

    /// The correct 16-bit PAC for `pointer` under the kernel IA key and a
    /// zero modifier (evaluation ground truth).
    pub fn debug_true_pac(&self, machine: &Machine, pointer: u64) -> u16 {
        ptr::pac_field(self.debug_sign_ia_zero(machine, pointer))
    }

    /// Serialises the kernel's own bookkeeping (the memory it manages —
    /// vectors, tables, kext pages — lives in the machine's physical
    /// memory and travels with [`Machine::save_state`]).
    pub fn save_state(&self, w: &mut pacman_telemetry::bin::Writer) {
        w.usize(self.syscalls.len());
        for &va in &self.syscalls {
            w.u64(va);
        }
        w.u64(self.next_code_va);
        w.u64(self.next_data_va);
        w.u64(self.crash_count);
        w.u64(self.boots);
        for word in self.rng.state() {
            w.u64(word);
        }
    }

    /// Restores state written by [`Kernel::save_state`]. The paired
    /// machine must be restored separately (and first) — this only
    /// rebuilds the kernel's allocator cursors, syscall table mirror,
    /// crash accounting, and key-randomisation RNG position.
    ///
    /// # Errors
    ///
    /// [`pacman_telemetry::bin::BinError`] on truncation or corruption.
    pub fn restore_state(
        &mut self,
        r: &mut pacman_telemetry::bin::Reader<'_>,
    ) -> Result<(), pacman_telemetry::bin::BinError> {
        let n = r.usize()?;
        if n as u64 > layout::MAX_SYSCALLS {
            return Err(pacman_telemetry::bin::BinError::Corrupt(format!(
                "{n} syscalls exceeds the table"
            )));
        }
        self.syscalls.clear();
        for _ in 0..n {
            self.syscalls.push(r.u64()?);
        }
        self.next_code_va = r.u64()?;
        self.next_data_va = r.u64()?;
        self.crash_count = r.u64()?;
        self.boots = r.u64()?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.u64()?;
        }
        self.rng = SmallRng::from_state(rng_state);
        Ok(())
    }
}

/// Writes an encoded program into mapped kernel memory (debug path; kernel
/// text pages are not user-writable, so this models the kext loader).
pub(crate) fn load_kernel_program(machine: &mut Machine, va: u64, program: &[Inst]) {
    use pacman_isa::encode;
    for (i, inst) in program.iter().enumerate() {
        let w = encode(inst).expect("kernel instruction must encode");
        let addr = va + 4 * i as u64;
        let pa = machine
            .mem
            .tables
            .translate(&machine.mem.phys, pacman_isa::ptr::VirtualAddress::new(addr))
            .expect("kernel program page must be mapped");
        machine.mem.phys.write_u32(pa, w);
    }
}

/// Writes a u64 into mapped kernel memory (kext loader data path).
pub(crate) fn write_kernel_u64(machine: &mut Machine, va: u64, value: u64) {
    let pa = machine
        .mem
        .tables
        .translate(&machine.mem.phys, pacman_isa::ptr::VirtualAddress::new(va))
        .expect("kernel data page must be mapped");
    machine.mem.phys.write_u64(pa, value);
}

/// Reads a u64 from mapped kernel memory (evaluation/debug).
pub(crate) fn read_kernel_u64(machine: &Machine, va: u64) -> u64 {
    let pa = machine
        .mem
        .tables
        .translate(&machine.mem.phys, pacman_isa::ptr::VirtualAddress::new(va))
        .expect("kernel data page must be mapped");
    machine.mem.phys.read_u64(pa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_uarch::MachineConfig;

    fn boot() -> (Machine, Kernel) {
        let mut m = Machine::new(MachineConfig { os_noise: 0.0, ..MachineConfig::default() });
        let k = Kernel::boot(&mut m, 42);
        (m, k)
    }

    fn simple_handler(result: u64) -> Vec<Inst> {
        let mut a = Asm::new();
        a.mov_imm64(Reg::X0, result);
        a.push(Inst::Eret);
        a.assemble().unwrap()
    }

    #[test]
    fn syscalls_dispatch_and_return() {
        let (mut m, mut k) = boot();
        let s1 = k.register_syscall(&mut m, &simple_handler(111));
        let s2 = k.register_syscall(&mut m, &simple_handler(222));
        assert_eq!(k.syscall(&mut m, s1, &[]).unwrap(), 111);
        assert_eq!(k.syscall(&mut m, s2, &[]).unwrap(), 222);
        assert_eq!(k.syscall(&mut m, s1, &[]).unwrap(), 111);
        assert_eq!(k.crash_count(), 0);
    }

    #[test]
    fn arguments_reach_handlers() {
        let (mut m, mut k) = boot();
        let mut a = Asm::new();
        a.push(Inst::AddReg { rd: Reg::X0, rn: Reg::X0, rm: Reg::X1 });
        a.push(Inst::Eret);
        let sc = k.register_syscall(&mut m, &a.assemble().unwrap());
        assert_eq!(k.syscall(&mut m, sc, &[40, 2]).unwrap(), 42);
    }

    #[test]
    fn unknown_syscalls_are_rejected() {
        let (mut m, mut k) = boot();
        assert_eq!(k.syscall(&mut m, 99, &[]), Err(KernelError::BadSyscall { num: 99 }));
    }

    #[test]
    fn kernel_panic_renews_keys_and_counts_crashes() {
        let (mut m, mut k) = boot();
        // Handler dereferences a corrupted (non-canonical) pointer.
        let mut a = Asm::new();
        a.mov_imm64(Reg::X9, 0x00AB_0000_DEAD_0000);
        a.push(Inst::Ldr { rt: Reg::X0, rn: Reg::X9, offset: 0 });
        a.push(Inst::Eret);
        let sc = k.register_syscall(&mut m, &a.assemble().unwrap());
        let keys_before = m.cpu.keys;
        let err = k.syscall(&mut m, sc, &[]).unwrap_err();
        assert!(matches!(err, KernelError::Panic { .. }));
        assert_eq!(k.crash_count(), 1);
        assert_eq!(k.boots(), 2);
        assert_ne!(m.cpu.keys, keys_before, "reboot must renew PA keys");
        // The kernel still works after the reboot.
        let sc2 = k.register_syscall(&mut m, &simple_handler(7));
        assert_eq!(k.syscall(&mut m, sc2, &[]).unwrap(), 7);
    }

    #[test]
    fn pa_roundtrip_inside_a_handler() {
        // Sign and authenticate a pointer entirely at EL1, then use it.
        let (mut m, mut k) = boot();
        let data = k.alloc_data_page(&mut m);
        write_kernel_u64(&mut m, data, 0x5151_5151);
        let mut a = Asm::new();
        a.mov_imm64(Reg::X9, data);
        a.push(Inst::Pac { key: PacKey::Ia, rd: Reg::X9, modifier: pacman_isa::PacModifier::Zero });
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X9, modifier: pacman_isa::PacModifier::Zero });
        a.push(Inst::Ldr { rt: Reg::X0, rn: Reg::X9, offset: 0 });
        a.push(Inst::Eret);
        let sc = k.register_syscall(&mut m, &a.assemble().unwrap());
        assert_eq!(k.syscall(&mut m, sc, &[]).unwrap(), 0x5151_5151);
        assert_eq!(k.crash_count(), 0);
    }

    #[test]
    fn wrong_pac_dereference_is_a_panic() {
        // The security-by-crash baseline: an architecturally used wrong
        // PAC kills the kernel (paper §1).
        let (mut m, mut k) = boot();
        let data = k.alloc_data_page(&mut m);
        let mut a = Asm::new();
        a.mov_imm64(Reg::X9, data);
        a.push(Inst::Pac { key: PacKey::Ia, rd: Reg::X9, modifier: pacman_isa::PacModifier::Zero });
        // Flip a PAC bit, then authenticate and dereference.
        a.mov_imm64(Reg::X10, 1u64 << 48);
        a.push(Inst::EorReg { rd: Reg::X9, rn: Reg::X9, rm: Reg::X10 });
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X9, modifier: pacman_isa::PacModifier::Zero });
        a.push(Inst::Ldr { rt: Reg::X0, rn: Reg::X9, offset: 0 });
        a.push(Inst::Eret);
        let sc = k.register_syscall(&mut m, &a.assemble().unwrap());
        assert!(matches!(k.syscall(&mut m, sc, &[]), Err(KernelError::Panic { .. })));
        assert_eq!(k.crash_count(), 1);
    }

    #[test]
    fn debug_ground_truth_matches_hardware_signing() {
        let (mut m, mut k) = boot();
        let data = k.alloc_data_page(&mut m);
        // Handler: x0 = pacia(data, 0) — the hardware-signed pointer.
        let mut a = Asm::new();
        a.mov_imm64(Reg::X0, data);
        a.push(Inst::Pac { key: PacKey::Ia, rd: Reg::X0, modifier: pacman_isa::PacModifier::Zero });
        a.push(Inst::Eret);
        let sc = k.register_syscall(&mut m, &a.assemble().unwrap());
        let hw = k.syscall(&mut m, sc, &[]).unwrap();
        assert_eq!(hw, k.debug_sign_ia_zero(&m, data));
    }

    #[test]
    fn syscall_costs_cycles() {
        let (mut m, mut k) = boot();
        let sc = k.register_syscall(&mut m, &simple_handler(0));
        let before = m.cycles;
        k.syscall(&mut m, sc, &[]).unwrap();
        let cost = m.cycles - before;
        assert!(cost >= 2 * m.config().latency.syscall_transition, "round trip too cheap: {cost}");
    }
}
