//! `pacmand` — the long-running multi-tenant experiment daemon for the
//! PACMAN reproduction.
//!
//! Every campaign in the paper — §6 oracle characterization, §8.2 PAC
//! brute-force, §4.3 gadget census — is a long, many-trial workload,
//! but a one-shot CLI run tears the warm executor and machine pools
//! down with the process. This crate keeps them alive: a daemon
//! ([`Daemon`]) owns persistent workers, tenants open named *sessions*
//! over a JSONL line protocol ([`protocol`]) carried on stdio or a
//! Unix socket ([`net`]), and submitted experiment commands are
//! scheduled fair-share across sessions onto the shared process-wide
//! executor. Results stream back incrementally — `job_output` records
//! wrap the job's own JSONL verbatim, `job_progress` records ride the
//! executor's ordered shard-event stream — rather than arriving in one
//! end-of-run burst.
//!
//! The contract that makes the daemon multi-*tenant* rather than just
//! multi-session is fault isolation ([`service`] module docs): panics,
//! retry-budget exhaustion, and partial-failure reports are scoped to
//! the one session that submitted the job. Shutdown is a graceful
//! drain that finishes queued work and emits per-session telemetry
//! snapshots merged into a daemon-wide registry.
//!
//! Started with a [`CheckpointPolicy`], the daemon is also *durable*:
//! it periodically writes a checksummed snapshot of all in-flight state
//! ([`snapshot`]) and announces each write with a `checkpoint_written`
//! record, and a killed daemon restarted with `--resume` re-enqueues
//! the interrupted jobs, suppresses their already-delivered output, and
//! continues every session's record stream mid-job.
//!
//! The crate is transport- and workload-agnostic: it knows how to
//! schedule and stream, while the actual experiment execution is
//! injected as a [`JobRunner`] (the CLI's `dispatch`, or a synthetic
//! runner in tests and the `service_load` bench).

pub mod clock;
pub mod net;
pub mod protocol;
pub mod service;
pub mod snapshot;

pub use service::{
    CheckpointPolicy, Daemon, DaemonConfig, DaemonError, JobRunner, JobSink, SessionHandle,
};
pub use snapshot::{DaemonSnapshot, SnapshotError};
