//! The `pacmand` wire protocol: JSONL request parsing and response
//! building.
//!
//! Framing is one JSON object per `\n`-terminated line in both
//! directions — the same JSONL shape every other record stream in the
//! workspace uses (`--metrics-out` files, bench artifacts, the verify
//! history), parsed and emitted by `pacman_telemetry::json` so no new
//! syntax enters the tree. Requests are tagged by a `"type"` field;
//! responses are likewise tagged and always carry the `session` they
//! belong to (when one applies), so a client multiplexing several
//! sessions over one connection can demultiplex by field, not by
//! ordering.
//!
//! The full request/response vocabulary and the session lifecycle it
//! drives are documented in DESIGN.md §12.

use pacman_telemetry::json::{parse, Value};

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Open a named session; the name scopes every later record.
    OpenSession { session: String },
    /// Submit one experiment command line to a session's queue.
    Submit { session: String, command: String },
    /// Close a session after its queued jobs finish.
    CloseSession { session: String },
    /// Liveness probe.
    Ping,
    /// Daemon-wide queue/telemetry snapshot.
    Status,
    /// Graceful drain: finish queued work, then exit.
    Shutdown,
}

/// Parses one request line. Errors are human-readable strings the
/// server echoes back in an [`error`] record — a malformed line never
/// tears down the connection, let alone the daemon.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
    let kind = value
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| "request is missing a string \"type\" field".to_string())?;
    let session = |v: &Value| {
        v.get("session")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{kind} request is missing a string \"session\" field"))
    };
    match kind {
        "open_session" => Ok(Request::OpenSession { session: session(&value)? }),
        "submit" => {
            let command = value
                .get("command")
                .and_then(Value::as_str)
                .ok_or_else(|| "submit request is missing a string \"command\" field".to_string())?
                .to_string();
            Ok(Request::Submit { session: session(&value)?, command })
        }
        "close_session" => Ok(Request::CloseSession { session: session(&value)? }),
        "ping" => Ok(Request::Ping),
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown request type '{other}'")),
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// `session_opened`: the session exists and will receive records.
pub fn session_opened(session: &str, opened_at: u64) -> Value {
    obj(vec![
        ("type", Value::str("session_opened")),
        ("session", Value::str(session)),
        ("opened_at", Value::UInt(opened_at)),
    ])
}

/// `job_accepted`: the command is queued as job `job` of its session.
pub fn job_accepted(session: &str, job: u64) -> Value {
    obj(vec![
        ("type", Value::str("job_accepted")),
        ("session", Value::str(session)),
        ("job", Value::UInt(job)),
    ])
}

/// `backpressure`: the session queue is full; the submit will be
/// accepted once capacity frees. Sent at most once per blocked submit.
pub fn backpressure(session: &str, queued: usize, capacity: usize) -> Value {
    obj(vec![
        ("type", Value::str("backpressure")),
        ("session", Value::str(session)),
        ("queued", Value::UInt(queued as u64)),
        ("capacity", Value::UInt(capacity as u64)),
    ])
}

/// `job_output`: one verbatim JSONL record produced by the job. The
/// payload rides as a string so the daemon's framing never rewrites
/// the job's own records — clients that strip the envelope recover a
/// byte-identical stream to the one-shot CLI run.
pub fn job_output(session: &str, job: u64, line: &str) -> Value {
    obj(vec![
        ("type", Value::str("job_output")),
        ("session", Value::str(session)),
        ("job", Value::UInt(job)),
        ("line", Value::str(line)),
    ])
}

/// `job_progress`: a campaign shard merged; streamed live as the
/// executor's ordered event stream delivers, not at end-of-run.
pub fn job_progress(
    session: &str,
    job: u64,
    shard: usize,
    shards: usize,
    completed: usize,
    retries: u64,
) -> Value {
    obj(vec![
        ("type", Value::str("job_progress")),
        ("session", Value::str(session)),
        ("job", Value::UInt(job)),
        ("shard", Value::UInt(shard as u64)),
        ("shards", Value::UInt(shards as u64)),
        ("completed", Value::UInt(completed as u64)),
        ("retries", Value::UInt(retries)),
    ])
}

/// `job_done`: the job succeeded on attempt `attempts`.
pub fn job_done(session: &str, job: u64, attempts: u32) -> Value {
    obj(vec![
        ("type", Value::str("job_done")),
        ("session", Value::str(session)),
        ("job", Value::UInt(job)),
        ("attempts", Value::UInt(u64::from(attempts))),
    ])
}

/// `job_failed`: the job exhausted its retry budget. Scoped to the
/// session — the daemon and every other session carry on.
pub fn job_failed(session: &str, job: u64, error: &str, attempts: u32) -> Value {
    obj(vec![
        ("type", Value::str("job_failed")),
        ("session", Value::str(session)),
        ("job", Value::UInt(job)),
        ("error", Value::str(error)),
        ("attempts", Value::UInt(u64::from(attempts))),
    ])
}

/// `session_closed`: terminal session record carrying final counts and
/// the session's telemetry snapshot.
pub fn session_closed(
    session: &str,
    jobs_done: u64,
    jobs_failed: u64,
    telemetry: Value,
    closed_at: u64,
) -> Value {
    obj(vec![
        ("type", Value::str("session_closed")),
        ("session", Value::str(session)),
        ("jobs_done", Value::UInt(jobs_done)),
        ("jobs_failed", Value::UInt(jobs_failed)),
        ("telemetry", telemetry),
        ("closed_at", Value::UInt(closed_at)),
    ])
}

/// `resumed`: a restarted daemon re-enqueued job `job` from a
/// checkpoint. The job re-runs from scratch with its first `emitted`
/// output records suppressed, so the stream continues where the
/// pre-restart daemon left off; a client stitching across the restart
/// keeps exactly `emitted` pre-crash `job_output` lines for this job
/// and appends everything that follows.
pub fn resumed(session: &str, job: u64, emitted: u64) -> Value {
    obj(vec![
        ("type", Value::str("resumed")),
        ("session", Value::str(session)),
        ("job", Value::UInt(job)),
        ("emitted", Value::UInt(emitted)),
    ])
}

/// `checkpoint_written`: a snapshot covering at least the first
/// `records` daemon-wide output records is durably on disk. Sent on the
/// stream of the session whose record crossed the cadence boundary,
/// *after* the file rename — per-session FIFO ordering makes it a
/// durable watermark: every record counted by the checkpoint precedes
/// it on the wire.
pub fn checkpoint_written(session: &str, records: u64) -> Value {
    obj(vec![
        ("type", Value::str("checkpoint_written")),
        ("session", Value::str(session)),
        ("records", Value::UInt(records)),
    ])
}

/// `daemon_resumed`: startup summary after a successful snapshot load.
pub fn daemon_resumed(sessions: u64, jobs: u64, machines: u64) -> Value {
    obj(vec![
        ("type", Value::str("daemon_resumed")),
        ("sessions", Value::UInt(sessions)),
        ("jobs", Value::UInt(jobs)),
        ("machines", Value::UInt(machines)),
    ])
}

/// `resume_warning`: `--resume` found a snapshot it could not load
/// (torn, corrupt, or from another format version); the daemon
/// cold-started instead. The campaign state is lost but the daemon is
/// healthy.
pub fn resume_warning(error: &str) -> Value {
    obj(vec![("type", Value::str("resume_warning")), ("error", Value::str(error))])
}

/// `pong`: liveness reply.
pub fn pong() -> Value {
    obj(vec![("type", Value::str("pong"))])
}

/// `daemon_drained`: the final record a draining daemon emits, after
/// every session closed and every worker joined.
pub fn daemon_drained(sessions: u64, jobs_done: u64, jobs_failed: u64, drained_at: u64) -> Value {
    obj(vec![
        ("type", Value::str("daemon_drained")),
        ("sessions", Value::UInt(sessions)),
        ("jobs_done", Value::UInt(jobs_done)),
        ("jobs_failed", Value::UInt(jobs_failed)),
        ("drained_at", Value::UInt(drained_at)),
    ])
}

/// `error`: request-level failure echoed to the offending client.
pub fn error(message: &str) -> Value {
    obj(vec![("type", Value::str("error")), ("error", Value::str(message))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_telemetry::json::to_jsonl_line;

    #[test]
    fn requests_round_trip_through_the_line_format() {
        let cases = [
            (
                r#"{"type":"open_session","session":"a"}"#,
                Request::OpenSession { session: "a".into() },
            ),
            (
                r#"{"type":"submit","session":"a","command":"oracle --trials 4"}"#,
                Request::Submit { session: "a".into(), command: "oracle --trials 4".into() },
            ),
            (
                r#"{"type":"close_session","session":"a"}"#,
                Request::CloseSession { session: "a".into() },
            ),
            (r#"{"type":"ping"}"#, Request::Ping),
            (r#"{"type":"status"}"#, Request::Status),
            (r#"{"type":"shutdown"}"#, Request::Shutdown),
        ];
        for (line, want) in cases {
            assert_eq!(parse_request(line).unwrap(), want, "line {line}");
        }
    }

    #[test]
    fn malformed_requests_describe_their_defect() {
        let bad = [
            ("not json", "bad request JSON"),
            (r#"{"session":"a"}"#, "missing a string \"type\""),
            (r#"{"type":"warp"}"#, "unknown request type 'warp'"),
            (r#"{"type":"submit","session":"a"}"#, "missing a string \"command\""),
            (r#"{"type":"open_session"}"#, "missing a string \"session\""),
        ];
        for (line, needle) in bad {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "error for {line:?} was {err:?}");
        }
    }

    #[test]
    fn resume_records_carry_their_watermarks() {
        let r = resumed("s", 4, 117);
        assert_eq!(r.get("type").and_then(Value::as_str), Some("resumed"));
        assert_eq!(r.get("job").and_then(Value::as_u64), Some(4));
        assert_eq!(r.get("emitted").and_then(Value::as_u64), Some(117));
        let c = checkpoint_written("s", 640);
        assert_eq!(c.get("type").and_then(Value::as_str), Some("checkpoint_written"));
        assert_eq!(c.get("records").and_then(Value::as_u64), Some(640));
        let w = resume_warning("snapshot checksum mismatch");
        assert_eq!(w.get("type").and_then(Value::as_str), Some("resume_warning"));
        assert!(w.get("error").and_then(Value::as_str).unwrap().contains("checksum"));
        // All survive the JSONL wire format.
        for record in [r, c, w] {
            let reparsed = parse(to_jsonl_line(&record).trim_end()).unwrap();
            assert_eq!(reparsed, record);
        }
    }

    #[test]
    fn job_output_envelopes_preserve_the_inner_line_verbatim() {
        let inner = r#"{"record":"verdict","hits":3}"#;
        let wrapped = job_output("s", 1, inner);
        assert_eq!(wrapped.get("line").and_then(Value::as_str), Some(inner));
        // The envelope itself survives a serialize/parse round trip.
        let reparsed = parse(to_jsonl_line(&wrapped).trim_end()).unwrap();
        assert_eq!(reparsed.get("line").and_then(Value::as_str), Some(inner));
    }
}
