//! Transports for the `pacmand` line protocol: any `BufRead`/`Write`
//! pair (stdio mode) and, on Unix, a `UnixListener` socket server.
//!
//! Both transports share [`serve_connection`], which owns one client's
//! request loop. Session records flow through per-session forwarder
//! threads onto the connection's shared writer, so long-running jobs
//! stream incrementally while the request loop stays responsive. A
//! connection's sessions are closed when the client closes them, at
//! EOF, and on `shutdown` — the daemon never leaks a tenant whose
//! client vanished.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;

use pacman_telemetry::json::{to_jsonl_line, Value};

use crate::protocol::{self, Request};
use crate::service::{Daemon, SessionHandle};

/// Writes one record as a JSONL line and flushes, so a client polling
/// the stream never waits on a buffer.
fn write_record<W: Write>(writer: &Mutex<W>, record: &Value) {
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = w.write_all(to_jsonl_line(record).as_bytes());
    let _ = w.flush();
}

/// Pumps one session's record stream onto the connection writer until
/// the session closes (its channel hangs up after `session_closed`).
fn spawn_forwarder<W: Write + Send + 'static>(
    handle: &mut SessionHandle,
    writer: Arc<Mutex<W>>,
) -> Option<thread::JoinHandle<()>> {
    let rx = handle.take_records()?;
    let name = format!("pacmand-fwd-{}", handle.name());
    thread::Builder::new()
        .name(name)
        .spawn(move || {
            for record in rx {
                write_record(&writer, &record);
            }
        })
        .ok()
}

/// Serves one client connection: reads request lines from `reader`,
/// writes response records to `writer`. Returns `true` when the client
/// requested a daemon `shutdown` (the caller then drains), `false` on
/// plain EOF. Every session the connection opened is closed before
/// returning, so queued jobs finish and final telemetry is streamed.
pub fn serve_connection<R, W>(daemon: &Daemon, reader: R, writer: Arc<Mutex<W>>) -> bool
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let mut sessions: HashMap<String, SessionHandle> = HashMap::new();
    let mut forwarders = Vec::new();
    let mut shutdown = false;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match protocol::parse_request(&line) {
            Err(e) => write_record(&writer, &protocol::error(&e)),
            Ok(Request::Ping) => write_record(&writer, &protocol::pong()),
            Ok(Request::Status) => write_record(&writer, &daemon.status()),
            Ok(Request::OpenSession { session }) => match daemon.open_session(&session) {
                Ok(mut handle) => {
                    if let Some(f) = spawn_forwarder(&mut handle, Arc::clone(&writer)) {
                        forwarders.push(f);
                    }
                    sessions.insert(session, handle);
                }
                Err(e) => write_record(&writer, &protocol::error(&e.to_string())),
            },
            Ok(Request::Submit { session, command }) => match sessions.get(&session) {
                Some(handle) => {
                    // Blocks under backpressure; the forwarder thread
                    // keeps records flowing meanwhile.
                    if let Err(e) = handle.submit(&command) {
                        write_record(&writer, &protocol::error(&e.to_string()));
                    }
                }
                None => {
                    let msg = format!("unknown session '{session}' on this connection");
                    write_record(&writer, &protocol::error(&msg));
                }
            },
            Ok(Request::CloseSession { session }) => match sessions.remove(&session) {
                // Synchronous: waits for the session's queued jobs, so
                // the `session_closed` record is on the wire when the
                // next request is read.
                Some(handle) => {
                    let _ = handle.close();
                }
                None => {
                    let msg = format!("unknown session '{session}' on this connection");
                    write_record(&writer, &protocol::error(&msg));
                }
            },
            Ok(Request::Shutdown) => {
                shutdown = true;
                break;
            }
        }
    }
    for (_, handle) in sessions.drain() {
        let _ = handle.close();
    }
    for f in forwarders {
        let _ = f.join();
    }
    shutdown
}

#[cfg(unix)]
pub use unix_socket::serve_unix;

#[cfg(unix)]
mod unix_socket {
    use super::*;
    use std::io::BufReader;
    use std::os::unix::net::UnixListener;
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    /// Binds `path` and serves connections until a client sends
    /// `shutdown`, then drains the daemon and returns its
    /// `daemon_drained` record.
    ///
    /// Accepting is a non-blocking poll so the shutdown flag is
    /// noticed promptly. After shutdown, already-accepted connections
    /// run until their clients disconnect — drain waits for them, so
    /// no accepted job is dropped.
    pub fn serve_unix(daemon: Arc<Daemon>, path: &Path) -> std::io::Result<Value> {
        // A stale socket file from a crashed daemon would fail the
        // bind; nothing is listening on it, so replace it.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut connections = Vec::new();
        while !stop.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let reader = BufReader::new(stream.try_clone()?);
                    stream.set_nonblocking(false)?;
                    let writer = Arc::new(Mutex::new(stream));
                    let daemon = Arc::clone(&daemon);
                    let stop = Arc::clone(&stop);
                    let conn = thread::Builder::new().name("pacmand-conn".to_string()).spawn(
                        move || {
                            if serve_connection(&daemon, reader, writer) {
                                stop.store(true, Ordering::Release);
                            }
                        },
                    )?;
                    connections.push(conn);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        for conn in connections {
            let _ = conn.join();
        }
        let report = daemon.drain();
        let _ = std::fs::remove_file(path);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{DaemonConfig, JobRunner, JobSink};
    use std::io::Cursor;

    fn echo_daemon() -> Daemon {
        let runner: Arc<dyn JobRunner> = Arc::new(|command: &str, sink: &JobSink| {
            if command == "fail" {
                return Err("requested failure".to_string());
            }
            sink.record(&format!("{{\"record\":\"echo\",\"command\":\"{command}\"}}"));
            Ok(())
        });
        Daemon::start(DaemonConfig { workers: 2, ..DaemonConfig::default() }, runner)
    }

    fn run_script(daemon: &Daemon, script: &str) -> (bool, Vec<Value>) {
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        let shutdown =
            serve_connection(daemon, Cursor::new(script.to_string()), Arc::clone(&writer));
        let bytes = writer.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let records = pacman_telemetry::json::parse_jsonl(&text).unwrap();
        (shutdown, records)
    }

    fn types_of<'a>(records: &'a [Value], session: &str) -> Vec<&'a str> {
        records
            .iter()
            .filter(|r| r.get("session").and_then(Value::as_str) == Some(session))
            .filter_map(|r| r.get("type").and_then(Value::as_str))
            .collect()
    }

    #[test]
    fn a_scripted_connection_runs_a_session_end_to_end() {
        let daemon = echo_daemon();
        let script = concat!(
            r#"{"type":"ping"}"#,
            "\n",
            r#"{"type":"open_session","session":"s1"}"#,
            "\n",
            r#"{"type":"submit","session":"s1","command":"hello"}"#,
            "\n",
            r#"{"type":"close_session","session":"s1"}"#,
            "\n",
        );
        let (shutdown, records) = run_script(&daemon, script);
        assert!(!shutdown);
        assert_eq!(records[0].get("type").and_then(Value::as_str), Some("pong"));
        let s1 = types_of(&records, "s1");
        assert_eq!(
            s1,
            ["session_opened", "job_accepted", "job_output", "job_done", "session_closed"]
        );
        daemon.drain();
    }

    #[test]
    fn protocol_errors_echo_back_without_dropping_the_connection() {
        let daemon = echo_daemon();
        let script = concat!(
            "this is not json\n",
            r#"{"type":"submit","session":"ghost","command":"x"}"#,
            "\n",
            r#"{"type":"ping"}"#,
            "\n",
        );
        let (shutdown, records) = run_script(&daemon, script);
        assert!(!shutdown);
        let types: Vec<_> =
            records.iter().filter_map(|r| r.get("type").and_then(Value::as_str)).collect();
        assert_eq!(types, ["error", "error", "pong"]);
        daemon.drain();
    }

    #[test]
    fn eof_closes_dangling_sessions_and_shutdown_is_reported() {
        let daemon = echo_daemon();
        // Session left open at EOF: serve_connection must close it.
        let (shutdown, records) = run_script(
            &daemon,
            concat!(
                r#"{"type":"open_session","session":"dangling"}"#,
                "\n",
                r#"{"type":"submit","session":"dangling","command":"work"}"#,
                "\n",
            ),
        );
        assert!(!shutdown);
        assert!(types_of(&records, "dangling").contains(&"session_closed"));
        let (shutdown, _) = run_script(&daemon, "{\"type\":\"shutdown\"}\n");
        assert!(shutdown);
        daemon.drain();
    }

    #[cfg(unix)]
    #[test]
    fn the_unix_socket_server_round_trips_and_drains() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;
        use std::time::Duration;

        let dir = std::env::temp_dir().join(format!("pacmand-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pacmand.sock");
        let daemon = Arc::new(echo_daemon());
        let server = {
            let daemon = Arc::clone(&daemon);
            let path = path.clone();
            thread::spawn(move || serve_unix(daemon, &path))
        };
        let stream = loop {
            match UnixStream::connect(&path) {
                Ok(s) => break s,
                Err(_) => thread::sleep(Duration::from_millis(10)),
            }
        };
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writeln!(writer, "{{\"type\":\"open_session\",\"session\":\"net\"}}").unwrap();
        writeln!(writer, "{{\"type\":\"submit\",\"session\":\"net\",\"command\":\"ping\"}}")
            .unwrap();
        writeln!(writer, "{{\"type\":\"close_session\",\"session\":\"net\"}}").unwrap();
        writeln!(writer, "{{\"type\":\"shutdown\"}}").unwrap();
        let mut seen = Vec::new();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            let record = pacman_telemetry::json::parse(line.trim_end()).unwrap();
            let t = record.get("type").and_then(Value::as_str).unwrap().to_string();
            let done = t == "session_closed";
            seen.push(t);
            if done {
                break;
            }
        }
        drop(writer);
        drop(reader);
        let report = server.join().unwrap().unwrap();
        assert_eq!(report.get("type").and_then(Value::as_str), Some("daemon_drained"));
        assert_eq!(report.get("sessions").and_then(Value::as_u64), Some(1));
        assert!(seen.contains(&"job_done".to_string()), "records seen: {seen:?}");
        assert!(!path.exists(), "socket file should be removed after drain");
    }
}
