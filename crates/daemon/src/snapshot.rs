//! Durable daemon state: the versioned, checksummed snapshot format
//! behind `pacmand --state-dir/--resume`.
//!
//! A snapshot captures everything a restarted daemon needs to pick a
//! campaign back up mid-stream: per-session queue contents (including
//! jobs that were *running* at checkpoint time, re-enqueued with their
//! emitted-record watermark), per-session counters and telemetry, the
//! daemon-wide totals and merged registry, and any warm `System`
//! machine snapshots donated by the worker pools (opaque blobs — the
//! daemon never interprets them; the CLI wires them to
//! `pacman_core::pool`).
//!
//! The file layout is a fixed header followed by a checksummed body:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "PACMANDS"
//! 8       2     format version (little-endian u16)
//! 10      8     FNV-1a checksum of the body (little-endian u64)
//! 18      ..    body (pacman_telemetry::bin fields, order is schema)
//! ```
//!
//! Loading is total: any truncation, bit-flip, or version skew yields a
//! typed [`SnapshotError`], never a panic — mirroring the tolerance of
//! `parse_jsonl_lossy` for torn JSONL files. Writes are atomic
//! (write-to-temp then rename), so a crash mid-checkpoint leaves the
//! previous snapshot intact; a torn temp file is never loaded.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use pacman_telemetry::bin::{fnv1a, BinError, Reader, Writer};
use pacman_telemetry::Registry;

/// First 8 bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"PACMANDS";

/// Current snapshot format version. Bump on any body layout change.
pub const VERSION: u16 = 1;

/// Bytes before the checksummed body begins.
const HEADER_LEN: usize = 8 + 2 + 8;

/// Why a snapshot failed to load (or write). Every variant is a
/// recoverable condition: the daemon logs a warning and cold-starts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file is shorter than the fixed header.
    Truncated,
    /// The first 8 bytes are not [`MAGIC`] — not a snapshot file.
    BadMagic,
    /// The file's format version does not match [`VERSION`].
    BadVersion(u16),
    /// The body checksum does not match the header — a torn write or a
    /// flipped bit.
    BadChecksum {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the body as read.
        computed: u64,
    },
    /// The body decoded but violated the schema (bad field, trailing
    /// bytes, or an inner truncation the checksum could not catch
    /// because the whole file was substituted).
    Corrupt(String),
    /// Filesystem failure reading or writing the snapshot.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated before the header ended"),
            SnapshotError::BadMagic => write!(f, "not a pacmand snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "snapshot format version {v} (this build reads {VERSION})")
            }
            SnapshotError::BadChecksum { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            SnapshotError::Corrupt(msg) => write!(f, "snapshot body corrupt: {msg}"),
            SnapshotError::Io(msg) => write!(f, "snapshot i/o: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<BinError> for SnapshotError {
    fn from(e: BinError) -> Self {
        SnapshotError::Corrupt(e.to_string())
    }
}

/// One queued or in-flight job as persisted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSnapshot {
    /// Job id within its session.
    pub id: u64,
    /// The submitted command line, re-run verbatim on resume.
    pub command: String,
    /// `job_output` records already delivered for this job. On resume
    /// the job re-runs from scratch and its first `emitted` records are
    /// suppressed — deterministic campaigns make the remainder continue
    /// the original stream byte-for-byte.
    pub emitted: u64,
}

/// One session's persisted state.
#[derive(Clone, Debug)]
pub struct SessionSnapshot {
    /// Session name (tenants reattach by re-opening it).
    pub name: String,
    /// Next job id to assign.
    pub next_job: u64,
    /// Jobs completed successfully so far.
    pub jobs_done: u64,
    /// Jobs that exhausted their retry budget.
    pub jobs_failed: u64,
    /// `job_output` records delivered on this session's stream.
    pub records: u64,
    /// The session's telemetry registry.
    pub telemetry: Registry,
    /// Replay queue: jobs that were running at checkpoint time first
    /// (with their emitted watermarks), then the still-queued ones.
    pub jobs: Vec<JobSnapshot>,
}

/// The whole daemon's persisted state.
#[derive(Clone, Debug, Default)]
pub struct DaemonSnapshot {
    /// Sessions ever opened (the `daemon_drained` total).
    pub sessions_served: u64,
    /// Jobs completed across all sessions, ever.
    pub jobs_done_total: u64,
    /// Jobs failed across all sessions, ever.
    pub jobs_failed_total: u64,
    /// Telemetry folded in from closed sessions.
    pub telemetry: Registry,
    /// Open sessions, sorted by name for deterministic encoding.
    pub sessions: Vec<SessionSnapshot>,
    /// Opaque warm-machine snapshots (`System::snapshot` blobs) donated
    /// by the worker pools; seeded back into the pools on resume.
    pub machines: Vec<Vec<u8>>,
}

impl DaemonSnapshot {
    /// Serialises to the on-disk format (header + checksummed body).
    #[must_use]
    pub fn save(&self) -> Vec<u8> {
        let mut body = Writer::new();
        body.u64(self.sessions_served);
        body.u64(self.jobs_done_total);
        body.u64(self.jobs_failed_total);
        self.telemetry.save_bin(&mut body);
        body.usize(self.sessions.len());
        for s in &self.sessions {
            body.str(&s.name);
            body.u64(s.next_job);
            body.u64(s.jobs_done);
            body.u64(s.jobs_failed);
            body.u64(s.records);
            s.telemetry.save_bin(&mut body);
            body.usize(s.jobs.len());
            for j in &s.jobs {
                body.u64(j.id);
                body.str(&j.command);
                body.u64(j.emitted);
            }
        }
        body.usize(self.machines.len());
        for m in &self.machines {
            body.bytes(m);
        }
        let body = body.into_bytes();
        let mut out = Vec::with_capacity(HEADER_LEN + body.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parses the on-disk format. Total: every way `bytes` can be wrong
    /// maps to a [`SnapshotError`] variant.
    pub fn load(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let stored = u64::from_le_bytes(bytes[10..18].try_into().expect("8 header bytes"));
        let body = &bytes[HEADER_LEN..];
        let computed = fnv1a(body);
        if stored != computed {
            return Err(SnapshotError::BadChecksum { stored, computed });
        }
        let mut r = Reader::new(body);
        let sessions_served = r.u64()?;
        let jobs_done_total = r.u64()?;
        let jobs_failed_total = r.u64()?;
        let telemetry = Registry::load_bin(&mut r)?;
        let session_count = r.usize()?;
        let mut sessions = Vec::with_capacity(session_count.min(1024));
        for _ in 0..session_count {
            let name = r.str()?;
            let next_job = r.u64()?;
            let jobs_done = r.u64()?;
            let jobs_failed = r.u64()?;
            let records = r.u64()?;
            let session_telemetry = Registry::load_bin(&mut r)?;
            let job_count = r.usize()?;
            let mut jobs = Vec::with_capacity(job_count.min(1024));
            for _ in 0..job_count {
                let id = r.u64()?;
                let command = r.str()?;
                let emitted = r.u64()?;
                jobs.push(JobSnapshot { id, command, emitted });
            }
            sessions.push(SessionSnapshot {
                name,
                next_job,
                jobs_done,
                jobs_failed,
                records,
                telemetry: session_telemetry,
                jobs,
            });
        }
        let machine_count = r.usize()?;
        let mut machines = Vec::with_capacity(machine_count.min(64));
        for _ in 0..machine_count {
            machines.push(r.bytes()?.to_vec());
        }
        if !r.is_done() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after snapshot body",
                r.remaining()
            )));
        }
        Ok(DaemonSnapshot {
            sessions_served,
            jobs_done_total,
            jobs_failed_total,
            telemetry,
            sessions,
            machines,
        })
    }

    /// Writes the snapshot to `path` atomically: the bytes land in a
    /// sibling temp file which is then renamed over `path`, so readers
    /// only ever see the previous complete snapshot or this one.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        let io = |e: std::io::Error| SnapshotError::Io(format!("{}: {e}", path.display()));
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp).map_err(io)?;
            f.write_all(&self.save()).map_err(io)?;
            f.sync_all().map_err(io)?;
        }
        fs::rename(&tmp, path).map_err(io)
    }

    /// Reads and parses `path`. `Ok(None)` when the file does not exist
    /// (a first boot with `--resume` is not an error); every other
    /// failure is typed.
    pub fn read_file(path: &Path) -> Result<Option<Self>, SnapshotError> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(SnapshotError::Io(format!("{}: {e}", path.display()))),
        };
        Self::load(&bytes).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DaemonSnapshot {
        let mut telemetry = Registry::new();
        telemetry.incr_by("daemon.jobs_done", 3);
        let mut s_tel = Registry::new();
        s_tel.observe("daemon.job_us", 1200);
        DaemonSnapshot {
            sessions_served: 4,
            jobs_done_total: 3,
            jobs_failed_total: 1,
            telemetry,
            sessions: vec![SessionSnapshot {
                name: "alpha".into(),
                next_job: 5,
                jobs_done: 2,
                jobs_failed: 0,
                records: 117,
                telemetry: s_tel,
                jobs: vec![
                    JobSnapshot { id: 3, command: "oracle --trials 64".into(), emitted: 41 },
                    JobSnapshot { id: 4, command: "brute --ptr 7".into(), emitted: 0 },
                ],
            }],
            machines: vec![vec![1, 2, 3], vec![0xFF; 9]],
        }
    }

    #[test]
    fn a_snapshot_round_trips_field_for_field() {
        let snap = sample();
        let loaded = DaemonSnapshot::load(&snap.save()).unwrap();
        assert_eq!(loaded.sessions_served, snap.sessions_served);
        assert_eq!(loaded.jobs_done_total, snap.jobs_done_total);
        assert_eq!(loaded.jobs_failed_total, snap.jobs_failed_total);
        assert_eq!(loaded.telemetry.snapshot(), snap.telemetry.snapshot());
        assert_eq!(loaded.sessions.len(), 1);
        let (a, b) = (&loaded.sessions[0], &snap.sessions[0]);
        assert_eq!((a.name.as_str(), a.next_job, a.jobs_done), ("alpha", 5, 2));
        assert_eq!(a.records, b.records);
        assert_eq!(a.telemetry.snapshot(), b.telemetry.snapshot());
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(loaded.machines, snap.machines);
    }

    #[test]
    fn every_truncation_is_a_typed_error_never_a_panic() {
        let bytes = sample().save();
        for cut in 0..bytes.len() {
            let err = DaemonSnapshot::load(&bytes[..cut]).unwrap_err();
            match err {
                SnapshotError::Truncated
                | SnapshotError::BadChecksum { .. }
                | SnapshotError::Corrupt(_) => {}
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn a_flipped_bit_anywhere_is_detected() {
        let bytes = sample().save();
        // Magic byte.
        let mut bad = bytes.clone();
        bad[0] ^= 0x01;
        assert!(matches!(DaemonSnapshot::load(&bad), Err(SnapshotError::BadMagic)));
        // Stored checksum.
        let mut bad = bytes.clone();
        bad[12] ^= 0x40;
        assert!(matches!(DaemonSnapshot::load(&bad), Err(SnapshotError::BadChecksum { .. })));
        // Every body byte is covered by the checksum.
        for i in (HEADER_LEN..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x80;
            assert!(
                matches!(DaemonSnapshot::load(&bad), Err(SnapshotError::BadChecksum { .. })),
                "flip at {i} escaped the checksum"
            );
        }
    }

    #[test]
    fn version_skew_is_reported_with_the_found_version() {
        let mut bytes = sample().save();
        bytes[8] = 99;
        match DaemonSnapshot::load(&bytes) {
            Err(SnapshotError::BadVersion(99)) => {}
            other => panic!("expected BadVersion(99), got {other:?}"),
        }
    }

    #[test]
    fn atomic_writes_land_whole_and_missing_files_are_not_errors() {
        let dir = std::env::temp_dir().join(format!("pacmand-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snapshot");
        assert!(DaemonSnapshot::read_file(&path).unwrap().is_none());
        let snap = sample();
        snap.write_atomic(&path).unwrap();
        let loaded = DaemonSnapshot::read_file(&path).unwrap().expect("file present");
        assert_eq!(loaded.machines, snap.machines);
        assert!(!path.with_extension("tmp").exists(), "temp file renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }
}
