//! `pacmand` scheduling core: multi-tenant sessions, fair-share job
//! queues, and per-session fault isolation.
//!
//! The daemon owns a small pool of persistent worker threads. Each
//! tenant opens a named *session*; jobs submitted to a session queue
//! behind a bounded per-session queue ([`DaemonConfig::session_queue`])
//! and run under a per-session in-flight cap
//! ([`DaemonConfig::session_parallel`]). Workers pick jobs by rotating
//! round-robin over sessions, so a tenant that floods its queue delays
//! only itself — the fair-share guarantee a shared
//! [`Executor::global`](pacman_runner::Executor::global) backend needs.
//!
//! Fault isolation is the daemon's core contract: a job that panics or
//! returns an error is caught on the worker ([`std::panic::catch_unwind`]),
//! charged against the *job's* retry budget
//! ([`DaemonConfig::job_attempts`]), and reported as a `job_failed`
//! record on the *owning session's* stream. The daemon, its workers,
//! and every other session carry on. Retries re-run on the same
//! persistent worker thread, whose thread-local machine pool resumes
//! warm `System` snapshots via `reboot_into` instead of cold-booting.
//!
//! Shutdown is a graceful *drain*: stop admitting, run every queued job
//! to completion, close every session (emitting its final telemetry
//! snapshot), join the workers, and emit one `daemon_drained` record.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Instant;

use pacman_telemetry::json::Value;
use pacman_telemetry::Registry;

use crate::clock::unix_seconds_now;
use crate::protocol;
use crate::snapshot::{DaemonSnapshot, JobSnapshot, SessionSnapshot, SnapshotError};

/// Sizing and fault-budget knobs for a [`Daemon`].
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// Worker threads executing jobs (not the executor's own workers —
    /// these run whole commands, which internally shard onto
    /// `Executor::global`).
    pub workers: usize,
    /// Queued-job capacity per session; a submit beyond it blocks
    /// after emitting one `backpressure` record.
    pub session_queue: usize,
    /// In-flight job cap per session — the fair-share throttle.
    pub session_parallel: usize,
    /// Attempts per job (first run included). Exhausting the budget
    /// yields `job_failed` on the session stream, nothing more.
    pub job_attempts: u32,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: pacman_runner::default_jobs(),
            session_queue: 16,
            session_parallel: 1,
            job_attempts: 1,
        }
    }
}

/// Hook collecting opaque warm-machine snapshot blobs for a checkpoint.
pub type CollectMachinesFn = Arc<dyn Fn() -> Vec<Vec<u8>> + Send + Sync>;

/// Hook receiving machine blobs recovered from a resumed snapshot.
pub type SeedMachinesFn = Arc<dyn Fn(Vec<Vec<u8>>) + Send + Sync>;

/// Durability knobs: where checkpoints go and how often they are cut.
///
/// `DaemonConfig` stays `Copy`; the checkpoint path and machine hooks
/// live here and are passed to [`Daemon::start_durable`] separately.
#[derive(Clone)]
pub struct CheckpointPolicy {
    /// Snapshot file path (written atomically; see [`crate::snapshot`]).
    pub path: PathBuf,
    /// Cut a checkpoint every this many daemon-wide `job_output`
    /// records (clamped to at least 1). Each write is announced with a
    /// `checkpoint_written` record on the triggering session's stream.
    pub every_records: u64,
    /// Collects opaque warm-machine snapshot blobs to embed in the
    /// checkpoint (the CLI wires `pacman_core::pool::take_donations`).
    /// The daemon itself never interprets the blobs.
    pub collect_machines: Option<CollectMachinesFn>,
    /// Receives the machine blobs recovered from a resumed snapshot
    /// (the CLI wires `pacman_core::pool::seed`).
    pub seed_machines: Option<SeedMachinesFn>,
}

impl CheckpointPolicy {
    /// A policy with no machine hooks.
    #[must_use]
    pub fn new(path: PathBuf, every_records: u64) -> Self {
        CheckpointPolicy { path, every_records, collect_machines: None, seed_machines: None }
    }
}

impl fmt::Debug for CheckpointPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointPolicy")
            .field("path", &self.path)
            .field("every_records", &self.every_records)
            .field("collect_machines", &self.collect_machines.is_some())
            .field("seed_machines", &self.seed_machines.is_some())
            .finish()
    }
}

/// Runtime durability state hung off [`Inner`].
struct Durable {
    policy: CheckpointPolicy,
    /// Monotonic count of delivered `job_output` records; checkpoints
    /// trigger on multiples of the cadence.
    records_seen: AtomicU64,
    /// Last non-empty batch of donated machine blobs, carried forward
    /// so every checkpoint ships warm machines even when no pool parked
    /// one since the previous cut.
    machines: Mutex<Vec<Vec<u8>>>,
    /// Startup record describing how resume went (`daemon_resumed` or
    /// `resume_warning`), for the embedder to log.
    resume_report: Mutex<Option<Value>>,
}

/// Executes one submitted command line. The CLI supplies the real
/// implementation (its `dispatch` path); tests and the load bench
/// supply synthetic ones.
///
/// Implementations run on daemon worker threads and must confine
/// failures to their return value or a panic — both are caught and
/// scoped to the submitting session.
pub trait JobRunner: Send + Sync {
    /// Runs `command`, streaming records through `sink`.
    fn run(&self, command: &str, sink: &JobSink) -> Result<(), String>;
}

impl<F> JobRunner for F
where
    F: Fn(&str, &JobSink) -> Result<(), String> + Send + Sync,
{
    fn run(&self, command: &str, sink: &JobSink) -> Result<(), String> {
        self(command, sink)
    }
}

/// A job's handle to its session's record stream.
///
/// [`record`](JobSink::record) forwards one verbatim JSONL line inside
/// a `job_output` envelope; [`progress`](JobSink::progress) streams a
/// shard-merge notification as the executor's ordered event stream
/// delivers it. Both are fire-and-forget: a departed client drops the
/// receiving end and sends become no-ops, never errors.
#[derive(Clone)]
pub struct JobSink {
    session: String,
    job: u64,
    tx: Sender<Value>,
    records: Arc<AtomicU64>,
    /// Output records this job has produced (across the whole job
    /// lifetime — a resumed job starts at 0 and counts back up through
    /// its suppressed replay prefix).
    emitted: Arc<AtomicU64>,
    /// Replay suppression: the first `skip` records are dropped because
    /// the pre-restart daemon already delivered them.
    skip: u64,
    /// Back-reference for checkpoint triggering (None on non-durable
    /// daemons: the plain path pays one branch).
    inner: Option<Arc<Inner>>,
}

impl JobSink {
    /// The owning session's name.
    pub fn session(&self) -> &str {
        &self.session
    }

    /// The job's id within its session.
    pub fn job(&self) -> u64 {
        self.job
    }

    /// Streams one verbatim JSONL record line (no trailing newline).
    ///
    /// On a resumed job the first `skip` calls are swallowed — they
    /// reproduce records the pre-restart daemon already delivered — so
    /// the session stream continues mid-job without duplicates. On a
    /// durable daemon, crossing the checkpoint cadence writes a
    /// snapshot *synchronously* and then queues a `checkpoint_written`
    /// record behind this one: per-session FIFO turns that record into
    /// a durable watermark for everything before it.
    pub fn record(&self, line: &str) {
        let n = self.emitted.fetch_add(1, Ordering::Relaxed);
        if n < self.skip {
            return;
        }
        self.records.fetch_add(1, Ordering::Relaxed);
        let _ = self.tx.send(protocol::job_output(&self.session, self.job, line));
        if let Some(inner) = &self.inner {
            if let Some(durable) = &inner.durable {
                let seen = durable.records_seen.fetch_add(1, Ordering::Relaxed) + 1;
                if seen % durable.policy.every_records.max(1) == 0
                    && write_checkpoint(inner).is_ok()
                {
                    let _ = self.tx.send(protocol::checkpoint_written(&self.session, seen));
                }
            }
        }
    }

    /// Streams a shard-merge progress notification.
    pub fn progress(&self, shard: usize, shards: usize, completed: usize, retries: u64) {
        let _ = self.tx.send(protocol::job_progress(
            &self.session,
            self.job,
            shard,
            shards,
            completed,
            retries,
        ));
    }
}

/// Why a session operation was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DaemonError {
    /// The daemon is draining and admits no new sessions or jobs.
    Draining,
    /// A session with this name is already open.
    DuplicateSession(String),
    /// No such session (closed, or never opened).
    UnknownSession(String),
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Draining => write!(f, "daemon is draining"),
            DaemonError::DuplicateSession(s) => write!(f, "session '{s}' is already open"),
            DaemonError::UnknownSession(s) => write!(f, "unknown session '{s}'"),
        }
    }
}

impl std::error::Error for DaemonError {}

struct Job {
    id: u64,
    command: String,
    /// Replay suppression carried from a resumed checkpoint; 0 for
    /// freshly submitted jobs.
    skip: u64,
}

/// Bookkeeping for a job currently on a worker, kept so checkpoints can
/// persist in-flight work as re-runnable.
struct RunningJob {
    command: String,
    skip: u64,
    emitted: Arc<AtomicU64>,
}

impl RunningJob {
    /// Total output records ever delivered for this job — the replay
    /// watermark a checkpoint stores. While the job is still inside its
    /// suppressed replay prefix, the pre-restart watermark stands.
    fn watermark(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed).max(self.skip)
    }
}

struct SessionState {
    queue: VecDeque<Job>,
    in_flight: usize,
    next_job: u64,
    jobs_done: u64,
    jobs_failed: u64,
    closing: bool,
    records: Arc<AtomicU64>,
    telemetry: Registry,
    tx: Sender<Value>,
    /// Jobs currently on workers, by id.
    running: HashMap<u64, RunningJob>,
    /// A resumed session keeps its record receiver parked here until
    /// the tenant re-opens the session by name and claims it; records
    /// replayed meanwhile queue up in the channel.
    parked_rx: Option<Receiver<Value>>,
}

struct SchedState {
    sessions: HashMap<String, SessionState>,
    /// Round-robin pick order; the session a worker just served moves
    /// to the back. Stale names (closed sessions) are dropped lazily.
    rotation: VecDeque<String>,
    draining: bool,
    sessions_served: u64,
    jobs_done_total: u64,
    jobs_failed_total: u64,
    /// Telemetry folded in from closed sessions; live sessions merge
    /// on top in [`Daemon::metrics`].
    telemetry: Registry,
}

struct Inner {
    state: Mutex<SchedState>,
    /// A job was queued, or an in-flight slot freed.
    work_ready: Condvar,
    /// A session queue gained capacity.
    space_ready: Condvar,
    /// A job finished — close/drain waiters re-check here.
    idle: Condvar,
    config: DaemonConfig,
    /// Present iff the daemon was started with a [`CheckpointPolicy`].
    durable: Option<Durable>,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The daemon: worker pool plus session table. See the module docs for
/// the scheduling and isolation contract.
pub struct Daemon {
    inner: Arc<Inner>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Daemon {
    /// Boots the worker pool and returns the daemon.
    pub fn start(config: DaemonConfig, runner: Arc<dyn JobRunner>) -> Daemon {
        Self::start_inner(config, runner, None, fresh_state())
    }

    /// Boots a *durable* daemon: checkpoints are cut per `policy`, and
    /// when `resume` is set an existing snapshot at `policy.path` is
    /// loaded first — its sessions are rebuilt with their interrupted
    /// jobs re-enqueued (running jobs at the queue front, with replay
    /// suppression), its totals and telemetry restored, and its warm
    /// machine blobs handed to `policy.seed_machines`.
    ///
    /// A missing snapshot file is a silent cold start (first boot). A
    /// snapshot that fails to load — torn, corrupt, or version-skewed —
    /// is *also* a cold start, with the typed failure preserved as a
    /// `resume_warning` record in [`Daemon::resume_report`]: a bad file
    /// must never stop the daemon from serving.
    pub fn start_durable(
        config: DaemonConfig,
        runner: Arc<dyn JobRunner>,
        policy: CheckpointPolicy,
        resume: bool,
    ) -> Daemon {
        let mut report = None;
        let mut machines = Vec::new();
        let state = if resume {
            match DaemonSnapshot::read_file(&policy.path) {
                Ok(None) => fresh_state(),
                Ok(Some(snap)) => {
                    let jobs: u64 = snap.sessions.iter().map(|s| s.jobs.len() as u64).sum();
                    report = Some(protocol::daemon_resumed(
                        snap.sessions.len() as u64,
                        jobs,
                        snap.machines.len() as u64,
                    ));
                    machines = snap.machines.clone();
                    if let Some(seed) = &policy.seed_machines {
                        seed(snap.machines.clone());
                    }
                    state_from_snapshot(snap)
                }
                Err(e) => {
                    report = Some(protocol::resume_warning(&e.to_string()));
                    fresh_state()
                }
            }
        } else {
            fresh_state()
        };
        let durable = Durable {
            policy,
            records_seen: AtomicU64::new(
                state.sessions.values().map(|s| s.records.load(Ordering::Relaxed)).sum(),
            ),
            machines: Mutex::new(machines),
            resume_report: Mutex::new(report),
        };
        Self::start_inner(config, runner, Some(durable), state)
    }

    fn start_inner(
        config: DaemonConfig,
        runner: Arc<dyn JobRunner>,
        durable: Option<Durable>,
        state: SchedState,
    ) -> Daemon {
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(state),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            idle: Condvar::new(),
            config: DaemonConfig { workers, ..config },
            durable,
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let runner = Arc::clone(&runner);
                thread::Builder::new()
                    .name(format!("pacmand-worker-{i}"))
                    .spawn(move || worker_loop(&inner, runner.as_ref()))
                    .expect("spawn pacmand worker")
            })
            .collect();
        Daemon { inner, workers: Mutex::new(handles) }
    }

    /// The startup record a durable daemon produced while resuming —
    /// `daemon_resumed` on success, `resume_warning` on a bad snapshot,
    /// `None` on a cold start. Taken once; the embedder logs it.
    pub fn resume_report(&self) -> Option<Value> {
        let durable = self.inner.durable.as_ref()?;
        durable.resume_report.lock().unwrap_or_else(PoisonError::into_inner).take()
    }

    /// Cuts a checkpoint now (durable daemons only; no-op otherwise).
    /// The periodic cadence still applies — this is for embedders that
    /// want one at a known boundary, e.g. right before exiting.
    pub fn checkpoint_now(&self) -> Result<(), SnapshotError> {
        if self.inner.durable.is_some() {
            write_checkpoint(&self.inner)
        } else {
            Ok(())
        }
    }

    /// Opens a named session. The handle is the tenant's side of the
    /// record stream; its first record is `session_opened`.
    ///
    /// Re-opening a session resumed from a checkpoint *reattaches* to
    /// it instead: the returned handle owns the parked record stream,
    /// which already carries `session_opened`, the `resumed` watermarks
    /// and any output replayed since the daemon restarted.
    pub fn open_session(&self, name: &str) -> Result<SessionHandle, DaemonError> {
        let (tx, rx) = channel();
        let mut g = self.inner.lock();
        if g.draining {
            return Err(DaemonError::Draining);
        }
        if let Some(sess) = g.sessions.get_mut(name) {
            if let Some(parked) = sess.parked_rx.take() {
                return Ok(SessionHandle {
                    name: name.to_string(),
                    inner: Arc::clone(&self.inner),
                    rx: Some(parked),
                });
            }
            return Err(DaemonError::DuplicateSession(name.to_string()));
        }
        let _ = tx.send(protocol::session_opened(name, unix_seconds_now()));
        g.sessions.insert(
            name.to_string(),
            SessionState {
                queue: VecDeque::new(),
                in_flight: 0,
                next_job: 0,
                jobs_done: 0,
                jobs_failed: 0,
                closing: false,
                records: Arc::new(AtomicU64::new(0)),
                telemetry: Registry::new(),
                tx,
                running: HashMap::new(),
                parked_rx: None,
            },
        );
        g.rotation.push_back(name.to_string());
        g.sessions_served += 1;
        Ok(SessionHandle { name: name.to_string(), inner: Arc::clone(&self.inner), rx: Some(rx) })
    }

    /// Daemon-wide telemetry: closed sessions' registries plus a live
    /// merge of every open session's.
    pub fn metrics(&self) -> Registry {
        let g = self.inner.lock();
        let mut out = g.telemetry.clone();
        for s in g.sessions.values() {
            out.merge(&s.telemetry);
        }
        out
    }

    /// A `status` record: session/queue occupancy plus the shared
    /// executor's queue depth.
    pub fn status(&self) -> Value {
        let g = self.inner.lock();
        let queued: usize = g.sessions.values().map(|s| s.queue.len()).sum();
        let in_flight: usize = g.sessions.values().map(|s| s.in_flight).sum();
        let exec = pacman_runner::Executor::global();
        Value::Object(vec![
            ("type".into(), Value::str("status")),
            ("sessions".into(), Value::UInt(g.sessions.len() as u64)),
            ("queued_jobs".into(), Value::UInt(queued as u64)),
            ("in_flight_jobs".into(), Value::UInt(in_flight as u64)),
            ("draining".into(), Value::Bool(g.draining)),
            ("workers".into(), Value::UInt(self.inner.config.workers as u64)),
            ("executor_queue_depth".into(), Value::UInt(exec.queue_depth() as u64)),
            ("executor_max_pending".into(), Value::UInt(exec.max_pending() as u64)),
        ])
    }

    /// Gracefully drains: stops admitting, runs every queued job to
    /// completion, closes every open session, joins the workers, and
    /// returns the `daemon_drained` record. Idempotent — later calls
    /// just re-report the totals.
    pub fn drain(&self) -> Value {
        {
            let mut g = self.inner.lock();
            g.draining = true;
        }
        // Unblock submits waiting for queue space (they now fail with
        // `Draining`) and idle workers (they may exit once queues dry).
        self.inner.space_ready.notify_all();
        self.inner.work_ready.notify_all();
        let names: Vec<String> = self.inner.lock().sessions.keys().cloned().collect();
        for name in &names {
            close_named(&self.inner, name);
        }
        let handles =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handles {
            let _ = h.join();
        }
        // On-drain checkpoint: every session is closed and every job
        // done, so the snapshot records the final totals — a resume
        // after a graceful drain is an empty (but accounted) daemon.
        let _ = self.checkpoint_now();
        let g = self.inner.lock();
        protocol::daemon_drained(
            g.sessions_served,
            g.jobs_done_total,
            g.jobs_failed_total,
            unix_seconds_now(),
        )
    }
}

fn fresh_state() -> SchedState {
    SchedState {
        sessions: HashMap::new(),
        rotation: VecDeque::new(),
        draining: false,
        sessions_served: 0,
        jobs_done_total: 0,
        jobs_failed_total: 0,
        telemetry: Registry::new(),
    }
}

/// Rebuilds the scheduler state from a loaded snapshot. Every session
/// gets a fresh channel whose receiver is *parked* until the tenant
/// re-opens the session by name; the stream starts with
/// `session_opened` and one `resumed` record per re-enqueued job, so a
/// reattaching client knows exactly which replay prefix to drop.
fn state_from_snapshot(snap: DaemonSnapshot) -> SchedState {
    let mut sessions = HashMap::new();
    let mut rotation = VecDeque::new();
    for s in snap.sessions {
        let (tx, rx) = channel();
        let _ = tx.send(protocol::session_opened(&s.name, unix_seconds_now()));
        for j in &s.jobs {
            let _ = tx.send(protocol::resumed(&s.name, j.id, j.emitted));
        }
        let queue = s
            .jobs
            .into_iter()
            .map(|j| Job { id: j.id, command: j.command, skip: j.emitted })
            .collect();
        rotation.push_back(s.name.clone());
        sessions.insert(
            s.name,
            SessionState {
                queue,
                in_flight: 0,
                next_job: s.next_job,
                jobs_done: s.jobs_done,
                jobs_failed: s.jobs_failed,
                closing: false,
                records: Arc::new(AtomicU64::new(s.records)),
                telemetry: s.telemetry,
                tx,
                running: HashMap::new(),
                parked_rx: Some(rx),
            },
        );
    }
    SchedState {
        sessions,
        rotation,
        draining: false,
        sessions_served: snap.sessions_served,
        jobs_done_total: snap.jobs_done_total,
        jobs_failed_total: snap.jobs_failed_total,
        telemetry: snap.telemetry,
    }
}

/// Captures the scheduler state and writes it to the policy path
/// atomically. Runs synchronously on the calling (worker) thread; the
/// scheduler lock is held only while *capturing*, not while writing.
fn write_checkpoint(inner: &Inner) -> Result<(), SnapshotError> {
    let Some(durable) = &inner.durable else { return Ok(()) };
    if let Some(collect) = &durable.policy.collect_machines {
        let fresh = collect();
        if !fresh.is_empty() {
            *durable.machines.lock().unwrap_or_else(PoisonError::into_inner) = fresh;
        }
    }
    let machines = durable.machines.lock().unwrap_or_else(PoisonError::into_inner).clone();
    let snap = {
        let g = inner.lock();
        let mut sessions: Vec<SessionSnapshot> = g
            .sessions
            .iter()
            .map(|(name, s)| {
                // Running jobs replay first (ordered by id), then the
                // still-queued ones in queue order.
                let mut by_id: Vec<(&u64, &RunningJob)> = s.running.iter().collect();
                by_id.sort_by_key(|(id, _)| **id);
                let mut jobs: Vec<JobSnapshot> =
                    Vec::with_capacity(s.running.len() + s.queue.len());
                for (id, r) in by_id {
                    jobs.push(JobSnapshot {
                        id: *id,
                        command: r.command.clone(),
                        emitted: r.watermark(),
                    });
                }
                jobs.extend(s.queue.iter().map(|j| JobSnapshot {
                    id: j.id,
                    command: j.command.clone(),
                    emitted: j.skip,
                }));
                SessionSnapshot {
                    name: name.clone(),
                    next_job: s.next_job,
                    jobs_done: s.jobs_done,
                    jobs_failed: s.jobs_failed,
                    records: s.records.load(Ordering::Relaxed),
                    telemetry: s.telemetry.clone(),
                    jobs,
                }
            })
            .collect();
        sessions.sort_by(|a, b| a.name.cmp(&b.name));
        DaemonSnapshot {
            sessions_served: g.sessions_served,
            jobs_done_total: g.jobs_done_total,
            jobs_failed_total: g.jobs_failed_total,
            telemetry: g.telemetry.clone(),
            sessions,
            machines,
        }
    };
    snap.write_atomic(&durable.policy.path)
}

/// A tenant's side of one session: submit jobs, read the record
/// stream, close.
pub struct SessionHandle {
    name: String,
    inner: Arc<Inner>,
    rx: Option<Receiver<Value>>,
}

impl SessionHandle {
    /// The session's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Queues one command line; returns the job id. Blocks while the
    /// session queue is at capacity, after streaming one
    /// `backpressure` record so the tenant knows why.
    pub fn submit(&self, command: &str) -> Result<u64, DaemonError> {
        let capacity = self.inner.config.session_queue;
        let mut g = self.inner.lock();
        let mut warned = false;
        loop {
            if g.draining {
                return Err(DaemonError::Draining);
            }
            let Some(sess) = g.sessions.get_mut(&self.name) else {
                return Err(DaemonError::UnknownSession(self.name.clone()));
            };
            if sess.closing {
                return Err(DaemonError::UnknownSession(self.name.clone()));
            }
            if sess.queue.len() < capacity {
                break;
            }
            if !warned {
                let _ =
                    sess.tx.send(protocol::backpressure(&self.name, sess.queue.len(), capacity));
                sess.telemetry.incr("daemon.backpressure");
                warned = true;
            }
            g = self.inner.space_ready.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        let sess = g.sessions.get_mut(&self.name).expect("session checked above");
        let id = sess.next_job;
        sess.next_job += 1;
        sess.queue.push_back(Job { id, command: command.to_string(), skip: 0 });
        sess.telemetry.incr("daemon.jobs_submitted");
        let _ = sess.tx.send(protocol::job_accepted(&self.name, id));
        drop(g);
        self.inner.work_ready.notify_all();
        Ok(id)
    }

    /// Next record on the session stream; `None` once the session is
    /// closed and the stream is fully drained, or after
    /// [`take_records`](SessionHandle::take_records) moved the
    /// receiving end elsewhere.
    pub fn next_record(&self) -> Option<Value> {
        self.rx.as_ref().and_then(|rx| rx.recv().ok())
    }

    /// Non-blocking variant of [`next_record`](SessionHandle::next_record).
    pub fn try_next_record(&self) -> Option<Value> {
        self.rx.as_ref().and_then(|rx| rx.try_recv().ok())
    }

    /// Moves the record receiver out — e.g. to a socket-forwarder
    /// thread — leaving the handle usable for submit/close.
    pub fn take_records(&mut self) -> Option<Receiver<Value>> {
        self.rx.take()
    }

    /// Closes the session: waits for queued and in-flight jobs to
    /// finish, folds its telemetry into the daemon-wide registry, and
    /// returns the `session_closed` record (also streamed as the
    /// session's final record). `None` if the session was already
    /// closed elsewhere.
    pub fn close(mut self) -> Option<Value> {
        self.rx.take();
        close_named(&self.inner, &self.name)
    }
}

/// Shared close path used by [`SessionHandle::close`] and
/// [`Daemon::drain`]. Waits for the session to go idle, removes it,
/// merges telemetry, and emits `session_closed`.
fn close_named(inner: &Arc<Inner>, name: &str) -> Option<Value> {
    let mut g = inner.lock();
    loop {
        match g.sessions.get_mut(name) {
            None => return None,
            Some(s) => {
                s.closing = true;
                if s.queue.is_empty() && s.in_flight == 0 {
                    break;
                }
            }
        }
        g = inner.idle.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
    let s = g.sessions.remove(name).expect("session present in close loop");
    g.rotation.retain(|n| n != name);
    let mut telemetry = s.telemetry;
    telemetry.incr_by("daemon.records", s.records.load(Ordering::Relaxed));
    let record = protocol::session_closed(
        name,
        s.jobs_done,
        s.jobs_failed,
        telemetry.snapshot().to_json(),
        unix_seconds_now(),
    );
    let _ = s.tx.send(record.clone());
    g.telemetry.merge(&telemetry);
    g.jobs_done_total += s.jobs_done;
    g.jobs_failed_total += s.jobs_failed;
    drop(g);
    // Submitters blocked on this session must re-check and fail out.
    inner.space_ready.notify_all();
    Some(record)
}

/// A job claimed by a worker, with everything needed to run it without
/// holding the scheduler lock.
struct Picked {
    name: String,
    job: Job,
    tx: Sender<Value>,
    records: Arc<AtomicU64>,
    /// Shared with the session's `running` entry so checkpoints read a
    /// live watermark.
    emitted: Arc<AtomicU64>,
}

/// Picks the next runnable job round-robin across sessions, bumping
/// the chosen session's in-flight count. `None` when nothing is
/// eligible (empty queues or per-session caps reached).
fn pick_job(g: &mut SchedState, session_parallel: usize) -> Option<Picked> {
    for _ in 0..g.rotation.len() {
        let name = g.rotation.pop_front().expect("rotation non-empty inside loop");
        let Some(sess) = g.sessions.get_mut(&name) else {
            continue; // stale entry for a closed session: drop it
        };
        if sess.in_flight < session_parallel {
            if let Some(job) = sess.queue.pop_front() {
                sess.in_flight += 1;
                let tx = sess.tx.clone();
                let records = Arc::clone(&sess.records);
                let emitted = Arc::new(AtomicU64::new(0));
                sess.running.insert(
                    job.id,
                    RunningJob {
                        command: job.command.clone(),
                        skip: job.skip,
                        emitted: Arc::clone(&emitted),
                    },
                );
                g.rotation.push_back(name.clone());
                return Some(Picked { name, job, tx, records, emitted });
            }
        }
        g.rotation.push_back(name);
    }
    None
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(inner: &Arc<Inner>, runner: &dyn JobRunner) {
    let config = inner.config;
    loop {
        let Picked { name, job, tx, records, emitted } = {
            let mut g = inner.lock();
            loop {
                if let Some(pick) = pick_job(&mut g, config.session_parallel) {
                    break pick;
                }
                // Exit only when draining *and* every queue is empty;
                // jobs still queued behind a per-session cap must
                // outlive this worker's patience, not be abandoned.
                if g.draining && g.sessions.values().all(|s| s.queue.is_empty()) {
                    return;
                }
                g = inner.work_ready.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let started = Instant::now();
        let mut attempt: u32 = 1;
        let outcome = loop {
            let sink = JobSink {
                session: name.clone(),
                job: job.id,
                tx: tx.clone(),
                records: Arc::clone(&records),
                emitted: Arc::clone(&emitted),
                skip: job.skip,
                inner: Some(Arc::clone(inner)),
            };
            // The job's entire execution — campaign shards included —
            // is fenced here; a panic is the session's problem alone.
            let result = catch_unwind(AssertUnwindSafe(|| runner.run(&job.command, &sink)));
            let error = match result {
                Ok(Ok(())) => break Ok(attempt),
                Ok(Err(e)) => e,
                Err(payload) => format!("job panicked: {}", panic_message(payload)),
            };
            if attempt >= config.job_attempts.max(1) {
                break Err(error);
            }
            // Retry in place on this same worker thread: its
            // thread-local machine pool warm-reboots the System
            // (`reboot_into`) instead of cold-booting a fresh one.
            attempt += 1;
        };
        let elapsed_us = started.elapsed().as_micros() as u64;
        let record = match &outcome {
            Ok(attempts) => protocol::job_done(&name, job.id, *attempts),
            Err(error) => protocol::job_failed(&name, job.id, error, attempt),
        };
        let _ = tx.send(record);
        let mut g = inner.lock();
        if let Some(sess) = g.sessions.get_mut(&name) {
            sess.in_flight -= 1;
            sess.running.remove(&job.id);
            sess.telemetry.observe("daemon.job_us", elapsed_us);
            sess.telemetry.incr_by("daemon.job_retries", u64::from(attempt - 1));
            match outcome {
                Ok(_) => sess.telemetry.incr("daemon.jobs_done"),
                Err(_) => sess.telemetry.incr("daemon.jobs_failed"),
            }
            match outcome {
                Ok(_) => sess.jobs_done += 1,
                Err(_) => sess.jobs_failed += 1,
            }
        }
        drop(g);
        // Queue space freed and an in-flight slot opened; close/drain
        // waiters also need a look.
        inner.space_ready.notify_all();
        inner.work_ready.notify_all();
        inner.idle.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn echo_runner() -> Arc<dyn JobRunner> {
        Arc::new(|command: &str, sink: &JobSink| {
            sink.record(&format!("{{\"record\":\"echo\",\"command\":\"{command}\"}}"));
            Ok(())
        })
    }

    fn drain_types(handle: &SessionHandle, until: &str) -> Vec<String> {
        let mut types = Vec::new();
        while let Some(r) = handle.next_record() {
            let t = r.get("type").and_then(Value::as_str).unwrap_or("?").to_string();
            let done = t == until;
            types.push(t);
            if done {
                break;
            }
        }
        types
    }

    #[test]
    fn a_job_streams_output_then_done_in_order() {
        let daemon =
            Daemon::start(DaemonConfig { workers: 2, ..DaemonConfig::default() }, echo_runner());
        let session = daemon.open_session("t").unwrap();
        session.submit("oracle --trials 4").unwrap();
        let types = drain_types(&session, "job_done");
        assert_eq!(types, ["session_opened", "job_accepted", "job_output", "job_done"]);
        let closed = session.close().unwrap();
        assert_eq!(closed.get("jobs_done").and_then(Value::as_u64), Some(1));
        assert_eq!(closed.get("jobs_failed").and_then(Value::as_u64), Some(0));
        daemon.drain();
    }

    #[test]
    fn a_panicking_job_fails_its_session_but_not_its_neighbors() {
        let runner: Arc<dyn JobRunner> = Arc::new(|command: &str, sink: &JobSink| {
            if command == "boom" {
                panic!("injected fault");
            }
            sink.record("{\"record\":\"ok\"}");
            Ok(())
        });
        let daemon = Daemon::start(DaemonConfig { workers: 2, ..DaemonConfig::default() }, runner);
        let victim = daemon.open_session("victim").unwrap();
        let bystander = daemon.open_session("bystander").unwrap();
        victim.submit("boom").unwrap();
        bystander.submit("fine").unwrap();

        let victim_types = drain_types(&victim, "job_failed");
        assert_eq!(victim_types.last().map(String::as_str), Some("job_failed"));
        let closed = victim.close().unwrap();
        assert_eq!(closed.get("jobs_failed").and_then(Value::as_u64), Some(1));

        // The bystander session and the daemon itself are unharmed.
        let bystander_types = drain_types(&bystander, "job_done");
        assert_eq!(bystander_types.last().map(String::as_str), Some("job_done"));
        let closed = bystander.close().unwrap();
        assert_eq!(closed.get("jobs_failed").and_then(Value::as_u64), Some(0));

        let another = daemon.open_session("after-the-fact").unwrap();
        another.submit("fine").unwrap();
        assert_eq!(drain_types(&another, "job_done").last().map(String::as_str), Some("job_done"));
        let _ = another.close();
        daemon.drain();
    }

    #[test]
    fn a_failing_job_is_retried_up_to_its_budget() {
        let failures = Arc::new(AtomicUsize::new(0));
        let counting = Arc::clone(&failures);
        let runner: Arc<dyn JobRunner> = Arc::new(move |_: &str, _: &JobSink| {
            if counting.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient".to_string())
            } else {
                Ok(())
            }
        });
        let daemon = Daemon::start(
            DaemonConfig { workers: 1, job_attempts: 3, ..DaemonConfig::default() },
            runner,
        );
        let session = daemon.open_session("retry").unwrap();
        session.submit("flaky").unwrap();
        let types = drain_types(&session, "job_done");
        assert_eq!(types.last().map(String::as_str), Some("job_done"));
        assert_eq!(failures.load(Ordering::SeqCst), 3);
        let closed = session.close().unwrap();
        let retries = closed
            .get("telemetry")
            .and_then(|t| t.get("counters"))
            .and_then(|c| c.get("daemon.job_retries"))
            .and_then(Value::as_u64);
        assert_eq!(retries, Some(2));
        daemon.drain();
    }

    #[test]
    fn submit_beyond_session_capacity_backpressures_then_completes() {
        // One worker held busy by a slow job; the queue (capacity 1)
        // fills, so the third submit must block, emit `backpressure`,
        // and still land once space frees.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let gate_for_runner = Arc::clone(&gate);
        let runner: Arc<dyn JobRunner> = Arc::new(move |command: &str, _: &JobSink| {
            if command == "slow" {
                let (lock, cv) = &*gate_for_runner;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }
            Ok(())
        });
        let daemon = Daemon::start(
            DaemonConfig { workers: 1, session_queue: 1, ..DaemonConfig::default() },
            runner,
        );
        let session = daemon.open_session("t").unwrap();
        session.submit("slow").unwrap();
        // Wait until the slow job is in flight so the next submit
        // occupies the single queue slot.
        while daemon.status().get("in_flight_jobs").and_then(Value::as_u64) != Some(1) {
            thread::sleep(Duration::from_millis(1));
        }
        session.submit("queued").unwrap();
        let submit_side = SessionHandle {
            name: session.name.clone(),
            inner: Arc::clone(&session.inner),
            rx: None,
        };
        let blocked = thread::spawn(move || submit_side.submit("third"));
        // The backpressure counter proves the third submit really
        // blocked before we open the gate.
        while daemon.metrics().counter_value("daemon.backpressure") == 0 {
            thread::sleep(Duration::from_millis(1));
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        assert_eq!(blocked.join().unwrap(), Ok(2));
        let mut saw_backpressure = false;
        while let Some(r) = session.next_record() {
            if r.get("type").and_then(Value::as_str) == Some("backpressure") {
                saw_backpressure = true;
            }
            if r.get("type").and_then(Value::as_str) == Some("job_accepted")
                && r.get("job").and_then(Value::as_u64) == Some(2)
            {
                break;
            }
        }
        assert!(saw_backpressure, "blocked submit should announce backpressure");
        let _ = session.close();
        daemon.drain();
    }

    #[test]
    fn drain_runs_queued_work_to_completion_and_reports_totals() {
        let daemon =
            Daemon::start(DaemonConfig { workers: 2, ..DaemonConfig::default() }, echo_runner());
        let a = daemon.open_session("a").unwrap();
        let b = daemon.open_session("b").unwrap();
        for _ in 0..3 {
            a.submit("x").unwrap();
            b.submit("y").unwrap();
        }
        let report = daemon.drain();
        assert_eq!(report.get("type").and_then(Value::as_str), Some("daemon_drained"));
        assert_eq!(report.get("sessions").and_then(Value::as_u64), Some(2));
        assert_eq!(report.get("jobs_done").and_then(Value::as_u64), Some(6));
        assert_eq!(report.get("jobs_failed").and_then(Value::as_u64), Some(0));
        // Admission is now refused.
        assert!(matches!(daemon.open_session("late"), Err(DaemonError::Draining)));
        assert_eq!(a.submit("x"), Err(DaemonError::Draining));
        // The streams still replay up to their terminal records.
        assert!(drain_types(&a, "session_closed").contains(&"session_closed".to_string()));
        assert!(drain_types(&b, "session_closed").contains(&"session_closed".to_string()));
    }

    #[test]
    fn fair_share_interleaves_a_flooded_session_with_a_light_one() {
        // One worker, one greedy session with many jobs, one light
        // session submitting after: round-robin must run the light
        // session's job before the greedy backlog finishes.
        let order = Arc::new(Mutex::new(Vec::<String>::new()));
        let order_ref = Arc::clone(&order);
        let runner: Arc<dyn JobRunner> = Arc::new(move |command: &str, _: &JobSink| {
            order_ref.lock().unwrap().push(command.to_string());
            thread::sleep(Duration::from_millis(2));
            Ok(())
        });
        let daemon = Daemon::start(
            DaemonConfig { workers: 1, session_queue: 32, ..DaemonConfig::default() },
            runner,
        );
        let greedy = daemon.open_session("greedy").unwrap();
        let light = daemon.open_session("light").unwrap();
        for i in 0..8 {
            greedy.submit(&format!("greedy-{i}")).unwrap();
        }
        light.submit("light-0").unwrap();
        let _ = light.close();
        let _ = greedy.close();
        daemon.drain();
        let ran = order.lock().unwrap().clone();
        let light_pos = ran.iter().position(|c| c == "light-0").unwrap();
        assert!(
            light_pos < ran.len() - 1,
            "light session starved behind the greedy backlog: {ran:?}"
        );
    }

    fn temp_snapshot_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pacmand-svc-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("state.snapshot")
    }

    /// A deterministic 10-line job that can be made to stall once after
    /// its fifth record — long enough for a checkpoint to capture it
    /// mid-stream, exactly like a daemon killed mid-campaign.
    fn stalling_runner(
        armed: Arc<std::sync::atomic::AtomicBool>,
        gate: Arc<(Mutex<bool>, Condvar)>,
    ) -> Arc<dyn JobRunner> {
        Arc::new(move |command: &str, sink: &JobSink| {
            for i in 0..10u32 {
                if i == 5 && armed.swap(false, Ordering::SeqCst) {
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                }
                sink.record(&format!("{{\"record\":\"trial\",\"cmd\":\"{command}\",\"i\":{i}}}"));
            }
            Ok(())
        })
    }

    #[test]
    fn a_durable_daemon_checkpoints_and_resumes_mid_stream() {
        let path = temp_snapshot_path("resume");
        let _ = std::fs::remove_file(&path);
        let armed = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let runner = stalling_runner(Arc::clone(&armed), Arc::clone(&gate));

        // "Pre-crash" daemon: checkpoint every 5 records, job stalls
        // right after the fifth, so the checkpoint sees it running.
        let daemon = Daemon::start_durable(
            DaemonConfig { workers: 1, ..DaemonConfig::default() },
            Arc::clone(&runner),
            CheckpointPolicy::new(path.clone(), 5),
            false,
        );
        assert!(daemon.resume_report().is_none(), "cold start has no report");
        let session = daemon.open_session("s").unwrap();
        session.submit("oracle").unwrap();
        let mut pre_lines = Vec::new();
        loop {
            let r = session.next_record().unwrap();
            match r.get("type").and_then(Value::as_str) {
                Some("job_output") => {
                    pre_lines.push(r.get("line").and_then(Value::as_str).unwrap().to_string());
                }
                Some("checkpoint_written") => break,
                _ => {}
            }
        }
        assert_eq!(pre_lines.len(), 5, "checkpoint cut at the cadence boundary");
        // The durable-watermark contract: at `checkpoint_written`, the
        // snapshot is already on disk and covers those 5 records.
        let frozen = std::fs::read(&path).expect("snapshot exists at checkpoint_written");
        let snap = DaemonSnapshot::load(&frozen).unwrap();
        assert_eq!(snap.sessions.len(), 1);
        assert_eq!(
            snap.sessions[0].jobs,
            vec![JobSnapshot { id: 0, command: "oracle".into(), emitted: 5 }]
        );

        // Let the stalled job finish and tear the first daemon down,
        // then put the mid-stream snapshot back — as if the process had
        // been SIGKILLed at the checkpoint instead of draining.
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        drain_types(&session, "job_done");
        let _ = session.close();
        daemon.drain();
        std::fs::write(&path, &frozen).unwrap();

        // Restarted daemon: resumes, re-runs job 0 with the first 5
        // records suppressed, and the stream picks up mid-job.
        let restarted = Daemon::start_durable(
            DaemonConfig { workers: 1, ..DaemonConfig::default() },
            runner,
            CheckpointPolicy::new(path.clone(), 5),
            true,
        );
        let report = restarted.resume_report().expect("resumed from a snapshot");
        assert_eq!(report.get("type").and_then(Value::as_str), Some("daemon_resumed"));
        assert_eq!(report.get("jobs").and_then(Value::as_u64), Some(1));

        let session = restarted.open_session("s").expect("reattach to the resumed session");
        let mut resumed_watermark = None;
        let mut post_lines = Vec::new();
        loop {
            let r = session.next_record().unwrap();
            match r.get("type").and_then(Value::as_str) {
                Some("resumed") => {
                    resumed_watermark = r.get("emitted").and_then(Value::as_u64);
                }
                Some("job_output") => {
                    post_lines.push(r.get("line").and_then(Value::as_str).unwrap().to_string());
                }
                Some("job_done") => break,
                _ => {}
            }
        }
        assert_eq!(resumed_watermark, Some(5), "client told where the stream resumes");

        // Stitched stream == the uninterrupted 10-line run, byte for byte.
        let stitched: Vec<String> = pre_lines.into_iter().chain(post_lines).collect();
        let expected: Vec<String> = (0..10)
            .map(|i| format!("{{\"record\":\"trial\",\"cmd\":\"oracle\",\"i\":{i}}}"))
            .collect();
        assert_eq!(stitched, expected);

        let closed = session.close().unwrap();
        assert_eq!(closed.get("jobs_done").and_then(Value::as_u64), Some(1));
        restarted.drain();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_corrupt_snapshot_cold_starts_with_a_warning() {
        let path = temp_snapshot_path("corrupt");
        std::fs::write(&path, b"PACMANDS\x63\x00garbage-checksum-and-body").unwrap();
        let daemon = Daemon::start_durable(
            DaemonConfig { workers: 1, ..DaemonConfig::default() },
            echo_runner(),
            CheckpointPolicy::new(path.clone(), 100),
            true,
        );
        let report = daemon.resume_report().expect("a warning is reported");
        assert_eq!(report.get("type").and_then(Value::as_str), Some("resume_warning"));
        assert!(report.get("error").and_then(Value::as_str).unwrap().contains("version"));
        // The daemon is healthy: a full session lifecycle works.
        let session = daemon.open_session("t").unwrap();
        session.submit("job").unwrap();
        assert_eq!(drain_types(&session, "job_done").last().map(String::as_str), Some("job_done"));
        let _ = session.close();
        daemon.drain();
        // The drain checkpoint replaced the corrupt file with a valid one.
        assert!(DaemonSnapshot::read_file(&path).unwrap().is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn metrics_merge_live_and_closed_sessions() {
        let daemon =
            Daemon::start(DaemonConfig { workers: 1, ..DaemonConfig::default() }, echo_runner());
        let a = daemon.open_session("a").unwrap();
        a.submit("one").unwrap();
        drain_types(&a, "job_done");
        let _ = a.close();
        let b = daemon.open_session("b").unwrap();
        b.submit("two").unwrap();
        drain_types(&b, "job_done");
        let merged = daemon.metrics();
        assert_eq!(merged.counter_value("daemon.jobs_done"), 2);
        assert_eq!(merged.counter_value("daemon.jobs_submitted"), 2);
        let _ = b.close();
        daemon.drain();
    }
}
