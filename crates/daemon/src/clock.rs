//! Wall-clock timestamps with pre-epoch handling in one place.
//!
//! Several records in the workspace carry a `timestamp` field in Unix
//! seconds: `verify_summary` history lines, daemon session lifecycle
//! records, drain reports. A host clock set before the Unix epoch is a
//! misconfiguration worth hearing about, but never worth failing work
//! that otherwise succeeded — every caller wants the same policy: warn
//! once on stderr, record the sentinel `0`, carry on. This module is
//! that policy's single home.

use std::time::{SystemTime, UNIX_EPOCH};

/// Converts a [`SystemTime`] to whole Unix seconds.
///
/// A time before the epoch warns on stderr and maps to `0` — a visible
/// sentinel rather than an error, so timestamping never aborts the
/// operation it decorates.
pub fn unix_seconds(now: SystemTime) -> u64 {
    match now.duration_since(UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(e) => {
            eprintln!("warning: system clock predates the Unix epoch ({e}); recording timestamp 0");
            0
        }
    }
}

/// [`unix_seconds`] of the current wall clock.
pub fn unix_seconds_now() -> u64 {
    unix_seconds(SystemTime::now())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn post_epoch_times_convert_to_whole_seconds() {
        let t = UNIX_EPOCH + Duration::new(1_234_567, 890_000_000);
        assert_eq!(unix_seconds(t), 1_234_567);
        assert_eq!(unix_seconds(UNIX_EPOCH), 0);
    }

    #[test]
    fn pre_epoch_times_map_to_the_zero_sentinel() {
        let t = UNIX_EPOCH - Duration::from_secs(7);
        assert_eq!(unix_seconds(t), 0);
    }

    #[test]
    fn now_is_after_the_repo_was_started() {
        // The repo postdates 2020; any sane host clock clears this.
        assert!(unix_seconds_now() > 1_577_836_800);
    }
}
