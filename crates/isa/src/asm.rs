//! A small label-resolving assembler.
//!
//! Kernel code in this workspace (syscall handlers, kexts, victim
//! functions) is written against [`Asm`], which resolves forward and
//! backward branch targets to the instruction-relative offsets the
//! encoding uses.
//!
//! # Example
//!
//! ```
//! use pacman_isa::{Asm, Inst, Reg};
//!
//! let mut a = Asm::new();
//! let done = a.new_label();
//! a.push(Inst::CmpImm { rn: Reg::X0, imm: 0 });
//! a.b_cond(pacman_isa::Cond::Eq, done);
//! a.push(Inst::SubImm { rd: Reg::X0, rn: Reg::X0, imm: 1 });
//! a.bind(done);
//! a.push(Inst::Ret);
//! let prog = a.assemble()?;
//! assert_eq!(prog.len(), 4);
//! # Ok::<(), pacman_isa::AsmError>(())
//! ```

use std::error::Error;
use std::fmt;

use crate::inst::Inst;
use crate::regs::{Cond, Reg};

/// An opaque branch-target label issued by [`Asm::new_label`].
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct Label(usize);

/// Errors surfaced when a program cannot be assembled.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum AsmError {
    /// A branch references a label that was never bound.
    UnboundLabel(Label),
    /// A label was bound twice.
    ReboundLabel(Label),
    /// A resolved offset does not fit the branch's encoding field.
    OffsetOverflow {
        /// Index of the offending branch instruction.
        at: usize,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {l:?} was never bound"),
            AsmError::ReboundLabel(l) => write!(f, "label {l:?} bound twice"),
            AsmError::OffsetOverflow { at } => {
                write!(f, "branch at instruction {at} overflows its offset field")
            }
        }
    }
}

impl Error for AsmError {}

#[derive(Copy, Clone, Debug)]
enum Fixup {
    B,
    Bl,
    BCond(Cond),
    Cbz(Reg),
    Cbnz(Reg),
    Tbz(Reg, u8),
    Tbnz(Reg, u8),
}

/// The assembler: collects instructions, binds labels, resolves branches.
#[derive(Debug, Default)]
pub struct Asm {
    insts: Vec<Inst>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label, Fixup)>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far (the address of the *next*
    /// instruction, in words).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Issues a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label came from a different assembler.
    pub fn bind(&mut self, label: Label) {
        let slot = self.labels.get_mut(label.0).expect("label must come from this assembler");
        assert!(slot.is_none(), "label {label:?} bound twice");
        *slot = Some(self.insts.len());
    }

    /// Emits a non-branching instruction (or a branch with a pre-resolved
    /// numeric offset).
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Emits an unconditional branch to `label`.
    pub fn b(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label, Fixup::B));
        self.insts.push(Inst::B { offset: 0 });
        self
    }

    /// Emits a branch-and-link to `label`.
    pub fn bl(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label, Fixup::Bl));
        self.insts.push(Inst::Bl { offset: 0 });
        self
    }

    /// Emits a conditional branch to `label`.
    pub fn b_cond(&mut self, cond: Cond, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label, Fixup::BCond(cond)));
        self.insts.push(Inst::BCond { cond, offset: 0 });
        self
    }

    /// Emits a compare-and-branch-if-zero to `label`.
    pub fn cbz(&mut self, rt: Reg, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label, Fixup::Cbz(rt)));
        self.insts.push(Inst::Cbz { rt, offset: 0 });
        self
    }

    /// Emits a compare-and-branch-if-not-zero to `label`.
    pub fn cbnz(&mut self, rt: Reg, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label, Fixup::Cbnz(rt)));
        self.insts.push(Inst::Cbnz { rt, offset: 0 });
        self
    }

    /// Emits a test-bit-and-branch-if-zero to `label`.
    pub fn tbz(&mut self, rt: Reg, bit: u8, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label, Fixup::Tbz(rt, bit)));
        self.insts.push(Inst::Tbz { rt, bit, offset: 0 });
        self
    }

    /// Emits a test-bit-and-branch-if-one to `label`.
    pub fn tbnz(&mut self, rt: Reg, bit: u8, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label, Fixup::Tbnz(rt, bit)));
        self.insts.push(Inst::Tbnz { rt, bit, offset: 0 });
        self
    }

    /// Emits the shortest `movz`/`movk` sequence loading the 64-bit
    /// constant `value` into `rd` (always at least one instruction).
    pub fn mov_imm64(&mut self, rd: Reg, value: u64) -> &mut Self {
        let halves = [
            (value & 0xFFFF) as u16,
            (value >> 16) as u16,
            (value >> 32) as u16,
            (value >> 48) as u16,
        ];
        self.insts.push(Inst::MovZ { rd, imm: halves[0], shift: 0 });
        for (i, &h) in halves.iter().enumerate().skip(1) {
            if h != 0 {
                self.insts.push(Inst::MovK { rd, imm: h, shift: i as u8 });
            }
        }
        self
    }

    /// Resolves all labels and returns the finished program.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] if a referenced label was never bound or a
    /// resolved offset does not fit its encoding field.
    pub fn assemble(mut self) -> Result<Vec<Inst>, AsmError> {
        for &(at, label, fixup) in &self.fixups {
            let target = self.labels[label.0].ok_or(AsmError::UnboundLabel(label))?;
            let offset = target as i64 - at as i64;
            let fits = |bits: u32| {
                let max = (1i64 << (bits - 1)) - 1;
                offset >= -(1i64 << (bits - 1)) && offset <= max
            };
            let inst = match fixup {
                Fixup::B => {
                    if !fits(24) {
                        return Err(AsmError::OffsetOverflow { at });
                    }
                    Inst::B { offset: offset as i32 }
                }
                Fixup::Bl => {
                    if !fits(24) {
                        return Err(AsmError::OffsetOverflow { at });
                    }
                    Inst::Bl { offset: offset as i32 }
                }
                Fixup::BCond(cond) => {
                    if !fits(16) {
                        return Err(AsmError::OffsetOverflow { at });
                    }
                    Inst::BCond { cond, offset: offset as i32 }
                }
                Fixup::Cbz(rt) => {
                    if !fits(16) {
                        return Err(AsmError::OffsetOverflow { at });
                    }
                    Inst::Cbz { rt, offset: offset as i32 }
                }
                Fixup::Cbnz(rt) => {
                    if !fits(16) {
                        return Err(AsmError::OffsetOverflow { at });
                    }
                    Inst::Cbnz { rt, offset: offset as i32 }
                }
                Fixup::Tbz(rt, bit) => {
                    if !fits(12) {
                        return Err(AsmError::OffsetOverflow { at });
                    }
                    Inst::Tbz { rt, bit, offset: offset as i32 }
                }
                Fixup::Tbnz(rt, bit) => {
                    if !fits(12) {
                        return Err(AsmError::OffsetOverflow { at });
                    }
                    Inst::Tbnz { rt, bit, offset: offset as i32 }
                }
            };
            self.insts[at] = inst;
        }
        Ok(self.insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        let top = a.new_label();
        let out = a.new_label();
        a.bind(top);
        a.push(Inst::SubImm { rd: Reg::X0, rn: Reg::X0, imm: 1 });
        a.cbz(Reg::X0, out);
        a.b(top);
        a.bind(out);
        a.push(Inst::Ret);
        let prog = a.assemble().unwrap();
        assert_eq!(prog[1], Inst::Cbz { rt: Reg::X0, offset: 2 });
        assert_eq!(prog[2], Inst::B { offset: -2 });
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.b(l);
        assert!(matches!(a.assemble(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn mov_imm64_loads_arbitrary_constants() {
        // Verified against a tiny interpreter of the mov semantics.
        fn eval(insts: &[Inst]) -> u64 {
            let mut v = 0u64;
            for i in insts {
                match *i {
                    Inst::MovZ { imm, shift, .. } => v = u64::from(imm) << (16 * shift),
                    Inst::MovK { imm, shift, .. } => {
                        let sh = 16 * u32::from(shift);
                        v = (v & !(0xFFFFu64 << sh)) | (u64::from(imm) << sh);
                    }
                    _ => panic!("unexpected instruction"),
                }
            }
            v
        }
        for value in [0u64, 1, 0xFFFF, 0x1_0000, 0xFFFF_FFFF_FFFF_FFFF, 0x0000_7FFF_DEAD_4000] {
            let mut a = Asm::new();
            a.mov_imm64(Reg::X0, value);
            let prog = a.assemble().unwrap();
            assert_eq!(eval(&prog), value, "mov_imm64 mis-loads {value:#x}");
            assert!(prog.len() <= 4);
        }
    }

    #[test]
    fn zero_constant_is_single_instruction() {
        let mut a = Asm::new();
        a.mov_imm64(Reg::X0, 0);
        assert_eq!(a.assemble().unwrap().len(), 1);
    }

    #[test]
    fn cond_branch_offset_overflow_detected() {
        let mut a = Asm::new();
        let far = a.new_label();
        a.b_cond(Cond::Eq, far);
        for _ in 0..40_000 {
            a.push(Inst::Nop);
        }
        a.bind(far);
        assert!(matches!(a.assemble(), Err(AsmError::OffsetOverflow { at: 0 })));
    }

    #[test]
    fn len_tracks_position() {
        let mut a = Asm::new();
        assert!(a.is_empty());
        a.push(Inst::Nop).push(Inst::Nop);
        assert_eq!(a.len(), 2);
    }
}
