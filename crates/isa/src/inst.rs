//! The instruction set.

use std::fmt;

use crate::regs::{Cond, Reg, SysReg};

/// Which of the five ARMv8.3 PA keys a `PAC`/`AUT` instruction uses.
///
/// The key is encoded in the opcode (paper §2.2): `pacia` signs an
/// instruction pointer with key IA, `autdb` authenticates a data pointer
/// with key DB, and so on. The generic key GA is only used by `PACGA`.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum PacKey {
    /// Instruction key A.
    Ia,
    /// Instruction key B.
    Ib,
    /// Data key A.
    Da,
    /// Data key B.
    Db,
}

impl PacKey {
    /// All keys in encoding order.
    pub const ALL: [PacKey; 4] = [PacKey::Ia, PacKey::Ib, PacKey::Da, PacKey::Db];

    /// Encoding index.
    pub fn index(self) -> u8 {
        match self {
            PacKey::Ia => 0,
            PacKey::Ib => 1,
            PacKey::Da => 2,
            PacKey::Db => 3,
        }
    }

    /// Decode from encoding index.
    pub fn from_index(i: u8) -> Option<PacKey> {
        Self::ALL.get(usize::from(i)).copied()
    }

    /// Whether this is an instruction key (IA/IB) as opposed to a data key.
    pub fn is_instruction_key(self) -> bool {
        matches!(self, PacKey::Ia | PacKey::Ib)
    }

    fn suffix(self) -> &'static str {
        match self {
            PacKey::Ia => "ia",
            PacKey::Ib => "ib",
            PacKey::Da => "da",
            PacKey::Db => "db",
        }
    }
}

/// The modifier (salt/context) operand of a `PAC`/`AUT` instruction.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum PacModifier {
    /// A register modifier, e.g. `pacia lr, sp` uses `sp` (Figure 2).
    Reg(Reg),
    /// The zero modifier of the `*za`/`*zb` forms, e.g. `paciza`.
    Zero,
}

impl fmt::Display for PacModifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacModifier::Reg(r) => write!(f, "{r}"),
            PacModifier::Zero => write!(f, "xzr"),
        }
    }
}

/// One instruction.
///
/// Branch offsets are in *instructions* (not bytes), relative to the
/// branch's own address; `offset = 1` is the next instruction.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum Inst {
    /// No operation.
    Nop,
    /// Instruction synchronisation barrier (serialises the pipeline; used
    /// by the paper's measuring thread, Figure 4(b)).
    Isb,
    /// Data synchronisation barrier.
    Dsb,
    /// Halt: terminates the current execution context.
    Hlt,
    /// Exception return: returns from EL1 to the saved EL0 context.
    Eret,
    /// Supervisor call: enters the kernel's syscall dispatcher.
    Svc {
        /// Immediate syscall tag (informational; the syscall number is
        /// passed in `x16` like XNU does).
        imm: u16,
    },
    /// Move wide with zero: `rd = imm << (16 * shift)`.
    MovZ {
        /// Destination.
        rd: Reg,
        /// 16-bit immediate.
        imm: u16,
        /// Half-word shift amount 0..=3.
        shift: u8,
    },
    /// Move wide keeping other bits: inserts `imm` at half-word `shift`.
    MovK {
        /// Destination.
        rd: Reg,
        /// 16-bit immediate.
        imm: u16,
        /// Half-word shift amount 0..=3.
        shift: u8,
    },
    /// Move wide with NOT: `rd = !(imm << (16 * shift))`.
    MovN {
        /// Destination.
        rd: Reg,
        /// 16-bit immediate.
        imm: u16,
        /// Half-word shift amount 0..=3.
        shift: u8,
    },
    /// Register move: `rd = rn`.
    MovReg {
        /// Destination.
        rd: Reg,
        /// Source.
        rn: Reg,
    },
    /// Conditional select: `rd = cond ? rn : rm`.
    Csel {
        /// Destination.
        rd: Reg,
        /// Value if the condition holds.
        rn: Reg,
        /// Value otherwise.
        rm: Reg,
        /// Condition evaluated against the flags.
        cond: Cond,
    },
    /// `rd = rn + imm`.
    AddImm {
        /// Destination.
        rd: Reg,
        /// Source.
        rn: Reg,
        /// 12-bit unsigned immediate.
        imm: u16,
    },
    /// `rd = rn - imm`.
    SubImm {
        /// Destination.
        rd: Reg,
        /// Source.
        rn: Reg,
        /// 12-bit unsigned immediate.
        imm: u16,
    },
    /// `rd = rn + rm`.
    AddReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `rd = rn - rm`.
    SubReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `rd = rn & rm`.
    AndReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `rd = rn | rm`.
    OrrReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `rd = rn ^ rm`.
    EorReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `rd = rn << shift`.
    LslImm {
        /// Destination.
        rd: Reg,
        /// Source.
        rn: Reg,
        /// Shift amount 0..=63.
        shift: u8,
    },
    /// `rd = rn >> shift` (logical).
    LsrImm {
        /// Destination.
        rd: Reg,
        /// Source.
        rn: Reg,
        /// Shift amount 0..=63.
        shift: u8,
    },
    /// `rd = rn * rm` (wrapping).
    Mul {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// Compare `rn` with a 12-bit immediate, setting the flags.
    CmpImm {
        /// Left operand.
        rn: Reg,
        /// 12-bit unsigned immediate right operand.
        imm: u16,
    },
    /// Compare `rn` with `rm`, setting the flags.
    CmpReg {
        /// Left operand.
        rn: Reg,
        /// Right operand.
        rm: Reg,
    },
    /// 64-bit load: `rt = [rn + offset]`.
    Ldr {
        /// Destination.
        rt: Reg,
        /// Base address register.
        rn: Reg,
        /// Signed byte offset, −2048..=2047.
        offset: i16,
    },
    /// 64-bit store: `[rn + offset] = rt`.
    Str {
        /// Source.
        rt: Reg,
        /// Base address register.
        rn: Reg,
        /// Signed byte offset, −2048..=2047.
        offset: i16,
    },
    /// Byte load (zero-extending).
    Ldrb {
        /// Destination.
        rt: Reg,
        /// Base address register.
        rn: Reg,
        /// Signed byte offset, −2048..=2047.
        offset: i16,
    },
    /// Byte store.
    Strb {
        /// Source (low byte stored).
        rt: Reg,
        /// Base address register.
        rn: Reg,
        /// Signed byte offset, −2048..=2047.
        offset: i16,
    },
    /// Load a register pair: `rt = [rn + offset]`, `rt2 = [rn + offset + 8]`
    /// (the ubiquitous `ldp x29, x30, [sp, ...]` epilogue shape).
    Ldp {
        /// First destination.
        rt: Reg,
        /// Second destination.
        rt2: Reg,
        /// Base address register.
        rn: Reg,
        /// Signed byte offset, −256..=248, multiple of 8.
        offset: i16,
    },
    /// Store a register pair.
    Stp {
        /// First source.
        rt: Reg,
        /// Second source.
        rt2: Reg,
        /// Base address register.
        rn: Reg,
        /// Signed byte offset, −256..=248, multiple of 8.
        offset: i16,
    },
    /// Unconditional branch.
    B {
        /// Instruction-relative offset.
        offset: i32,
    },
    /// Branch and link (`x30 = return address`).
    Bl {
        /// Instruction-relative offset.
        offset: i32,
    },
    /// Conditional branch on the flags.
    BCond {
        /// Condition to test.
        cond: Cond,
        /// Instruction-relative offset.
        offset: i32,
    },
    /// Compare-and-branch-if-zero.
    Cbz {
        /// Register tested against zero.
        rt: Reg,
        /// Instruction-relative offset.
        offset: i32,
    },
    /// Compare-and-branch-if-not-zero.
    Cbnz {
        /// Register tested against zero.
        rt: Reg,
        /// Instruction-relative offset.
        offset: i32,
    },
    /// Test a single bit and branch if it is zero.
    Tbz {
        /// Register tested.
        rt: Reg,
        /// Bit index 0..=63.
        bit: u8,
        /// Instruction-relative offset.
        offset: i32,
    },
    /// Test a single bit and branch if it is one.
    Tbnz {
        /// Register tested.
        rt: Reg,
        /// Bit index 0..=63.
        bit: u8,
        /// Instruction-relative offset.
        offset: i32,
    },
    /// Indirect branch to the address in `rn`.
    Br {
        /// Target address register.
        rn: Reg,
    },
    /// Indirect call to the address in `rn` (`x30 = return address`).
    Blr {
        /// Target address register.
        rn: Reg,
    },
    /// Return to the address in `x30`.
    Ret,
    /// Sign a pointer: `rd = rd | PAC(rd, modifier)` (e.g. `pacia`).
    Pac {
        /// Key selected by the opcode.
        key: PacKey,
        /// Pointer register (input and output).
        rd: Reg,
        /// Context/salt operand.
        modifier: PacModifier,
    },
    /// Authenticate a pointer (e.g. `autia`): strips the PAC on success,
    /// corrupts the pointer on failure so any use faults (paper §2.2).
    Aut {
        /// Key selected by the opcode.
        key: PacKey,
        /// Pointer register (input and output).
        rd: Reg,
        /// Context/salt operand.
        modifier: PacModifier,
    },
    /// Strip a PAC without authenticating (`xpaci`/`xpacd`).
    Xpac {
        /// True for the data form `xpacd`.
        data: bool,
        /// Pointer register (input and output).
        rd: Reg,
    },
    /// Generic authentication: `rd = PAC_GA(rn, rm)` in the top 32 bits.
    Pacga {
        /// Destination.
        rd: Reg,
        /// Value to authenticate.
        rn: Reg,
        /// Modifier.
        rm: Reg,
    },
    /// Read a system register.
    Mrs {
        /// Destination.
        rd: Reg,
        /// Source system register.
        sysreg: SysReg,
    },
    /// Write a system register.
    Msr {
        /// Destination system register.
        sysreg: SysReg,
        /// Source.
        rn: Reg,
    },
}

impl Inst {
    /// Whether this instruction is a conditional branch (the outer branch
    /// `BR1` of a PACMAN gadget, Figure 3).
    pub fn is_conditional_branch(&self) -> bool {
        matches!(
            self,
            Inst::BCond { .. }
                | Inst::Cbz { .. }
                | Inst::Cbnz { .. }
                | Inst::Tbz { .. }
                | Inst::Tbnz { .. }
        )
    }

    /// For conditional branches, the instruction-relative taken offset.
    pub fn branch_offset(&self) -> Option<i32> {
        match *self {
            Inst::BCond { offset, .. }
            | Inst::Cbz { offset, .. }
            | Inst::Cbnz { offset, .. }
            | Inst::Tbz { offset, .. }
            | Inst::Tbnz { offset, .. } => Some(offset),
            Inst::B { offset } | Inst::Bl { offset } => Some(offset),
            _ => None,
        }
    }

    /// Whether this instruction is an indirect branch (candidate `BR2` of
    /// an instruction PACMAN gadget).
    pub fn is_indirect_branch(&self) -> bool {
        matches!(self, Inst::Br { .. } | Inst::Blr { .. } | Inst::Ret)
    }

    /// For `AUT` instructions, the register receiving the verified pointer.
    pub fn aut_destination(&self) -> Option<Reg> {
        match self {
            Inst::Aut { rd, .. } => Some(*rd),
            _ => None,
        }
    }

    /// The register used as a memory address by this instruction, if any
    /// (the transmission operand the §4.3 scanner tracks).
    pub fn address_source(&self) -> Option<Reg> {
        match self {
            Inst::Ldr { rn, .. }
            | Inst::Str { rn, .. }
            | Inst::Ldrb { rn, .. }
            | Inst::Strb { rn, .. }
            | Inst::Ldp { rn, .. }
            | Inst::Stp { rn, .. }
            | Inst::Br { rn }
            | Inst::Blr { rn } => Some(*rn),
            Inst::Ret => Some(Reg::LR),
            _ => None,
        }
    }

    /// The register written by this instruction, if any (register-only
    /// dataflow for the gadget scanner).
    pub fn destination(&self) -> Option<Reg> {
        let rd = match self {
            Inst::MovZ { rd, .. }
            | Inst::MovK { rd, .. }
            | Inst::MovN { rd, .. }
            | Inst::MovReg { rd, .. }
            | Inst::Csel { rd, .. }
            | Inst::AddImm { rd, .. }
            | Inst::SubImm { rd, .. }
            | Inst::AddReg { rd, .. }
            | Inst::SubReg { rd, .. }
            | Inst::AndReg { rd, .. }
            | Inst::OrrReg { rd, .. }
            | Inst::EorReg { rd, .. }
            | Inst::LslImm { rd, .. }
            | Inst::LsrImm { rd, .. }
            | Inst::Mul { rd, .. }
            | Inst::Pac { rd, .. }
            | Inst::Aut { rd, .. }
            | Inst::Xpac { rd, .. }
            | Inst::Pacga { rd, .. }
            | Inst::Mrs { rd, .. } => *rd,
            Inst::Ldr { rt, .. } | Inst::Ldrb { rt, .. } | Inst::Ldp { rt, .. } => *rt,
            Inst::Bl { .. } | Inst::Blr { .. } => Reg::LR,
            _ => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// The second register written, for pair loads.
    pub fn second_destination(&self) -> Option<Reg> {
        match self {
            Inst::Ldp { rt2, .. } if !rt2.is_zero() => Some(*rt2),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Nop => write!(f, "nop"),
            Inst::Isb => write!(f, "isb"),
            Inst::Dsb => write!(f, "dsb"),
            Inst::Hlt => write!(f, "hlt"),
            Inst::Eret => write!(f, "eret"),
            Inst::Svc { imm } => write!(f, "svc #{imm}"),
            Inst::MovZ { rd, imm, shift } => write!(f, "movz {rd}, #{imm}, lsl #{}", 16 * shift),
            Inst::MovK { rd, imm, shift } => write!(f, "movk {rd}, #{imm}, lsl #{}", 16 * shift),
            Inst::MovN { rd, imm, shift } => write!(f, "movn {rd}, #{imm}, lsl #{}", 16 * shift),
            Inst::MovReg { rd, rn } => write!(f, "mov {rd}, {rn}"),
            Inst::Csel { rd, rn, rm, cond } => write!(f, "csel {rd}, {rn}, {rm}, {cond}"),
            Inst::AddImm { rd, rn, imm } => write!(f, "add {rd}, {rn}, #{imm}"),
            Inst::SubImm { rd, rn, imm } => write!(f, "sub {rd}, {rn}, #{imm}"),
            Inst::AddReg { rd, rn, rm } => write!(f, "add {rd}, {rn}, {rm}"),
            Inst::SubReg { rd, rn, rm } => write!(f, "sub {rd}, {rn}, {rm}"),
            Inst::AndReg { rd, rn, rm } => write!(f, "and {rd}, {rn}, {rm}"),
            Inst::OrrReg { rd, rn, rm } => write!(f, "orr {rd}, {rn}, {rm}"),
            Inst::EorReg { rd, rn, rm } => write!(f, "eor {rd}, {rn}, {rm}"),
            Inst::LslImm { rd, rn, shift } => write!(f, "lsl {rd}, {rn}, #{shift}"),
            Inst::LsrImm { rd, rn, shift } => write!(f, "lsr {rd}, {rn}, #{shift}"),
            Inst::Mul { rd, rn, rm } => write!(f, "mul {rd}, {rn}, {rm}"),
            Inst::CmpImm { rn, imm } => write!(f, "cmp {rn}, #{imm}"),
            Inst::CmpReg { rn, rm } => write!(f, "cmp {rn}, {rm}"),
            Inst::Ldr { rt, rn, offset } => write!(f, "ldr {rt}, [{rn}, #{offset}]"),
            Inst::Str { rt, rn, offset } => write!(f, "str {rt}, [{rn}, #{offset}]"),
            Inst::Ldrb { rt, rn, offset } => write!(f, "ldrb {rt}, [{rn}, #{offset}]"),
            Inst::Strb { rt, rn, offset } => write!(f, "strb {rt}, [{rn}, #{offset}]"),
            Inst::Ldp { rt, rt2, rn, offset } => write!(f, "ldp {rt}, {rt2}, [{rn}, #{offset}]"),
            Inst::Stp { rt, rt2, rn, offset } => write!(f, "stp {rt}, {rt2}, [{rn}, #{offset}]"),
            Inst::B { offset } => write!(f, "b .{offset:+}"),
            Inst::Bl { offset } => write!(f, "bl .{offset:+}"),
            Inst::BCond { cond, offset } => write!(f, "b.{cond} .{offset:+}"),
            Inst::Cbz { rt, offset } => write!(f, "cbz {rt}, .{offset:+}"),
            Inst::Cbnz { rt, offset } => write!(f, "cbnz {rt}, .{offset:+}"),
            Inst::Tbz { rt, bit, offset } => write!(f, "tbz {rt}, #{bit}, .{offset:+}"),
            Inst::Tbnz { rt, bit, offset } => write!(f, "tbnz {rt}, #{bit}, .{offset:+}"),
            Inst::Br { rn } => write!(f, "br {rn}"),
            Inst::Blr { rn } => write!(f, "blr {rn}"),
            Inst::Ret => write!(f, "ret"),
            Inst::Pac { key, rd, modifier: PacModifier::Reg(m) } => {
                write!(f, "pac{} {rd}, {m}", key.suffix())
            }
            Inst::Pac { key, rd, modifier: PacModifier::Zero } => {
                write!(f, "pac{}z{} {rd}", &key.suffix()[..1], &key.suffix()[1..])
            }
            Inst::Aut { key, rd, modifier: PacModifier::Reg(m) } => {
                write!(f, "aut{} {rd}, {m}", key.suffix())
            }
            Inst::Aut { key, rd, modifier: PacModifier::Zero } => {
                write!(f, "aut{}z{} {rd}", &key.suffix()[..1], &key.suffix()[1..])
            }
            Inst::Xpac { data: false, rd } => write!(f, "xpaci {rd}"),
            Inst::Xpac { data: true, rd } => write!(f, "xpacd {rd}"),
            Inst::Pacga { rd, rn, rm } => write!(f, "pacga {rd}, {rn}, {rm}"),
            Inst::Mrs { rd, sysreg } => write!(f, "mrs {rd}, {sysreg}"),
            Inst::Msr { sysreg, rn } => write!(f, "msr {sysreg}, {rn}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        let bcond = Inst::BCond { cond: Cond::Eq, offset: 4 };
        assert!(bcond.is_conditional_branch());
        assert!(!bcond.is_indirect_branch());
        assert!(Inst::Blr { rn: Reg::X3 }.is_indirect_branch());
        assert!(Inst::Ret.is_indirect_branch());
        assert!(!Inst::B { offset: 1 }.is_conditional_branch());
    }

    #[test]
    fn aut_destination_and_address_source_align_for_gadgets() {
        // The scanner's match condition: AUT destination feeds an address.
        let aut = Inst::Aut { key: PacKey::Ia, rd: Reg::X0, modifier: PacModifier::Zero };
        let load = Inst::Ldr { rt: Reg::X2, rn: Reg::X0, offset: 0 };
        let call = Inst::Blr { rn: Reg::X0 };
        assert_eq!(aut.aut_destination(), Some(Reg::X0));
        assert_eq!(load.address_source(), Some(Reg::X0));
        assert_eq!(call.address_source(), Some(Reg::X0));
    }

    #[test]
    fn ret_addresses_through_lr() {
        assert_eq!(Inst::Ret.address_source(), Some(Reg::LR));
    }

    #[test]
    fn destination_tracking() {
        assert_eq!(
            Inst::AddReg { rd: Reg::X1, rn: Reg::X2, rm: Reg::X3 }.destination(),
            Some(Reg::X1)
        );
        assert_eq!(Inst::Bl { offset: 2 }.destination(), Some(Reg::LR));
        assert_eq!(Inst::Str { rt: Reg::X1, rn: Reg::X2, offset: 0 }.destination(), None);
        // Writes to XZR are discarded and must not appear as dataflow.
        assert_eq!(Inst::MovZ { rd: Reg::XZR, imm: 1, shift: 0 }.destination(), None);
    }

    #[test]
    fn display_smoke() {
        assert_eq!(Inst::Nop.to_string(), "nop");
        assert_eq!(
            Inst::Pac { key: PacKey::Ia, rd: Reg::LR, modifier: PacModifier::Reg(Reg::SP) }
                .to_string(),
            "pacia lr, sp"
        );
        assert_eq!(
            Inst::Aut { key: PacKey::Ib, rd: Reg::X0, modifier: PacModifier::Zero }.to_string(),
            "autizb x0"
        );
        assert_eq!(Inst::BCond { cond: Cond::Ne, offset: -3 }.to_string(), "b.ne .-3");
        assert_eq!(
            Inst::Ldr { rt: Reg::X2, rn: Reg::X0, offset: 8 }.to_string(),
            "ldr x2, [x0, #8]"
        );
    }

    #[test]
    fn pac_key_roundtrip() {
        for k in PacKey::ALL {
            assert_eq!(PacKey::from_index(k.index()), Some(k));
        }
        assert!(PacKey::Ia.is_instruction_key());
        assert!(!PacKey::Db.is_instruction_key());
    }
}
