//! An AArch64-like instruction set with ARMv8.3 Pointer Authentication.
//!
//! The PACMAN paper's victim (the XNU kernel) and its PACMAN gadgets are
//! AArch64 machine code. This crate defines the instruction set that the
//! workspace's kernel model is written in and that the microarchitecture
//! model executes:
//!
//! - [`Reg`], [`SysReg`], [`Cond`] — the register file, system registers
//!   (timers, performance counters, PA key registers) and condition codes.
//! - [`Inst`] — the instruction set: ALU ops, loads/stores, branches, the
//!   ARMv8.3 `PAC*`/`AUT*`/`XPAC` pointer-authentication instructions
//!   (paper §2.2), barriers and system-register access.
//! - [`mod@encode`] — a documented 32-bit binary encoding with a full decoder,
//!   so kernel images exist as bytes in simulated memory and the §4.3
//!   gadget scanner can sweep real binaries.
//! - [`asm::Asm`] — a label-resolving assembler for writing kernel code.
//! - [`ptr`] — the 48-bit-VA / 16-bit-PAC pointer format of macOS 12.2.1
//!   on M1 (paper §7.1): canonical forms, PAC insertion/stripping, and the
//!   corrupt-on-authentication-failure encoding that turns a bad PAC into
//!   a translation fault.
//!
//! The encoding is a *simplified* fixed-width format, not real A64; the
//! paper's attack depends on instruction semantics (Figure 3), not on
//! AArch64's bit patterns, and DESIGN.md documents this substitution.
//!
//! # Example
//!
//! ```
//! use pacman_isa::{Asm, Inst, PacKey, PacModifier, Reg};
//!
//! // The data PACMAN gadget of Figure 3(a).
//! let mut a = Asm::new();
//! let skip = a.new_label();
//! a.cbz(Reg::X1, skip);
//! a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X0, modifier: PacModifier::Zero });
//! a.push(Inst::Ldr { rt: Reg::X2, rn: Reg::X0, offset: 0 });
//! a.bind(skip);
//! a.push(Inst::Eret);
//! let program = a.assemble().expect("assembles");
//! assert_eq!(program.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod encode;
pub mod inst;
pub mod ptr;
pub mod regs;

pub use asm::{Asm, AsmError, Label};
pub use encode::{decode, encode, DecodeError};
pub use inst::{Inst, PacKey, PacModifier};
pub use regs::{Cond, Reg, SysReg};
