//! The signed-pointer format: 48-bit virtual addresses, 16-bit PACs.
//!
//! The PACMAN paper's platform (macOS 12.2.1 on the M1, §7.1) uses 48-bit
//! virtual addresses with 16 KB pages, leaving bits `[63:48]` as the
//! 16-bit PAC field. This module implements:
//!
//! - canonical pointer forms — user pointers sign-extend a `0` from bit
//!   47, kernel pointers a `1` (the TTBR0/TTBR1 split);
//! - PAC insertion (signing) and stripping (`xpac`);
//! - the authentication rule, including ARM's corrupt-on-failure encoding:
//!   a failed `AUT` writes error bits into the extension field so that
//!   *any* later dereference takes a translation fault (paper §2.2) —
//!   architecturally a crash, speculatively a suppressed fault, which is
//!   exactly the asymmetry the PACMAN attack exploits.

use pacman_qarma::PacComputer;

use crate::inst::PacKey;

/// Virtual-address width on the modelled platform.
pub const VA_BITS: u32 = 48;
/// Page size: 16 KB (paper §7.1).
pub const PAGE_BITS: u32 = 14;
/// Page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_BITS;
/// Number of PAC bits.
pub const PAC_BITS: u32 = 64 - VA_BITS;
/// Mask of the low (address) bits of a pointer.
pub const ADDR_MASK: u64 = (1 << VA_BITS) - 1;

/// Which half of the address space a canonical pointer belongs to.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum PointerKind {
    /// TTBR0 / EL0 half: extension bits are all zero.
    User,
    /// TTBR1 / EL1 half: extension bits are all one.
    Kernel,
}

/// A canonical 48-bit virtual address.
///
/// Wraps a `u64` that is guaranteed canonical (extension bits match bit
/// 47), providing page/offset accessors used throughout the TLB model.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct VirtualAddress(u64);

impl VirtualAddress {
    /// Creates a canonical address from the low 48 bits of `raw`,
    /// sign-extending bit 47.
    pub fn new(raw: u64) -> Self {
        Self(canonicalize(raw))
    }

    /// The underlying 64-bit value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The virtual page number (address bits above the page offset).
    pub fn vpn(self) -> u64 {
        (self.0 & ADDR_MASK) >> PAGE_BITS
    }

    /// The offset within the page.
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Which half of the address space this address is in.
    pub fn kind(self) -> PointerKind {
        if (self.0 >> 47) & 1 == 1 {
            PointerKind::Kernel
        } else {
            PointerKind::User
        }
    }
}

impl From<VirtualAddress> for u64 {
    fn from(va: VirtualAddress) -> u64 {
        va.value()
    }
}

impl std::fmt::Display for VirtualAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// Sign-extends bit 47 over the extension field, producing the canonical
/// form of a (possibly signed or corrupted) pointer. This is also the
/// semantic of `xpaci`/`xpacd`.
pub fn canonicalize(ptr: u64) -> u64 {
    let low = ptr & ADDR_MASK;
    if (low >> 47) & 1 == 1 {
        low | !ADDR_MASK
    } else {
        low
    }
}

/// Whether a pointer is canonical (dereferenceable without a translation
/// fault, assuming it is mapped).
pub fn is_canonical(ptr: u64) -> bool {
    ptr == canonicalize(ptr)
}

/// The 16-bit PAC field of a pointer (bits `[63:48]`).
pub fn pac_field(ptr: u64) -> u16 {
    (ptr >> VA_BITS) as u16
}

/// Replaces the PAC field of a pointer.
pub fn with_pac_field(ptr: u64, pac: u16) -> u64 {
    (ptr & ADDR_MASK) | (u64::from(pac) << VA_BITS)
}

/// Signs a pointer: computes its PAC under `pacs` with `modifier` and
/// stores it in the extension field (the `pacia`-family semantic).
///
/// The input is canonicalised first, so re-signing a signed pointer signs
/// the underlying address — matching hardware, where PAC bits are not part
/// of the signed payload.
pub fn sign(pacs: &PacComputer, ptr: u64, modifier: u64) -> u64 {
    let canonical = canonicalize(ptr);
    let pac = pacs.pac(canonical, modifier) as u16;
    with_pac_field(canonical, pac)
}

/// Result of an `AUT`-family authentication.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum AuthResult {
    /// The embedded PAC matched: the canonical pointer is returned and may
    /// be dereferenced freely.
    Valid(u64),
    /// The PAC did not match: the returned pointer has error bits set in
    /// its extension field; dereferencing it faults.
    Corrupt(u64),
}

impl AuthResult {
    /// The pointer value the instruction writes back, valid or not.
    pub fn pointer(self) -> u64 {
        match self {
            AuthResult::Valid(p) | AuthResult::Corrupt(p) => p,
        }
    }

    /// Whether authentication succeeded.
    pub fn is_valid(self) -> bool {
        matches!(self, AuthResult::Valid(_))
    }
}

/// Authenticates a signed pointer (the `autia`-family semantic).
///
/// Recomputes the PAC of the canonical address under `modifier` and
/// compares it with the embedded field. On success the canonical pointer
/// is returned; on failure, error bits derived from the key are planted in
/// the extension field, making the pointer non-canonical.
pub fn authenticate(pacs: &PacComputer, ptr: u64, modifier: u64, key: PacKey) -> AuthResult {
    let canonical = canonicalize(ptr);
    let expected = pacs.pac(canonical, modifier) as u16;
    if pac_field(ptr) == expected {
        AuthResult::Valid(canonical)
    } else {
        AuthResult::Corrupt(corrupt(canonical, key))
    }
}

/// Produces the corrupted pointer a failed authentication writes back:
/// the canonical extension XORed with a non-zero, key-dependent error
/// pattern. The result is never canonical, so any dereference faults.
pub fn corrupt(canonical: u64, key: PacKey) -> u64 {
    let ext = pac_field(canonical);
    let err = 0x2000u16 | (u16::from(key.index()) + 1) << 8;
    with_pac_field(canonical, ext ^ err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_qarma::{PacComputer, QarmaKey};

    fn pacs() -> PacComputer {
        PacComputer::new(QarmaKey::new(0xfeed_beef_dead_c0de, 0x0123_4567_89ab_cdef), VA_BITS)
    }

    const USER_PTR: u64 = 0x0000_7FFF_DEAD_4000;
    const KERNEL_PTR: u64 = 0xFFFF_FFF0_1234_C000;

    #[test]
    fn canonical_forms() {
        assert!(is_canonical(USER_PTR));
        assert!(is_canonical(KERNEL_PTR));
        assert!(!is_canonical(0x00F0_7FFF_DEAD_4000));
        assert_eq!(canonicalize(0xABCD_7FFF_DEAD_4000), USER_PTR);
        assert_eq!(canonicalize(KERNEL_PTR & ADDR_MASK | 0x1234_0000_0000_0000), KERNEL_PTR);
    }

    #[test]
    fn virtual_address_fields() {
        let va = VirtualAddress::new(USER_PTR + 0x123);
        assert_eq!(va.page_offset(), 0x123 + (USER_PTR & (PAGE_SIZE - 1)));
        assert_eq!(va.vpn(), (USER_PTR & ADDR_MASK) >> PAGE_BITS);
        assert_eq!(va.kind(), PointerKind::User);
        assert_eq!(VirtualAddress::new(KERNEL_PTR).kind(), PointerKind::Kernel);
        assert_eq!(u64::from(va), va.value());
    }

    #[test]
    fn sign_then_authenticate_succeeds() {
        let p = pacs();
        for ptr in [USER_PTR, KERNEL_PTR] {
            let signed = sign(&p, ptr, 0x5555);
            let auth = authenticate(&p, signed, 0x5555, PacKey::Ia);
            assert_eq!(auth, AuthResult::Valid(ptr));
        }
    }

    #[test]
    fn wrong_modifier_fails_and_corrupts() {
        let p = pacs();
        let signed = sign(&p, USER_PTR, 0x5555);
        let auth = authenticate(&p, signed, 0x5556, PacKey::Ia);
        assert!(!auth.is_valid());
        assert!(!is_canonical(auth.pointer()), "failed AUT must yield a faulting pointer");
        // The address bits survive corruption (ARM semantics).
        assert_eq!(canonicalize(auth.pointer()), USER_PTR);
    }

    #[test]
    fn wrong_pac_fails() {
        let p = pacs();
        let signed = sign(&p, KERNEL_PTR, 7);
        let tampered = with_pac_field(signed, pac_field(signed) ^ 1);
        assert!(!authenticate(&p, tampered, 7, PacKey::Ib).is_valid());
    }

    #[test]
    fn corrupt_is_never_canonical_for_any_key() {
        for key in PacKey::ALL {
            for ptr in [USER_PTR, KERNEL_PTR] {
                assert!(!is_canonical(corrupt(ptr, key)), "{key:?} error bits collide");
            }
        }
    }

    #[test]
    fn corrupt_error_bits_depend_on_key() {
        let a = corrupt(USER_PTR, PacKey::Ia);
        let b = corrupt(USER_PTR, PacKey::Db);
        assert_ne!(a, b, "key-dependent error codes expected");
    }

    #[test]
    fn resigning_a_signed_pointer_signs_the_address() {
        let p = pacs();
        let once = sign(&p, USER_PTR, 1);
        let twice = sign(&p, once, 1);
        assert_eq!(once, twice);
    }

    #[test]
    fn exactly_16_pac_bits() {
        assert_eq!(PAC_BITS, 16);
        assert_eq!(pac_field(0xABCD_0000_0000_0000), 0xABCD);
        assert_eq!(with_pac_field(USER_PTR, 0xABCD) >> 48, 0xABCD);
    }

    #[test]
    fn brute_force_space_is_2_to_16() {
        // Exactly one PAC value authenticates: the paper's §8.2 brute-force
        // search space. (Scanning all 65536 values here doubles as a check
        // that authenticate() has no second preimage for this pointer.)
        let p = pacs();
        let signed = sign(&p, USER_PTR, 42);
        let good = pac_field(signed);
        let mut matches = 0;
        for guess in 0..=u16::MAX {
            if authenticate(&p, with_pac_field(signed, guess), 42, PacKey::Ia).is_valid() {
                matches += 1;
                assert_eq!(guess, good);
            }
        }
        assert_eq!(matches, 1);
    }
}
