//! The 32-bit binary encoding.
//!
//! Every instruction encodes to one little-endian 32-bit word with the
//! opcode in bits `[31:24]`. The remaining 24 bits are format-specific:
//!
//! | format        | fields |
//! |---------------|--------|
//! | three-reg     | `rd[23:18] rn[17:12] rm[11:6]` |
//! | reg + imm12   | `rd[23:18] rn[17:12] imm[11:0]` |
//! | mov-wide      | `rd[23:18] shift[17:16] imm[15:0]` |
//! | shift-imm     | `rd[23:18] rn[17:12] shift[11:6]` |
//! | memory        | `rt[23:18] rn[17:12] off[11:0]` (signed) |
//! | branch26      | `offset[23:0]` (signed, instructions) |
//! | cond-branch   | `cond[23:20] offset[15:0]` (signed) |
//! | cb(n)z        | `rt[23:18] offset[15:0]` (signed) |
//! | pac/aut       | `key[23:22] rd[21:16] rm[15:10]` |
//! | system        | `reg[23:18] sysreg[7:0]` |
//!
//! This is intentionally *not* the real A64 encoding (see crate docs); it
//! exists so that code lives in simulated memory as bytes, the fetch path
//! decodes it like hardware would, and the §4.3 gadget scanner operates on
//! binaries rather than on data structures.

use std::error::Error;
use std::fmt;

use crate::inst::{Inst, PacKey, PacModifier};
use crate::regs::{Cond, Reg, SysReg};

/// Error produced when an instruction's fields do not fit its encoding.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum EncodeError {
    /// An immediate or offset exceeds its field width.
    FieldOverflow {
        /// The instruction's mnemonic-ish name.
        what: &'static str,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::FieldOverflow { what } => {
                write!(f, "field overflow while encoding {what}")
            }
        }
    }
}

impl Error for EncodeError {}

/// Error produced when a 32-bit word is not a valid instruction.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum DecodeError {
    /// The opcode byte is not assigned.
    BadOpcode(u8),
    /// A register field holds an unassigned index.
    BadRegister(u8),
    /// A condition, key or system-register field is out of range.
    BadField(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unassigned opcode {op:#04x}"),
            DecodeError::BadRegister(r) => write!(f, "invalid register index {r}"),
            DecodeError::BadField(which) => write!(f, "invalid {which} field"),
        }
    }
}

impl Error for DecodeError {}

mod op {
    pub const NOP: u8 = 0x00;
    pub const ISB: u8 = 0x01;
    pub const DSB: u8 = 0x02;
    pub const HLT: u8 = 0x03;
    pub const ERET: u8 = 0x04;
    pub const SVC: u8 = 0x05;
    pub const MOVZ: u8 = 0x06;
    pub const MOVK: u8 = 0x07;
    pub const MOVREG: u8 = 0x08;
    pub const ADDIMM: u8 = 0x09;
    pub const SUBIMM: u8 = 0x0A;
    pub const ADDREG: u8 = 0x0B;
    pub const SUBREG: u8 = 0x0C;
    pub const ANDREG: u8 = 0x0D;
    pub const ORRREG: u8 = 0x0E;
    pub const EORREG: u8 = 0x0F;
    pub const LSLIMM: u8 = 0x10;
    pub const LSRIMM: u8 = 0x11;
    pub const MUL: u8 = 0x12;
    pub const CMPIMM: u8 = 0x13;
    pub const CMPREG: u8 = 0x14;
    pub const LDR: u8 = 0x15;
    pub const STR: u8 = 0x16;
    pub const LDRB: u8 = 0x17;
    pub const STRB: u8 = 0x18;
    pub const B: u8 = 0x19;
    pub const BL: u8 = 0x1A;
    pub const BCOND: u8 = 0x1B;
    pub const CBZ: u8 = 0x1C;
    pub const CBNZ: u8 = 0x1D;
    pub const BR: u8 = 0x1E;
    pub const BLR: u8 = 0x1F;
    pub const RET: u8 = 0x20;
    pub const PACREG: u8 = 0x21;
    pub const PACZERO: u8 = 0x22;
    pub const AUTREG: u8 = 0x23;
    pub const AUTZERO: u8 = 0x24;
    pub const XPACI: u8 = 0x25;
    pub const XPACD: u8 = 0x26;
    pub const PACGA: u8 = 0x27;
    pub const MRS: u8 = 0x28;
    pub const MSR: u8 = 0x29;
    pub const TBZ: u8 = 0x2A;
    pub const TBNZ: u8 = 0x2B;
    pub const MOVN: u8 = 0x2C;
    pub const CSEL: u8 = 0x2D;
    pub const LDP: u8 = 0x2E;
    pub const STP: u8 = 0x2F;
}

fn word(opcode: u8, payload: u32) -> u32 {
    debug_assert_eq!(payload >> 24, 0, "payload spilled into the opcode byte");
    (u32::from(opcode) << 24) | (payload & 0x00FF_FFFF)
}

fn reg_at(r: Reg, lsb: u32) -> u32 {
    u32::from(r.index()) << lsb
}

fn three_reg(opcode: u8, rd: Reg, rn: Reg, rm: Reg) -> u32 {
    word(opcode, reg_at(rd, 18) | reg_at(rn, 12) | reg_at(rm, 6))
}

fn imm12(v: u16, what: &'static str) -> Result<u32, EncodeError> {
    if v < (1 << 12) {
        Ok(u32::from(v))
    } else {
        Err(EncodeError::FieldOverflow { what })
    }
}

fn simm(v: i64, bits: u32, what: &'static str) -> Result<u32, EncodeError> {
    let max = (1i64 << (bits - 1)) - 1;
    let min = -(1i64 << (bits - 1));
    if (min..=max).contains(&v) {
        Ok((v as u32) & ((1u32 << bits) - 1))
    } else {
        Err(EncodeError::FieldOverflow { what })
    }
}

fn sext(v: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((i64::from(v)) << shift) >> shift
}

/// Encodes one instruction to its 32-bit word.
///
/// # Errors
///
/// Returns [`EncodeError::FieldOverflow`] if an immediate, shift or branch
/// offset does not fit its field.
///
/// # Example
///
/// ```
/// use pacman_isa::{encode, decode, Inst, Reg};
///
/// let inst = Inst::AddImm { rd: Reg::X1, rn: Reg::X2, imm: 40 };
/// let w = encode(&inst)?;
/// assert_eq!(decode(w)?, inst);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn encode(inst: &Inst) -> Result<u32, EncodeError> {
    use op::*;
    Ok(match *inst {
        Inst::Nop => word(NOP, 0),
        Inst::Isb => word(ISB, 0),
        Inst::Dsb => word(DSB, 0),
        Inst::Hlt => word(HLT, 0),
        Inst::Eret => word(ERET, 0),
        Inst::Svc { imm } => word(SVC, u32::from(imm)),
        Inst::MovZ { rd, imm, shift } => {
            if shift > 3 {
                return Err(EncodeError::FieldOverflow { what: "movz shift" });
            }
            word(MOVZ, reg_at(rd, 18) | (u32::from(shift) << 16) | u32::from(imm))
        }
        Inst::MovK { rd, imm, shift } => {
            if shift > 3 {
                return Err(EncodeError::FieldOverflow { what: "movk shift" });
            }
            word(MOVK, reg_at(rd, 18) | (u32::from(shift) << 16) | u32::from(imm))
        }
        Inst::MovReg { rd, rn } => word(MOVREG, reg_at(rd, 18) | reg_at(rn, 12)),
        Inst::MovN { rd, imm, shift } => {
            if shift > 3 {
                return Err(EncodeError::FieldOverflow { what: "movn shift" });
            }
            word(MOVN, reg_at(rd, 18) | (u32::from(shift) << 16) | u32::from(imm))
        }
        Inst::Csel { rd, rn, rm, cond } => {
            word(CSEL, reg_at(rd, 18) | reg_at(rn, 12) | reg_at(rm, 6) | u32::from(cond.index()))
        }
        Inst::AddImm { rd, rn, imm } => {
            word(ADDIMM, reg_at(rd, 18) | reg_at(rn, 12) | imm12(imm, "add imm")?)
        }
        Inst::SubImm { rd, rn, imm } => {
            word(SUBIMM, reg_at(rd, 18) | reg_at(rn, 12) | imm12(imm, "sub imm")?)
        }
        Inst::AddReg { rd, rn, rm } => three_reg(ADDREG, rd, rn, rm),
        Inst::SubReg { rd, rn, rm } => three_reg(SUBREG, rd, rn, rm),
        Inst::AndReg { rd, rn, rm } => three_reg(ANDREG, rd, rn, rm),
        Inst::OrrReg { rd, rn, rm } => three_reg(ORRREG, rd, rn, rm),
        Inst::EorReg { rd, rn, rm } => three_reg(EORREG, rd, rn, rm),
        Inst::LslImm { rd, rn, shift } => {
            if shift > 63 {
                return Err(EncodeError::FieldOverflow { what: "lsl shift" });
            }
            word(LSLIMM, reg_at(rd, 18) | reg_at(rn, 12) | (u32::from(shift) << 6))
        }
        Inst::LsrImm { rd, rn, shift } => {
            if shift > 63 {
                return Err(EncodeError::FieldOverflow { what: "lsr shift" });
            }
            word(LSRIMM, reg_at(rd, 18) | reg_at(rn, 12) | (u32::from(shift) << 6))
        }
        Inst::Mul { rd, rn, rm } => three_reg(MUL, rd, rn, rm),
        Inst::CmpImm { rn, imm } => word(CMPIMM, reg_at(rn, 12) | imm12(imm, "cmp imm")?),
        Inst::CmpReg { rn, rm } => word(CMPREG, reg_at(rn, 12) | reg_at(rm, 6)),
        Inst::Ldr { rt, rn, offset } => {
            word(LDR, reg_at(rt, 18) | reg_at(rn, 12) | simm(offset.into(), 12, "ldr offset")?)
        }
        Inst::Str { rt, rn, offset } => {
            word(STR, reg_at(rt, 18) | reg_at(rn, 12) | simm(offset.into(), 12, "str offset")?)
        }
        Inst::Ldrb { rt, rn, offset } => {
            word(LDRB, reg_at(rt, 18) | reg_at(rn, 12) | simm(offset.into(), 12, "ldrb offset")?)
        }
        Inst::Strb { rt, rn, offset } => {
            word(STRB, reg_at(rt, 18) | reg_at(rn, 12) | simm(offset.into(), 12, "strb offset")?)
        }
        Inst::Ldp { rt, rt2, rn, offset } | Inst::Stp { rt, rt2, rn, offset } => {
            if offset % 8 != 0 {
                return Err(EncodeError::FieldOverflow { what: "pair offset alignment" });
            }
            let opcode = if matches!(inst, Inst::Ldp { .. }) { LDP } else { STP };
            word(
                opcode,
                reg_at(rt, 18)
                    | reg_at(rt2, 12)
                    | reg_at(rn, 6)
                    | simm((offset / 8).into(), 6, "pair offset")?,
            )
        }
        Inst::B { offset } => word(B, simm(offset.into(), 24, "b offset")?),
        Inst::Bl { offset } => word(BL, simm(offset.into(), 24, "bl offset")?),
        Inst::BCond { cond, offset } => {
            word(BCOND, (u32::from(cond.index()) << 20) | simm(offset.into(), 16, "b.cond offset")?)
        }
        Inst::Cbz { rt, offset } => {
            word(CBZ, reg_at(rt, 18) | simm(offset.into(), 16, "cbz offset")?)
        }
        Inst::Cbnz { rt, offset } => {
            word(CBNZ, reg_at(rt, 18) | simm(offset.into(), 16, "cbnz offset")?)
        }
        Inst::Tbz { rt, bit, offset } => {
            if bit > 63 {
                return Err(EncodeError::FieldOverflow { what: "tbz bit" });
            }
            word(
                TBZ,
                reg_at(rt, 18) | (u32::from(bit) << 12) | simm(offset.into(), 12, "tbz offset")?,
            )
        }
        Inst::Tbnz { rt, bit, offset } => {
            if bit > 63 {
                return Err(EncodeError::FieldOverflow { what: "tbnz bit" });
            }
            word(
                TBNZ,
                reg_at(rt, 18) | (u32::from(bit) << 12) | simm(offset.into(), 12, "tbnz offset")?,
            )
        }
        Inst::Br { rn } => word(BR, reg_at(rn, 12)),
        Inst::Blr { rn } => word(BLR, reg_at(rn, 12)),
        Inst::Ret => word(RET, 0),
        Inst::Pac { key, rd, modifier: PacModifier::Reg(rm) } => {
            word(PACREG, (u32::from(key.index()) << 22) | reg_at(rd, 16) | reg_at(rm, 10))
        }
        Inst::Pac { key, rd, modifier: PacModifier::Zero } => {
            word(PACZERO, (u32::from(key.index()) << 22) | reg_at(rd, 16))
        }
        Inst::Aut { key, rd, modifier: PacModifier::Reg(rm) } => {
            word(AUTREG, (u32::from(key.index()) << 22) | reg_at(rd, 16) | reg_at(rm, 10))
        }
        Inst::Aut { key, rd, modifier: PacModifier::Zero } => {
            word(AUTZERO, (u32::from(key.index()) << 22) | reg_at(rd, 16))
        }
        Inst::Xpac { data: false, rd } => word(XPACI, reg_at(rd, 18)),
        Inst::Xpac { data: true, rd } => word(XPACD, reg_at(rd, 18)),
        Inst::Pacga { rd, rn, rm } => three_reg(PACGA, rd, rn, rm),
        Inst::Mrs { rd, sysreg } => word(MRS, reg_at(rd, 18) | u32::from(sysreg.index())),
        Inst::Msr { sysreg, rn } => word(MSR, reg_at(rn, 18) | u32::from(sysreg.index())),
    })
}

fn reg_field(w: u32, lsb: u32) -> Result<Reg, DecodeError> {
    let idx = ((w >> lsb) & 0x3F) as u8;
    Reg::from_index(idx).ok_or(DecodeError::BadRegister(idx))
}

fn key_field(w: u32) -> Result<PacKey, DecodeError> {
    PacKey::from_index(((w >> 22) & 0x3) as u8).ok_or(DecodeError::BadField("pac key"))
}

/// Decodes a 32-bit word back into an instruction.
///
/// # Errors
///
/// Returns a [`DecodeError`] for unassigned opcodes or malformed fields.
pub fn decode(w: u32) -> Result<Inst, DecodeError> {
    use op::*;
    let opcode = (w >> 24) as u8;
    Ok(match opcode {
        NOP => Inst::Nop,
        ISB => Inst::Isb,
        DSB => Inst::Dsb,
        HLT => Inst::Hlt,
        ERET => Inst::Eret,
        SVC => Inst::Svc { imm: (w & 0xFFFF) as u16 },
        MOVZ => Inst::MovZ {
            rd: reg_field(w, 18)?,
            imm: (w & 0xFFFF) as u16,
            shift: ((w >> 16) & 0x3) as u8,
        },
        MOVK => Inst::MovK {
            rd: reg_field(w, 18)?,
            imm: (w & 0xFFFF) as u16,
            shift: ((w >> 16) & 0x3) as u8,
        },
        MOVREG => Inst::MovReg { rd: reg_field(w, 18)?, rn: reg_field(w, 12)? },
        ADDIMM => {
            Inst::AddImm { rd: reg_field(w, 18)?, rn: reg_field(w, 12)?, imm: (w & 0xFFF) as u16 }
        }
        SUBIMM => {
            Inst::SubImm { rd: reg_field(w, 18)?, rn: reg_field(w, 12)?, imm: (w & 0xFFF) as u16 }
        }
        ADDREG => {
            Inst::AddReg { rd: reg_field(w, 18)?, rn: reg_field(w, 12)?, rm: reg_field(w, 6)? }
        }
        SUBREG => {
            Inst::SubReg { rd: reg_field(w, 18)?, rn: reg_field(w, 12)?, rm: reg_field(w, 6)? }
        }
        ANDREG => {
            Inst::AndReg { rd: reg_field(w, 18)?, rn: reg_field(w, 12)?, rm: reg_field(w, 6)? }
        }
        ORRREG => {
            Inst::OrrReg { rd: reg_field(w, 18)?, rn: reg_field(w, 12)?, rm: reg_field(w, 6)? }
        }
        EORREG => {
            Inst::EorReg { rd: reg_field(w, 18)?, rn: reg_field(w, 12)?, rm: reg_field(w, 6)? }
        }
        LSLIMM => Inst::LslImm {
            rd: reg_field(w, 18)?,
            rn: reg_field(w, 12)?,
            shift: ((w >> 6) & 0x3F) as u8,
        },
        LSRIMM => Inst::LsrImm {
            rd: reg_field(w, 18)?,
            rn: reg_field(w, 12)?,
            shift: ((w >> 6) & 0x3F) as u8,
        },
        MUL => Inst::Mul { rd: reg_field(w, 18)?, rn: reg_field(w, 12)?, rm: reg_field(w, 6)? },
        CMPIMM => Inst::CmpImm { rn: reg_field(w, 12)?, imm: (w & 0xFFF) as u16 },
        CMPREG => Inst::CmpReg { rn: reg_field(w, 12)?, rm: reg_field(w, 6)? },
        LDR => Inst::Ldr {
            rt: reg_field(w, 18)?,
            rn: reg_field(w, 12)?,
            offset: sext(w & 0xFFF, 12) as i16,
        },
        STR => Inst::Str {
            rt: reg_field(w, 18)?,
            rn: reg_field(w, 12)?,
            offset: sext(w & 0xFFF, 12) as i16,
        },
        LDRB => Inst::Ldrb {
            rt: reg_field(w, 18)?,
            rn: reg_field(w, 12)?,
            offset: sext(w & 0xFFF, 12) as i16,
        },
        STRB => Inst::Strb {
            rt: reg_field(w, 18)?,
            rn: reg_field(w, 12)?,
            offset: sext(w & 0xFFF, 12) as i16,
        },
        B => Inst::B { offset: sext(w & 0xFF_FFFF, 24) as i32 },
        BL => Inst::Bl { offset: sext(w & 0xFF_FFFF, 24) as i32 },
        BCOND => Inst::BCond {
            cond: Cond::from_index(((w >> 20) & 0xF) as u8)
                .ok_or(DecodeError::BadField("condition"))?,
            offset: sext(w & 0xFFFF, 16) as i32,
        },
        CBZ => Inst::Cbz { rt: reg_field(w, 18)?, offset: sext(w & 0xFFFF, 16) as i32 },
        CBNZ => Inst::Cbnz { rt: reg_field(w, 18)?, offset: sext(w & 0xFFFF, 16) as i32 },
        BR => Inst::Br { rn: reg_field(w, 12)? },
        BLR => Inst::Blr { rn: reg_field(w, 12)? },
        RET => Inst::Ret,
        PACREG => Inst::Pac {
            key: key_field(w)?,
            rd: reg_field(w, 16)?,
            modifier: PacModifier::Reg(reg_field(w, 10)?),
        },
        PACZERO => {
            Inst::Pac { key: key_field(w)?, rd: reg_field(w, 16)?, modifier: PacModifier::Zero }
        }
        AUTREG => Inst::Aut {
            key: key_field(w)?,
            rd: reg_field(w, 16)?,
            modifier: PacModifier::Reg(reg_field(w, 10)?),
        },
        AUTZERO => {
            Inst::Aut { key: key_field(w)?, rd: reg_field(w, 16)?, modifier: PacModifier::Zero }
        }
        XPACI => Inst::Xpac { data: false, rd: reg_field(w, 18)? },
        XPACD => Inst::Xpac { data: true, rd: reg_field(w, 18)? },
        PACGA => Inst::Pacga { rd: reg_field(w, 18)?, rn: reg_field(w, 12)?, rm: reg_field(w, 6)? },
        TBZ => Inst::Tbz {
            rt: reg_field(w, 18)?,
            bit: ((w >> 12) & 0x3F) as u8,
            offset: sext(w & 0xFFF, 12) as i32,
        },
        TBNZ => Inst::Tbnz {
            rt: reg_field(w, 18)?,
            bit: ((w >> 12) & 0x3F) as u8,
            offset: sext(w & 0xFFF, 12) as i32,
        },
        MOVN => Inst::MovN {
            rd: reg_field(w, 18)?,
            imm: (w & 0xFFFF) as u16,
            shift: ((w >> 16) & 0x3) as u8,
        },
        CSEL => Inst::Csel {
            rd: reg_field(w, 18)?,
            rn: reg_field(w, 12)?,
            rm: reg_field(w, 6)?,
            cond: Cond::from_index((w & 0xF) as u8).ok_or(DecodeError::BadField("condition"))?,
        },
        LDP => Inst::Ldp {
            rt: reg_field(w, 18)?,
            rt2: reg_field(w, 12)?,
            rn: reg_field(w, 6)?,
            offset: (sext(w & 0x3F, 6) * 8) as i16,
        },
        STP => Inst::Stp {
            rt: reg_field(w, 18)?,
            rt2: reg_field(w, 12)?,
            rn: reg_field(w, 6)?,
            offset: (sext(w & 0x3F, 6) * 8) as i16,
        },
        MRS => Inst::Mrs {
            rd: reg_field(w, 18)?,
            sysreg: SysReg::from_index((w & 0xFF) as u8)
                .ok_or(DecodeError::BadField("system register"))?,
        },
        MSR => Inst::Msr {
            sysreg: SysReg::from_index((w & 0xFF) as u8)
                .ok_or(DecodeError::BadField("system register"))?,
            rn: reg_field(w, 18)?,
        },
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

/// Encodes a sequence of instructions to little-endian bytes.
///
/// # Errors
///
/// Propagates the first [`EncodeError`] encountered.
pub fn encode_program(insts: &[Inst]) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::with_capacity(insts.len() * 4);
    for inst in insts {
        out.extend_from_slice(&encode(inst)?.to_le_bytes());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instructions() -> Vec<Inst> {
        use crate::regs::Reg as R;
        vec![
            Inst::Nop,
            Inst::Isb,
            Inst::Dsb,
            Inst::Hlt,
            Inst::Eret,
            Inst::Svc { imm: 0x80 },
            Inst::MovZ { rd: R::X1, imm: 0xBEEF, shift: 2 },
            Inst::MovK { rd: R::X2, imm: 0xDEAD, shift: 3 },
            Inst::MovReg { rd: R::X3, rn: R::SP },
            Inst::AddImm { rd: R::X4, rn: R::X5, imm: 4095 },
            Inst::SubImm { rd: R::X6, rn: R::X7, imm: 0 },
            Inst::AddReg { rd: R::X8, rn: R::X9, rm: R::X10 },
            Inst::SubReg { rd: R::X11, rn: R::X12, rm: R::X13 },
            Inst::AndReg { rd: R::X14, rn: R::X15, rm: R::X16 },
            Inst::OrrReg { rd: R::X17, rn: R::X18, rm: R::X19 },
            Inst::EorReg { rd: R::X20, rn: R::X21, rm: R::X22 },
            Inst::LslImm { rd: R::X23, rn: R::X24, shift: 63 },
            Inst::LsrImm { rd: R::X25, rn: R::X26, shift: 1 },
            Inst::Mul { rd: R::X27, rn: R::X28, rm: R::X29 },
            Inst::CmpImm { rn: R::X1, imm: 7 },
            Inst::CmpReg { rn: R::X2, rm: R::XZR },
            Inst::Ldr { rt: R::X0, rn: R::X1, offset: -2048 },
            Inst::Str { rt: R::X2, rn: R::SP, offset: 2047 },
            Inst::Ldrb { rt: R::X3, rn: R::X4, offset: 17 },
            Inst::Strb { rt: R::X5, rn: R::X6, offset: -1 },
            Inst::B { offset: -(1 << 23) },
            Inst::Bl { offset: (1 << 23) - 1 },
            Inst::BCond { cond: Cond::Le, offset: -42 },
            Inst::Cbz { rt: R::X7, offset: 1000 },
            Inst::Cbnz { rt: R::X8, offset: -1000 },
            Inst::Tbz { rt: R::X9, bit: 55, offset: 100 },
            Inst::Tbnz { rt: R::X10, bit: 0, offset: -100 },
            Inst::MovN { rd: R::X11, imm: 0x1234, shift: 1 },
            Inst::Csel { rd: R::X12, rn: R::X13, rm: R::X14, cond: Cond::Gt },
            Inst::Ldp { rt: R::X29, rt2: R::X30, rn: R::SP, offset: -16 },
            Inst::Stp { rt: R::X29, rt2: R::X30, rn: R::SP, offset: 248 },
            Inst::Br { rn: R::X9 },
            Inst::Blr { rn: R::X10 },
            Inst::Ret,
            Inst::Pac { key: PacKey::Ia, rd: R::LR, modifier: PacModifier::Reg(R::SP) },
            Inst::Pac { key: PacKey::Db, rd: R::X0, modifier: PacModifier::Zero },
            Inst::Aut { key: PacKey::Ib, rd: R::X1, modifier: PacModifier::Reg(R::X2) },
            Inst::Aut { key: PacKey::Da, rd: R::X3, modifier: PacModifier::Zero },
            Inst::Xpac { data: false, rd: R::X4 },
            Inst::Xpac { data: true, rd: R::X5 },
            Inst::Pacga { rd: R::X6, rn: R::X7, rm: R::X8 },
            Inst::Mrs { rd: R::X9, sysreg: SysReg::CntpctEl0 },
            Inst::Msr { sysreg: SysReg::Pmcr0, rn: R::X10 },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for inst in sample_instructions() {
            let w = encode(&inst).unwrap_or_else(|e| panic!("encode {inst}: {e}"));
            let back = decode(w).unwrap_or_else(|e| panic!("decode {inst}: {e}"));
            assert_eq!(back, inst, "round-trip mismatch for {inst}");
        }
    }

    #[test]
    fn opcodes_are_unique() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for inst in sample_instructions() {
            let opcode = encode(&inst).unwrap() >> 24;
            // Pac/Aut reg vs zero forms intentionally use distinct opcodes;
            // everything else must be unique per variant kind.
            seen.insert((std::mem::discriminant(&inst), opcode));
        }
        let opcode_count = seen.iter().map(|(_, op)| *op).collect::<HashSet<_>>().len();
        assert!(opcode_count >= 40, "expected >=40 distinct opcodes, got {opcode_count}");
    }

    #[test]
    fn overflowing_fields_error() {
        assert!(encode(&Inst::AddImm { rd: Reg::X0, rn: Reg::X0, imm: 4096 }).is_err());
        assert!(encode(&Inst::MovZ { rd: Reg::X0, imm: 0, shift: 4 }).is_err());
        assert!(encode(&Inst::LslImm { rd: Reg::X0, rn: Reg::X0, shift: 64 }).is_err());
        assert!(encode(&Inst::Ldr { rt: Reg::X0, rn: Reg::X0, offset: 2048 }).is_err());
        assert!(encode(&Inst::B { offset: 1 << 23 }).is_err());
        assert!(encode(&Inst::BCond { cond: Cond::Eq, offset: 40000 }).is_err());
        assert!(encode(&Inst::Tbz { rt: Reg::X0, bit: 64, offset: 0 }).is_err());
        assert!(
            encode(&Inst::Ldp { rt: Reg::X0, rt2: Reg::X1, rn: Reg::SP, offset: 12 }).is_err(),
            "unaligned pair offset"
        );
        assert!(
            encode(&Inst::Stp { rt: Reg::X0, rt2: Reg::X1, rn: Reg::SP, offset: 256 }).is_err(),
            "pair offset range"
        );
    }

    #[test]
    fn bad_words_are_rejected() {
        assert!(matches!(decode(0xFF00_0000), Err(DecodeError::BadOpcode(0xFF))));
        // Register index 33+ in a three-reg format.
        let bad_reg = (u32::from(super::op::ADDREG) << 24) | (33u32 << 18);
        assert!(matches!(decode(bad_reg), Err(DecodeError::BadRegister(33))));
        // Condition 15 is unassigned.
        let bad_cond = (u32::from(super::op::BCOND) << 24) | (15u32 << 20);
        assert!(matches!(decode(bad_cond), Err(DecodeError::BadField("condition"))));
        // System register 200 is unassigned.
        let bad_sys = (u32::from(super::op::MRS) << 24) | 200;
        assert!(matches!(decode(bad_sys), Err(DecodeError::BadField("system register"))));
    }

    #[test]
    fn encode_program_is_little_endian_words() {
        let bytes = encode_program(&[Inst::Nop, Inst::Ret]).unwrap();
        assert_eq!(bytes.len(), 8);
        assert_eq!(
            u32::from_le_bytes(bytes[0..4].try_into().unwrap()),
            encode(&Inst::Nop).unwrap()
        );
        assert_eq!(
            u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            encode(&Inst::Ret).unwrap()
        );
    }

    #[test]
    fn negative_offsets_sign_extend() {
        let w = encode(&Inst::Ldr { rt: Reg::X0, rn: Reg::X1, offset: -8 }).unwrap();
        assert_eq!(decode(w).unwrap(), Inst::Ldr { rt: Reg::X0, rn: Reg::X1, offset: -8 });
        let w = encode(&Inst::B { offset: -1 }).unwrap();
        assert_eq!(decode(w).unwrap(), Inst::B { offset: -1 });
    }
}
