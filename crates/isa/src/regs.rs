//! Registers, system registers and condition codes.

use std::fmt;

/// A general-purpose register.
///
/// `X0..=X30` follow the AArch64 convention (`X30` is the link register
/// `LR`), `Sp` is the stack pointer and `Xzr` the zero register.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct Reg(u8);

impl Reg {
    /// Number of encodable registers (X0..=X30, SP, XZR).
    pub const COUNT: usize = 33;
    /// The stack pointer.
    pub const SP: Reg = Reg(31);
    /// The zero register: reads as zero, writes are discarded.
    pub const XZR: Reg = Reg(32);
    /// The procedure link register (alias of `X30`).
    pub const LR: Reg = Reg(30);

    /// Returns the general-purpose register `Xn`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 30`.
    pub fn x(n: u8) -> Reg {
        assert!(n <= 30, "X registers are X0..=X30, got X{n}");
        Reg(n)
    }

    /// Constructs a register from its encoding index.
    pub fn from_index(index: u8) -> Option<Reg> {
        (usize::from(index) < Self::COUNT).then_some(Reg(index))
    }

    /// The encoding index of this register (0..=32).
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the zero register.
    pub fn is_zero(self) -> bool {
        self == Self::XZR
    }
}

macro_rules! named_regs {
    ($($name:ident = $n:expr),* $(,)?) => {
        impl Reg {
            $(
                #[doc = concat!("General-purpose register X", stringify!($n), ".")]
                pub const $name: Reg = Reg($n);
            )*
        }
    };
}

named_regs! {
    X0 = 0, X1 = 1, X2 = 2, X3 = 3, X4 = 4, X5 = 5, X6 = 6, X7 = 7,
    X8 = 8, X9 = 9, X10 = 10, X11 = 11, X12 = 12, X13 = 13, X14 = 14,
    X15 = 15, X16 = 16, X17 = 17, X18 = 18, X19 = 19, X20 = 20, X21 = 21,
    X22 = 22, X23 = 23, X24 = 24, X25 = 25, X26 = 26, X27 = 27, X28 = 28,
    X29 = 29, X30 = 30,
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            30 => write!(f, "lr"),
            31 => write!(f, "sp"),
            32 => write!(f, "xzr"),
            n => write!(f, "x{n}"),
        }
    }
}

/// Condition codes for `B.cond`, evaluated against the NZCV flags set by
/// the most recent compare instruction. Signed comparisons only, which is
/// all the kernel model needs.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum Cond {
    /// Equal (`Z == 1`).
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl Cond {
    /// All condition codes, in encoding order.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];

    /// Encoding index of the condition.
    pub fn index(self) -> u8 {
        match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Lt => 2,
            Cond::Le => 3,
            Cond::Gt => 4,
            Cond::Ge => 5,
        }
    }

    /// Decodes a condition from its encoding index.
    pub fn from_index(index: u8) -> Option<Cond> {
        Self::ALL.get(usize::from(index)).copied()
    }

    /// Evaluates the condition against a signed comparison result
    /// `lhs - rhs` (the compare instructions record the operands, and the
    /// core evaluates lazily).
    pub fn holds(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Le => lhs <= rhs,
            Cond::Gt => lhs > rhs,
            Cond::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// System registers reachable through `MRS`/`MSR`.
///
/// These mirror the registers the paper's Table 1 and §6.1 discuss: the
/// 24 MHz generic timer, Apple's proprietary performance counters and
/// their control register, plus the ARMv8.3 PA key registers (each
/// 128-bit key is a Lo/Hi pair, writable only at EL1).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum SysReg {
    /// `CNTPCT_EL0` — the 24 MHz system counter (EL0-readable, Table 1).
    CntpctEl0,
    /// `CNTFRQ_EL0` — the counter frequency register (reads 24 MHz).
    CntfrqEl0,
    /// `PMC0` (`S3_2_c15_c0_0`) — Apple cycle counter (EL1 unless enabled).
    Pmc0,
    /// `PMC1` (`S3_2_c15_c1_0`) — Apple instruction counter.
    Pmc1,
    /// `PMCR0` (`S3_1_c15_c0_0`) — performance counter control; setting the
    /// EL0-enable bit makes `PMC0` readable from userspace (paper §6.1).
    Pmcr0,
    /// `CurrentEL` — the current exception level.
    CurrentEl,
    /// `APIAKeyLo_EL1` — instruction key A, low half.
    ApiaKeyLo,
    /// `APIAKeyHi_EL1` — instruction key A, high half.
    ApiaKeyHi,
    /// `APIBKeyLo_EL1` — instruction key B, low half.
    ApibKeyLo,
    /// `APIBKeyHi_EL1` — instruction key B, high half.
    ApibKeyHi,
    /// `APDAKeyLo_EL1` — data key A, low half.
    ApdaKeyLo,
    /// `APDAKeyHi_EL1` — data key A, high half.
    ApdaKeyHi,
    /// `APDBKeyLo_EL1` — data key B, low half.
    ApdbKeyLo,
    /// `APDBKeyHi_EL1` — data key B, high half.
    ApdbKeyHi,
    /// `APGAKeyLo_EL1` — generic key, low half.
    ApgaKeyLo,
    /// `APGAKeyHi_EL1` — generic key, high half.
    ApgaKeyHi,
}

impl SysReg {
    /// All system registers, in encoding order.
    pub const ALL: [SysReg; 16] = [
        SysReg::CntpctEl0,
        SysReg::CntfrqEl0,
        SysReg::Pmc0,
        SysReg::Pmc1,
        SysReg::Pmcr0,
        SysReg::CurrentEl,
        SysReg::ApiaKeyLo,
        SysReg::ApiaKeyHi,
        SysReg::ApibKeyLo,
        SysReg::ApibKeyHi,
        SysReg::ApdaKeyLo,
        SysReg::ApdaKeyHi,
        SysReg::ApdbKeyLo,
        SysReg::ApdbKeyHi,
        SysReg::ApgaKeyLo,
        SysReg::ApgaKeyHi,
    ];

    /// Encoding index.
    pub fn index(self) -> u8 {
        Self::ALL.iter().position(|&r| r == self).expect("SysReg listed in ALL") as u8
    }

    /// Decodes from an encoding index.
    pub fn from_index(index: u8) -> Option<SysReg> {
        Self::ALL.get(usize::from(index)).copied()
    }

    /// Whether an `MRS` read of this register is permitted at EL0 given the
    /// EL0-enable state of `PMCR0` (paper §6.1: `PMC0`/`PMC1` are
    /// kernel-only until a kext flips the control bit; key registers are
    /// never EL0-readable).
    pub fn el0_readable(self, pmcr0_el0_enabled: bool) -> bool {
        match self {
            SysReg::CntpctEl0 | SysReg::CntfrqEl0 | SysReg::CurrentEl => true,
            SysReg::Pmc0 | SysReg::Pmc1 => pmcr0_el0_enabled,
            _ => false,
        }
    }

    /// Whether an `MSR` write of this register is permitted at EL0.
    /// Nothing modelled here is EL0-writable.
    pub fn el0_writable(self) -> bool {
        false
    }
}

impl fmt::Display for SysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SysReg::CntpctEl0 => "cntpct_el0",
            SysReg::CntfrqEl0 => "cntfrq_el0",
            SysReg::Pmc0 => "pmc0",
            SysReg::Pmc1 => "pmc1",
            SysReg::Pmcr0 => "pmcr0",
            SysReg::CurrentEl => "currentel",
            SysReg::ApiaKeyLo => "apiakeylo_el1",
            SysReg::ApiaKeyHi => "apiakeyhi_el1",
            SysReg::ApibKeyLo => "apibkeylo_el1",
            SysReg::ApibKeyHi => "apibkeyhi_el1",
            SysReg::ApdaKeyLo => "apdakeylo_el1",
            SysReg::ApdaKeyHi => "apdakeyhi_el1",
            SysReg::ApdbKeyLo => "apdbkeylo_el1",
            SysReg::ApdbKeyHi => "apdbkeyhi_el1",
            SysReg::ApgaKeyLo => "apgakeylo_el1",
            SysReg::ApgaKeyHi => "apgakeyhi_el1",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrips_through_index() {
        for i in 0..Reg::COUNT as u8 {
            let r = Reg::from_index(i).unwrap();
            assert_eq!(r.index(), i);
        }
        assert!(Reg::from_index(Reg::COUNT as u8).is_none());
    }

    #[test]
    fn named_registers_match_indices() {
        assert_eq!(Reg::X0.index(), 0);
        assert_eq!(Reg::X30, Reg::LR);
        assert_eq!(Reg::SP.index(), 31);
        assert!(Reg::XZR.is_zero());
        assert!(!Reg::X5.is_zero());
    }

    #[test]
    #[should_panic(expected = "X registers")]
    fn x31_is_rejected() {
        let _ = Reg::x(31);
    }

    #[test]
    fn reg_display_names() {
        assert_eq!(Reg::X3.to_string(), "x3");
        assert_eq!(Reg::LR.to_string(), "lr");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::XZR.to_string(), "xzr");
    }

    #[test]
    fn cond_roundtrips_and_evaluates() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_index(c.index()), Some(c));
        }
        assert!(Cond::Eq.holds(3, 3));
        assert!(Cond::Ne.holds(3, 4));
        assert!(Cond::Lt.holds(-1, 0));
        assert!(Cond::Le.holds(0, 0));
        assert!(Cond::Gt.holds(5, -5));
        assert!(Cond::Ge.holds(5, 5));
        assert!(!Cond::Lt.holds(0, -1));
    }

    #[test]
    fn sysreg_roundtrips_through_index() {
        for r in SysReg::ALL {
            assert_eq!(SysReg::from_index(r.index()), Some(r));
        }
        assert!(SysReg::from_index(16).is_none());
    }

    #[test]
    fn pmc0_gating_matches_paper_section_6_1() {
        assert!(!SysReg::Pmc0.el0_readable(false), "PMC0 must be kernel-only by default");
        assert!(SysReg::Pmc0.el0_readable(true), "kext-enabled PMC0 must be EL0-readable");
        assert!(SysReg::CntpctEl0.el0_readable(false), "CNTPCT_EL0 is always EL0-readable");
    }

    #[test]
    fn key_registers_are_never_el0_accessible() {
        for r in [SysReg::ApiaKeyLo, SysReg::ApiaKeyHi, SysReg::ApgaKeyHi] {
            assert!(!r.el0_readable(true));
            assert!(!r.el0_writable());
        }
    }
}
