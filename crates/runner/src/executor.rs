//! Persistent work-stealing executor for sharded campaigns.
//!
//! The scoped pool in the crate root spawns a fresh `std::thread::scope`
//! of OS threads for *every* campaign and holds all results behind an
//! end-of-run barrier. That is fine for one long experiment, but the
//! workloads the ROADMAP points at (`pacmand`, thousands of small
//! campaigns) pay the spawn cost over and over. This module keeps a
//! process-lifetime pool of workers instead:
//!
//! - **Whole shards are the steal units.** Each worker owns a deque of
//!   pending shard tasks; an idle worker first drains its own deque,
//!   then refills a chunk from the shared campaign injector, then
//!   steals half of a sibling's deque. Scheduling only decides *where*
//!   a shard runs — the shard plan and its [`mix64`](crate::mix64)
//!   seeds are fixed at submission, so jobs=1 and jobs=N stay
//!   bit-identical by construction.
//! - **Batched submission.** [`Executor::submit`] enqueues a campaign
//!   and returns a [`CampaignHandle`] immediately; many campaigns can
//!   be in flight at once. The injector hands out chunks round-robin
//!   across campaigns (fair share), each campaign's in-flight shard
//!   count is capped by its `jobs` argument, and submission blocks once
//!   the injector holds `max_pending` undispatched campaigns
//!   (backpressure).
//! - **Streaming results.** Every finished shard is sent to the
//!   handle's channel as a [`ShardEvent`] the moment it completes.
//!   [`CampaignHandle::ordered`] reassembles shard order incrementally
//!   so consumers can merge results while later shards still run;
//!   [`CampaignHandle::wait`] reproduces the scoped pool's
//!   end-of-run [`ShardedOutcome`] shape.
//! - **Identical fault-tolerance semantics.** Shard attempts run the
//!   same `catch_unwind` + [`RetryPolicy`] loop as the scoped pool
//!   (shared code, shared trace spans). On a permanent failure the
//!   campaign's cancel flag is raised *before* the failure event is
//!   sent, so once a consumer observes the failure no later-starting
//!   task of that campaign runs workload code — it reports itself
//!   cancelled, mirroring the scoped pool's queue drain.
//!
//! Wakeup correctness: every event that makes work runnable (a
//! submission, tasks pushed into a deque, a completed task freeing
//! campaign capacity) bumps the scheduler epoch *after* the work is
//! visible and then notifies. Workers sample the epoch before scanning
//! and only sleep if it is unchanged, so a wakeup between scan and
//! sleep is never lost.

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

use pacman_telemetry::json::Value;
use pacman_telemetry::trace;

use crate::{
    default_jobs, lock, run_attempts, RetryPolicy, RunnerError, Shard, ShardError, ShardedOutcome,
};

/// Environment variable selecting the default runner backend
/// (`executor` or `scoped`).
pub const RUNNER_ENV: &str = "PACMAN_RUNNER";

/// A queued shard execution: called with the executing worker's id.
type Task = Box<dyn FnOnce(u64) + Send>;

/// One campaign's undispatched tail in the injector.
struct CampaignQueue {
    tasks: VecDeque<Task>,
    /// Per-campaign in-flight cap (the campaign's `jobs` argument).
    limit: usize,
    /// Shards currently dispatched to workers but not yet finished.
    in_flight: Arc<AtomicUsize>,
}

/// Injector state: campaigns with undispatched shards, round-robin
/// order, plus the wakeup epoch.
struct Sched {
    queue: VecDeque<CampaignQueue>,
    /// Bumped (after the work is visible) by every runnable-work event.
    epoch: u64,
    /// Next backpressure ticket to hand out (see [`Executor::submit`]).
    submit_next: u64,
    /// Lowest ticket allowed to enqueue. Blocked submitters resume
    /// strictly in ticket order, so backpressure is FIFO — a session
    /// that submitted first is admitted first, regardless of condvar
    /// wakeup order.
    submit_serving: u64,
}

struct Shared {
    sched: Mutex<Sched>,
    work_ready: Condvar,
    space_ready: Condvar,
    /// Per-worker task deques: owners pop the front, thieves take the
    /// back half.
    deques: Vec<Mutex<VecDeque<Task>>>,
    shutdown: AtomicBool,
    /// Undispatched-campaign cap before [`Executor::submit`] blocks.
    max_pending: usize,
}

/// Per-campaign coordination shared by all its tasks.
struct CampaignCore {
    /// Raised before the permanent-failure event is sent; tasks that
    /// start afterwards skip the workload and report cancelled.
    cancelled: AtomicBool,
    /// Attempts beyond the first, shared with the handle for live
    /// reads.
    retries: Arc<AtomicU64>,
    in_flight: Arc<AtomicUsize>,
    /// Tasks that have not finished yet; the one that drops this to
    /// zero emits the campaign's `shards.run` span.
    remaining: AtomicUsize,
    submitted_us: u64,
    total: usize,
    limit: usize,
    max_attempts: u32,
}

/// One shard's terminal result, streamed to the consumer the moment
/// the shard finishes.
pub struct ShardEvent<T> {
    /// The shard's index in the plan.
    pub shard: usize,
    /// The shard's result (cancellations included, like the scoped
    /// pool's outcome vector).
    pub result: Result<T, ShardError>,
}

/// A submitted campaign: a streaming receiver plus live retry counter.
///
/// Dropping the handle detaches the campaign — its shards still run
/// (and are sent into a closed channel), they are just unobserved.
pub struct CampaignHandle<T> {
    rx: Receiver<ShardEvent<T>>,
    retries: Arc<AtomicU64>,
    total: usize,
}

impl<T> CampaignHandle<T> {
    /// Number of shards in the campaign.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Attempts beyond the first so far (monotonic while running;
    /// final once every shard has reported).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Blocks for the next completion event, in completion order.
    /// `None` once every shard has reported.
    pub fn next_event(&self) -> Option<ShardEvent<T>> {
        self.rx.recv().ok()
    }

    /// Streams results reassembled into **shard order**: each item is
    /// `(shard_index, result)` and consumers can merge incrementally
    /// while later shards still run.
    #[must_use]
    pub fn ordered(self) -> OrderedEvents<T> {
        self.ordered_from(0)
    }

    /// [`CampaignHandle::ordered`] resuming at shard `next`: shards
    /// below it were already merged by a previous incarnation of the
    /// consumer (e.g. before a daemon checkpoint), so their completions
    /// are discarded instead of buffered or re-emitted. The stream
    /// yields each of `next..total` exactly once, in order, regardless
    /// of how out-of-order the underlying completions arrive.
    #[must_use]
    pub fn ordered_from(self, next: usize) -> OrderedEvents<T> {
        OrderedEvents { handle: self, buffer: BTreeMap::new(), next }
    }

    /// Blocks until every shard reports and returns the scoped pool's
    /// end-of-run shape: results in shard order plus the retry total.
    ///
    /// # Errors
    ///
    /// [`RunnerError::MissingResult`] if a shard never reported (a
    /// scheduling bug or an executor shut down mid-campaign).
    pub fn wait(self) -> Result<ShardedOutcome<T>, RunnerError> {
        let total = self.total;
        let retries = Arc::clone(&self.retries);
        let mut slots: Vec<Option<Result<T, ShardError>>> = (0..total).map(|_| None).collect();
        while let Some(ev) = self.next_event() {
            if let Some(slot) = slots.get_mut(ev.shard) {
                *slot = Some(ev.result);
            }
        }
        let mut results = Vec::with_capacity(total);
        for (i, slot) in slots.into_iter().enumerate() {
            results.push(slot.ok_or(RunnerError::MissingResult { shard: i })?);
        }
        // The channel closed, so every task finished: the counter is
        // final.
        Ok(ShardedOutcome { results, retries: retries.load(Ordering::Relaxed) })
    }
}

/// Iterator over a campaign's results in shard order (see
/// [`CampaignHandle::ordered`]). Out-of-order completions are buffered
/// until the next in-order shard arrives.
pub struct OrderedEvents<T> {
    handle: CampaignHandle<T>,
    buffer: BTreeMap<usize, Result<T, ShardError>>,
    next: usize,
}

impl<T> OrderedEvents<T> {
    /// Attempts beyond the first so far (final once the stream ends).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.handle.retries()
    }

    /// The next shard index the stream will yield — the checkpoint
    /// watermark a resumable consumer persists. Feeding it back into
    /// [`CampaignHandle::ordered_from`] continues the merge without
    /// emitting any shard twice.
    #[must_use]
    pub fn next_index(&self) -> usize {
        self.next
    }

    /// After the stream ends: the first shard index that never
    /// reported, if any. A complete campaign returns `None`.
    #[must_use]
    pub fn missing(&self) -> Option<usize> {
        (self.next < self.handle.total).then_some(self.next)
    }
}

impl<T> Iterator for OrderedEvents<T> {
    type Item = (usize, Result<T, ShardError>);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(r) = self.buffer.remove(&self.next) {
                self.next += 1;
                return Some((self.next - 1, r));
            }
            let ev = self.handle.next_event()?;
            // Completions below the resume point were merged by a
            // previous incarnation of the consumer: drop, don't buffer.
            if ev.shard >= self.next {
                self.buffer.insert(ev.shard, ev.result);
            }
        }
    }
}

/// A process-lifetime pool of work-stealing workers executing sharded
/// campaigns (see the module docs for the scheduling model).
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Spawns a pool of `workers` threads (clamped to >= 1) with the
    /// default submission queue depth.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self::with_queue(workers, 0)
    }

    /// Spawns a pool with an explicit `max_pending` undispatched-
    /// campaign cap (`0` selects the default, `max(workers * 4, 8)`).
    #[must_use]
    pub fn with_queue(workers: usize, max_pending: usize) -> Self {
        let workers = workers.max(1);
        let max_pending = if max_pending == 0 { (workers * 4).max(8) } else { max_pending };
        let shared = Arc::new(Shared {
            sched: Mutex::new(Sched {
                queue: VecDeque::new(),
                epoch: 0,
                submit_next: 0,
                submit_serving: 0,
            }),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            shutdown: AtomicBool::new(false),
            max_pending,
        });
        let workers = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pacman-exec-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn executor worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// The process-wide executor, created on first use with
    /// [`default_jobs`] workers. Campaign parallelism is governed by
    /// each submission's `jobs` cap, not the pool size, so a shared
    /// pool never changes results.
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| Executor::new(default_jobs()))
    }

    /// Worker-thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shared.deques.len()
    }

    /// Enqueues a campaign and returns its streaming handle
    /// immediately. `jobs` caps the campaign's concurrently running
    /// shards (`<= 1` serialises it — the executor's jobs=1 mode);
    /// `policy` is the same per-shard retry budget the scoped pool
    /// takes. Blocks only when `max_pending` campaigns are already
    /// waiting for dispatch (backpressure).
    pub fn submit<T, E, F>(
        &self,
        shards: Vec<Shard>,
        jobs: usize,
        policy: RetryPolicy,
        work: F,
    ) -> CampaignHandle<T>
    where
        T: Send + 'static,
        E: fmt::Display,
        F: Fn(&Shard, u32) -> Result<T, E> + Send + Sync + 'static,
    {
        let total = shards.len();
        let (tx, rx) = channel();
        let retries = Arc::new(AtomicU64::new(0));
        let rec = trace::recorder();
        let submitted_us = rec.now_us();
        let limit = jobs.max(1).min(total.max(1));
        if total == 0 {
            // Nothing to schedule; mirror the scoped pool's span.
            rec.complete(
                "shards.run",
                "runner",
                0,
                None,
                submitted_us,
                vec![
                    ("shards".into(), Value::UInt(0)),
                    ("jobs".into(), Value::UInt(limit as u64)),
                    ("retries".into(), Value::UInt(0)),
                ],
            );
            drop(tx);
            return CampaignHandle { rx, retries, total };
        }
        let in_flight = Arc::new(AtomicUsize::new(0));
        let core = Arc::new(CampaignCore {
            cancelled: AtomicBool::new(false),
            retries: Arc::clone(&retries),
            in_flight: Arc::clone(&in_flight),
            remaining: AtomicUsize::new(total),
            submitted_us,
            total,
            limit,
            max_attempts: policy.max_attempts.max(1),
        });
        let work = Arc::new(work);
        let mut tasks: VecDeque<Task> = VecDeque::with_capacity(total);
        for shard in shards {
            let core = Arc::clone(&core);
            let work = Arc::clone(&work);
            let tx = tx.clone();
            tasks.push_back(Box::new(move |tid| {
                run_campaign_task(&core, shard, tid, &tx, work.as_ref());
            }));
        }
        drop(tx);
        let mut g = lock(&self.shared.sched);
        // Backpressure is ticketed: every submission takes the next
        // ticket under the lock (so tickets are issued in arrival
        // order) and may enqueue only when it is the lowest waiting
        // ticket AND the queue has space. `notify_all` wakes every
        // blocked submitter, but all except the ticket holder go
        // straight back to sleep — blocked submits therefore resume in
        // strict FIFO order, which the daemon's per-session fairness
        // depends on.
        let ticket = g.submit_next;
        g.submit_next += 1;
        while g.submit_serving != ticket || g.queue.len() >= self.shared.max_pending {
            if self.shared.shutdown.load(Ordering::Acquire) {
                // Shutting down: drop the tasks so the handle's channel
                // closes and `wait` reports MissingResult instead of
                // hanging. Every other waiter exits the same way, so
                // the unserved ticket stalls nobody.
                return CampaignHandle { rx, retries, total };
            }
            g = self.shared.space_ready.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        g.submit_serving += 1;
        g.queue.push_back(CampaignQueue { tasks, limit, in_flight });
        g.epoch += 1;
        drop(g);
        // The next ticket holder may find space immediately (the queue
        // cap can exceed one): let it re-check rather than wait for the
        // next campaign retirement.
        self.shared.space_ready.notify_all();
        self.shared.work_ready.notify_all();
        CampaignHandle { rx, retries, total }
    }

    /// Campaigns currently queued in the injector with undispatched
    /// shards (admission-control visibility for services layered on the
    /// executor; the daemon reports it in status records).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.sched).queue.len()
    }

    /// The undispatched-campaign cap beyond which [`Executor::submit`]
    /// blocks.
    #[must_use]
    pub fn max_pending(&self) -> usize {
        self.shared.max_pending
    }

    /// Backpressure ticket counters `(issued, admitted)`: submissions
    /// that took a ticket, and tickets already served. `issued -
    /// admitted` is the number of submitters currently blocked. Test
    /// and introspection hook.
    #[doc(hidden)]
    #[must_use]
    pub fn submit_tickets(&self) -> (u64, u64) {
        let g = lock(&self.shared.sched);
        (g.submit_next, g.submit_serving)
    }

    /// Submit-and-wait: the drop-in equivalent of
    /// [`run_shards_tolerant`](crate::run_shards_tolerant) on this
    /// executor.
    ///
    /// # Errors
    ///
    /// Same contract as [`CampaignHandle::wait`].
    pub fn run_tolerant<T, E, F>(
        &self,
        shards: &[Shard],
        jobs: usize,
        policy: RetryPolicy,
        work: F,
    ) -> Result<ShardedOutcome<T>, RunnerError>
    where
        T: Send + 'static,
        E: fmt::Display,
        F: Fn(&Shard, u32) -> Result<T, E> + Send + Sync + 'static,
    {
        self.submit(shards.to_vec(), jobs, policy, work).wait()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        lock(&self.shared.sched).epoch += 1;
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One shard task: cancellation check, queue-wait span, the shared
/// retry loop, streaming send, and campaign bookkeeping.
fn run_campaign_task<T, E, F>(
    core: &CampaignCore,
    shard: Shard,
    tid: u64,
    tx: &Sender<ShardEvent<T>>,
    work: &F,
) where
    E: fmt::Display,
    F: Fn(&Shard, u32) -> Result<T, E>,
{
    let rec = trace::recorder();
    let result = if core.cancelled.load(Ordering::Acquire) {
        rec.instant("shard.cancelled", "runner", tid, Some(shard.index as u64), Vec::new());
        Err(ShardError::cancelled(shard.index))
    } else {
        rec.complete(
            "shard.queue_wait",
            "runner",
            tid,
            Some(shard.index as u64),
            core.submitted_us,
            Vec::new(),
        );
        let r = run_attempts(&shard, tid, core.max_attempts, &core.retries, work);
        if r.is_err() {
            // Raise the flag BEFORE sending the failure event: a
            // consumer that has observed the permanent failure knows no
            // later-starting task runs workload code.
            core.cancelled.store(true, Ordering::Release);
        }
        r
    };
    let _ = tx.send(ShardEvent { shard: shard.index, result });
    if core.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        rec.complete(
            "shards.run",
            "runner",
            tid,
            None,
            core.submitted_us,
            vec![
                ("shards".into(), Value::UInt(core.total as u64)),
                ("jobs".into(), Value::UInt(core.limit as u64)),
                ("retries".into(), Value::UInt(core.retries.load(Ordering::Relaxed))),
            ],
        );
    }
    core.in_flight.fetch_sub(1, Ordering::AcqRel);
}

/// Executes one task with a last-line-of-defense panic bracket (task
/// bodies contain their own `catch_unwind`; this keeps a defect in the
/// wrapper itself from killing the worker), then signals the capacity
/// freed by its completion.
fn run_task(shared: &Shared, task: Task, me: usize) {
    let _ = catch_unwind(AssertUnwindSafe(|| task(me as u64)));
    lock(&shared.sched).epoch += 1;
    shared.work_ready.notify_all();
}

/// Pulls a chunk from the round-robin injector: the first campaign
/// with both undispatched shards and in-flight headroom donates
/// `min(ceil(remaining / workers), headroom)` tasks. The first runs
/// immediately, the rest land in our deque for siblings to steal.
fn refill(shared: &Shared, me: usize) -> bool {
    let mut taken: VecDeque<Task> = VecDeque::new();
    {
        let mut g = lock(&shared.sched);
        for _ in 0..g.queue.len() {
            let Some(mut c) = g.queue.pop_front() else { break };
            let headroom = c.limit.saturating_sub(c.in_flight.load(Ordering::Acquire));
            if headroom == 0 {
                g.queue.push_back(c);
                continue;
            }
            let remaining = c.tasks.len();
            let chunk = remaining.div_ceil(shared.deques.len()).clamp(1, headroom.min(remaining));
            c.in_flight.fetch_add(chunk, Ordering::AcqRel);
            taken.extend(c.tasks.drain(..chunk));
            if c.tasks.is_empty() {
                // Fully dispatched: retire the campaign from the
                // injector and open a submission slot.
                shared.space_ready.notify_all();
            } else {
                g.queue.push_back(c);
            }
            break;
        }
    }
    let Some(first) = taken.pop_front() else { return false };
    if !taken.is_empty() {
        lock(&shared.deques[me]).append(&mut taken);
        // Stealable work became visible: bump-then-notify.
        lock(&shared.sched).epoch += 1;
        shared.work_ready.notify_all();
    }
    run_task(shared, first, me);
    true
}

/// Steals the back half of the first non-empty sibling deque,
/// preserving the stolen segment's relative order.
fn steal(shared: &Shared, me: usize) -> bool {
    let n = shared.deques.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        let mut stolen: VecDeque<Task> = VecDeque::new();
        {
            let mut dq = lock(&shared.deques[victim]);
            for _ in 0..dq.len().div_ceil(2) {
                if let Some(task) = dq.pop_back() {
                    stolen.push_front(task);
                }
            }
        }
        let Some(first) = stolen.pop_front() else { continue };
        if !stolen.is_empty() {
            lock(&shared.deques[me]).append(&mut stolen);
            lock(&shared.sched).epoch += 1;
            shared.work_ready.notify_all();
        }
        run_task(shared, first, me);
        return true;
    }
    false
}

/// Worker main loop: local deque, then injector refill, then stealing,
/// then an epoch-guarded sleep.
fn worker_loop(shared: &Shared, me: usize) {
    loop {
        let epoch = lock(&shared.sched).epoch;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let local = lock(&shared.deques[me]).pop_front();
        if let Some(task) = local {
            run_task(shared, task, me);
            continue;
        }
        if refill(shared, me) || steal(shared, me) {
            continue;
        }
        let g = lock(&shared.sched);
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if g.epoch == epoch {
            // No runnable-work event since the scan started; any such
            // event bumps the epoch after making work visible and then
            // notifies, so this wait cannot miss one.
            drop(shared.work_ready.wait(g).unwrap_or_else(PoisonError::into_inner));
        }
    }
}

// ---------------------------------------------------------------------
// Backend selection

/// Which execution engine sharded drivers route through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunnerBackend {
    /// The persistent work-stealing pool ([`Executor::global`]) — the
    /// default.
    Executor,
    /// The per-run scoped thread pool
    /// ([`run_shards_tolerant`](crate::run_shards_tolerant)) — the
    /// retained baseline.
    ScopedPool,
}

/// Process-wide backend override (the CLI's `--runner`).
static FORCED_BACKEND: Mutex<Option<RunnerBackend>> = Mutex::new(None);

thread_local! {
    /// Thread-scoped backend override (see [`with_backend`]).
    static TL_BACKEND: Cell<Option<RunnerBackend>> = const { Cell::new(None) };
}

impl RunnerBackend {
    /// Parses a backend name (`executor` / `scoped`, aliases
    /// included).
    #[must_use]
    pub fn parse(raw: &str) -> Option<Self> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "executor" | "persistent" => Some(Self::Executor),
            "scoped" | "scoped-pool" | "baseline" => Some(Self::ScopedPool),
            _ => None,
        }
    }

    /// The `PACMAN_RUNNER` resolution, memoized for the process. An
    /// unrecognised value warns once and falls back to the executor.
    fn from_env() -> Self {
        static ENV_BACKEND: OnceLock<RunnerBackend> = OnceLock::new();
        *ENV_BACKEND.get_or_init(|| match std::env::var(RUNNER_ENV) {
            Ok(v) => RunnerBackend::parse(&v).unwrap_or_else(|| {
                eprintln!(
                    "warning: {RUNNER_ENV}='{v}' is not 'executor' or 'scoped'; \
                     using the executor"
                );
                RunnerBackend::Executor
            }),
            Err(_) => RunnerBackend::Executor,
        })
    }

    /// The backend the calling thread should use right now:
    /// [`with_backend`] scope, else [`force_backend`] override, else
    /// `PACMAN_RUNNER`, else the executor.
    #[must_use]
    pub fn current() -> Self {
        if let Some(b) = TL_BACKEND.with(Cell::get) {
            return b;
        }
        if let Some(b) = *lock(&FORCED_BACKEND) {
            return b;
        }
        Self::from_env()
    }
}

/// Sets (or with `None` clears) the process-wide backend override. It
/// takes precedence over `PACMAN_RUNNER` but not over a
/// [`with_backend`] scope.
pub fn force_backend(backend: Option<RunnerBackend>) {
    *lock(&FORCED_BACKEND) = backend;
}

/// Runs `f` with the calling thread's backend pinned to `backend`,
/// restored on exit (panic included) — the A/B lever for parity tests
/// and benches.
pub fn with_backend<R>(backend: RunnerBackend, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<RunnerBackend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_BACKEND.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(TL_BACKEND.with(|c| c.replace(Some(backend))));
    f()
}

/// Runs a campaign on the backend selected by
/// [`RunnerBackend::current`] — the single entry point sharded drivers
/// route through.
///
/// # Errors
///
/// [`RunnerError`] for engine-level failures; workload failures come
/// back as `Err(ShardError)` entries in the outcome (same contract as
/// [`run_shards_tolerant`](crate::run_shards_tolerant)).
pub fn run_backend_tolerant<T, E, F>(
    shards: &[Shard],
    jobs: usize,
    policy: RetryPolicy,
    work: F,
) -> Result<ShardedOutcome<T>, RunnerError>
where
    T: Send + 'static,
    E: fmt::Display,
    F: Fn(&Shard, u32) -> Result<T, E> + Send + Sync + 'static,
{
    match RunnerBackend::current() {
        RunnerBackend::Executor => Executor::global().run_tolerant(shards, jobs, policy, work),
        RunnerBackend::ScopedPool => crate::run_shards_tolerant(shards, jobs, policy, work),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_shards_tolerant, shard_plan, DEFAULT_SHARDS};
    use std::sync::atomic::AtomicU32;

    #[test]
    fn executor_matches_the_scoped_pool_in_shard_order() {
        let exec = Executor::new(4);
        let plan = shard_plan(1000, DEFAULT_SHARDS, 42);
        let work = |s: &Shard, _: u32| -> Result<(usize, u64, usize), std::convert::Infallible> {
            Ok((s.index, s.seed, s.range().sum()))
        };
        let baseline =
            run_shards_tolerant(&plan, 4, RetryPolicy::default(), work).expect("scoped ok").results;
        let out = exec.run_tolerant(&plan, 4, RetryPolicy::default(), work).expect("executor ok");
        assert_eq!(out.retries, 0);
        assert_eq!(out.results, baseline);
    }

    #[test]
    fn jobs_one_and_jobs_n_are_bit_identical() {
        let exec = Executor::new(4);
        let plan = shard_plan(333, DEFAULT_SHARDS, 7);
        let work = |s: &Shard, _: u32| -> Result<u64, std::convert::Infallible> {
            Ok(s.seed ^ s.start as u64)
        };
        let one = exec.run_tolerant(&plan, 1, RetryPolicy::default(), work).expect("jobs=1");
        let many = exec.run_tolerant(&plan, 4, RetryPolicy::default(), work).expect("jobs=4");
        assert_eq!(one.results, many.results);
    }

    #[test]
    fn the_jobs_cap_limits_in_flight_shards() {
        let exec = Executor::new(4);
        let plan = shard_plan(16, 16, 3);
        let running = Arc::new(AtomicU32::new(0));
        let peak = Arc::new(AtomicU32::new(0));
        let out = {
            let (running, peak) = (Arc::clone(&running), Arc::clone(&peak));
            exec.run_tolerant::<u64, std::convert::Infallible, _>(
                &plan,
                1,
                RetryPolicy::default(),
                move |s, _| {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    running.fetch_sub(1, Ordering::SeqCst);
                    Ok(s.seed)
                },
            )
            .expect("executor ok")
        };
        assert_eq!(out.completed(), 16);
        assert_eq!(peak.load(Ordering::SeqCst), 1, "jobs=1 must serialise the campaign");
    }

    #[test]
    fn retries_recover_transient_panics() {
        let exec = Executor::new(2);
        let plan = shard_plan(8, 8, 11);
        let out = exec
            .run_tolerant::<u64, std::convert::Infallible, _>(
                &plan,
                2,
                RetryPolicy::default(),
                |s, attempt| {
                    if (s.index == 2 || s.index == 5) && attempt < 2 {
                        panic!("injected transient failure");
                    }
                    Ok(s.seed)
                },
            )
            .expect("executor ok");
        assert_eq!(out.retries, 4, "two shards x two failed attempts");
        assert_eq!(out.completed(), 8);
        for (s, r) in plan.iter().zip(&out.results) {
            assert_eq!(*r.as_ref().expect("recovered"), s.seed);
        }
    }

    #[test]
    fn cancellation_after_an_observed_failure_is_deterministic() {
        // jobs=2 on 8 shards: only shards 0 and 1 can be dispatched
        // before shard 0's permanent failure. The cancel flag is raised
        // BEFORE the failure event is sent, and the gate below releases
        // shard 1 only after the consumer has received that event — so
        // shards 2..7 are always cancelled without running workload
        // code, and the work closure runs at most twice.
        let exec = Executor::new(2);
        let plan = shard_plan(8, 8, 9);
        let work_runs = Arc::new(AtomicU32::new(0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let handle = {
            let (work_runs, gate) = (Arc::clone(&work_runs), Arc::clone(&gate));
            exec.submit::<u64, _, _>(plan, 2, RetryPolicy::no_retries(), move |s, _| {
                work_runs.fetch_add(1, Ordering::SeqCst);
                if s.index == 0 {
                    return Err("permanent failure on shard 0");
                }
                let (open, cv) = &*gate;
                let mut g = lock(open);
                while !*g {
                    g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
                Ok(s.seed)
            })
        };
        let mut results: BTreeMap<usize, Result<u64, ShardError>> = BTreeMap::new();
        while let Some(ev) = handle.next_event() {
            let failed_zero = ev.shard == 0;
            results.insert(ev.shard, ev.result);
            if failed_zero {
                // The shard-0 failure has been observed: release the
                // gate (shard 1 may be blocked on it, or may already
                // have been cancelled — both are fine).
                let (open, cv) = &*gate;
                *lock(open) = true;
                cv.notify_all();
            }
        }
        assert_eq!(results.len(), 8, "every shard reports");
        let zero = results[&0].as_ref().expect_err("shard 0 fails");
        assert!(!zero.cancelled);
        assert_eq!(zero.attempts, 1);
        for i in 2..8 {
            let e = results[&i].as_ref().expect_err("post-failure shards cancel");
            assert!(e.cancelled, "shard {i} must be cancelled, got {e}");
        }
        match &results[&1] {
            Ok(v) => assert_eq!(*v, crate::mix64(9, 1), "shard 1 ran to completion"),
            Err(e) => assert!(e.cancelled, "shard 1 may only fail by cancellation"),
        }
        let runs = work_runs.load(Ordering::SeqCst);
        assert!((1..=2).contains(&runs), "at most shards 0 and 1 run workload code: {runs}");
    }

    #[test]
    fn ordered_from_resumes_without_duplicating_or_skipping_shards() {
        // Simulates a daemon restart mid-campaign: the first consumer
        // merged shards 0..3 and checkpointed `next_index() == 3`; the
        // resumed consumer re-submits the campaign and continues from
        // there. Shards complete wildly out of order (workers race),
        // yet the resumed stream must yield exactly 3..16, in order.
        let exec = Executor::new(4);
        let work = |s: &Shard, _: u32| -> Result<u64, std::convert::Infallible> {
            // Uneven spinning scrambles completion order across runs.
            for _ in 0..(s.index % 5) * 50 {
                std::hint::spin_loop();
            }
            Ok(s.seed.wrapping_mul(7))
        };
        let plan = shard_plan(640, 16, 77);

        // First incarnation: merge three shards, note the watermark.
        let mut first =
            exec.submit::<u64, _, _>(plan.clone(), 4, RetryPolicy::default(), work).ordered();
        let mut merged: Vec<(usize, u64)> = Vec::new();
        for _ in 0..3 {
            let (i, r) = first.next().expect("shard available");
            merged.push((i, r.expect("ok")));
        }
        let watermark = first.next_index();
        assert_eq!(watermark, 3);
        drop(first); // the "crash": remaining completions unobserved

        // Second incarnation resumes at the watermark.
        let resumed = exec
            .submit::<u64, _, _>(plan.clone(), 4, RetryPolicy::default(), work)
            .ordered_from(watermark);
        for (i, r) in resumed {
            merged.push((i, r.expect("ok")));
        }

        let indices: Vec<usize> = merged.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, (0..16).collect::<Vec<_>>(), "no shard doubled or skipped");
        for ((_, got), s) in merged.iter().zip(plan.iter()) {
            assert_eq!(*got, s.seed.wrapping_mul(7), "shard payloads merge in plan order");
        }
    }

    #[test]
    fn ordered_from_discards_stale_completions_below_the_resume_point() {
        let exec = Executor::new(2);
        let plan = shard_plan(64, 8, 5);
        let work = |s: &Shard, _: u32| -> Result<usize, std::convert::Infallible> { Ok(s.index) };
        let mut stream =
            exec.submit::<usize, _, _>(plan, 2, RetryPolicy::default(), work).ordered_from(5);
        let yielded: Vec<usize> = stream
            .by_ref()
            .map(|(i, r)| {
                assert_eq!(r.expect("ok"), i);
                i
            })
            .collect();
        assert_eq!(yielded, vec![5, 6, 7], "shards 0..5 discarded, never re-emitted");
        assert_eq!(stream.missing(), None, "a complete resumed campaign reports nothing missing");
    }

    #[test]
    fn concurrent_campaigns_from_many_threads_stay_isolated() {
        let exec = Arc::new(Executor::new(3));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let exec = Arc::clone(&exec);
                std::thread::spawn(move || {
                    let plan = shard_plan(100, DEFAULT_SHARDS, t);
                    let out = exec
                        .run_tolerant::<u64, std::convert::Infallible, _>(
                            &plan,
                            2,
                            RetryPolicy::default(),
                            |s, _| Ok(s.seed.wrapping_mul(3)),
                        )
                        .expect("executor ok");
                    (t, out)
                })
            })
            .collect();
        for h in handles {
            let (t, out) = h.join().expect("campaign thread");
            assert_eq!(out.completed(), DEFAULT_SHARDS);
            for (s, r) in shard_plan(100, DEFAULT_SHARDS, t).iter().zip(&out.results) {
                assert_eq!(*r.as_ref().expect("ok"), s.seed.wrapping_mul(3));
            }
        }
    }

    #[test]
    fn backpressure_bounds_pending_campaigns_without_deadlock() {
        let exec = Executor::with_queue(1, 1);
        let plans: Vec<_> = (0..6u64).map(|i| shard_plan(16, 8, i)).collect();
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                // With max_pending=1 the later submits block until the
                // single worker drains earlier campaigns.
                exec.submit::<u64, std::convert::Infallible, _>(
                    plan.clone(),
                    2,
                    RetryPolicy::default(),
                    |s, _| Ok(s.seed),
                )
            })
            .collect();
        for (plan, handle) in plans.iter().zip(handles) {
            let out = handle.wait().expect("campaign completes");
            assert_eq!(out.completed(), plan.len());
        }
    }

    /// Blocks the single worker behind a gate so queued campaigns pile
    /// up. Returns the gate and the gated campaign's handle.
    #[allow(clippy::type_complexity)]
    fn gate_the_worker(exec: &Executor) -> (Arc<(Mutex<bool>, Condvar)>, CampaignHandle<u64>) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let handle = {
            let gate = Arc::clone(&gate);
            exec.submit::<u64, std::convert::Infallible, _>(
                shard_plan(1, 1, 0),
                1,
                RetryPolicy::no_retries(),
                move |s, _| {
                    let (open, cv) = &*gate;
                    let mut g = lock(open);
                    while !*g {
                        g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                    }
                    Ok(s.seed)
                },
            )
        };
        (gate, handle)
    }

    fn open_gate(gate: &(Mutex<bool>, Condvar)) {
        let (open, cv) = gate;
        *lock(open) = true;
        cv.notify_all();
    }

    /// Polls until `issued` backpressure tickets exist (i.e. the
    /// expected number of submitters have at least reached the ticket
    /// counter), so the test can order its submitter threads.
    fn await_tickets(exec: &Executor, issued: u64) {
        while exec.submit_tickets().0 < issued {
            std::thread::yield_now();
        }
    }

    #[test]
    fn blocked_submits_resume_in_fifo_order() {
        // One worker, queue cap 1: a gated campaign occupies the
        // worker, a filler campaign occupies the queue, then three
        // submitters block in a known order. When the gate opens the
        // single worker drains campaigns in admission order, so the
        // recorded execution order proves the blocked submits were
        // admitted FIFO — notify_all wakes all three at once, and only
        // the ticket order keeps them straight.
        let exec = Arc::new(Executor::with_queue(1, 1));
        let (gate, gated) = gate_the_worker(&exec);
        let order = Arc::new(Mutex::new(Vec::new()));
        let filler = {
            let order = Arc::clone(&order);
            exec.submit::<u64, std::convert::Infallible, _>(
                shard_plan(1, 1, 1),
                1,
                RetryPolicy::no_retries(),
                move |s, _| {
                    lock(&order).push("filler");
                    Ok(s.seed)
                },
            )
        };
        let (base, _) = exec.submit_tickets();
        let labels = ["first", "second", "third"];
        let mut submitters = Vec::new();
        for (i, &label) in labels.iter().enumerate() {
            let submit_on = Arc::clone(&exec);
            let order = Arc::clone(&order);
            submitters.push(std::thread::spawn(move || {
                submit_on
                    .submit::<u64, std::convert::Infallible, _>(
                        shard_plan(1, 1, 100 + i as u64),
                        1,
                        RetryPolicy::no_retries(),
                        move |s, _| {
                            lock(&order).push(label);
                            Ok(s.seed)
                        },
                    )
                    .wait()
                    .expect("queued campaign completes")
            }));
            // The next submitter may not take its ticket before this
            // one has: tickets are issued under the scheduler lock, so
            // waiting for the counter pins the arrival order.
            await_tickets(&exec, base + i as u64 + 1);
        }
        open_gate(&gate);
        gated.wait().expect("gated campaign completes");
        filler.wait().expect("filler campaign completes");
        for s in submitters {
            s.join().expect("submitter thread");
        }
        assert_eq!(
            *lock(&order),
            vec!["filler", "first", "second", "third"],
            "blocked submits must be admitted in submission order"
        );
    }

    #[test]
    fn zero_shard_campaigns_complete_while_the_queue_is_saturated() {
        // A waiting session is blocked behind a full queue; a
        // zero-shard campaign submitted meanwhile must complete
        // immediately — it takes no ticket and no queue slot, so it can
        // never deadlock against the backpressure the session is
        // waiting out.
        let exec = Arc::new(Executor::with_queue(1, 1));
        let (gate, gated) = gate_the_worker(&exec);
        let filler = exec.submit::<u64, std::convert::Infallible, _>(
            shard_plan(1, 1, 1),
            1,
            RetryPolicy::no_retries(),
            |s, _| Ok(s.seed),
        );
        let (base, _) = exec.submit_tickets();
        let blocked = {
            let exec = Arc::clone(&exec);
            std::thread::spawn(move || {
                exec.submit::<u64, std::convert::Infallible, _>(
                    shard_plan(1, 1, 2),
                    1,
                    RetryPolicy::no_retries(),
                    |s, _| Ok(s.seed),
                )
                .wait()
                .expect("blocked session completes after the drain")
            })
        };
        await_tickets(&exec, base + 1);
        let out = exec
            .submit::<u64, std::convert::Infallible, _>(
                Vec::new(),
                4,
                RetryPolicy::no_retries(),
                |s, _| Ok(s.seed),
            )
            .wait()
            .expect("zero-shard campaign returns despite the saturated queue");
        assert!(out.results.is_empty());
        assert_eq!(out.retries, 0);
        open_gate(&gate);
        gated.wait().expect("gated campaign completes");
        filler.wait().expect("filler campaign completes");
        blocked.join().expect("blocked submitter thread");
    }

    #[test]
    fn ordered_streaming_reassembles_shard_order() {
        let exec = Executor::new(4);
        let plan = shard_plan(64, DEFAULT_SHARDS, 5);
        let handle = exec.submit::<u64, std::convert::Infallible, _>(
            plan,
            4,
            RetryPolicy::default(),
            |s, _| Ok(s.seed),
        );
        let mut stream = handle.ordered();
        let mut seen = Vec::new();
        for (i, r) in stream.by_ref() {
            seen.push((i, r.expect("ok")));
        }
        assert_eq!(stream.missing(), None);
        assert_eq!(seen.len(), DEFAULT_SHARDS);
        for (pos, (i, seed)) in seen.iter().enumerate() {
            assert_eq!(*i, pos, "stream must be in shard order");
            assert_eq!(*seed, crate::mix64(5, pos as u64));
        }
    }

    #[test]
    fn empty_plans_complete_immediately() {
        let exec = Executor::new(2);
        let out = exec
            .run_tolerant::<u64, std::convert::Infallible, _>(
                &[],
                4,
                RetryPolicy::default(),
                |s, _| Ok(s.seed),
            )
            .expect("empty campaign");
        assert!(out.results.is_empty());
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn backend_parsing_and_thread_scoped_override() {
        assert_eq!(RunnerBackend::parse(" Executor "), Some(RunnerBackend::Executor));
        assert_eq!(RunnerBackend::parse("scoped"), Some(RunnerBackend::ScopedPool));
        assert_eq!(RunnerBackend::parse("scoped-pool"), Some(RunnerBackend::ScopedPool));
        assert_eq!(RunnerBackend::parse("bogus"), None);
        let inner = with_backend(RunnerBackend::ScopedPool, || {
            assert_eq!(RunnerBackend::current(), RunnerBackend::ScopedPool);
            with_backend(RunnerBackend::Executor, RunnerBackend::current)
        });
        assert_eq!(inner, RunnerBackend::Executor);
        // The thread-local override is scoped to this thread only.
        let other = std::thread::spawn(|| {
            with_backend(RunnerBackend::ScopedPool, || {
                std::thread::spawn(RunnerBackend::current).join().expect("inner thread")
            })
        })
        .join()
        .expect("outer thread");
        assert_ne!(other, RunnerBackend::ScopedPool, "override must not leak across threads");
    }

    #[test]
    fn run_backend_tolerant_dispatches_both_backends() {
        let plan = shard_plan(40, DEFAULT_SHARDS, 13);
        let work = |s: &Shard, _: u32| -> Result<u64, std::convert::Infallible> { Ok(s.seed) };
        let scoped = with_backend(RunnerBackend::ScopedPool, || {
            run_backend_tolerant(&plan, 2, RetryPolicy::default(), work).expect("scoped")
        });
        let exec = with_backend(RunnerBackend::Executor, || {
            run_backend_tolerant(&plan, 2, RetryPolicy::default(), work).expect("executor")
        });
        assert_eq!(scoped.results, exec.results);
    }

    #[test]
    fn dropping_the_executor_joins_its_workers() {
        let exec = Executor::new(3);
        let plan = shard_plan(24, 8, 1);
        let out = exec
            .run_tolerant::<u64, std::convert::Infallible, _>(
                &plan,
                4,
                RetryPolicy::default(),
                |s, _| Ok(s.seed),
            )
            .expect("campaign");
        assert_eq!(out.completed(), 8);
        drop(exec); // must not hang
    }
}
