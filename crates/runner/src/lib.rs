//! Scoped-thread trial-execution engine for the PACMAN reproduction.
//!
//! Every long-running experiment in the workspace — PAC brute-force
//! sweeps (§8.2), oracle accuracy trials (Fig 8), TLB set sweeps
//! (Fig 5), the gadget census (§4.3) — is a loop over *independent*
//! simulated trials. This crate shards such loops across OS threads
//! while keeping results bit-identical to the serial run:
//!
//! - [`shard_plan`] cuts `total` work items into a **fixed** number of
//!   contiguous shards ([`DEFAULT_SHARDS`] unless overridden), each with
//!   its own derived RNG seed (`base_seed ^ shard_index`). The plan
//!   depends only on the work size and base seed — never on the worker
//!   count — so jobs=1 and jobs=N execute the exact same shards.
//! - [`run_shards`] maps a closure over the shards on a hand-rolled
//!   [`std::thread::scope`] pool (no external dependencies; the crates
//!   registry is unreachable in this environment, see ROADMAP) and
//!   returns the results **in shard order**, regardless of which worker
//!   finished first.
//! - [`default_jobs`] resolves the worker count from `PACMAN_JOBS` or
//!   [`std::thread::available_parallelism`].
//!
//! Determinism contract: a driver gives each shard its own simulated
//! `Machine` seeded from [`Shard::seed`] and merges per-shard outputs in
//! shard order with order-insensitive operations (counter addition,
//! histogram merges, log concatenation). Under that contract the merged
//! aggregate is a pure function of `(total, base_seed)` and the worker
//! count only changes wall-clock time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Fixed shard count used by every parallelised experiment.
///
/// Deliberately independent of the worker count: the shard plan (and
/// therefore each shard's RNG stream and work range) must not change
/// when `--jobs` does, or jobs=1 and jobs=4 would disagree.
pub const DEFAULT_SHARDS: usize = 8;

/// Environment variable overriding the worker count.
pub const JOBS_ENV: &str = "PACMAN_JOBS";

/// One contiguous slice of a sharded workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Position of this shard in the plan (0-based).
    pub index: usize,
    /// Per-shard RNG seed: `base_seed ^ index`. Drivers feed this to the
    /// shard-local `Machine` so noise streams are decorrelated across
    /// shards yet reproducible for a given base seed.
    pub seed: u64,
    /// Global index of the first work item owned by this shard.
    pub start: usize,
    /// Number of work items owned by this shard.
    pub len: usize,
}

impl Shard {
    /// Global work-item indices owned by this shard.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

/// Cuts `total` work items into at most `shards` contiguous shards.
///
/// The first `total % shards` shards take one extra item, so sizes
/// differ by at most one and the ranges exactly tile `0..total`. Shards
/// that would own zero items are dropped (a tiny workload yields fewer
/// shards, with the same seeds as the full plan's leading shards).
pub fn shard_plan(total: usize, shards: usize, base_seed: u64) -> Vec<Shard> {
    let shards = shards.max(1);
    let base = total / shards;
    let rem = total % shards;
    let mut plan = Vec::with_capacity(shards.min(total));
    let mut start = 0usize;
    for index in 0..shards {
        let len = base + usize::from(index < rem);
        if len == 0 {
            break;
        }
        plan.push(Shard { index, seed: base_seed ^ index as u64, start, len });
        start += len;
    }
    plan
}

/// The worker count: `PACMAN_JOBS` when set to a positive integer,
/// otherwise the machine's available parallelism (1 on failure).
pub fn default_jobs() -> usize {
    match std::env::var(JOBS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Maps `work` over every shard on up to `jobs` scoped threads and
/// returns the results in **shard order**.
///
/// `jobs <= 1` runs inline on the calling thread (no spawn overhead);
/// otherwise `min(jobs, shards.len())` workers pull shards from an
/// atomic queue. The closure is shared by reference across workers, so
/// it must be `Sync` and build any per-shard mutable state (a fresh
/// `Machine`) internally from the [`Shard`] it receives.
///
/// # Panics
///
/// A panic inside `work` on any worker propagates to the caller when
/// the scope joins.
pub fn run_shards<T, F>(shards: &[Shard], jobs: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Shard) -> T + Sync,
{
    if jobs <= 1 || shards.len() <= 1 {
        return shards.iter().map(&work).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = shards.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.min(shards.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(shard) = shards.get(i) else { break };
                let out = work(shard);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot poisoned").expect("every shard produces a result")
        })
        .collect()
}

/// [`shard_plan`] + [`run_shards`] in one call with [`DEFAULT_SHARDS`].
pub fn run_sharded<T, F>(total: usize, base_seed: u64, jobs: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Shard) -> T + Sync,
{
    let plan = shard_plan(total, DEFAULT_SHARDS, base_seed);
    run_shards(&plan, jobs, work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_tiles_the_range_exactly() {
        for total in [0usize, 1, 7, 8, 9, 100, 1003] {
            let plan = shard_plan(total, DEFAULT_SHARDS, 0xA11CE);
            let covered: usize = plan.iter().map(|s| s.len).sum();
            assert_eq!(covered, total, "total {total}");
            let mut expect_start = 0;
            for s in &plan {
                assert_eq!(s.start, expect_start);
                assert!(s.len >= 1);
                expect_start += s.len;
            }
        }
    }

    #[test]
    fn plan_sizes_differ_by_at_most_one() {
        let plan = shard_plan(100, 8, 1);
        let lens: Vec<usize> = plan.iter().map(|s| s.len).collect();
        assert_eq!(lens, [13, 13, 13, 13, 12, 12, 12, 12]);
    }

    #[test]
    fn plan_seeds_are_base_xor_index() {
        let plan = shard_plan(64, 8, 0xFF00);
        for s in &plan {
            assert_eq!(s.seed, 0xFF00 ^ s.index as u64);
        }
    }

    #[test]
    fn plan_is_independent_of_worker_count() {
        // There is no jobs parameter at all — this pins the invariant
        // that the plan is a pure function of (total, shards, seed).
        assert_eq!(shard_plan(37, 8, 9), shard_plan(37, 8, 9));
    }

    #[test]
    fn tiny_workloads_drop_empty_shards() {
        let plan = shard_plan(3, 8, 5);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[2].range(), 2..3);
        assert!(shard_plan(0, 8, 5).is_empty());
    }

    #[test]
    fn serial_and_parallel_results_match_in_shard_order() {
        let plan = shard_plan(1000, DEFAULT_SHARDS, 42);
        let work = |s: &Shard| -> (usize, u64, usize) {
            let sum: usize = s.range().sum();
            (s.index, s.seed, sum)
        };
        let serial = run_shards(&plan, 1, work);
        let parallel = run_shards(&plan, 4, work);
        assert_eq!(serial, parallel);
        let oversubscribed = run_shards(&plan, 64, work);
        assert_eq!(serial, oversubscribed);
    }

    #[test]
    fn run_sharded_matches_manual_plan() {
        let manual = run_shards(&shard_plan(50, DEFAULT_SHARDS, 7), 2, |s| s.seed);
        let auto = run_sharded(50, 7, 2, |s| s.seed);
        assert_eq!(manual, auto);
    }

    #[test]
    fn jobs_env_parsing() {
        // default_jobs reads the environment; exercise only the
        // documented fallback shape (>= 1 always).
        assert!(default_jobs() >= 1);
    }
}
