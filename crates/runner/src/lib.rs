//! Scoped-thread trial-execution engine for the PACMAN reproduction.
//!
//! Every long-running experiment in the workspace — PAC brute-force
//! sweeps (§8.2), oracle accuracy trials (Fig 8), TLB set sweeps
//! (Fig 5), the gadget census (§4.3) — is a loop over *independent*
//! simulated trials. This crate shards such loops across OS threads
//! while keeping results bit-identical to the serial run:
//!
//! - [`shard_plan`] cuts `total` work items into a **fixed** number of
//!   contiguous shards ([`DEFAULT_SHARDS`] unless overridden), each with
//!   its own derived RNG seed ([`mix64`]`(base_seed, shard_index)`). The
//!   plan depends only on the work size and base seed — never on the
//!   worker count — so jobs=1 and jobs=N execute the exact same shards.
//! - [`run_shards_tolerant`] maps a fallible closure over the shards on
//!   a hand-rolled [`std::thread::scope`] pool (no external
//!   dependencies; the crates registry is unreachable in this
//!   environment, see ROADMAP), isolating panics with `catch_unwind`,
//!   retrying each shard under a bounded [`RetryPolicy`], and returning
//!   per-shard `Result<T, ShardError>`s in **shard order** regardless of
//!   which worker finished first. [`run_shards`] is the legacy
//!   infallible wrapper.
//! - [`default_jobs`] resolves the worker count from `PACMAN_JOBS` or
//!   [`std::thread::available_parallelism`].
//!
//! Determinism contract: a driver gives each shard its own simulated
//! `Machine` seeded from [`Shard::seed`] and merges per-shard outputs in
//! shard order with order-insensitive operations (counter addition,
//! histogram merges, log concatenation). The *experiment* seed is
//! attempt-invariant — a retried attempt reruns the identical work — so
//! under that contract the merged aggregate is a pure function of
//! `(total, base_seed)` and neither the worker count nor transient
//! (retried-away) failures change it. [`RetryPolicy::reseed`] varies
//! only the *fault-decision* stream across attempts (see its docs).

//!
//! Observability: when the process-wide flight recorder
//! (`pacman_telemetry::trace`) is enabled, the engine emits spans for
//! each shard's queue wait and execution attempts plus instant markers
//! for retries, permanent failures, and cancellations — the raw
//! material of the `trace.json` fault-drill timelines. Disabled (the
//! default), each hook is one atomic load.
//!
//! Two execution backends share those semantics: the per-run scoped
//! pool in this module (the retained baseline) and the persistent
//! work-stealing [`Executor`] in [`executor`], which amortises thread
//! spawns across campaigns, pipelines concurrent submissions, and
//! streams per-shard results instead of waiting for an end-of-run
//! barrier. [`RunnerBackend::current`] selects between them
//! (`PACMAN_RUNNER`, CLI `--runner`, or a [`with_backend`] scope);
//! [`run_backend_tolerant`] is the dispatching entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;

pub use executor::{
    force_backend, run_backend_tolerant, with_backend, CampaignHandle, Executor, OrderedEvents,
    RunnerBackend, ShardEvent, RUNNER_ENV,
};

use pacman_telemetry::json::Value;
use pacman_telemetry::trace;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a mutex, riding through poisoning. Used for engine-internal
/// state whose critical sections only perform plain field updates, so a
/// panic mid-section cannot leave it inconsistent. Result *slots* are
/// deliberately not locked this way — a poisoned slot stays a typed
/// [`RunnerError::SlotPoisoned`].
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Fixed shard count used by every parallelised experiment.
///
/// Deliberately independent of the worker count: the shard plan (and
/// therefore each shard's RNG stream and work range) must not change
/// when `--jobs` does, or jobs=1 and jobs=4 would disagree.
pub const DEFAULT_SHARDS: usize = 8;

/// Environment variable overriding the worker count.
pub const JOBS_ENV: &str = "PACMAN_JOBS";

/// A splitmix64-style finalizer mixing `salt` into `seed`.
///
/// Used for every derived-seed decision in the workspace: shard seeds
/// (`mix64(base_seed, index)`), per-attempt fault streams
/// (`mix64(seed, attempt)`). Unlike the earlier `base ^ index`
/// derivation it has no cheap collisions — `(seed 5, shard 3)` and
/// `(seed 7, shard 1)` XOR to the same stream (`6`) but mix to
/// unrelated ones — and no degenerate fixed point at `(0, 0)`.
#[must_use]
pub fn mix64(seed: u64, salt: u64) -> u64 {
    // splitmix64: advance the state by (salt + 1) golden-gamma steps,
    // then run the standard avalanche finalizer.
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One contiguous slice of a sharded workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Position of this shard in the plan (0-based).
    pub index: usize,
    /// Per-shard RNG seed: [`mix64`]`(base_seed, index)`. Drivers feed
    /// this to the shard-local `Machine` so noise streams are
    /// decorrelated across shards yet reproducible for a given base
    /// seed.
    pub seed: u64,
    /// Global index of the first work item owned by this shard.
    pub start: usize,
    /// Number of work items owned by this shard.
    pub len: usize,
}

impl Shard {
    /// Global work-item indices owned by this shard.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

/// Cuts `total` work items into at most `shards` contiguous shards.
///
/// The first `total % shards` shards take one extra item, so sizes
/// differ by at most one and the ranges exactly tile `0..total`. Shards
/// that would own zero items are dropped (a tiny workload yields fewer
/// shards, with the same seeds as the full plan's leading shards).
pub fn shard_plan(total: usize, shards: usize, base_seed: u64) -> Vec<Shard> {
    let shards = shards.max(1);
    let base = total / shards;
    let rem = total % shards;
    let mut plan = Vec::with_capacity(shards.min(total));
    let mut start = 0usize;
    for index in 0..shards {
        let len = base + usize::from(index < rem);
        if len == 0 {
            break;
        }
        plan.push(Shard { index, seed: mix64(base_seed, index as u64), start, len });
        start += len;
    }
    plan
}

/// Parses a `PACMAN_JOBS`-style worker count: a positive integer,
/// surrounding whitespace tolerated. `0`, empty and non-numeric values
/// are rejected (`None`).
#[must_use]
pub fn parse_jobs(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The machine's available parallelism (1 when undeterminable).
fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Memoized [`default_jobs`] resolution. A `Mutex<Option<..>>` rather
/// than a `OnceLock` so [`reset_default_jobs_cache`] can forget it.
static JOBS_CACHE: Mutex<Option<usize>> = Mutex::new(None);

/// The worker count: `PACMAN_JOBS` when set to a positive integer,
/// otherwise the machine's available parallelism (1 on failure).
///
/// An invalid or `0` value warns on stderr and falls back to available
/// parallelism, exactly like the unset case — a typo in the environment
/// must not silently serialise a campaign onto one worker.
///
/// The resolution (including the one-shot warning) is memoized for the
/// life of the process: hot driver paths call this per campaign, and
/// the environment is not expected to change underneath a running
/// process. Tests that do change `PACMAN_JOBS` must call
/// [`reset_default_jobs_cache`] afterwards.
pub fn default_jobs() -> usize {
    let mut cache = lock(&JOBS_CACHE);
    if let Some(jobs) = *cache {
        return jobs;
    }
    let jobs = resolve_default_jobs();
    *cache = Some(jobs);
    jobs
}

/// The uncached resolution behind [`default_jobs`].
fn resolve_default_jobs() -> usize {
    match std::env::var(JOBS_ENV) {
        Ok(v) => parse_jobs(&v).unwrap_or_else(|| {
            let fallback = available_jobs();
            eprintln!(
                "warning: {JOBS_ENV}='{v}' is not a positive worker count; \
                 using available parallelism ({fallback})"
            );
            fallback
        }),
        Err(_) => available_jobs(),
    }
}

/// Test-only hook: forgets the memoized [`default_jobs`] resolution so
/// a test that changes `PACMAN_JOBS` observes the new value (and the
/// bad-value warning can fire again). Not part of the stable API.
#[doc(hidden)]
pub fn reset_default_jobs_cache() {
    *lock(&JOBS_CACHE) = None;
}

/// Bounded per-shard retry policy for [`run_shards_tolerant`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per shard (first try included). Clamped to >= 1.
    pub max_attempts: u32,
    /// Whether each retry re-derives the *fault-decision* stream
    /// ([`mix64`]`(seed, attempt)`), so a transient injected fault
    /// clears on the next attempt. The shard's *experiment* seed is
    /// attempt-invariant either way — a retried attempt reruns the
    /// identical work, which is what keeps retried aggregates
    /// bit-identical to fault-free runs. With `reseed: false` every
    /// attempt replays attempt 0's fault decisions, so a faulting shard
    /// faults forever — the deterministic way to exercise the
    /// budget-exhaustion path.
    pub reseed: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 5, reseed: true }
    }
}

impl RetryPolicy {
    /// A policy with no retries: one attempt, fail fast.
    #[must_use]
    pub fn no_retries() -> Self {
        Self { max_attempts: 1, reseed: true }
    }
}

/// Why one shard permanently failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardError {
    /// The failing shard's index in the plan.
    pub shard: usize,
    /// Attempts actually executed (0 for cancelled shards).
    pub attempts: u32,
    /// Whether the final attempt panicked (vs. returned an error).
    pub panicked: bool,
    /// Whether the shard was never run because another shard had
    /// already failed permanently (queue drain, see
    /// [`run_shards_tolerant`]).
    pub cancelled: bool,
    /// The final attempt's error display or panic message.
    pub message: String,
}

impl ShardError {
    fn cancelled(shard: usize) -> Self {
        Self {
            shard,
            attempts: 0,
            panicked: false,
            cancelled: true,
            message: "cancelled after another shard failed permanently".into(),
        }
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cancelled {
            write!(f, "shard {} cancelled: {}", self.shard, self.message)
        } else {
            let kind = if self.panicked { "panicked" } else { "failed" };
            write!(
                f,
                "shard {} {kind} after {} attempt(s): {}",
                self.shard, self.attempts, self.message
            )
        }
    }
}

impl std::error::Error for ShardError {}

/// Infrastructure failures of the execution engine itself (as opposed
/// to [`ShardError`]s, which describe the workload failing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunnerError {
    /// A worker panicked *outside* the `catch_unwind` bracket while
    /// holding a result slot's lock — the slot contents cannot be
    /// trusted.
    SlotPoisoned {
        /// Index of the poisoned slot.
        shard: usize,
    },
    /// A shard's slot was never filled even though no failure was
    /// recorded — a scheduling bug, not a workload error.
    MissingResult {
        /// Index of the empty slot.
        shard: usize,
    },
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::SlotPoisoned { shard } => {
                write!(f, "result slot for shard {shard} was poisoned")
            }
            RunnerError::MissingResult { shard } => {
                write!(f, "shard {shard} produced no result and no error")
            }
        }
    }
}

impl std::error::Error for RunnerError {}

/// Everything [`run_shards_tolerant`] knows after the pool drains: one
/// `Result` per shard **in shard order**, plus the retry total.
#[derive(Debug)]
pub struct ShardedOutcome<T> {
    /// Per-shard results in shard order.
    pub results: Vec<Result<T, ShardError>>,
    /// Attempts beyond the first, summed over every shard.
    pub retries: u64,
}

impl<T> ShardedOutcome<T> {
    /// Shards that produced a value.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Permanent per-shard failures, in shard order.
    pub fn failures(&self) -> impl Iterator<Item = &ShardError> {
        self.results.iter().filter_map(|r| r.as_ref().err())
    }
}

/// Renders a `catch_unwind` payload (the common `&str` / `String`
/// payloads of `panic!`) into a message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// The per-shard retry loop shared by the scoped pool and the
/// persistent [`Executor`]: runs `work` under `catch_unwind` up to
/// `max_attempts` times, emitting `shard.exec` / `shard.retry` /
/// `shard.fail` trace events and counting attempts beyond the first
/// into `retries`. `tid` is the executing worker's id, used only for
/// span attribution. Callers emit their own `shard.queue_wait` span
/// (the wait is measured from a backend-specific start point).
pub(crate) fn run_attempts<T, E, F>(
    shard: &Shard,
    tid: u64,
    max_attempts: u32,
    retries: &AtomicU64,
    work: &F,
) -> Result<T, ShardError>
where
    E: fmt::Display,
    F: Fn(&Shard, u32) -> Result<T, E> + ?Sized,
{
    let rec = trace::recorder();
    let sid = Some(shard.index as u64);
    let mut attempt = 0u32;
    loop {
        let exec_start = rec.now_us();
        let run = catch_unwind(AssertUnwindSafe(|| work(shard, attempt)));
        rec.complete(
            "shard.exec",
            "runner",
            tid,
            sid,
            exec_start,
            vec![
                ("attempt".into(), Value::UInt(u64::from(attempt))),
                ("ok".into(), Value::Bool(matches!(run, Ok(Ok(_))))),
            ],
        );
        let (panicked, message) = match run {
            Ok(Ok(value)) => return Ok(value),
            Ok(Err(e)) => (false, e.to_string()),
            Err(payload) => (true, panic_message(payload.as_ref())),
        };
        attempt += 1;
        if attempt >= max_attempts {
            rec.instant(
                "shard.fail",
                "runner",
                tid,
                sid,
                vec![
                    ("attempts".into(), Value::UInt(u64::from(attempt))),
                    ("panicked".into(), Value::Bool(panicked)),
                    ("error".into(), Value::str(message.clone())),
                ],
            );
            return Err(ShardError {
                shard: shard.index,
                attempts: attempt,
                panicked,
                cancelled: false,
                message,
            });
        }
        retries.fetch_add(1, Ordering::Relaxed);
        rec.instant(
            "shard.retry",
            "runner",
            tid,
            sid,
            vec![
                ("attempt".into(), Value::UInt(u64::from(attempt))),
                ("panicked".into(), Value::Bool(panicked)),
                ("error".into(), Value::str(message.clone())),
            ],
        );
    }
}

/// Shared pull cursor of the scoped pool. One lock gates both the next
/// shard index and the failure flag, so "no shard starts after a
/// permanent failure is recorded" is structural: the failing worker
/// cancels every never-pulled shard under the same lock a sibling would
/// need to pull one.
struct PullState {
    next: usize,
    failed: bool,
}

/// Maps the fallible `work` closure over every shard on up to `jobs`
/// scoped threads with panic isolation and bounded retries, returning
/// per-shard results in **shard order**.
///
/// Each attempt runs under `catch_unwind`: a panicking shard is caught,
/// retried up to [`RetryPolicy::max_attempts`] times, and only then
/// recorded as a [`ShardError`] — it never aborts sibling shards
/// mid-flight or unwinds into the caller. `work` receives the shard and
/// the 0-based attempt number (drivers feed the attempt into their
/// fault-decision stream; the experiment seed itself must stay
/// attempt-invariant, see [`RetryPolicy::reseed`]).
///
/// On the first *permanent* (budget-exhausted) shard failure the
/// failing worker — under the same lock that gates shard pulls —
/// records the failure and cancels every shard nobody has started,
/// so no new shard can begin once a permanent failure exists. Shards
/// already in flight still complete, so every result that does come
/// back is valid.
///
/// `jobs <= 1` runs inline on the calling thread (no spawn overhead)
/// and drains the queue in shard order, which makes the cancellation
/// boundary deterministic: every shard after the first permanent
/// failure is cancelled.
///
/// # Errors
///
/// [`RunnerError`] for engine-level failures (poisoned or unfilled
/// result slots). Workload failures are *not* errors at this level —
/// they come back as `Err(ShardError)` entries in the outcome.
pub fn run_shards_tolerant<T, E, F>(
    shards: &[Shard],
    jobs: usize,
    policy: RetryPolicy,
    work: F,
) -> Result<ShardedOutcome<T>, RunnerError>
where
    T: Send,
    E: fmt::Display,
    F: Fn(&Shard, u32) -> Result<T, E> + Sync,
{
    let retries = AtomicU64::new(0);
    let max_attempts = policy.max_attempts.max(1);
    let rec = trace::recorder();
    let run_start = rec.now_us();

    // Queue-wait span (run entry -> this worker picking the shard up)
    // plus the shared retry loop. `tid` is the worker slot (0 on the
    // inline path), used only for span attribution.
    let attempt_shard = |shard: &Shard, tid: u64| -> Result<T, ShardError> {
        rec.complete(
            "shard.queue_wait",
            "runner",
            tid,
            Some(shard.index as u64),
            run_start,
            Vec::new(),
        );
        run_attempts(shard, tid, max_attempts, &retries, &work)
    };

    let finish = |results: Vec<Result<T, ShardError>>, retries: u64| {
        rec.complete(
            "shards.run",
            "runner",
            0,
            None,
            run_start,
            vec![
                ("shards".into(), Value::UInt(shards.len() as u64)),
                ("jobs".into(), Value::UInt(jobs as u64)),
                ("retries".into(), Value::UInt(retries)),
            ],
        );
        Ok(ShardedOutcome { results, retries })
    };

    if jobs <= 1 || shards.len() <= 1 {
        let mut failed = false;
        let mut results = Vec::with_capacity(shards.len());
        for shard in shards {
            if failed {
                rec.instant("shard.cancelled", "runner", 0, Some(shard.index as u64), Vec::new());
                results.push(Err(ShardError::cancelled(shard.index)));
                continue;
            }
            let r = attempt_shard(shard, 0);
            failed |= r.is_err();
            results.push(r);
        }
        return finish(results, retries.into_inner());
    }

    let slots: Vec<Mutex<Option<Result<T, ShardError>>>> =
        shards.iter().map(|_| Mutex::new(None)).collect();
    let pull = Mutex::new(PullState { next: 0, failed: false });
    let workers = jobs.min(shards.len());
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let tid = worker as u64;
            let (pull, slots, attempt_shard) = (&pull, &slots, &attempt_shard);
            scope.spawn(move || loop {
                let i = {
                    let mut g = lock(pull);
                    if g.failed || g.next >= shards.len() {
                        break;
                    }
                    g.next += 1;
                    g.next - 1
                };
                let r = attempt_shard(&shards[i], tid);
                let failed_now = r.is_err();
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(r);
                }
                if failed_now {
                    let mut g = lock(pull);
                    if !g.failed {
                        g.failed = true;
                        // Cancel every never-pulled shard under the same
                        // lock a sibling would need to pull one: no shard
                        // can start after the failure is recorded.
                        for j in g.next..shards.len() {
                            let sid = shards[j].index;
                            rec.instant(
                                "shard.cancelled",
                                "runner",
                                tid,
                                Some(sid as u64),
                                Vec::new(),
                            );
                            if let Ok(mut slot) = slots[j].lock() {
                                *slot = Some(Err(ShardError::cancelled(sid)));
                            }
                        }
                        g.next = shards.len();
                    }
                }
            });
        }
    });
    let mut results = Vec::with_capacity(shards.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let inner = slot.into_inner().map_err(|_| RunnerError::SlotPoisoned { shard: i })?;
        // Every slot is filled by its worker or by the failure drain;
        // an empty one means the engine lost a shard.
        results.push(inner.ok_or(RunnerError::MissingResult { shard: i })?);
    }
    finish(results, retries.into_inner())
}

/// Maps the infallible `work` over every shard and returns the results
/// in **shard order** (the legacy single-attempt interface, now a
/// wrapper over [`run_shards_tolerant`]).
///
/// # Panics
///
/// A panic inside `work` on any worker is re-raised here (with the
/// original message) after the pool has drained — sibling shards are no
/// longer aborted mid-flight, but the caller-visible contract is
/// unchanged.
pub fn run_shards<T, F>(shards: &[Shard], jobs: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Shard) -> T + Sync,
{
    let outcome = run_shards_tolerant::<T, std::convert::Infallible, _>(
        shards,
        jobs,
        RetryPolicy::no_retries(),
        |shard, _attempt| Ok(work(shard)),
    )
    .unwrap_or_else(|e| panic!("sharded execution failed: {e}"));
    // Re-raise the *originating* failure, not a cancellation record.
    if let Some(e) = outcome.failures().find(|e| !e.cancelled) {
        panic!("{e}");
    }
    outcome.results.into_iter().map(|r| r.unwrap_or_else(|e| panic!("{e}"))).collect()
}

/// [`shard_plan`] + [`run_shards`] in one call with [`DEFAULT_SHARDS`].
pub fn run_sharded<T, F>(total: usize, base_seed: u64, jobs: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Shard) -> T + Sync,
{
    let plan = shard_plan(total, DEFAULT_SHARDS, base_seed);
    run_shards(&plan, jobs, work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_tiles_the_range_exactly() {
        for total in [0usize, 1, 7, 8, 9, 100, 1003] {
            let plan = shard_plan(total, DEFAULT_SHARDS, 0xA11CE);
            let covered: usize = plan.iter().map(|s| s.len).sum();
            assert_eq!(covered, total, "total {total}");
            let mut expect_start = 0;
            for s in &plan {
                assert_eq!(s.start, expect_start);
                assert!(s.len >= 1);
                expect_start += s.len;
            }
        }
    }

    #[test]
    fn plan_sizes_differ_by_at_most_one() {
        let plan = shard_plan(100, 8, 1);
        let lens: Vec<usize> = plan.iter().map(|s| s.len).collect();
        assert_eq!(lens, [13, 13, 13, 13, 12, 12, 12, 12]);
    }

    #[test]
    fn plan_seeds_are_mixed_from_base_and_index() {
        let plan = shard_plan(64, 8, 0xFF00);
        for s in &plan {
            assert_eq!(s.seed, mix64(0xFF00, s.index as u64));
        }
        let seeds: std::collections::HashSet<u64> = plan.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), plan.len(), "derived seeds must be distinct");
    }

    #[test]
    fn mixed_seeds_do_not_collide_across_experiments() {
        // The old `base ^ index` derivation gave (seed 5, shard 3) and
        // (seed 7, shard 1) the same RNG stream (5^3 == 7^1 == 6). The
        // mixer must not.
        assert_eq!(5u64 ^ 3, 7u64 ^ 1);
        assert_ne!(mix64(5, 3), mix64(7, 1));
        let a = shard_plan(64, 8, 5);
        let b = shard_plan(64, 8, 7);
        for sa in &a {
            for sb in &b {
                assert_ne!(
                    sa.seed, sb.seed,
                    "seed 5 shard {} vs seed 7 shard {}",
                    sa.index, sb.index
                );
            }
        }
    }

    #[test]
    fn plan_is_independent_of_worker_count() {
        // There is no jobs parameter at all — this pins the invariant
        // that the plan is a pure function of (total, shards, seed).
        assert_eq!(shard_plan(37, 8, 9), shard_plan(37, 8, 9));
    }

    #[test]
    fn tiny_workloads_drop_empty_shards() {
        let plan = shard_plan(3, 8, 5);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[2].range(), 2..3);
        assert!(shard_plan(0, 8, 5).is_empty());
    }

    #[test]
    fn serial_and_parallel_results_match_in_shard_order() {
        let plan = shard_plan(1000, DEFAULT_SHARDS, 42);
        let work = |s: &Shard| -> (usize, u64, usize) {
            let sum: usize = s.range().sum();
            (s.index, s.seed, sum)
        };
        let serial = run_shards(&plan, 1, work);
        let parallel = run_shards(&plan, 4, work);
        assert_eq!(serial, parallel);
        let oversubscribed = run_shards(&plan, 64, work);
        assert_eq!(serial, oversubscribed);
    }

    #[test]
    fn run_sharded_matches_manual_plan() {
        let manual = run_shards(&shard_plan(50, DEFAULT_SHARDS, 7), 2, |s| s.seed);
        let auto = run_sharded(50, 7, 2, |s| s.seed);
        assert_eq!(manual, auto);
    }

    #[test]
    fn parse_jobs_accepts_positive_integers_only() {
        assert_eq!(parse_jobs("0"), None);
        assert_eq!(parse_jobs("abc"), None);
        assert_eq!(parse_jobs(" 4 "), Some(4));
        assert_eq!(parse_jobs(""), None);
        assert_eq!(parse_jobs("-2"), None);
        assert_eq!(parse_jobs("16"), Some(16));
    }

    #[test]
    fn jobs_env_parsing() {
        // default_jobs reads the environment; exercise only the
        // documented fallback shape (>= 1 always).
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn mix64_is_deterministic_and_salt_sensitive() {
        assert_eq!(mix64(1, 2), mix64(1, 2));
        assert_ne!(mix64(1, 2), mix64(1, 3));
        assert_ne!(mix64(1, 2), mix64(2, 2));
        // mix64(0, 0) must not be the degenerate 0 of a plain XOR chain.
        assert_ne!(mix64(0, 0), 0);
    }

    #[test]
    fn tolerant_returns_values_in_shard_order() {
        let plan = shard_plan(100, DEFAULT_SHARDS, 3);
        let out = run_shards_tolerant::<_, std::convert::Infallible, _>(
            &plan,
            4,
            RetryPolicy::default(),
            |s, _| Ok(s.index),
        )
        .expect("engine ok");
        assert_eq!(out.retries, 0);
        assert_eq!(out.completed(), plan.len());
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(*r.as_ref().expect("ok"), i);
        }
    }

    #[test]
    fn tolerant_retries_transient_panics_deterministically() {
        use std::sync::atomic::AtomicU32;
        let plan = shard_plan(8, 8, 11);
        let attempts_seen: Vec<AtomicU32> = plan.iter().map(|_| AtomicU32::new(0)).collect();
        let out = run_shards_tolerant::<_, std::convert::Infallible, _>(
            &plan,
            2,
            RetryPolicy::default(),
            |s, attempt| {
                attempts_seen[s.index].fetch_add(1, Ordering::Relaxed);
                // Shards 2 and 5 fail on their first two attempts, then
                // recover — inside the default budget of 5.
                if (s.index == 2 || s.index == 5) && attempt < 2 {
                    panic!("injected transient failure");
                }
                Ok(s.seed)
            },
        )
        .expect("engine ok");
        assert_eq!(out.retries, 4, "two shards x two failed attempts");
        assert_eq!(out.completed(), 8);
        for (i, seen) in attempts_seen.iter().enumerate() {
            let expect = if i == 2 || i == 5 { 3 } else { 1 };
            assert_eq!(seen.load(Ordering::Relaxed), expect, "shard {i}");
        }
        // The recovered values match a failure-free run.
        for (s, r) in plan.iter().zip(&out.results) {
            assert_eq!(*r.as_ref().expect("recovered"), s.seed);
        }
    }

    #[test]
    fn tolerant_reports_exhausted_budget_as_shard_error() {
        let plan = shard_plan(4, 4, 0);
        let out = run_shards_tolerant::<u64, _, _>(
            &plan,
            1,
            RetryPolicy { max_attempts: 3, reseed: false },
            |s, _| if s.index == 1 { Err("deterministic workload error") } else { Ok(s.seed) },
        )
        .expect("engine ok");
        assert_eq!(out.retries, 2, "shard 1 burns its whole budget");
        let failures: Vec<&ShardError> = out.failures().collect();
        // Inline (jobs=1) drain: shard 1 fails, shards 2 and 3 cancel.
        assert_eq!(failures.len(), 3);
        assert_eq!(failures[0].shard, 1);
        assert_eq!(failures[0].attempts, 3);
        assert!(!failures[0].panicked);
        assert!(!failures[0].cancelled);
        assert!(failures[0].message.contains("deterministic workload error"));
        for f in &failures[1..] {
            assert!(f.cancelled, "shard {} should be cancelled", f.shard);
            assert_eq!(f.attempts, 0);
        }
        assert_eq!(out.completed(), 1);
    }

    #[test]
    fn tolerant_cancellation_stops_parallel_workers() {
        use std::sync::atomic::AtomicU32;
        use std::sync::{Arc, Condvar};

        // Channel-free condvar handshake replacing the old 20ms sleep:
        // a sibling shard announces it started, a helper thread then
        // releases the gate (or, if no sibling ever starts, the main
        // thread releases the helper after the run). No timing
        // assumptions anywhere, so the test cannot flake under load;
        // the engine's drain-under-lock makes "no pull after a
        // permanent failure" structural rather than a won race.
        #[derive(Default)]
        struct Gate {
            started: bool,
            go: bool,
            over: bool,
        }
        fn wait_while(
            pair: &(Mutex<Gate>, Condvar),
            mut blocked: impl FnMut(&Gate) -> bool,
        ) -> std::sync::MutexGuard<'_, Gate> {
            let (state, cv) = pair;
            let mut g = lock(state);
            while blocked(&g) {
                g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            g
        }

        let gate = Arc::new((Mutex::new(Gate::default()), Condvar::new()));
        let plan = shard_plan(64, 64, 0);
        let executed = AtomicU32::new(0);

        let helper = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let mut g = wait_while(&gate, |g| !g.started && !g.over);
                g.go = true;
                gate.1.notify_all();
            })
        };

        let out = run_shards_tolerant::<u64, _, _>(&plan, 2, RetryPolicy::no_retries(), |s, _| {
            executed.fetch_add(1, Ordering::Relaxed);
            if s.index == 0 {
                return Err("permanent failure on the first shard");
            }
            {
                let mut g = lock(&gate.0);
                g.started = true;
                gate.1.notify_all();
            }
            drop(wait_while(&gate, |g| !g.go));
            Ok(s.seed)
        })
        .expect("engine ok");

        {
            let mut g = lock(&gate.0);
            g.over = true;
            gate.1.notify_all();
        }
        helper.join().expect("helper joins");

        assert_eq!(out.results.len(), 64, "every shard is accounted for");
        assert!(out.failures().any(|f| f.shard == 0 && !f.cancelled));
        assert!(out.failures().any(|f| f.cancelled), "queue must drain");
        assert!(
            executed.load(Ordering::Relaxed) < 64,
            "workers must stop pulling shards after a permanent failure"
        );
    }

    #[test]
    fn default_jobs_is_memoized_until_reset() {
        let first = default_jobs();
        assert!(first >= 1);
        assert_eq!(default_jobs(), first, "memoized value is stable");
        reset_default_jobs_cache();
        assert_eq!(default_jobs(), first, "same environment resolves the same");
    }

    #[test]
    fn tolerant_emits_lifecycle_spans_when_tracing() {
        // The global recorder is process-wide, so assert supersets:
        // concurrent tests may add events but cannot remove ours.
        let rec = trace::recorder();
        rec.set_enabled(true);
        let plan = shard_plan(20, 5, 0xCAFE);
        let out = run_shards_tolerant::<_, std::convert::Infallible, _>(
            &plan,
            1,
            RetryPolicy::default(),
            |s, attempt| {
                if s.index == 2 && attempt == 0 {
                    panic!("transient for the trace");
                }
                Ok(s.seed)
            },
        )
        .expect("engine ok");
        rec.set_enabled(false);
        assert_eq!(out.completed(), 5);
        let events = rec.take();
        let count = |name: &str| events.iter().filter(|e| e.name == name).count();
        assert!(count("shard.queue_wait") >= 5, "one queue-wait per shard");
        assert!(count("shard.exec") >= 6, "5 shards + 1 retried attempt");
        assert!(count("shard.retry") >= 1);
        assert!(count("shards.run") >= 1);
        // Find *our* retry marker by its distinctive message (other
        // concurrent tests may emit their own).
        let retry = events
            .iter()
            .find(|e| {
                e.name == "shard.retry"
                    && e.args
                        .iter()
                        .any(|(k, v)| k == "error" && v.as_str() == Some("transient for the trace"))
            })
            .expect("our retry marker is recorded");
        assert_eq!(retry.shard, Some(2));
        assert!(retry.dur_us.is_none(), "retries are instant markers");
    }

    #[test]
    fn legacy_run_shards_propagates_the_original_panic_message() {
        let plan = shard_plan(8, 8, 0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_shards(&plan, 2, |s: &Shard| {
                if s.index == 3 {
                    panic!("boom in shard three");
                }
                s.seed
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let message = panic_message(payload.as_ref());
        assert!(message.contains("boom in shard three"), "{message}");
        assert!(message.contains("shard 3"), "{message}");
    }
}
