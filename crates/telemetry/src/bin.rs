//! A tiny length-checked binary codec for snapshot files.
//!
//! The snapshot/resume subsystem (DESIGN.md §13) serialises machine and
//! daemon state into versioned, checksummed blobs. The workspace has no
//! serde, so this module provides the one shared primitive every layer
//! encodes through: a [`Writer`] appending fixed-width little-endian
//! scalars and length-prefixed byte strings to a `Vec<u8>`, and a
//! [`Reader`] consuming the same stream with typed
//! [truncation](BinError::Truncated) errors instead of panics — a
//! corrupt snapshot must degrade into a recoverable [`BinError`], never
//! tear down the process that tried to load it.
//!
//! The format is deliberately schema-free: field order is the schema,
//! and each consumer versions its own envelope (magic + format version
//! + checksum) on top. Everything is little-endian.

use std::fmt;

/// Why a binary stream failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BinError {
    /// The stream ended before the requested field.
    Truncated {
        /// Bytes wanted by the read.
        wanted: usize,
        /// Bytes remaining in the stream.
        remaining: usize,
    },
    /// A length prefix or tag was outside its valid range.
    Corrupt(
        /// What was malformed.
        String,
    ),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::Truncated { wanted, remaining } => {
                write!(f, "truncated stream: wanted {wanted} bytes, {remaining} remain")
            }
            BinError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for BinError {}

/// Appends little-endian fields to a growable byte buffer.
#[derive(Default, Debug)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes encoding and returns the buffer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round
    /// trips, NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Consumes little-endian fields from a byte slice, with typed errors
/// on truncation.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the stream is fully consumed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(BinError::Truncated { wanted: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, BinError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("length checked")))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    /// Reads a `u128`.
    pub fn u128(&mut self) -> Result<u128, BinError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("length checked")))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, BinError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, BinError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than 0 or 1 is corruption.
    pub fn bool(&mut self) -> Result<bool, BinError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(BinError::Corrupt(format!("bool byte {other:#x}"))),
        }
    }

    /// Reads a `usize`, rejecting values beyond the platform's range.
    pub fn usize(&mut self) -> Result<usize, BinError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| BinError::Corrupt(format!("usize overflow: {v}")))
    }

    /// Reads a length-prefixed byte string. The length is validated
    /// against the remaining stream before any allocation, so a corrupt
    /// prefix cannot trigger a huge reservation.
    pub fn bytes(&mut self) -> Result<&'a [u8], BinError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, BinError> {
        let raw = self.bytes()?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|e| BinError::Corrupt(format!("invalid UTF-8 string: {e}")))
    }
}

/// FNV-1a over a byte slice: the checksum the snapshot envelopes use.
/// Not cryptographic — it guards against torn writes and bit rot, not
/// adversaries (the snapshot directory is trusted local state).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.u128(u128::MAX - 7);
        w.i64(-42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        w.usize(12345);
        w.bytes(&[1, 2, 3]);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.u128().unwrap(), u128::MAX - 7);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_done());
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_width() {
        let mut w = Writer::new();
        w.u64(7);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(matches!(r.u64(), Err(BinError::Truncated { .. })), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_length_prefixes_do_not_overallocate() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // an absurd length prefix
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        // On 64-bit targets the usize parses and the take() fails as a
        // truncation; either way it is an error, not an allocation.
        assert!(r.bytes().is_err());
    }

    #[test]
    fn bad_bool_bytes_are_corruption() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.bool(), Err(BinError::Corrupt(_))));
    }

    #[test]
    fn fnv1a_detects_single_bit_flips() {
        let data = b"snapshot payload bytes";
        let h = fnv1a(data);
        let mut flipped = data.to_vec();
        flipped[5] ^= 0x10;
        assert_ne!(h, fnv1a(&flipped));
        assert_eq!(h, fnv1a(data), "pure function");
    }
}
