//! The metrics registry: counters, gauges, log₂-bucketed histograms,
//! and scoped timers.

use crate::snapshot::Snapshot;
use std::collections::BTreeMap;
use std::time::Instant;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i >= 1`
/// holds values whose bit length is `i`, i.e. `[2^(i-1), 2^i)`.
pub(crate) const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations (latencies in cycles
/// or nanoseconds, speculation depths, set occupancies...).
///
/// Exact count/sum/min/max are tracked alongside the buckets, so the
/// mean is exact and only the percentiles are bucket-resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    pub(crate) count: u64,
    pub(crate) sum: u64,
    pub(crate) min: u64,
    pub(crate) max: u64,
    pub(crate) buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; BUCKETS] }
    }
}

fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive value range covered by bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        _ => (1u64 << (i - 1), ((1u128 << i) - 1) as u64),
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-resolution quantile: the midpoint of the bucket holding the
    /// rank-`q` observation, clamped into `[min, max]`. `q` is in `[0, 1]`.
    ///
    /// Boundary behaviour (pinned by tests):
    /// - **empty histogram** — returns 0, indistinguishable from a
    ///   histogram of zeros; check [`count`](Self::count) first when
    ///   the distinction matters;
    /// - **`q = 0.0`** (and anything below, including `-∞`) — the
    ///   midpoint of the smallest observation's bucket, clamped into
    ///   `[min, max]`; bucket resolution, so not necessarily exactly
    ///   [`min`](Self::min);
    /// - **`q = 1.0`** (and anything above, including `+∞`) — the
    ///   midpoint of the largest observation's bucket, clamped into
    ///   `[min, max]`; never exceeds [`max`](Self::max) but may fall
    ///   below it;
    /// - **NaN** — treated as `q = 0.0` (rank of the smallest
    ///   observation), not a panic and not a sentinel.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return (lo + (hi - lo) / 2).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Serialises the histogram through the binary snapshot codec.
    /// Sparse encoding: only non-empty buckets are written.
    pub fn save_bin(&self, w: &mut crate::bin::Writer) {
        w.u64(self.count);
        w.u64(self.sum);
        w.u64(self.min);
        w.u64(self.max);
        let live = self.buckets.iter().filter(|&&n| n > 0).count();
        w.usize(live);
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                w.u8(i as u8);
                w.u64(n);
            }
        }
    }

    /// Rebuilds a histogram written by [`Histogram::save_bin`].
    ///
    /// # Errors
    ///
    /// [`crate::bin::BinError`] on a truncated stream or an
    /// out-of-range bucket index.
    pub fn load_bin(r: &mut crate::bin::Reader<'_>) -> Result<Self, crate::bin::BinError> {
        let count = r.u64()?;
        let sum = r.u64()?;
        let min = r.u64()?;
        let max = r.u64()?;
        let mut buckets = [0u64; BUCKETS];
        for _ in 0..r.usize()? {
            let i = r.u8()? as usize;
            let n = r.u64()?;
            let slot = buckets
                .get_mut(i)
                .ok_or_else(|| crate::bin::BinError::Corrupt(format!("bucket index {i}")))?;
            *slot = n;
        }
        Ok(Self { count, sum, min, max, buckets })
    }

    /// Condensed view with the standard percentiles.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// The histogram of observations recorded in `self` but not in
    /// `earlier` (bucket-wise saturating subtraction). `earlier` must be
    /// a prior snapshot of the same series for the result to be
    /// meaningful; min/max are re-derived from the surviving buckets at
    /// bucket resolution.
    pub fn diff(&self, earlier: &Self) -> Self {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for (i, bucket) in buckets.iter_mut().enumerate() {
            let n = self.buckets[i].saturating_sub(earlier.buckets[i]);
            *bucket = n;
            count += n;
            if n > 0 {
                let (lo, hi) = bucket_bounds(i);
                min = min.min(lo);
                max = max.max(hi.min(self.max));
            }
        }
        Self { count, sum: self.sum.saturating_sub(earlier.sum), min, max, buckets }
    }
}

/// Point-in-time percentile summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Exact mean (0.0 when empty).
    pub mean: f64,
    /// Median, at bucket resolution.
    pub p50: u64,
    /// 95th percentile, at bucket resolution.
    pub p95: u64,
    /// 99th percentile, at bucket resolution.
    pub p99: u64,
}

/// A named-metric registry. All mutating entry points branch on the
/// enabled flag first, so a disabled registry costs one branch per call.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    enabled: bool,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Self { enabled: true, ..Self::default() }
    }

    /// A disabled, empty registry: every recording call is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether recording calls take effect.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off. Already-recorded values are kept.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Adds 1 to a monotonic counter.
    pub fn incr(&mut self, name: &str) {
        self.incr_by(name, 1);
    }

    /// Adds `delta` to a monotonic counter.
    pub fn incr_by(&mut self, name: &str, delta: u64) {
        if self.enabled {
            let c = entry_or_default(&mut self.counters, name);
            *c = c.saturating_add(delta);
        }
    }

    /// Sets a gauge to an instantaneous value.
    pub fn gauge(&mut self, name: &str, value: i64) {
        if self.enabled {
            *entry_or_default(&mut self.gauges, name) = value;
        }
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        if self.enabled {
            entry_or_default(&mut self.histograms, name).observe(value);
        }
    }

    /// Folds a free-standing histogram (e.g. a raw always-on counter
    /// struct maintained outside the registry) into the named series.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        if self.enabled {
            entry_or_default(&mut self.histograms, name).merge(h);
        }
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge (0 when never set).
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, when at least one observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Runs `f`, recording its wall-clock duration (nanoseconds) into the
    /// named histogram.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let out = f();
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.observe(name, ns);
        out
    }

    /// Starts a detached timer; pass it back to [`Registry::stop_timer`]
    /// (or any registry) to record the elapsed nanoseconds. Detached so
    /// the registry stays usable while the timer runs.
    pub fn start_timer(&self, name: impl Into<String>) -> ScopedTimer {
        ScopedTimer { name: name.into(), start: Instant::now() }
    }

    /// Records a [`ScopedTimer`]'s elapsed time into its histogram.
    pub fn stop_timer(&mut self, timer: ScopedTimer) {
        if self.enabled {
            let ns = u64::try_from(timer.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.observe(&timer.name, ns);
        }
    }

    /// Folds every series of `other` into this registry: counters add
    /// (saturating), gauges take `other`'s value (last-writer-wins, in
    /// merge order), histograms fold bucket-wise via
    /// [`Histogram::merge`]. Merging respects this registry's enabled
    /// flag, so a disabled aggregate stays empty.
    pub fn merge(&mut self, other: &Registry) {
        if !self.enabled {
            return;
        }
        for (name, &delta) in &other.counters {
            let c = entry_or_default(&mut self.counters, name);
            *c = c.saturating_add(delta);
        }
        for (name, &value) in &other.gauges {
            *entry_or_default(&mut self.gauges, name) = value;
        }
        for (name, h) in &other.histograms {
            entry_or_default(&mut self.histograms, name).merge(h);
        }
    }

    /// Serialises every series (and the enabled flag) through the
    /// binary snapshot codec.
    pub fn save_bin(&self, w: &mut crate::bin::Writer) {
        w.bool(self.enabled);
        w.usize(self.counters.len());
        for (name, &v) in &self.counters {
            w.str(name);
            w.u64(v);
        }
        w.usize(self.gauges.len());
        for (name, &v) in &self.gauges {
            w.str(name);
            w.i64(v);
        }
        w.usize(self.histograms.len());
        for (name, h) in &self.histograms {
            w.str(name);
            h.save_bin(w);
        }
    }

    /// Rebuilds a registry written by [`Registry::save_bin`].
    ///
    /// # Errors
    ///
    /// [`crate::bin::BinError`] on a truncated or corrupt stream.
    pub fn load_bin(r: &mut crate::bin::Reader<'_>) -> Result<Self, crate::bin::BinError> {
        let enabled = r.bool()?;
        let mut counters = BTreeMap::new();
        for _ in 0..r.usize()? {
            let name = r.str()?;
            counters.insert(name, r.u64()?);
        }
        let mut gauges = BTreeMap::new();
        for _ in 0..r.usize()? {
            let name = r.str()?;
            gauges.insert(name, r.i64()?);
        }
        let mut histograms = BTreeMap::new();
        for _ in 0..r.usize()? {
            let name = r.str()?;
            histograms.insert(name, Histogram::load_bin(r)?);
        }
        Ok(Self { enabled, counters, gauges, histograms })
    }

    /// Captures every series into an immutable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Drops every recorded series (the enabled flag is untouched).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// True when no series has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

fn entry_or_default<'a, V: Default>(map: &'a mut BTreeMap<String, V>, name: &str) -> &'a mut V {
    // Avoids allocating the key on the hot (existing-entry) path.
    if !map.contains_key(name) {
        map.insert(name.to_string(), V::default());
    }
    map.get_mut(name).expect("just inserted")
}

/// A running wall-clock timer bound to a histogram name; see
/// [`Registry::start_timer`].
#[derive(Debug)]
#[must_use = "a timer only records when passed to Registry::stop_timer"]
pub struct ScopedTimer {
    name: String,
    start: Instant,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = Registry::new();
        assert_eq!(r.counter_value("x"), 0);
        r.incr("x");
        r.incr_by("x", 41);
        assert_eq!(r.counter_value("x"), 42);
        assert_eq!(r.counter_value("never"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        r.gauge("depth", 3);
        r.gauge("depth", -7);
        assert_eq!(r.gauge_value("depth"), -7);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = Registry::disabled();
        r.incr("c");
        r.gauge("g", 5);
        r.observe("h", 100);
        let t = r.start_timer("t");
        r.stop_timer(t);
        assert!(r.is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn enable_toggle_preserves_history() {
        let mut r = Registry::new();
        r.incr("c");
        r.set_enabled(false);
        r.incr("c");
        r.set_enabled(true);
        r.incr("c");
        assert_eq!(r.counter_value("c"), 2);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(3), (4, 7));
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn histogram_summary_tracks_exact_and_bucketed_stats() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1100);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 220.0).abs() < 1e-9);
        // p50 falls in bucket [16,31] -> midpoint 23.
        assert_eq!(s.p50, 23);
        // p99 falls in the bucket containing 1000, clamped to max.
        assert!(s.p99 >= 512 && s.p99 <= 1000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().summary();
        assert_eq!((s.count, s.min, s.max, s.p50, s.p99), (0, 0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_diff_isolates_the_interval() {
        let mut h = Histogram::new();
        h.observe(5);
        h.observe(9);
        let before = h.clone();
        h.observe(1000);
        h.observe(1001);
        let d = h.diff(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 2001);
        assert_eq!(d.quantile(0.5), 767); // midpoint of [512,1023]
    }

    #[test]
    fn merge_folds_everything_in() {
        let mut a = Histogram::new();
        a.observe(4);
        let mut b = Histogram::new();
        b.observe(1000);
        b.observe(2);
        a.merge(&b);
        assert_eq!((a.count(), a.sum(), a.min(), a.max()), (3, 1006, 2, 1000));
        let mut r = Registry::new();
        r.merge_histogram("h", &a);
        assert_eq!(r.histogram("h").map(Histogram::count), Some(3));
        let mut off = Registry::disabled();
        off.merge_histogram("h", &a);
        assert!(off.is_empty());
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.observe(v * 7 % 513);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn quantile_boundaries_are_pinned() {
        // Empty: 0 for every q, finite or not.
        let empty = Histogram::new();
        for q in [0.0, 0.5, 1.0, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(empty.quantile(q), 0, "empty histogram at q={q}");
        }

        let mut h = Histogram::new();
        for v in [3u64, 50, 700, 9001] {
            h.observe(v);
        }
        // q=0 (and anything at or below it): bucket [2,3] has midpoint
        // 2, clamped up to min=3. Out-of-range q behaves like 0.0.
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.quantile(-1.0), 3);
        assert_eq!(h.quantile(f64::NEG_INFINITY), 3);
        // q=1 (and anything at or above it): bucket [8192,16383] has
        // midpoint 12287, clamped down to max=9001.
        assert_eq!(h.quantile(1.0), 9001);
        assert_eq!(h.quantile(2.0), 9001);
        assert_eq!(h.quantile(f64::INFINITY), 9001);
        // NaN behaves as q=0, without panicking.
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));

        // Bucket resolution, made visible: with observations {33, 50}
        // the q=0 answer is the [32,63] midpoint 47, NOT min=33.
        let mut coarse = Histogram::new();
        coarse.observe(33);
        coarse.observe(50);
        assert_eq!(coarse.quantile(0.0), 47);
        assert_eq!(coarse.quantile(1.0), 47);

        // A single observation answers every quantile with itself.
        let mut one = Histogram::new();
        one.observe(42);
        for q in [0.0, 0.25, 0.5, 1.0, f64::NAN] {
            assert_eq!(one.quantile(q), 42, "single-sample histogram at q={q}");
        }
    }

    #[test]
    fn registry_merge_folds_all_series() {
        let mut a = Registry::new();
        a.incr_by("shared", 2);
        a.incr_by("only_a", 1);
        a.gauge("depth", 3);
        a.observe("lat", 4);
        let mut b = Registry::new();
        b.incr_by("shared", 40);
        b.incr_by("only_b", 7);
        b.gauge("depth", -9);
        b.observe("lat", 1000);
        b.observe("other", 2);
        a.merge(&b);
        assert_eq!(a.counter_value("shared"), 42);
        assert_eq!(a.counter_value("only_a"), 1);
        assert_eq!(a.counter_value("only_b"), 7);
        assert_eq!(a.gauge_value("depth"), -9);
        let lat = a.histogram("lat").expect("merged");
        assert_eq!((lat.count(), lat.sum(), lat.min(), lat.max()), (2, 1004, 4, 1000));
        assert_eq!(a.histogram("other").map(Histogram::count), Some(1));
    }

    #[test]
    fn registry_merge_is_order_insensitive_for_counters_and_histograms() {
        let mut shards = Vec::new();
        for s in 0..4u64 {
            let mut r = Registry::new();
            r.incr_by("trials", s + 1);
            r.observe("misses", s * 100);
            shards.push(r);
        }
        let mut fwd = Registry::new();
        for r in &shards {
            fwd.merge(r);
        }
        let mut rev = Registry::new();
        for r in shards.iter().rev() {
            rev.merge(r);
        }
        assert_eq!(fwd.counter_value("trials"), rev.counter_value("trials"));
        assert_eq!(fwd.snapshot().counters, rev.snapshot().counters);
        assert_eq!(fwd.histogram("misses"), rev.histogram("misses"));
    }

    #[test]
    fn registry_merge_respects_disabled_aggregate() {
        let mut src = Registry::new();
        src.incr("c");
        let mut off = Registry::disabled();
        off.merge(&src);
        assert!(off.is_empty());
    }

    #[test]
    fn registry_merge_saturates_counters() {
        let mut a = Registry::new();
        a.incr_by("c", u64::MAX - 1);
        let mut b = Registry::new();
        b.incr_by("c", 10);
        a.merge(&b);
        assert_eq!(a.counter_value("c"), u64::MAX);
    }

    #[test]
    fn time_records_a_duration() {
        let mut r = Registry::new();
        let out = r.time("phase.ns", || 7u32);
        assert_eq!(out, 7);
        assert_eq!(r.histogram("phase.ns").map(Histogram::count), Some(1));
    }

    #[test]
    fn clear_keeps_enabled_flag() {
        let mut r = Registry::new();
        r.incr("a");
        r.clear();
        assert!(r.is_empty());
        assert!(r.is_enabled());
    }

    #[test]
    fn registries_round_trip_through_the_binary_codec() {
        let mut reg = Registry::new();
        reg.incr_by("jobs.done", 41);
        reg.gauge("queue.depth", -3);
        for v in [1u64, 1, 8, 1 << 40, u64::MAX] {
            reg.observe("lat.ns", v);
        }
        let mut w = crate::bin::Writer::new();
        reg.save_bin(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::bin::Reader::new(&bytes);
        let back = Registry::load_bin(&mut r).unwrap();
        assert!(r.is_done());
        assert_eq!(back.counter_value("jobs.done"), 41);
        assert_eq!(back.gauge_value("queue.depth"), -3);
        let (a, b) = (reg.histogram("lat.ns").unwrap(), back.histogram("lat.ns").unwrap());
        assert_eq!(a.summary(), b.summary());
        assert!(back.is_enabled());

        // Truncation at every byte boundary is an error, never a panic.
        for cut in 0..bytes.len() {
            let mut r = crate::bin::Reader::new(&bytes[..cut]);
            assert!(Registry::load_bin(&mut r).is_err(), "cut at {cut}");
        }
    }
}
