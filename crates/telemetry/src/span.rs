//! Span events and the bounded flight recorder.
//!
//! A [`SpanEvent`] is one timed (or instantaneous) occurrence with
//! thread and shard attribution; the [`FlightRecorder`] is a fixed-size
//! ring that keeps the most recent events and counts what it had to
//! drop. The recorder is `Sync` (atomics + one mutex), so one instance
//! can be shared by every worker thread of a sharded run, and the cost
//! discipline matches [`Registry`](crate::Registry): every recording
//! entry point branches on the enabled flag first, so a disabled
//! recorder costs one atomic load per call site.

use crate::json::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One trace event: a completed span (`dur_us` present) or an instant
/// marker (`dur_us` absent). Timestamps are microseconds since the
/// owning recorder's epoch, matching the Chrome trace-event clock.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    /// Event name (e.g. `"shard.exec"`).
    pub name: String,
    /// Category, used by trace viewers to group and filter.
    pub cat: String,
    /// Logical thread of execution (worker slot, not OS thread id).
    pub tid: u64,
    /// Shard attribution, when the event belongs to one shard.
    pub shard: Option<u64>,
    /// Start timestamp, µs since the recorder epoch.
    pub start_us: u64,
    /// Duration in µs for completed spans; `None` marks an instant.
    pub dur_us: Option<u64>,
    /// Free-form key/value annotations (emitted as Chrome `args`).
    pub args: Vec<(String, Value)>,
}

/// A bounded in-memory event ring ("flight recorder"): the newest
/// events survive, the oldest are overwritten, and the number of
/// casualties is counted. See the [module docs](self) for the cost
/// discipline.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: AtomicBool,
    epoch: Instant,
    capacity: usize,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<SpanEvent>>,
}

impl FlightRecorder {
    /// An enabled recorder holding at most `capacity` events
    /// (`capacity` 0 is promoted to 1 so the ring is never degenerate).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            capacity,
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// A disabled recorder: every recording call is a no-op until
    /// [`set_enabled`](Self::set_enabled) turns it on.
    pub fn disabled(capacity: usize) -> Self {
        let r = Self::new(capacity);
        r.enabled.store(false, Ordering::Release);
        r
    }

    /// Whether recording calls take effect.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Turns recording on or off; already-recorded events are kept.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Microseconds since the recorder's epoch (0 when disabled, so
    /// callers can sample unconditionally before a span).
    pub fn now_us(&self) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records a raw event, overwriting the oldest when full.
    pub fn record(&self, event: SpanEvent) {
        if !self.is_enabled() {
            return;
        }
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Records a completed span that started at `start_us` (a prior
    /// [`now_us`](Self::now_us) sample) and ends now.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &self,
        name: impl Into<String>,
        cat: impl Into<String>,
        tid: u64,
        shard: Option<u64>,
        start_us: u64,
        args: Vec<(String, Value)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let end = self.now_us();
        self.record(SpanEvent {
            name: name.into(),
            cat: cat.into(),
            tid,
            shard,
            start_us,
            dur_us: Some(end.saturating_sub(start_us)),
            args,
        });
    }

    /// Records an instantaneous marker event.
    pub fn instant(
        &self,
        name: impl Into<String>,
        cat: impl Into<String>,
        tid: u64,
        shard: Option<u64>,
        args: Vec<(String, Value)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let now = self.now_us();
        self.record(SpanEvent {
            name: name.into(),
            cat: cat.into(),
            tid,
            shard,
            start_us: now,
            dur_us: None,
            args,
        });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight recorder poisoned").len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drains every retained event in recording order and resets the
    /// dropped counter (the enabled flag is untouched).
    pub fn take(&self) -> Vec<SpanEvent> {
        self.dropped.store(0, Ordering::Relaxed);
        self.ring.lock().expect("flight recorder poisoned").drain(..).collect()
    }

    /// Clones every retained event in recording order, leaving the ring
    /// intact.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        self.ring.lock().expect("flight recorder poisoned").iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, start: u64) -> SpanEvent {
        SpanEvent {
            name: name.into(),
            cat: "test".into(),
            tid: 0,
            shard: None,
            start_us: start,
            dur_us: Some(1),
            args: Vec::new(),
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let r = FlightRecorder::new(3);
        for i in 0..5 {
            r.record(ev("e", i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r.take().into_iter().map(|e| e.start_us).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(r.dropped(), 0, "take resets the drop counter");
        assert!(r.is_empty());
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = FlightRecorder::disabled(8);
        r.record(ev("e", 0));
        r.instant("i", "t", 0, None, Vec::new());
        r.complete("c", "t", 0, None, 0, Vec::new());
        assert!(r.is_empty());
        assert_eq!(r.now_us(), 0);
        r.set_enabled(true);
        r.instant("i", "t", 0, Some(3), Vec::new());
        assert_eq!(r.len(), 1);
        assert_eq!(r.snapshot()[0].shard, Some(3));
    }

    #[test]
    fn complete_measures_a_nonnegative_duration() {
        let r = FlightRecorder::new(8);
        let t0 = r.now_us();
        r.complete("span", "test", 2, Some(1), t0, vec![("k".into(), Value::UInt(7))]);
        let events = r.take();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!((e.tid, e.shard, &e.name[..]), (2, Some(1), "span"));
        assert!(e.dur_us.is_some());
        assert_eq!(e.args[0], ("k".to_string(), Value::UInt(7)));
    }

    #[test]
    fn snapshot_leaves_the_ring_intact() {
        let r = FlightRecorder::new(4);
        r.record(ev("a", 0));
        assert_eq!(r.snapshot().len(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn zero_capacity_is_promoted_to_one() {
        let r = FlightRecorder::new(0);
        r.record(ev("a", 0));
        r.record(ev("b", 1));
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let r = FlightRecorder::new(64);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let r = &r;
                scope.spawn(move || {
                    for _ in 0..8 {
                        r.instant("tick", "test", t, Some(t), Vec::new());
                    }
                });
            }
        });
        assert_eq!(r.len(), 32);
    }
}
