//! Hand-rolled JSON: a [`Value`] tree, a compact serializer
//! (`Display`), a minimal recursive-descent [`parse`]r, and JSONL
//! helpers. The workspace deliberately carries no serde; this module is
//! the single place JSON syntax is known.

use std::fmt;

/// A JSON value. Objects keep insertion order (emission is
/// deterministic), and integers stay exact — `u64` counters never round
/// through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer, emitted exactly.
    UInt(u64),
    /// Negative-capable integer, emitted exactly.
    Int(i64),
    /// Floating-point number. Non-finite values emit as `null`.
    Float(f64),
    /// String (escaped on emission).
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Member lookup on objects (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `i64` when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(v) => Some(v),
            Value::UInt(v) => Some(v as f64),
            Value::Int(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice of elements.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{0008}' => f.write_str("\\b")?,
            '\u{000C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::UInt(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) if v.is_finite() => write!(f, "{v}"),
            Value::Float(_) => f.write_str("null"),
            Value::Str(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Why [`parse`] rejected its input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(v)
}

/// Parses a JSONL stream: one document per non-empty line.
pub fn parse_jsonl(text: &str) -> Result<Vec<Value>, ParseError> {
    text.lines().filter(|l| !l.trim().is_empty()).map(parse).collect()
}

/// A leniently parsed JSONL stream: the records that parsed, plus the
/// torn tail (if any) that was truncated away.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonlStream {
    /// Every record up to the first unparseable trailing line.
    pub records: Vec<Value>,
    /// Non-empty lines dropped from the tail (`0` for a clean stream).
    /// A partially flushed writer tears at most the final line, so this
    /// is normally `0` or `1`; callers surface it so a truncation never
    /// passes silently.
    pub truncated: usize,
    /// The parse error of the first dropped line, kept for reporting.
    pub tail_error: Option<ParseError>,
}

/// Parses a JSONL stream leniently: a torn *tail* is truncated and
/// reported instead of failing the whole stream.
///
/// Daemon clients replay session streams that may have been cut
/// mid-line (a killed process, a partially flushed file). Every line up
/// to the tear parses strictly — the lenience never masks corruption in
/// the middle of a stream.
///
/// # Errors
///
/// [`ParseError`] of the offending line when an unparseable line is
/// followed by a *parseable* one: that is interior corruption, not a
/// torn tail, and truncating it would silently drop records. Strict
/// consumers (tests, `verify`) should keep using [`parse_jsonl`].
pub fn parse_jsonl_lossy(text: &str) -> Result<JsonlStream, ParseError> {
    let mut records = Vec::new();
    let mut tail: Option<ParseError> = None;
    let mut truncated = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match parse(line) {
            Ok(v) => match tail {
                // A good line after a bad one is interior corruption,
                // not a torn tail: fail strictly.
                Some(err) => return Err(err),
                None => records.push(v),
            },
            Err(e) => {
                if tail.is_none() {
                    tail = Some(e);
                }
                truncated += 1;
            }
        }
    }
    Ok(JsonlStream { records, truncated, tail_error: tail })
}

/// Serializes a value as one JSONL line (no interior newlines possible:
/// the serializer escapes them).
pub fn to_jsonl_line(value: &Value) -> String {
    let mut s = value.to_string();
    s.push('\n');
    s
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, reason: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, reason: reason.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("non-ascii in \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let cp = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.error("lone low surrogate"));
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are guaranteed valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.error("expected digit"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-17", "3.5", "\"hi\""] {
            let v = parse(text).expect(text);
            assert_eq!(v.to_string(), text, "round-trip of {text}");
        }
    }

    #[test]
    fn integers_stay_exact() {
        let v = parse("18446744073709551615").expect("u64::MAX");
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v = parse("-9223372036854775808").expect("i64::MIN");
        assert_eq!(v.as_i64(), Some(i64::MIN));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Value::str("a\"b\\c\nd\te\u{0008}\u{000C}\u{0001}§λ");
        let text = original.to_string();
        assert_eq!(parse(&text).expect("parses"), original);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""§""#).unwrap(), Value::str("§"));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(parse(r#""😀""#).unwrap(), Value::str("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":{"d":true},"e":[]}"#;
        let v = parse(text).expect("parses");
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("c").and_then(|c| c.get("d")).and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(Value::as_array).map(<[Value]>::len), Some(3));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "01x",
            "\"unterminated",
            "{\"a\":1} extra",
            "[1 2]",
            "nul",
        ] {
            assert!(parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn non_finite_floats_emit_null() {
        assert_eq!(Value::Float(f64::NAN).to_string(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn jsonl_streams_parse_per_line() {
        let stream = "{\"trial\":0}\n\n{\"trial\":1}\n";
        let docs = parse_jsonl(stream).expect("parses");
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[1].get("trial").and_then(Value::as_u64), Some(1));
        let line = to_jsonl_line(&docs[0]);
        assert!(line.ends_with('\n') && !line[..line.len() - 1].contains('\n'));
    }

    #[test]
    fn jsonl_empty_stream_parses_to_nothing() {
        assert_eq!(parse_jsonl("").expect("empty"), vec![]);
        assert_eq!(parse_jsonl("\n\n  \n").expect("blank lines"), vec![]);
    }

    #[test]
    fn jsonl_truncated_final_line_is_an_error() {
        // A crashed writer leaves a half-record on the last line; the
        // stream as a whole must be rejected, not silently shortened.
        let stream = "{\"trial\":0}\n{\"trial\":1,\"cyc";
        let err = parse_jsonl(stream).expect_err("truncated record");
        assert!(err.reason.contains("unterminated") || err.reason.contains("expected"), "{err}");
    }

    #[test]
    fn jsonl_interleaved_non_json_is_an_error() {
        let stream = "{\"trial\":0}\nlog: something human-readable\n{\"trial\":1}\n";
        assert!(parse_jsonl(stream).is_err());
        // Same stream with the stray line removed parses fine.
        let clean = "{\"trial\":0}\n{\"trial\":1}\n";
        assert_eq!(parse_jsonl(clean).expect("clean stream").len(), 2);
    }

    #[test]
    fn lossy_jsonl_truncates_and_reports_a_torn_tail() {
        // The same half-flushed stream the strict parser rejects: the
        // lenient parser keeps the complete records and surfaces the
        // drop count so a replaying daemon client degrades gracefully.
        let stream = "{\"trial\":0}\n{\"trial\":1}\n{\"trial\":2,\"cyc";
        let out = parse_jsonl_lossy(stream).expect("lenient parse");
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.records[1].get("trial").and_then(Value::as_u64), Some(1));
        assert_eq!(out.truncated, 1);
        assert!(out.tail_error.is_some());
        // Strict mode still refuses the same stream.
        assert!(parse_jsonl(stream).is_err());
    }

    #[test]
    fn lossy_jsonl_passes_clean_streams_through() {
        let clean = "{\"trial\":0}\n{\"trial\":1}\n";
        let out = parse_jsonl_lossy(clean).expect("clean stream");
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.truncated, 0);
        assert!(out.tail_error.is_none());
        let empty = parse_jsonl_lossy("\n \n").expect("blank stream");
        assert!(empty.records.is_empty() && empty.truncated == 0);
    }

    #[test]
    fn lossy_jsonl_still_rejects_interior_corruption() {
        // A bad line *followed by a good one* is not a torn tail — the
        // lenience must not silently drop records from the middle.
        let stream = "{\"trial\":0}\nlog: human noise\n{\"trial\":1}\n";
        let err = parse_jsonl_lossy(stream).expect_err("interior corruption");
        assert!(!err.reason.is_empty());
    }

    #[test]
    fn object_lookup_misses_cleanly() {
        let v = parse(r#"{"a":1}"#).unwrap();
        assert!(v.get("missing").is_none());
        assert!(Value::Null.get("a").is_none());
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.0));
    }
}
