//! The process-wide flight recorder and the Chrome trace-event
//! exporter/parser.
//!
//! The exporter emits the subset of the [Chrome trace-event format]
//! that Perfetto and `chrome://tracing` render directly: one top-level
//! object with a `traceEvents` array of `"X"` (complete span), `"i"`
//! (instant), and `"M"` (metadata) events, timestamps and durations in
//! microseconds. The parser accepts the same subset (wrapper object or
//! bare array) and reconstructs [`SpanEvent`]s, so a written
//! `trace.json` can be validated by round-trip.
//!
//! The [`recorder`] global exists so deep layers (the shard runner, the
//! simulator) can emit spans without threading a handle through every
//! signature; it starts disabled, and a disabled recorder costs one
//! atomic load per call site.
//!
//! [Chrome trace-event format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::{self, Value};
use crate::span::{FlightRecorder, SpanEvent};
use std::sync::OnceLock;

/// Ring capacity of the [`recorder`] global: large enough for every
/// span of a full sweep (hundreds of shards × a handful of spans each)
/// with generous headroom, small enough (< 10 MB worst case) that an
/// always-allocated ring is harmless.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// The single `pid` this in-process tracer emits (the workspace is one
/// process; "processes" in the viewer are not meaningful here).
pub const TRACE_PID: u64 = 1;

static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-wide flight recorder. Starts disabled; call
/// [`enable`] (or `set_enabled(true)` on the returned handle) to start
/// collecting.
pub fn recorder() -> &'static FlightRecorder {
    RECORDER.get_or_init(|| FlightRecorder::disabled(DEFAULT_CAPACITY))
}

/// Turns the global recorder on.
pub fn enable() {
    recorder().set_enabled(true);
}

/// Turns the global recorder off (retained events are kept).
pub fn disable() {
    recorder().set_enabled(false);
}

/// Whether the global recorder is collecting.
pub fn is_enabled() -> bool {
    recorder().is_enabled()
}

/// Serializes events as a Chrome trace-event document: metadata
/// (`thread_name`) events for every distinct `tid` first, then the
/// spans in recording order. Shard attribution rides in `args.shard`.
pub fn chrome_trace(events: &[SpanEvent]) -> Value {
    let mut out = Vec::with_capacity(events.len() + 4);
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let name = if tid == 0 { "main".to_string() } else { format!("worker-{tid}") };
        out.push(Value::Object(vec![
            ("name".into(), Value::str("thread_name")),
            ("ph".into(), Value::str("M")),
            ("pid".into(), Value::UInt(TRACE_PID)),
            ("tid".into(), Value::UInt(tid)),
            ("args".into(), Value::Object(vec![("name".into(), Value::str(name))])),
        ]));
    }
    for e in events {
        let mut fields = vec![
            ("name".into(), Value::str(e.name.clone())),
            ("cat".into(), Value::str(e.cat.clone())),
            ("ph".into(), Value::str(if e.dur_us.is_some() { "X" } else { "i" })),
            ("ts".into(), Value::UInt(e.start_us)),
        ];
        if let Some(dur) = e.dur_us {
            fields.push(("dur".into(), Value::UInt(dur)));
        } else {
            // Instant events need a scope; "t" (thread) renders as a
            // tick on the emitting track.
            fields.push(("s".into(), Value::str("t")));
        }
        fields.push(("pid".into(), Value::UInt(TRACE_PID)));
        fields.push(("tid".into(), Value::UInt(e.tid)));
        let mut args = Vec::with_capacity(e.args.len() + 1);
        if let Some(shard) = e.shard {
            args.push(("shard".into(), Value::UInt(shard)));
        }
        args.extend(e.args.iter().cloned());
        fields.push(("args".into(), Value::Object(args)));
        out.push(Value::Object(fields));
    }
    Value::Object(vec![("traceEvents".into(), Value::Array(out))])
}

/// [`chrome_trace`] rendered as compact JSON text.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    chrome_trace(events).to_string()
}

/// Why [`parse_chrome_trace`] rejected its input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// Not JSON at all.
    Json(json::ParseError),
    /// JSON, but not a recognizable trace-event document.
    Shape(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Json(e) => write!(f, "trace is not valid JSON: {e}"),
            TraceError::Shape(s) => write!(f, "trace shape error: {s}"),
        }
    }
}

impl std::error::Error for TraceError {}

fn shape(msg: impl Into<String>) -> TraceError {
    TraceError::Shape(msg.into())
}

/// Parses (and thereby validates) a Chrome trace-event document
/// produced by [`chrome_trace_json`] — or any document in the same
/// subset: a `{"traceEvents": [...]}` wrapper or a bare event array,
/// with `"X"`/`"i"`/`"M"` phases. Metadata events are validated and
/// skipped; `args.shard` is lifted back into [`SpanEvent::shard`], so
/// `parse_chrome_trace(&chrome_trace_json(events))` reproduces
/// `events` exactly.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<SpanEvent>, TraceError> {
    let doc = json::parse(text).map_err(TraceError::Json)?;
    let raw = match &doc {
        Value::Array(items) => items.as_slice(),
        Value::Object(_) => doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .ok_or_else(|| shape("top-level object lacks a traceEvents array"))?,
        _ => return Err(shape("expected an object or array at top level")),
    };
    let mut events = Vec::with_capacity(raw.len());
    for (i, item) in raw.iter().enumerate() {
        let field_u64 = |key: &str| {
            item.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| shape(format!("event {i}: missing numeric '{key}'")))
        };
        let name = item
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| shape(format!("event {i}: missing string 'name'")))?;
        let ph = item
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| shape(format!("event {i}: missing string 'ph'")))?;
        let tid = field_u64("tid")?;
        field_u64("pid")?;
        let dur_us = match ph {
            "M" => continue,
            "X" => Some(field_u64("dur")?),
            "i" | "I" => None,
            other => return Err(shape(format!("event {i}: unsupported phase {other:?}"))),
        };
        let start_us = field_u64("ts")?;
        let cat = item.get("cat").and_then(Value::as_str).unwrap_or("").to_string();
        let mut shard = None;
        let mut args = Vec::new();
        if let Some(Value::Object(fields)) = item.get("args") {
            for (k, v) in fields {
                if k == "shard" && shard.is_none() {
                    if let Some(s) = v.as_u64() {
                        shard = Some(s);
                        continue;
                    }
                }
                args.push((k.clone(), v.clone()));
            }
        }
        events.push(SpanEvent { name: name.to_string(), cat, tid, shard, start_us, dur_us, args });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: "shard.exec".into(),
                cat: "runner".into(),
                tid: 1,
                shard: Some(3),
                start_us: 10,
                dur_us: Some(250),
                args: vec![("attempt".into(), Value::UInt(0))],
            },
            SpanEvent {
                name: "shard.retry".into(),
                cat: "runner".into(),
                tid: 2,
                shard: Some(4),
                start_us: 40,
                dur_us: None,
                args: vec![("error".into(), Value::str("injected panic"))],
            },
            SpanEvent {
                name: "experiment".into(),
                cat: "cli".into(),
                tid: 0,
                shard: None,
                start_us: 0,
                dur_us: Some(999),
                args: Vec::new(),
            },
        ]
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        let events = sample_events();
        let text = chrome_trace_json(&events);
        let back = parse_chrome_trace(&text).expect("round-trip parses");
        assert_eq!(back, events);
    }

    #[test]
    fn export_emits_thread_metadata_and_phases() {
        let doc = chrome_trace(&sample_events());
        let items = doc.get("traceEvents").and_then(Value::as_array).expect("wrapper");
        // 3 distinct tids -> 3 metadata events, then the 3 spans.
        assert_eq!(items.len(), 6);
        let phases: Vec<&str> =
            items.iter().filter_map(|e| e.get("ph").and_then(Value::as_str)).collect();
        assert_eq!(phases, vec!["M", "M", "M", "X", "i", "X"]);
        let instant = &items[4];
        assert_eq!(instant.get("s").and_then(Value::as_str), Some("t"));
        assert_eq!(
            instant.get("args").and_then(|a| a.get("shard")).and_then(Value::as_u64),
            Some(4)
        );
    }

    #[test]
    fn bare_arrays_parse_too() {
        let events = sample_events();
        let doc = chrome_trace(&events);
        let array = doc.get("traceEvents").expect("wrapper").clone();
        let back = parse_chrome_trace(&array.to_string()).expect("bare array parses");
        assert_eq!(back, events);
    }

    #[test]
    fn malformed_traces_are_rejected_with_shape_errors() {
        assert!(matches!(parse_chrome_trace("not json"), Err(TraceError::Json(_))));
        for text in [
            "42",
            "{\"events\":[]}",
            "[{\"ph\":\"X\"}]",
            "[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":0}]",
            "[{\"name\":\"a\",\"ph\":\"Q\",\"ts\":0,\"dur\":1,\"pid\":1,\"tid\":0}]",
        ] {
            assert!(
                matches!(parse_chrome_trace(text), Err(TraceError::Shape(_))),
                "should reject {text}"
            );
        }
        assert_eq!(parse_chrome_trace("[]").expect("empty trace"), vec![]);
    }

    #[test]
    fn global_recorder_starts_disabled() {
        // Other tests may have enabled it; the OnceLock is process-wide.
        // Assert only the stable property: the handle is a singleton.
        assert!(std::ptr::eq(recorder(), recorder()));
        assert_eq!(recorder().capacity(), DEFAULT_CAPACITY);
    }
}
