//! Point-in-time captures of a [`Registry`](crate::Registry) with
//! interval (diff) semantics.

use crate::json::Value;
use crate::registry::Histogram;
use std::collections::BTreeMap;

/// An immutable capture of every series in a registry. Two snapshots of
/// the same registry can be [diffed](Snapshot::diff) to meter exactly one
/// experiment phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (instantaneous, so diff keeps the later value).
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// Counter value at capture time (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value at capture time (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The interval between `earlier` and `self`: counters and histograms
    /// subtract (saturating, so series born after `earlier` pass through),
    /// gauges keep the later value.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let d = match earlier.histograms.get(k) {
                    Some(e) => h.diff(e),
                    None => h.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        Snapshot { counters, gauges: self.gauges.clone(), histograms }
    }

    /// Serializes the snapshot as a JSON object:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: summary}}`.
    pub fn to_json(&self) -> Value {
        let counters = self.counters.iter().map(|(k, &v)| (k.clone(), Value::UInt(v))).collect();
        let gauges = self.gauges.iter().map(|(k, &v)| (k.clone(), Value::Int(v))).collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let s = h.summary();
                (
                    k.clone(),
                    Value::Object(vec![
                        ("count".into(), Value::UInt(s.count)),
                        ("sum".into(), Value::UInt(s.sum)),
                        ("min".into(), Value::UInt(s.min)),
                        ("max".into(), Value::UInt(s.max)),
                        ("mean".into(), Value::Float(s.mean)),
                        ("p50".into(), Value::UInt(s.p50)),
                        ("p95".into(), Value::UInt(s.p95)),
                        ("p99".into(), Value::UInt(s.p99)),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.incr_by("tlb.dtlb.hits", 10);
        r.incr_by("tlb.dtlb.misses", 3);
        r.gauge("spec.depth", 4);
        r.observe("lat", 100);
        r.observe("lat", 200);
        r
    }

    #[test]
    fn diff_subtracts_counters_and_keeps_new_series() {
        let mut r = sample_registry();
        let before = r.snapshot();
        r.incr_by("tlb.dtlb.hits", 5);
        r.incr("fresh.counter");
        r.observe("lat", 400);
        let d = r.snapshot().diff(&before);
        assert_eq!(d.counter("tlb.dtlb.hits"), 5);
        assert_eq!(d.counter("tlb.dtlb.misses"), 0);
        assert_eq!(d.counter("fresh.counter"), 1);
        assert_eq!(d.histograms["lat"].count(), 1);
        assert_eq!(d.histograms["lat"].sum(), 400);
    }

    #[test]
    fn diff_of_identical_snapshots_is_zero() {
        let r = sample_registry();
        let s = r.snapshot();
        let d = s.diff(&s.clone());
        assert!(d.counters.values().all(|&v| v == 0));
        assert!(d.histograms.values().all(|h| h.count() == 0));
    }

    #[test]
    fn to_json_contains_every_series() {
        let s = sample_registry().snapshot();
        let v = s.to_json();
        let counters = v.get("counters").expect("counters");
        assert_eq!(counters.get("tlb.dtlb.hits").and_then(Value::as_u64), Some(10));
        assert_eq!(
            v.get("gauges").and_then(|g| g.get("spec.depth")).and_then(Value::as_i64),
            Some(4)
        );
        let lat = v.get("histograms").and_then(|h| h.get("lat")).expect("lat");
        assert_eq!(lat.get("count").and_then(Value::as_u64), Some(2));
        assert_eq!(lat.get("sum").and_then(Value::as_u64), Some(300));
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let s = sample_registry().snapshot();
        let text = s.to_json().to_string();
        let parsed = crate::json::parse(&text).expect("valid json");
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("tlb.dtlb.misses")).and_then(Value::as_u64),
            Some(3)
        );
    }
}
