//! Zero-dependency metrics layer for the PACMAN reproduction.
//!
//! Every quantitative claim in the paper — TLB reverse-engineering knees
//! (§7, Figures 5–6), oracle accuracy (§8.1), brute-force timing (§8.2) —
//! used to live only in printed tables. This crate gives the workspace a
//! machine-readable spine:
//!
//! - [`Registry`] — named monotonic [counters](Registry::incr_by),
//!   [gauges](Registry::gauge), and log₂-bucketed latency
//!   [histograms](Registry::observe) with p50/p95/p99 summaries;
//! - [`ScopedTimer`] — RAII wall-clock timing into a histogram;
//! - [`Snapshot`] / [`Snapshot::diff`] — point-in-time captures with
//!   interval semantics, so a caller can meter one experiment phase;
//! - [`json`] — a hand-rolled serializer *and* minimal parser (the
//!   workspace deliberately has no serde), plus JSONL helpers;
//! - [`bin`] — the little-endian binary codec snapshot files encode
//!   through, with typed truncation/corruption errors;
//! - [`span`] — timed span events with thread+shard attribution and a
//!   bounded ring-buffer [`FlightRecorder`](span::FlightRecorder);
//! - [`trace`] — the process-wide recorder plus a Chrome trace-event
//!   exporter/parser (`trace.json`, viewable in Perfetto).
//!
//! Cost discipline mirrors `SpecTrace`: every mutating entry point
//! branches on [`Registry::is_enabled`] first, so a disabled registry
//! costs one predictable branch per call site. The simulator's own hot
//! paths go further and keep raw `u64` fields, exporting into a
//! `Registry` only at snapshot boundaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bin;
pub mod json;
mod registry;
mod snapshot;
pub mod span;
pub mod trace;

pub use registry::{Histogram, HistogramSummary, Registry, ScopedTimer};
pub use snapshot::Snapshot;
pub use span::{FlightRecorder, SpanEvent};
