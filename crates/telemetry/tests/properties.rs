//! Property tests for the metrics registry and the JSON layer.

use pacman_telemetry::json::{self, Value};
use pacman_telemetry::Registry;
use proptest::prelude::*;

/// One recording call against a registry.
#[derive(Clone, Debug)]
enum Op {
    Incr(u8),
    IncrBy(u8, u64),
    Gauge(u8, i64),
    Observe(u8, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8).prop_map(Op::Incr),
        (0u8..8, any::<u64>()).prop_map(|(k, v)| Op::IncrBy(k, v >> 8)),
        (0u8..8, any::<i64>()).prop_map(|(k, v)| Op::Gauge(k, v)),
        // Shifted so no realistic op sequence saturates a histogram sum,
        // which would break the diff-equals-interval identity below.
        (0u8..8, any::<u64>()).prop_map(|(k, v)| Op::Observe(k, v >> 16)),
    ]
}

fn apply(reg: &mut Registry, ops: &[Op]) {
    for op in ops {
        let name = |k: u8| format!("series.{k}");
        match *op {
            Op::Incr(k) => reg.incr(&name(k)),
            Op::IncrBy(k, v) => reg.incr_by(&name(k), v),
            Op::Gauge(k, v) => reg.gauge(&name(k), v),
            Op::Observe(k, v) => reg.observe(&name(k), v),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn disabled_registry_stays_empty(ops in prop::collection::vec(arb_op(), 0..64)) {
        let mut reg = Registry::disabled();
        apply(&mut reg, &ops);
        prop_assert!(reg.is_empty());
        for k in 0..8u8 {
            prop_assert_eq!(reg.counter_value(&format!("series.{k}")), 0);
            prop_assert_eq!(reg.gauge_value(&format!("series.{k}")), 0);
            prop_assert!(reg.histogram(&format!("series.{k}")).is_none());
        }
        let snap = reg.snapshot();
        prop_assert!(snap.counters.is_empty());
        prop_assert!(snap.gauges.is_empty());
        prop_assert!(snap.histograms.is_empty());
    }

    #[test]
    fn diff_of_interval_equals_interval_ops(
        before_ops in prop::collection::vec(arb_op(), 0..32),
        interval_ops in prop::collection::vec(arb_op(), 0..32),
    ) {
        // Recording A, snapshotting, recording B: diff(B-snap, A-snap)
        // must equal recording B alone (counters and histogram counts).
        let mut reg = Registry::new();
        apply(&mut reg, &before_ops);
        let base = reg.snapshot();
        apply(&mut reg, &interval_ops);
        let d = reg.snapshot().diff(&base);

        let mut fresh = Registry::new();
        apply(&mut fresh, &interval_ops);
        let expect = fresh.snapshot();

        for k in 0..8u8 {
            let name = format!("series.{k}");
            prop_assert_eq!(d.counter(&name), expect.counter(&name));
            let got = d.histograms.get(&name).map(|h| (h.count(), h.sum()));
            let want = expect.histograms.get(&name).map(|h| (h.count(), h.sum()));
            // A series observed only before the interval diffs to count 0,
            // while the fresh registry never saw it at all.
            prop_assert_eq!(got.unwrap_or((0, 0)), want.unwrap_or((0, 0)));
        }
    }

    #[test]
    fn merge_is_commutative_over_counters_and_histograms(
        ops_a in prop::collection::vec(arb_op(), 0..48),
        ops_b in prop::collection::vec(arb_op(), 0..48),
    ) {
        // Shard merge order must not change exported counters or
        // histograms. (Gauges are deliberately excluded: they are
        // last-writer-wins, so merge order is their semantics.)
        let mut a = Registry::new();
        apply(&mut a, &ops_a);
        let mut b = Registry::new();
        apply(&mut b, &ops_b);

        let mut ab = Registry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Registry::new();
        ba.merge(&b);
        ba.merge(&a);

        let (sab, sba) = (ab.snapshot(), ba.snapshot());
        prop_assert_eq!(&sab.counters, &sba.counters);
        prop_assert_eq!(&sab.histograms, &sba.histograms);
    }

    #[test]
    fn merge_is_associative_over_all_series(
        ops_a in prop::collection::vec(arb_op(), 0..32),
        ops_b in prop::collection::vec(arb_op(), 0..32),
        ops_c in prop::collection::vec(arb_op(), 0..32),
    ) {
        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c), exported-snapshot-wise. This one
        // covers gauges too: last-writer-wins is associative as long as
        // left-to-right order is preserved.
        let mut a = Registry::new();
        apply(&mut a, &ops_a);
        let mut b = Registry::new();
        apply(&mut b, &ops_b);
        let mut c = Registry::new();
        apply(&mut c, &ops_c);

        let mut left = Registry::new();
        left.merge(&a);
        left.merge(&b);
        let mut left_total = Registry::new();
        left_total.merge(&left);
        left_total.merge(&c);

        let mut right = Registry::new();
        right.merge(&b);
        right.merge(&c);
        let mut right_total = Registry::new();
        right_total.merge(&a);
        right_total.merge(&right);

        let (sl, sr) = (left_total.snapshot(), right_total.snapshot());
        prop_assert_eq!(&sl.counters, &sr.counters);
        prop_assert_eq!(&sl.gauges, &sr.gauges);
        prop_assert_eq!(&sl.histograms, &sr.histograms);
    }

    #[test]
    fn snapshot_json_round_trips(ops in prop::collection::vec(arb_op(), 0..64)) {
        let mut reg = Registry::new();
        apply(&mut reg, &ops);
        let snap = reg.snapshot();
        let text = snap.to_json().to_string();
        let parsed = json::parse(&text).expect("serializer emits valid JSON");
        for (name, &v) in &snap.counters {
            let got = parsed
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(Value::as_u64);
            prop_assert_eq!(got, Some(v));
        }
        for (name, h) in &snap.histograms {
            let got = parsed
                .get("histograms")
                .and_then(|c| c.get(name))
                .and_then(|h| h.get("count"))
                .and_then(Value::as_u64);
            prop_assert_eq!(got, Some(h.count()));
        }
    }

    #[test]
    fn arbitrary_strings_survive_json(s in prop::collection::vec(any::<u32>(), 0..24)) {
        let s: String = s
            .into_iter()
            .filter_map(char::from_u32)
            .collect();
        let v = Value::Object(vec![("k".into(), Value::str(s.clone()))]);
        let parsed = json::parse(&v.to_string()).expect("valid");
        prop_assert_eq!(parsed.get("k").and_then(Value::as_str), Some(s.as_str()));
    }
}
