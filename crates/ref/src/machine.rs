//! The in-order, non-speculative architectural reference interpreter.
//!
//! [`RefMachine`] executes the `pacman-isa` instruction set with precise
//! exceptions and nothing else: no caches, no TLBs, no predictors, no
//! speculation window, no cycle accounting. It reuses the workspace's
//! architectural *state containers* — [`Cpu`] for the register file and
//! the paging structures for memory — so that committed state can be
//! compared field-for-field against the speculative core, but the
//! instruction semantics here are an independent reimplementation (the
//! thing the conformance harness actually cross-checks).
//!
//! Deliberate scope limits, mirrored by the scenario generator:
//!
//! - `CNTPCT_EL0` and `PMC0` read as 0 (their architectural values are
//!   cycle-dependent, which an untimed interpreter cannot reproduce);
//!   generated programs never read them.
//! - Physical frames are allocated by the same bump allocator in the
//!   same mapping order as on the speculative machine, so unaligned
//!   accesses that straddle a page boundary read the same bytes on both.

use pacman_isa::ptr::{self, VirtualAddress, PAGE_SIZE};
use pacman_isa::{decode, encode, Inst, PacModifier, Reg, SysReg};
use pacman_qarma::{PacComputer, QarmaKey};
use pacman_uarch::mem::{FramePool, PhysMemory};
use pacman_uarch::{AccessKind, Cpu, El, PageTables, Perms, Stop, Trap};

/// The reference machine: architectural state plus flat paged memory.
#[derive(Debug)]
pub struct RefMachine {
    /// Architectural register state (the same container the speculative
    /// core uses, compared field-for-field by the harness).
    pub cpu: Cpu,
    /// Retired-instruction count (the architectural value of `PMC1`).
    pub retired: u64,
    /// Byte ranges written by the most recently retired instruction, as
    /// `(va, len)` pairs — the harness's incremental memory-equivalence
    /// check.
    pub last_stores: Vec<(u64, u64)>,
    tables: PageTables,
    phys: PhysMemory,
    vbar: u64,
    pmc0_el0_enabled: bool,
    cntfrq: u64,
}

impl Default for RefMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl RefMachine {
    /// A fresh machine with empty memory, the M1's 24 MHz system-counter
    /// frequency, and the CPU reset state.
    #[must_use]
    pub fn new() -> Self {
        Self::new_with_pool(FramePool::default())
    }

    /// A fresh machine that recycles physical frames from `pool` instead
    /// of allocating. The bump allocator restarts at the same PFN, so a
    /// pooled machine is bit-identical to [`RefMachine::new`].
    #[must_use]
    pub fn new_with_pool(pool: FramePool) -> Self {
        let mut phys = PhysMemory::new_with_pool(pool);
        let tables = PageTables::new(&mut phys);
        Self {
            cpu: Cpu::new(),
            retired: 0,
            last_stores: Vec::new(),
            tables,
            phys,
            vbar: 0,
            pmc0_el0_enabled: false,
            cntfrq: 24_000_000,
        }
    }

    /// Returns this machine to the reset state of [`RefMachine::new`],
    /// recycling its physical frames through the pool so a conformance
    /// shard can run thousands of scenarios without per-scenario heap
    /// allocation.
    pub fn reset(&mut self) {
        *self = Self::new_with_pool(self.phys.take_frame_pool());
    }

    /// Installs the syscall entry point (the kernel's exception vector).
    pub fn set_vbar(&mut self, va: u64) {
        self.vbar = va;
    }

    /// Maps a fresh zeroed page at `va` (page-aligned), returning its
    /// physical frame number.
    pub fn map_page(&mut self, va: u64, perms: Perms) -> u64 {
        self.tables.map_fresh(&mut self.phys, VirtualAddress::new(va), perms)
    }

    /// Maps `len` bytes starting at page-aligned `va`. Clamped at the top
    /// of the address space like [`pacman_uarch::Machine::map_region`]
    /// (`va + len` would overflow for the last page).
    pub fn map_region(&mut self, va: u64, len: u64, perms: Perms) {
        let mut a = va & !(PAGE_SIZE - 1);
        let end = va.saturating_add(len);
        while a < end {
            self.map_page(a, perms);
            match a.checked_add(PAGE_SIZE) {
                Some(next) => a = next,
                None => break,
            }
        }
    }

    /// Encodes and writes a program at `va` (must be mapped).
    ///
    /// # Panics
    ///
    /// Panics if an instruction does not encode or the region is
    /// unmapped — setup bugs, not runtime conditions.
    pub fn load_program(&mut self, va: u64, program: &[Inst]) -> u64 {
        for (i, inst) in program.iter().enumerate() {
            let w = encode(inst).expect("program instruction must encode");
            let addr = va.wrapping_add(4 * i as u64);
            let pa = self
                .tables
                .translate(&self.phys, VirtualAddress::new(addr))
                .expect("program region must be mapped");
            self.phys.write_u32(pa, w);
        }
        va.wrapping_add(4 * program.len() as u64)
    }

    /// Reads one byte through the page tables with no side effects;
    /// `None` if `va` is unmapped.
    #[must_use]
    pub fn debug_read_u8(&self, va: u64) -> Option<u8> {
        let pa = self.tables.translate(&self.phys, VirtualAddress::new(va))?;
        Some(self.phys.read_u8(pa))
    }

    /// Reads a u64 through the page tables with no side effects; `None`
    /// if `va` is unmapped.
    #[must_use]
    pub fn debug_read_u64(&self, va: u64) -> Option<u64> {
        let pa = self.tables.translate(&self.phys, VirtualAddress::new(va))?;
        Some(self.phys.read_u64(pa))
    }

    /// Translates and permission-checks one architectural access,
    /// returning the physical address or the precise trap.
    fn access(&mut self, va: u64, el: El, access: AccessKind) -> Result<u64, Trap> {
        if !ptr::is_canonical(va) {
            return Err(Trap::TranslationFault { va, el, access });
        }
        let v = VirtualAddress::new(va);
        let (entry, _level) = self
            .tables
            .walk(&self.phys, v)
            .map_err(|_| Trap::TranslationFault { va, el, access })?;
        let p = entry.perms;
        let allowed = match access {
            AccessKind::Load => p.read,
            AccessKind::Store => p.write,
            AccessKind::Fetch => p.execute,
        };
        if (el == El::El0 && !p.user) || !allowed {
            return Err(Trap::PermissionFault { va, el, access });
        }
        Ok(entry.pfn * PAGE_SIZE + v.page_offset())
    }

    /// The PAC datapath for `key` over the current key registers.
    fn pac_computer(&self, key: pacman_isa::PacKey) -> PacComputer {
        PacComputer::new(QarmaKey::from_u128(self.cpu.keys.get(key)), ptr::VA_BITS)
    }

    fn modifier_value(&self, modifier: PacModifier) -> u64 {
        match modifier {
            PacModifier::Reg(m) => self.cpu.get(m),
            PacModifier::Zero => 0,
        }
    }

    fn read_sysreg(&self, reg: SysReg, el: El) -> Option<u64> {
        if el == El::El0 && !reg.el0_readable(self.pmc0_el0_enabled) {
            return None;
        }
        match reg {
            // Cycle-dependent counters are outside the architectural
            // contract of an untimed interpreter; the generator never
            // reads them (see module docs).
            SysReg::CntpctEl0 | SysReg::Pmc0 => Some(0),
            SysReg::CntfrqEl0 => Some(self.cntfrq),
            SysReg::Pmc1 => Some(self.retired),
            SysReg::Pmcr0 => Some(u64::from(self.pmc0_el0_enabled)),
            SysReg::CurrentEl => Some(match el {
                El::El0 => 0,
                El::El1 => 1 << 2,
            }),
            _ => self.cpu.keys.read_half(reg),
        }
    }

    fn write_sysreg(&mut self, reg: SysReg, value: u64, el: El) -> bool {
        if el == El::El0 {
            return false;
        }
        match reg {
            SysReg::Pmcr0 => {
                self.pmc0_el0_enabled = value & 1 == 1;
                true
            }
            SysReg::CntpctEl0
            | SysReg::CntfrqEl0
            | SysReg::Pmc0
            | SysReg::Pmc1
            | SysReg::CurrentEl => false,
            _ => self.cpu.keys.write_half(reg, value),
        }
    }

    /// Runs from the current PC until `HLT`, a trap, or `max_insts`.
    ///
    /// # Errors
    ///
    /// Returns the first architectural [`Trap`].
    pub fn run(&mut self, max_insts: u64) -> Result<Stop, Trap> {
        for _ in 0..max_insts {
            if let Some(stop) = self.step()? {
                return Ok(stop);
            }
        }
        Ok(Stop::InstLimit)
    }

    /// Fetches, decodes and retires exactly one instruction.
    ///
    /// # Errors
    ///
    /// Returns the architectural [`Trap`] raised by this instruction.
    pub fn step(&mut self) -> Result<Option<Stop>, Trap> {
        self.last_stores.clear();
        let pc = self.cpu.pc;
        let el = self.cpu.el;
        let pa = self.access(pc, el, AccessKind::Fetch)?;
        let word = self.phys.read_u32(pa);
        let inst = decode(word).map_err(|_| Trap::Decode { pc })?;
        // Retired is bumped before execution (matching the core), so a
        // trapping instruction still counts as dispatched for `PMC1`.
        self.retired += 1;
        self.exec(pc, el, inst)
    }

    fn load(&mut self, va: u64, el: El, byte: bool) -> Result<u64, Trap> {
        let pa = self.access(va, el, AccessKind::Load)?;
        Ok(if byte { u64::from(self.phys.read_u8(pa)) } else { self.phys.read_u64(pa) })
    }

    fn store(&mut self, va: u64, el: El, value: u64, byte: bool) -> Result<(), Trap> {
        let pa = self.access(va, el, AccessKind::Store)?;
        if byte {
            self.phys.write_u8(pa, value as u8);
            self.last_stores.push((va, 1));
        } else {
            self.phys.write_u64(pa, value);
            self.last_stores.push((va, 8));
        }
        Ok(())
    }

    fn branch(&mut self, pc: u64, taken: bool, offset: i32) {
        self.cpu.pc =
            if taken { pc.wrapping_add_signed(4 * i64::from(offset)) } else { pc.wrapping_add(4) };
    }

    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, pc: u64, el: El, inst: Inst) -> Result<Option<Stop>, Trap> {
        let next = pc.wrapping_add(4);
        match inst {
            Inst::Nop | Inst::Isb | Inst::Dsb => self.cpu.pc = next,
            Inst::Hlt => return Ok(Some(Stop::Hlt)),
            Inst::Svc { .. } => {
                if el != El::El0 || self.vbar == 0 {
                    return Err(Trap::BadSvc { pc });
                }
                self.cpu.saved = Some(pacman_uarch::cpu::SavedContext {
                    regs: self.cpu.regs,
                    sp: self.cpu.sp[El::El0 as usize],
                    pc: next,
                });
                self.cpu.el = El::El1;
                self.cpu.pc = self.vbar;
            }
            Inst::Eret => {
                if el != El::El1 {
                    return Err(Trap::BadEret { pc });
                }
                let saved = self.cpu.saved.take().ok_or(Trap::BadEret { pc })?;
                let (x0, x1) = (self.cpu.regs[0], self.cpu.regs[1]);
                self.cpu.regs = saved.regs;
                self.cpu.regs[0] = x0;
                self.cpu.regs[1] = x1;
                self.cpu.sp[El::El0 as usize] = saved.sp;
                self.cpu.el = El::El0;
                self.cpu.pc = saved.pc;
            }
            Inst::MovZ { rd, imm, shift } => {
                self.cpu.set(rd, u64::from(imm) << (16 * u32::from(shift)));
                self.cpu.pc = next;
            }
            Inst::MovK { rd, imm, shift } => {
                let sh = 16 * u32::from(shift);
                let old = self.cpu.get(rd);
                self.cpu.set(rd, (old & !(0xFFFFu64 << sh)) | (u64::from(imm) << sh));
                self.cpu.pc = next;
            }
            Inst::MovN { rd, imm, shift } => {
                self.cpu.set(rd, !(u64::from(imm) << (16 * u32::from(shift))));
                self.cpu.pc = next;
            }
            Inst::MovReg { rd, rn } => {
                let v = self.cpu.get(rn);
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::Csel { rd, rn, rm, cond } => {
                let v = if cond.holds(self.cpu.cmp.0, self.cpu.cmp.1) {
                    self.cpu.get(rn)
                } else {
                    self.cpu.get(rm)
                };
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::AddImm { rd, rn, imm } => {
                let v = self.cpu.get(rn).wrapping_add(u64::from(imm));
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::SubImm { rd, rn, imm } => {
                let v = self.cpu.get(rn).wrapping_sub(u64::from(imm));
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::AddReg { rd, rn, rm } => {
                let v = self.cpu.get(rn).wrapping_add(self.cpu.get(rm));
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::SubReg { rd, rn, rm } => {
                let v = self.cpu.get(rn).wrapping_sub(self.cpu.get(rm));
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::AndReg { rd, rn, rm } => {
                let v = self.cpu.get(rn) & self.cpu.get(rm);
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::OrrReg { rd, rn, rm } => {
                let v = self.cpu.get(rn) | self.cpu.get(rm);
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::EorReg { rd, rn, rm } => {
                let v = self.cpu.get(rn) ^ self.cpu.get(rm);
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::LslImm { rd, rn, shift } => {
                let v = self.cpu.get(rn) << shift;
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::LsrImm { rd, rn, shift } => {
                let v = self.cpu.get(rn) >> shift;
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::Mul { rd, rn, rm } => {
                let v = self.cpu.get(rn).wrapping_mul(self.cpu.get(rm));
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::CmpImm { rn, imm } => {
                self.cpu.cmp = (self.cpu.get(rn) as i64, i64::from(imm));
                self.cpu.pc = next;
            }
            Inst::CmpReg { rn, rm } => {
                self.cpu.cmp = (self.cpu.get(rn) as i64, self.cpu.get(rm) as i64);
                self.cpu.pc = next;
            }
            Inst::Ldr { rt, rn, offset } | Inst::Ldrb { rt, rn, offset } => {
                let va = self.cpu.get(rn).wrapping_add_signed(offset.into());
                let v = self.load(va, el, matches!(inst, Inst::Ldrb { .. }))?;
                self.cpu.set(rt, v);
                self.cpu.pc = next;
            }
            Inst::Str { rt, rn, offset } | Inst::Strb { rt, rn, offset } => {
                let va = self.cpu.get(rn).wrapping_add_signed(offset.into());
                let v = self.cpu.get(rt);
                self.store(va, el, v, matches!(inst, Inst::Strb { .. }))?;
                self.cpu.pc = next;
            }
            Inst::Ldp { rt, rt2, rn, offset } => {
                // Sequential: a fault on the second access leaves the
                // first destination written (matching the core).
                let base = self.cpu.get(rn).wrapping_add_signed(offset.into());
                for (reg, addr) in [(rt, base), (rt2, base.wrapping_add(8))] {
                    let v = self.load(addr, el, false)?;
                    self.cpu.set(reg, v);
                }
                self.cpu.pc = next;
            }
            Inst::Stp { rt, rt2, rn, offset } => {
                let base = self.cpu.get(rn).wrapping_add_signed(offset.into());
                for (reg, addr) in [(rt, base), (rt2, base.wrapping_add(8))] {
                    let v = self.cpu.get(reg);
                    self.store(addr, el, v, false)?;
                }
                self.cpu.pc = next;
            }
            Inst::B { offset } => self.cpu.pc = pc.wrapping_add_signed(4 * i64::from(offset)),
            Inst::Bl { offset } => {
                self.cpu.set(Reg::LR, next);
                self.cpu.pc = pc.wrapping_add_signed(4 * i64::from(offset));
            }
            Inst::BCond { cond, offset } => {
                let taken = cond.holds(self.cpu.cmp.0, self.cpu.cmp.1);
                self.branch(pc, taken, offset);
            }
            Inst::Cbz { rt, offset } => {
                let taken = self.cpu.get(rt) == 0;
                self.branch(pc, taken, offset);
            }
            Inst::Cbnz { rt, offset } => {
                let taken = self.cpu.get(rt) != 0;
                self.branch(pc, taken, offset);
            }
            Inst::Tbz { rt, bit, offset } => {
                let taken = (self.cpu.get(rt) >> bit) & 1 == 0;
                self.branch(pc, taken, offset);
            }
            Inst::Tbnz { rt, bit, offset } => {
                let taken = (self.cpu.get(rt) >> bit) & 1 == 1;
                self.branch(pc, taken, offset);
            }
            Inst::Br { rn } | Inst::Blr { rn } => {
                let target = self.cpu.get(rn);
                if matches!(inst, Inst::Blr { .. }) {
                    self.cpu.set(Reg::LR, next);
                }
                self.cpu.pc = target;
            }
            Inst::Ret => self.cpu.pc = self.cpu.get(Reg::LR),
            Inst::Pac { key, rd, modifier } => {
                let m = self.modifier_value(modifier);
                let pacs = self.pac_computer(key);
                let signed = ptr::sign(&pacs, self.cpu.get(rd), m);
                self.cpu.set(rd, signed);
                self.cpu.pc = next;
            }
            Inst::Aut { key, rd, modifier } => {
                let m = self.modifier_value(modifier);
                let pacs = self.pac_computer(key);
                let result = ptr::authenticate(&pacs, self.cpu.get(rd), m, key);
                self.cpu.set(rd, result.pointer());
                self.cpu.pc = next;
            }
            Inst::Xpac { rd, .. } => {
                let v = ptr::canonicalize(self.cpu.get(rd));
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::Pacga { rd, rn, rm } => {
                let pacs = PacComputer::new(QarmaKey::from_u128(self.cpu.keys.ga()), ptr::VA_BITS);
                let tag = pacs.pac(self.cpu.get(rn), self.cpu.get(rm));
                self.cpu.set(rd, tag << 48);
                self.cpu.pc = next;
            }
            Inst::Mrs { rd, sysreg } => {
                let v =
                    self.read_sysreg(sysreg, el).ok_or(Trap::SysRegAccess { reg: sysreg, el })?;
                self.cpu.set(rd, v);
                self.cpu.pc = next;
            }
            Inst::Msr { sysreg, rn } => {
                let v = self.cpu.get(rn);
                if !self.write_sysreg(sysreg, v, el) {
                    return Err(Trap::SysRegAccess { reg: sysreg, el });
                }
                self.cpu.pc = next;
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_isa::PacKey;

    const CODE: u64 = 0x40_0000;
    const DATA: u64 = 0x1000_0000;

    fn booted(program: &[Inst]) -> RefMachine {
        let mut m = RefMachine::new();
        m.map_region(CODE, 4 * program.len() as u64, Perms::user_rwx());
        m.map_region(DATA, PAGE_SIZE, Perms::user_rw());
        m.load_program(CODE, program);
        m.cpu.pc = CODE;
        m
    }

    #[test]
    fn alu_and_store_roundtrip() {
        let mut m = booted(&[
            Inst::MovZ { rd: Reg::x(0), imm: 0x1000, shift: 1 },
            Inst::AddImm { rd: Reg::x(1), rn: Reg::x(0), imm: 8 },
            Inst::Str { rt: Reg::x(1), rn: Reg::x(0), offset: 0 },
            Inst::Ldr { rt: Reg::x(2), rn: Reg::x(0), offset: 0 },
            Inst::Hlt,
        ]);
        assert_eq!(m.run(100), Ok(Stop::Hlt));
        assert_eq!(m.cpu.regs[2], 0x1000_0008);
        assert_eq!(m.debug_read_u64(DATA), Some(0x1000_0008));
        assert_eq!(m.retired, 5);
    }

    #[test]
    fn unmapped_load_raises_precise_translation_fault() {
        let mut m = booted(&[
            Inst::MovZ { rd: Reg::x(0), imm: 0xDEAD, shift: 1 },
            Inst::Ldr { rt: Reg::x(1), rn: Reg::x(0), offset: 0 },
        ]);
        let trap = m.run(100).unwrap_err();
        assert_eq!(
            trap,
            Trap::TranslationFault { va: 0xDEAD_0000, el: El::El0, access: AccessKind::Load }
        );
        assert_eq!(m.cpu.pc, CODE + 4, "PC is precise: the faulting instruction's address");
    }

    #[test]
    fn pac_roundtrip_matches_sign_then_authenticate() {
        let mut m = booted(&[
            Inst::Pac { key: PacKey::Da, rd: Reg::x(0), modifier: PacModifier::Zero },
            Inst::Aut { key: PacKey::Da, rd: Reg::x(0), modifier: PacModifier::Zero },
            Inst::Hlt,
        ]);
        m.cpu.regs[0] = DATA;
        assert_eq!(m.run(100), Ok(Stop::Hlt));
        assert_eq!(m.cpu.regs[0], DATA, "sign/auth round-trip restores the pointer");
    }

    #[test]
    fn svc_without_vbar_is_bad_svc() {
        let mut m = booted(&[Inst::Svc { imm: 0 }]);
        assert_eq!(m.run(100), Err(Trap::BadSvc { pc: CODE }));
    }
}
