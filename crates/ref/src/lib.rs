//! The architectural reference machine and differential conformance
//! harness.
//!
//! Every paper claim the workspace verifies rests on the assumption that
//! `pacman-uarch`'s speculative core is *architecturally* correct: wrong
//! paths, eager squashes, and suppressed speculative faults must never
//! leak into committed state (paper §5–6 — the attack lives exactly on
//! that boundary). This crate provides the oracle for that assumption:
//!
//! - [`RefMachine`] — a small in-order, non-speculative interpreter over
//!   the `pacman-isa` instruction set with precise exceptions, PAC via
//!   `pacman-qarma`, and the same 16 KB paging — but no caches, no TLBs,
//!   no predictors and no speculation window. One instruction per
//!   [`RefMachine::step`]; what you see is committed state.
//! - [`Scenario`] / [`generate`] — a seeded program/scenario generator
//!   producing branchy, trappy, PAC-heavy programs plus an optional EL1
//!   syscall handler, installed identically on both machines.
//! - [`run_scenario`] / [`minimize`] — the differential driver: steps the
//!   reference machine and the speculative [`pacman_uarch::Machine`] in
//!   lockstep, asserting committed-state equivalence (registers, memory,
//!   exception PC/cause) at every retire boundary, and shrinks any
//!   counterexample to a minimal reproducer.
//! - [`self_test`] — runs the harness against deliberately broken
//!   speculative cores ([`pacman_uarch::InjectedBugs`]) and reports
//!   whether each injected bug was caught, proving the oracle has teeth.
//!
//! # Example
//!
//! ```
//! use pacman_ref::{generate, quiet_config, run_scenario};
//!
//! let scenario = generate(7);
//! let cfg = quiet_config();
//! assert!(run_scenario(&scenario, &cfg, 512).is_none(), "no divergence");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod gen;
pub mod machine;

pub use diff::{
    broken_configs, minimize, quiet_config, run_scenario, self_test, BrokenConfig, Divergence,
    ScenarioArena, SelfTestResult,
};
pub use gen::{generate, scenario_seed, Scenario, CODE_BASE, DATA_BASE, DATA_LEN, HANDLER_BASE};
pub use machine::RefMachine;
