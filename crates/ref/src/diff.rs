//! The differential driver: lockstep execution, the equivalence
//! relation, counterexample shrinking, and the harness self-test.
//!
//! The equivalence relation checked at every retire boundary is
//! *committed architectural state*: the register file (X0..=X30, both
//! stack pointers), the program counter, the exception level, the lazy
//! compare flags, the saved EL0 context, and every byte the retired
//! instruction wrote. Traps must agree in cause *and* architectural
//! position (same retire boundary, same precise PC). Microarchitectural
//! state — caches, TLBs, predictors, cycle counts — is deliberately
//! outside the relation; that is the whole point of the oracle.

use pacman_isa::ptr::PAGE_SIZE;
use pacman_isa::Inst;
use pacman_uarch::{Machine, MachineConfig};

use crate::gen::{generate, scenario_seed, Scenario, CODE_BASE, DATA_BASE, DATA_LEN};
use crate::machine::RefMachine;

/// The machine configuration conformance runs under: the default attack
/// platform with OS noise off (noise only perturbs microarchitectural
/// state, but quiet runs keep the cycle stream deterministic too).
#[must_use]
pub fn quiet_config() -> MachineConfig {
    MachineConfig { os_noise: 0.0, ..MachineConfig::default() }
}

/// One detected divergence between the reference machine and the
/// speculative core, with the (possibly minimized) reproducer inline.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The scenario seed that reproduces this divergence.
    pub seed: u64,
    /// Retire boundary (0-based instruction count) where state split.
    pub step: u64,
    /// The reference machine's committed PC at the divergence.
    pub pc: u64,
    /// Which component of the equivalence relation failed:
    /// `regs`/`sp`/`pc`/`el`/`cmp`/`saved`/`memory`/`trap`/`stop`.
    pub kind: &'static str,
    /// Human-readable mismatch description (ref vs core values).
    pub detail: String,
    /// The reproducing EL0 program.
    pub program: Vec<Inst>,
    /// The reproducing EL1 handler (empty if none installed).
    pub handler: Vec<Inst>,
}

impl Divergence {
    /// The program rendered as one assembly line per instruction.
    #[must_use]
    pub fn program_text(&self) -> Vec<String> {
        self.program.iter().map(ToString::to_string).collect()
    }

    /// The handler rendered as one assembly line per instruction.
    #[must_use]
    pub fn handler_text(&self) -> Vec<String> {
        self.handler.iter().map(ToString::to_string).collect()
    }
}

/// Compares committed register/flag/context state, returning the first
/// mismatch as `(kind, detail)`.
fn state_mismatch(r: &RefMachine, m: &Machine) -> Option<(&'static str, String)> {
    for i in 0..31 {
        if r.cpu.regs[i] != m.cpu.regs[i] {
            return Some((
                "regs",
                format!("x{i}: ref {:#x} vs core {:#x}", r.cpu.regs[i], m.cpu.regs[i]),
            ));
        }
    }
    for (el, (a, b)) in r.cpu.sp.iter().zip(m.cpu.sp.iter()).enumerate() {
        if a != b {
            return Some(("sp", format!("sp_el{el}: ref {a:#x} vs core {b:#x}")));
        }
    }
    if r.cpu.pc != m.cpu.pc {
        return Some(("pc", format!("ref {:#x} vs core {:#x}", r.cpu.pc, m.cpu.pc)));
    }
    if r.cpu.el != m.cpu.el {
        return Some(("el", format!("ref {:?} vs core {:?}", r.cpu.el, m.cpu.el)));
    }
    if r.cpu.cmp != m.cpu.cmp {
        return Some(("cmp", format!("ref {:?} vs core {:?}", r.cpu.cmp, m.cpu.cmp)));
    }
    match (&r.cpu.saved, &m.cpu.saved) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            if a.regs != b.regs || a.sp != b.sp || a.pc != b.pc {
                return Some(("saved", "saved EL0 contexts differ".into()));
            }
        }
        (a, b) => {
            return Some((
                "saved",
                format!("saved context: ref {} vs core {}", ctx(a.is_some()), ctx(b.is_some())),
            ));
        }
    }
    None
}

fn ctx(present: bool) -> &'static str {
    if present {
        "present"
    } else {
        "absent"
    }
}

/// Compares the bytes most recently stored by the reference machine
/// against the speculative core's memory.
fn store_mismatch(r: &RefMachine, m: &Machine) -> Option<(&'static str, String)> {
    for &(va, len) in &r.last_stores {
        for k in 0..len {
            let a = r.debug_read_u8(va + k);
            let b = m.mem.debug_read_u8(va + k);
            if a != b {
                return Some(("memory", format!("byte at {:#x}: ref {a:?} vs core {b:?}", va + k)));
            }
        }
    }
    None
}

/// Full-region memory sweep (code page + data region), run when a
/// scenario ends; every retire boundary in between is covered by the
/// incremental store check.
fn sweep_mismatch(r: &RefMachine, m: &Machine) -> Option<(&'static str, String)> {
    let regions = [(CODE_BASE, PAGE_SIZE), (DATA_BASE, DATA_LEN)];
    for (base, len) in regions {
        let mut va = base;
        while va < base + len {
            let a = r.debug_read_u64(va);
            let b = m.mem.debug_read_u64(va);
            if a != b {
                return Some(("memory", format!("word at {va:#x}: ref {a:?} vs core {b:?}")));
            }
            va += 8;
        }
    }
    None
}

/// Runs one scenario on both machines in lockstep, returning the first
/// divergence (with the *unminimized* reproducer) or `None` if the
/// machines conform for the whole run.
#[must_use]
pub fn run_scenario(
    scenario: &Scenario,
    config: &MachineConfig,
    max_steps: u64,
) -> Option<Divergence> {
    let mut r = RefMachine::new();
    let mut m = Machine::new(config.clone());
    scenario.install_ref(&mut r);
    scenario.install_uarch(&mut m);

    let divergence = |step: u64, pc: u64, kind: &'static str, detail: String| Divergence {
        seed: scenario.seed,
        step,
        pc,
        kind,
        detail,
        program: scenario.program.clone(),
        handler: scenario.handler.clone(),
    };

    for step in 0..max_steps {
        let pc = r.cpu.pc;
        let ro = r.step();
        let uo = m.step();
        let done = match (ro, uo) {
            (Err(a), Err(b)) => {
                if a != b {
                    return Some(divergence(step, pc, "trap", format!("ref {a:?} vs core {b:?}")));
                }
                true
            }
            (Err(a), Ok(_)) => {
                return Some(divergence(
                    step,
                    pc,
                    "trap",
                    format!("ref trapped ({a:?}), core retired"),
                ));
            }
            (Ok(_), Err(b)) => {
                return Some(divergence(
                    step,
                    pc,
                    "trap",
                    format!("ref retired, core trapped ({b:?})"),
                ));
            }
            (Ok(a), Ok(b)) => {
                if a.is_some() != b.is_some() {
                    return Some(divergence(step, pc, "stop", format!("ref {a:?} vs core {b:?}")));
                }
                a.is_some()
            }
        };
        if let Some((kind, detail)) = state_mismatch(&r, &m).or_else(|| store_mismatch(&r, &m)) {
            return Some(divergence(step, r.cpu.pc, kind, detail));
        }
        if done {
            return sweep_mismatch(&r, &m)
                .map(|(kind, detail)| divergence(step, r.cpu.pc, kind, detail));
        }
    }
    sweep_mismatch(&r, &m).map(|(kind, detail)| divergence(max_steps, r.cpu.pc, kind, detail))
}

/// Shrinks a diverging scenario to a minimal reproducer: instructions
/// are replaced with `NOP` (layout-preserving, so branch offsets keep
/// their meaning) and the program tail is truncated, as long as the
/// divergence persists. Returns the minimized scenario and its
/// divergence.
///
/// # Panics
///
/// Panics if `scenario` does not diverge under `config` — minimizing a
/// conforming scenario is a caller bug.
#[must_use]
pub fn minimize(
    scenario: &Scenario,
    config: &MachineConfig,
    max_steps: u64,
) -> (Scenario, Divergence) {
    let mut best = scenario.clone();
    let mut witness =
        run_scenario(&best, config, max_steps).expect("minimize requires a diverging scenario");
    loop {
        let mut changed = false;
        // NOP out program instructions, most recent first (later
        // instructions are more often incidental).
        for i in (0..best.program.len()).rev() {
            if best.program[i] == Inst::Nop {
                continue;
            }
            let mut candidate = best.clone();
            candidate.program[i] = Inst::Nop;
            if let Some(d) = run_scenario(&candidate, config, max_steps) {
                best = candidate;
                witness = d;
                changed = true;
            }
        }
        for i in (0..best.handler.len()).rev() {
            if best.handler[i] == Inst::Nop {
                continue;
            }
            let mut candidate = best.clone();
            candidate.handler[i] = Inst::Nop;
            if let Some(d) = run_scenario(&candidate, config, max_steps) {
                best = candidate;
                witness = d;
                changed = true;
            }
        }
        // Truncate the tail while the divergence survives.
        while best.program.len() > 1 {
            let mut candidate = best.clone();
            candidate.program.pop();
            match run_scenario(&candidate, config, max_steps) {
                Some(d) => {
                    best = candidate;
                    witness = d;
                    changed = true;
                }
                None => break,
            }
        }
        if !changed {
            break;
        }
    }
    (best, witness)
}

/// A deliberately broken speculative-core configuration the self-test
/// must catch.
#[derive(Clone, Debug)]
pub struct BrokenConfig {
    /// Stable name for reports (`eager-squash-disabled`, ...).
    pub name: &'static str,
    /// The sabotaged machine configuration.
    pub config: MachineConfig,
}

/// The broken configurations the self-test runs: eager squash disabled
/// (wrong-path registers leak into committed state) and speculative
/// fault suppression disabled (wrong-path faults trap architecturally).
#[must_use]
pub fn broken_configs() -> Vec<BrokenConfig> {
    let mut eager_squash_off = quiet_config();
    eager_squash_off.bugs.leak_squashed_registers = true;
    let mut suppression_off = quiet_config();
    suppression_off.bugs.commit_suppressed_faults = true;
    vec![
        BrokenConfig { name: "eager-squash-disabled", config: eager_squash_off },
        BrokenConfig { name: "fault-suppression-disabled", config: suppression_off },
    ]
}

/// Outcome of the self-test for one broken configuration.
#[derive(Clone, Debug)]
pub struct SelfTestResult {
    /// The broken configuration's name.
    pub name: &'static str,
    /// Scenarios run before the first divergence (or the whole budget).
    pub scenarios_run: u64,
    /// The minimized divergence, if the harness caught the bug.
    pub divergence: Option<Divergence>,
}

impl SelfTestResult {
    /// Whether the injected bug was detected.
    #[must_use]
    pub fn detected(&self) -> bool {
        self.divergence.is_some()
    }
}

/// Proves the oracle has teeth: runs generated scenarios against each
/// deliberately broken configuration until the harness flags a
/// divergence (then minimizes it) or the budget runs out.
#[must_use]
pub fn self_test(seed: u64, budget: u64, max_steps: u64) -> Vec<SelfTestResult> {
    broken_configs()
        .into_iter()
        .map(|broken| {
            for i in 0..budget {
                let scenario = generate(scenario_seed(seed ^ 0x5E1F_7E57, i));
                if run_scenario(&scenario, &broken.config, max_steps).is_some() {
                    let (_, witness) = minimize(&scenario, &broken.config, max_steps);
                    return SelfTestResult {
                        name: broken.name,
                        scenarios_run: i + 1,
                        divergence: Some(witness),
                    };
                }
            }
            SelfTestResult { name: broken.name, scenarios_run: budget, divergence: None }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_core_conforms_over_a_seed_batch() {
        let cfg = quiet_config();
        for i in 0..24u64 {
            let s = generate(scenario_seed(0x00C0_FFEE, i));
            let d = run_scenario(&s, &cfg, 512);
            assert!(
                d.is_none(),
                "seed {}: unexpected divergence: {:?}",
                s.seed,
                d.map(|d| (d.kind, d.detail))
            );
        }
    }

    #[test]
    fn self_test_catches_both_injected_bugs() {
        let results = self_test(7, 64, 512);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.detected(), "{} must be detected within the budget", r.name);
            let d = r.divergence.as_ref().unwrap();
            assert!(!d.program.is_empty());
            assert!(
                d.program.iter().any(|i| *i != Inst::Nop),
                "minimized repro should retain the triggering instructions"
            );
        }
    }

    #[test]
    fn minimize_preserves_the_divergence() {
        let broken = &broken_configs()[0];
        let diverging = (0..256u64)
            .map(|i| generate(scenario_seed(11, i)))
            .find(|s| run_scenario(s, &broken.config, 512).is_some())
            .expect("a divergence must exist in 256 scenarios");
        let (minimized, witness) = minimize(&diverging, &broken.config, 512);
        assert!(minimized.program.len() <= diverging.program.len());
        assert_eq!(witness.seed, diverging.seed);
        assert!(
            run_scenario(&minimized, &broken.config, 512).is_some(),
            "the minimized scenario still diverges"
        );
    }
}
