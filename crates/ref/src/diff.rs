//! The differential driver: lockstep execution, the equivalence
//! relation, counterexample shrinking, and the harness self-test.
//!
//! The equivalence relation checked at every retire boundary is
//! *committed architectural state*: the register file (X0..=X30, both
//! stack pointers), the program counter, the exception level, the lazy
//! compare flags, the saved EL0 context, and every byte the retired
//! instruction wrote. Traps must agree in cause *and* architectural
//! position (same retire boundary, same precise PC). Microarchitectural
//! state — caches, TLBs, predictors, cycle counts — is deliberately
//! outside the relation; that is the whole point of the oracle.

use pacman_isa::ptr::PAGE_SIZE;
use pacman_isa::Inst;
use pacman_uarch::{Machine, MachineConfig};

use crate::gen::{generate, scenario_seed, Scenario, CODE_BASE, DATA_BASE, DATA_LEN};
use crate::machine::RefMachine;

/// The machine configuration conformance runs under: the default attack
/// platform with OS noise off (noise only perturbs microarchitectural
/// state, but quiet runs keep the cycle stream deterministic too).
#[must_use]
pub fn quiet_config() -> MachineConfig {
    MachineConfig { os_noise: 0.0, ..MachineConfig::default() }
}

/// One detected divergence between the reference machine and the
/// speculative core, with the (possibly minimized) reproducer inline.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The scenario seed that reproduces this divergence.
    pub seed: u64,
    /// Retire boundary (0-based instruction count) where state split.
    pub step: u64,
    /// The reference machine's committed PC at the divergence.
    pub pc: u64,
    /// Which component of the equivalence relation failed:
    /// `regs`/`sp`/`pc`/`el`/`cmp`/`saved`/`memory`/`trap`/`stop`.
    pub kind: &'static str,
    /// Human-readable mismatch description (ref vs core values).
    pub detail: String,
    /// The reproducing EL0 program.
    pub program: Vec<Inst>,
    /// The reproducing EL1 handler (empty if none installed).
    pub handler: Vec<Inst>,
}

impl Divergence {
    /// The program rendered as one assembly line per instruction.
    #[must_use]
    pub fn program_text(&self) -> Vec<String> {
        self.program.iter().map(ToString::to_string).collect()
    }

    /// The handler rendered as one assembly line per instruction.
    #[must_use]
    pub fn handler_text(&self) -> Vec<String> {
        self.handler.iter().map(ToString::to_string).collect()
    }
}

/// Compares committed register/flag/context state, returning the first
/// mismatch as `(kind, detail)`.
fn state_mismatch(r: &RefMachine, m: &Machine) -> Option<(&'static str, String)> {
    for i in 0..31 {
        if r.cpu.regs[i] != m.cpu.regs[i] {
            return Some((
                "regs",
                format!("x{i}: ref {:#x} vs core {:#x}", r.cpu.regs[i], m.cpu.regs[i]),
            ));
        }
    }
    for (el, (a, b)) in r.cpu.sp.iter().zip(m.cpu.sp.iter()).enumerate() {
        if a != b {
            return Some(("sp", format!("sp_el{el}: ref {a:#x} vs core {b:#x}")));
        }
    }
    if r.cpu.pc != m.cpu.pc {
        return Some(("pc", format!("ref {:#x} vs core {:#x}", r.cpu.pc, m.cpu.pc)));
    }
    if r.cpu.el != m.cpu.el {
        return Some(("el", format!("ref {:?} vs core {:?}", r.cpu.el, m.cpu.el)));
    }
    if r.cpu.cmp != m.cpu.cmp {
        return Some(("cmp", format!("ref {:?} vs core {:?}", r.cpu.cmp, m.cpu.cmp)));
    }
    match (&r.cpu.saved, &m.cpu.saved) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            if a.regs != b.regs || a.sp != b.sp || a.pc != b.pc {
                return Some(("saved", "saved EL0 contexts differ".into()));
            }
        }
        (a, b) => {
            return Some((
                "saved",
                format!("saved context: ref {} vs core {}", ctx(a.is_some()), ctx(b.is_some())),
            ));
        }
    }
    None
}

fn ctx(present: bool) -> &'static str {
    if present {
        "present"
    } else {
        "absent"
    }
}

/// Compares the bytes most recently stored by the reference machine
/// against the speculative core's memory.
fn store_mismatch(r: &RefMachine, m: &Machine) -> Option<(&'static str, String)> {
    for &(va, len) in &r.last_stores {
        for k in 0..len {
            let a = r.debug_read_u8(va + k);
            let b = m.mem.debug_read_u8(va + k);
            if a != b {
                return Some(("memory", format!("byte at {:#x}: ref {a:?} vs core {b:?}", va + k)));
            }
        }
    }
    None
}

/// Full-region memory sweep (code page + data region), run when a
/// scenario ends; every retire boundary in between is covered by the
/// incremental store check.
fn sweep_mismatch(r: &RefMachine, m: &Machine) -> Option<(&'static str, String)> {
    let regions = [(CODE_BASE, PAGE_SIZE), (DATA_BASE, DATA_LEN)];
    for (base, len) in regions {
        let mut va = base;
        while va < base + len {
            let a = r.debug_read_u64(va);
            let b = m.mem.debug_read_u64(va);
            if a != b {
                return Some(("memory", format!("word at {va:#x}: ref {a:?} vs core {b:?}")));
            }
            va += 8;
        }
    }
    None
}

/// A reusable lockstep pair: one reference machine plus one speculative
/// core, reset in place between scenarios so their heap state (physical
/// frames, page tables, block-cache arena) is recycled instead of
/// reallocated. A conformance shard runs thousands of scenarios; keeping
/// the host allocator off that path is where the fuzz throughput comes
/// from. Resetting is bit-identical to building fresh machines (pinned
/// by `arena_reuse_matches_fresh_machines`).
#[derive(Debug)]
pub struct ScenarioArena {
    r: RefMachine,
    m: Machine,
}

impl ScenarioArena {
    /// Creates the lockstep pair for `config`.
    #[must_use]
    pub fn new(config: &MachineConfig) -> Self {
        Self { r: RefMachine::new(), m: Machine::new(config.clone()) }
    }

    /// Runs one scenario on both machines in lockstep (resetting both
    /// first), returning the first divergence (with the *unminimized*
    /// reproducer) or `None` if the machines conform for the whole run.
    pub fn run(&mut self, scenario: &Scenario, max_steps: u64) -> Option<Divergence> {
        self.r.reset();
        self.m.reset();
        let (r, m) = (&mut self.r, &mut self.m);
        scenario.install_ref(r);
        scenario.install_uarch(m);

        let divergence = |step: u64, pc: u64, kind: &'static str, detail: String| Divergence {
            seed: scenario.seed,
            step,
            pc,
            kind,
            detail,
            program: scenario.program.clone(),
            handler: scenario.handler.clone(),
        };

        for step in 0..max_steps {
            let pc = r.cpu.pc;
            let ro = r.step();
            let uo = m.step();
            let done = match (ro, uo) {
                (Err(a), Err(b)) => {
                    if a != b {
                        return Some(divergence(
                            step,
                            pc,
                            "trap",
                            format!("ref {a:?} vs core {b:?}"),
                        ));
                    }
                    true
                }
                (Err(a), Ok(_)) => {
                    return Some(divergence(
                        step,
                        pc,
                        "trap",
                        format!("ref trapped ({a:?}), core retired"),
                    ));
                }
                (Ok(_), Err(b)) => {
                    return Some(divergence(
                        step,
                        pc,
                        "trap",
                        format!("ref retired, core trapped ({b:?})"),
                    ));
                }
                (Ok(a), Ok(b)) => {
                    if a.is_some() != b.is_some() {
                        return Some(divergence(
                            step,
                            pc,
                            "stop",
                            format!("ref {a:?} vs core {b:?}"),
                        ));
                    }
                    a.is_some()
                }
            };
            if let Some((kind, detail)) = state_mismatch(r, m).or_else(|| store_mismatch(r, m)) {
                return Some(divergence(step, r.cpu.pc, kind, detail));
            }
            if done {
                return sweep_mismatch(r, m)
                    .map(|(kind, detail)| divergence(step, r.cpu.pc, kind, detail));
            }
        }
        sweep_mismatch(r, m).map(|(kind, detail)| divergence(max_steps, r.cpu.pc, kind, detail))
    }
}

/// Runs one scenario on a fresh machine pair in lockstep — a one-shot
/// [`ScenarioArena`]; batch callers should hold an arena and call
/// [`ScenarioArena::run`] to recycle machine state between scenarios.
#[must_use]
pub fn run_scenario(
    scenario: &Scenario,
    config: &MachineConfig,
    max_steps: u64,
) -> Option<Divergence> {
    ScenarioArena::new(config).run(scenario, max_steps)
}

/// Shrinks a diverging scenario to a minimal reproducer: instructions
/// are replaced with `NOP` (layout-preserving, so branch offsets keep
/// their meaning) and the program tail is truncated, as long as the
/// divergence persists. Returns the minimized scenario and its
/// divergence.
///
/// # Panics
///
/// Panics if `scenario` does not diverge under `config` — minimizing a
/// conforming scenario is a caller bug.
#[must_use]
pub fn minimize(
    scenario: &Scenario,
    config: &MachineConfig,
    max_steps: u64,
) -> (Scenario, Divergence) {
    let mut arena = ScenarioArena::new(config);
    let mut best = scenario.clone();
    let mut witness = arena.run(&best, max_steps).expect("minimize requires a diverging scenario");
    loop {
        let mut changed = false;
        // NOP out program instructions, most recent first (later
        // instructions are more often incidental).
        for i in (0..best.program.len()).rev() {
            if best.program[i] == Inst::Nop {
                continue;
            }
            let mut candidate = best.clone();
            candidate.program[i] = Inst::Nop;
            if let Some(d) = arena.run(&candidate, max_steps) {
                best = candidate;
                witness = d;
                changed = true;
            }
        }
        for i in (0..best.handler.len()).rev() {
            if best.handler[i] == Inst::Nop {
                continue;
            }
            let mut candidate = best.clone();
            candidate.handler[i] = Inst::Nop;
            if let Some(d) = arena.run(&candidate, max_steps) {
                best = candidate;
                witness = d;
                changed = true;
            }
        }
        // Truncate the tail while the divergence survives.
        while best.program.len() > 1 {
            let mut candidate = best.clone();
            candidate.program.pop();
            match arena.run(&candidate, max_steps) {
                Some(d) => {
                    best = candidate;
                    witness = d;
                    changed = true;
                }
                None => break,
            }
        }
        if !changed {
            break;
        }
    }
    (best, witness)
}

/// A deliberately broken speculative-core configuration the self-test
/// must catch.
#[derive(Clone, Debug)]
pub struct BrokenConfig {
    /// Stable name for reports (`eager-squash-disabled`, ...).
    pub name: &'static str,
    /// The sabotaged machine configuration.
    pub config: MachineConfig,
}

/// The broken configurations the self-test runs: eager squash disabled
/// (wrong-path registers leak into committed state) and speculative
/// fault suppression disabled (wrong-path faults trap architecturally).
#[must_use]
pub fn broken_configs() -> Vec<BrokenConfig> {
    let mut eager_squash_off = quiet_config();
    eager_squash_off.bugs.leak_squashed_registers = true;
    let mut suppression_off = quiet_config();
    suppression_off.bugs.commit_suppressed_faults = true;
    vec![
        BrokenConfig { name: "eager-squash-disabled", config: eager_squash_off },
        BrokenConfig { name: "fault-suppression-disabled", config: suppression_off },
    ]
}

/// Outcome of the self-test for one broken configuration.
#[derive(Clone, Debug)]
pub struct SelfTestResult {
    /// The broken configuration's name.
    pub name: &'static str,
    /// Scenarios run before the first divergence (or the whole budget).
    pub scenarios_run: u64,
    /// The minimized divergence, if the harness caught the bug.
    pub divergence: Option<Divergence>,
}

impl SelfTestResult {
    /// Whether the injected bug was detected.
    #[must_use]
    pub fn detected(&self) -> bool {
        self.divergence.is_some()
    }
}

/// Proves the oracle has teeth: runs generated scenarios against each
/// deliberately broken configuration until the harness flags a
/// divergence (then minimizes it) or the budget runs out.
#[must_use]
pub fn self_test(seed: u64, budget: u64, max_steps: u64) -> Vec<SelfTestResult> {
    broken_configs()
        .into_iter()
        .map(|broken| {
            let mut arena = ScenarioArena::new(&broken.config);
            for i in 0..budget {
                let scenario = generate(scenario_seed(seed ^ 0x5E1F_7E57, i));
                if arena.run(&scenario, max_steps).is_some() {
                    let (_, witness) = minimize(&scenario, &broken.config, max_steps);
                    return SelfTestResult {
                        name: broken.name,
                        scenarios_run: i + 1,
                        divergence: Some(witness),
                    };
                }
            }
            SelfTestResult { name: broken.name, scenarios_run: budget, divergence: None }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_isa::{Inst, Reg};
    use pacman_uarch::{AccessKind, El, ExecEngine, Perms, Trap};

    /// A hand-built scenario (fixed registers, no handler) for the
    /// directed conformance cases below.
    fn directed(program: Vec<Inst>) -> Scenario {
        Scenario { seed: 0, regs: [0; 31], sp: DATA_BASE + PAGE_SIZE, program, handler: Vec::new() }
    }

    /// Runs `m` until it halts or traps, with a step budget.
    fn run_machine(m: &mut Machine, max_steps: u64) {
        for _ in 0..max_steps {
            match m.step() {
                Ok(None) => {}
                Ok(Some(_)) | Err(_) => return,
            }
        }
    }

    #[test]
    fn healthy_core_conforms_over_a_seed_batch() {
        let cfg = quiet_config();
        for i in 0..24u64 {
            let s = generate(scenario_seed(0x00C0_FFEE, i));
            let d = run_scenario(&s, &cfg, 512);
            assert!(
                d.is_none(),
                "seed {}: unexpected divergence: {:?}",
                s.seed,
                d.map(|d| (d.kind, d.detail))
            );
        }
    }

    #[test]
    fn self_test_catches_both_injected_bugs() {
        let results = self_test(7, 64, 512);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.detected(), "{} must be detected within the budget", r.name);
            let d = r.divergence.as_ref().unwrap();
            assert!(!d.program.is_empty());
            assert!(
                d.program.iter().any(|i| *i != Inst::Nop),
                "minimized repro should retain the triggering instructions"
            );
        }
    }

    #[test]
    fn arena_reuse_matches_fresh_machines() {
        // The same seeds through one recycled arena and through one-shot
        // fresh pairs must agree divergence-for-divergence. A broken
        // config guarantees the batch contains real divergences, so this
        // pins reset (frame pool, block cache, page tables) as
        // behaviour-preserving — not just on conforming runs.
        let broken = &broken_configs()[0];
        let mut arena = ScenarioArena::new(&broken.config);
        let mut diverged = 0;
        for i in 0..48u64 {
            let s = generate(scenario_seed(0x00A1_2E4A, i));
            let pooled = arena.run(&s, 512);
            let fresh = run_scenario(&s, &broken.config, 512);
            match (&pooled, &fresh) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!((a.step, a.pc, a.kind), (b.step, b.pc, b.kind), "seed {}", s.seed);
                    diverged += 1;
                }
                _ => panic!("seed {}: pooled {pooled:?} vs fresh {fresh:?}", s.seed),
            }
        }
        assert!(diverged > 0, "batch must exercise the diverging path");
    }

    #[test]
    fn pc_increment_wraps_identically_at_the_va_edge() {
        // Pins the VA-edge case behind the wrapping `pc + 4` fixes: an
        // instruction retired at the last word of the address space must
        // wrap the PC to zero on both machines, and the wrapped fetch
        // must raise the same precise translation fault.
        let top_page = 0u64.wrapping_sub(PAGE_SIZE);
        let last_word = 0u64.wrapping_sub(4);
        let program = [Inst::MovZ { rd: Reg::x(7), imm: 1, shift: 0 }];

        let mut r = RefMachine::new();
        let mut m = Machine::new(quiet_config());
        r.map_region(top_page, PAGE_SIZE, Perms::user_rwx());
        m.map_region(top_page, PAGE_SIZE, Perms::user_rwx());
        r.load_program(last_word, &program);
        m.load_program(last_word, &program);
        r.cpu.pc = last_word;
        m.cpu.pc = last_word;

        assert_eq!(r.step(), Ok(None));
        assert_eq!(m.step(), Ok(None));
        assert_eq!(r.cpu.pc, 0, "reference PC wraps past the VA edge");
        assert_eq!(m.cpu.pc, 0, "core PC wraps past the VA edge");
        assert_eq!(r.cpu.regs[7], 1);
        assert_eq!(m.cpu.regs[7], 1);

        let rt = r.step().expect_err("wrapped fetch faults on the reference");
        let mt = m.step().expect_err("wrapped fetch faults on the core");
        assert_eq!(rt, Trap::TranslationFault { va: 0, el: El::El0, access: AccessKind::Fetch });
        assert_eq!(rt, mt, "both machines raise the identical precise trap");
    }

    /// A program that patches two of its own later instruction slots
    /// with a single 64-bit store, then executes them: the directed
    /// seed for block-cache invalidation (the cached engine pre-decodes
    /// past the patch site before the store retires).
    fn self_modifying_program() -> Vec<Inst> {
        let patched = u64::from(
            pacman_isa::encode(&Inst::MovZ { rd: Reg::x(5), imm: 42, shift: 0 }).expect("encodes"),
        ) | (u64::from(pacman_isa::encode(&Inst::Nop).expect("encodes")) << 32);
        #[allow(clippy::cast_possible_truncation)]
        let mut program = vec![
            Inst::MovZ { rd: Reg::x(0), imm: 0x40, shift: 1 }, // X0 = CODE_BASE
            Inst::MovZ { rd: Reg::x(1), imm: patched as u16, shift: 0 },
            Inst::MovK { rd: Reg::x(1), imm: (patched >> 16) as u16, shift: 1 },
            Inst::MovK { rd: Reg::x(1), imm: (patched >> 32) as u16, shift: 2 },
            Inst::MovK { rd: Reg::x(1), imm: (patched >> 48) as u16, shift: 3 },
            Inst::Str { rt: Reg::x(1), rn: Reg::x(0), offset: 4 * 10 }, // patch slots 10..=11
        ];
        while program.len() < 10 {
            program.push(Inst::Nop);
        }
        program.push(Inst::MovZ { rd: Reg::x(5), imm: 7, shift: 0 }); // overwritten pre-execution
        program.push(Inst::MovZ { rd: Reg::x(5), imm: 9, shift: 0 }); // overwritten pre-execution
        program.push(Inst::Hlt);
        program
    }

    #[test]
    fn self_modifying_code_conforms_under_both_engines() {
        let scenario = directed(self_modifying_program());

        // The patch must actually land: the retired X5 is the *stored*
        // immediate, not either placeholder.
        let mut m = Machine::new(quiet_config());
        scenario.install_uarch(&mut m);
        run_machine(&mut m, 512);
        assert_eq!(m.cpu.regs[5], 42, "the patched instruction must execute");
        assert!(m.block_cache_stats().invalidations >= 1, "the store must invalidate the cache");

        for engine in [ExecEngine::Cached, ExecEngine::Interpreted] {
            let cfg = MachineConfig { engine, ..quiet_config() };
            let d = run_scenario(&scenario, &cfg, 512);
            assert!(d.is_none(), "{engine:?}: {:?}", d.map(|d| (d.kind, d.detail)));
        }
    }

    #[test]
    fn straddling_fetch_conforms_under_the_cached_engine() {
        // Branch to a misaligned PC two bytes before the end of the code
        // page: the fetched word straddles the frame boundary, which the
        // block cache must bypass rather than mis-slot. The low half of
        // the straddled word comes from the (zero) tail of the code page
        // and the high half from bytes this program stores at DATA_BASE —
        // both machines must agree on whatever that word does.
        let program = vec![
            Inst::MovZ { rd: Reg::x(1), imm: 0x1000, shift: 1 }, // X1 = DATA_BASE
            Inst::MovZ { rd: Reg::x(2), imm: 0xD503, shift: 0 },
            Inst::Str { rt: Reg::x(2), rn: Reg::x(1), offset: 0 },
            Inst::MovZ { rd: Reg::x(0), imm: 0x3FFE, shift: 0 },
            Inst::MovK { rd: Reg::x(0), imm: 0x40, shift: 1 }, // X0 = CODE_BASE + PAGE_SIZE - 2
            Inst::Br { rn: Reg::x(0) },
            Inst::Hlt,
        ];
        let scenario = directed(program);

        let mut m = Machine::new(quiet_config());
        scenario.install_uarch(&mut m);
        run_machine(&mut m, 512);
        assert!(m.block_cache_stats().bypasses >= 1, "the straddling fetch must bypass");

        for engine in [ExecEngine::Cached, ExecEngine::Interpreted] {
            let cfg = MachineConfig { engine, ..quiet_config() };
            let d = run_scenario(&scenario, &cfg, 512);
            assert!(d.is_none(), "{engine:?}: {:?}", d.map(|d| (d.kind, d.detail)));
        }
    }

    #[test]
    fn minimize_preserves_the_divergence() {
        let broken = &broken_configs()[0];
        let diverging = (0..256u64)
            .map(|i| generate(scenario_seed(11, i)))
            .find(|s| run_scenario(s, &broken.config, 512).is_some())
            .expect("a divergence must exist in 256 scenarios");
        let (minimized, witness) = minimize(&diverging, &broken.config, 512);
        assert!(minimized.program.len() <= diverging.program.len());
        assert_eq!(witness.seed, diverging.seed);
        assert!(
            run_scenario(&minimized, &broken.config, 512).is_some(),
            "the minimized scenario still diverges"
        );
    }
}
