//! Seeded scenario generation for the conformance harness.
//!
//! A [`Scenario`] is everything both machines need to start from the
//! same architectural state: a generated EL0 program, an optional EL1
//! syscall handler, initial register/stack values, and a fixed memory
//! layout. Generation is a pure function of the seed, so any divergence
//! the harness finds is reproducible from `(seed, machine config)`
//! alone.
//!
//! Programs are deliberately branchy and trappy: wrong guesses about
//! squash behaviour show up fastest around mispredicted branches,
//! faulting wild loads, and PAC sign/authenticate chains. The generator
//! avoids only what an untimed reference machine cannot model — reads of
//! the cycle-dependent counters `CNTPCT_EL0` and `PMC0`.

use pacman_isa::ptr::PAGE_SIZE;
use pacman_isa::{encode, Cond, Inst, PacKey, PacModifier, Reg, SysReg};
use pacman_uarch::{Machine, Perms};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::machine::RefMachine;

/// Base of the generated EL0 program (one page, user RWX — writable so
/// generated stores can self-modify code, which both machines must
/// agree on).
pub const CODE_BASE: u64 = 0x0000_0000_0040_0000;

/// Base of the user data region.
pub const DATA_BASE: u64 = 0x0000_0000_1000_0000;

/// Length of the user data region (two pages).
pub const DATA_LEN: u64 = 2 * PAGE_SIZE;

/// Base of the EL1 handler page (a canonical kernel address).
pub const HANDLER_BASE: u64 = 0xFFFF_8000_0000_0000;

/// SplitMix64 finalizer: derives per-scenario seeds from a base seed
/// and an index without correlation between neighbours.
#[must_use]
pub fn scenario_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One generated conformance scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The seed this scenario was generated from.
    pub seed: u64,
    /// Initial X0..=X30.
    pub regs: [u64; 31],
    /// Initial EL0 stack pointer.
    pub sp: u64,
    /// The EL0 program at [`CODE_BASE`] (always ends with `HLT`).
    pub program: Vec<Inst>,
    /// The EL1 syscall handler at [`HANDLER_BASE`]; empty means no
    /// handler is installed (`VBAR` stays 0, so `SVC` traps).
    pub handler: Vec<Inst>,
}

impl Scenario {
    /// Installs the scenario on the speculative machine. The mapping
    /// order here must match [`Scenario::install_ref`] exactly so both
    /// machines' bump allocators produce the same physical frame layout
    /// (page-straddling accesses then read the same bytes on both).
    pub fn install_uarch(&self, m: &mut Machine) {
        m.map_region(CODE_BASE, PAGE_SIZE, Perms::user_rwx());
        m.map_region(DATA_BASE, DATA_LEN, Perms::user_rw());
        m.load_program(CODE_BASE, &self.program);
        if !self.handler.is_empty() {
            m.map_region(HANDLER_BASE, PAGE_SIZE, Perms::kernel_rx());
            m.load_program(HANDLER_BASE, &self.handler);
            m.set_vbar(HANDLER_BASE);
        }
        m.cpu.regs = self.regs;
        m.cpu.sp[0] = self.sp;
        m.cpu.pc = CODE_BASE;
    }

    /// Installs the scenario on the reference machine (same order as
    /// [`Scenario::install_uarch`]).
    pub fn install_ref(&self, m: &mut RefMachine) {
        m.map_region(CODE_BASE, PAGE_SIZE, Perms::user_rwx());
        m.map_region(DATA_BASE, DATA_LEN, Perms::user_rw());
        m.load_program(CODE_BASE, &self.program);
        if !self.handler.is_empty() {
            m.map_region(HANDLER_BASE, PAGE_SIZE, Perms::kernel_rx());
            m.load_program(HANDLER_BASE, &self.handler);
            m.set_vbar(HANDLER_BASE);
        }
        m.cpu.regs = self.regs;
        m.cpu.sp[0] = self.sp;
        m.cpu.pc = CODE_BASE;
    }
}

/// System registers generated programs may touch. Excludes the
/// cycle-dependent `CNTPCT_EL0`/`PMC0` (see module docs); everything
/// else either has a deterministic architectural value or traps
/// identically on both machines.
const SYSREGS: [SysReg; 6] = [
    SysReg::CurrentEl,
    SysReg::CntfrqEl0,
    SysReg::Pmc1,
    SysReg::Pmcr0,
    SysReg::ApiaKeyLo,
    SysReg::ApdbKeyHi,
];

fn reg(rng: &mut SmallRng) -> Reg {
    // Mostly GPRs; occasionally SP or XZR to exercise their special
    // read/write semantics.
    match rng.gen_range(0..10u32) {
        0 => Reg::SP,
        1 => Reg::XZR,
        _ => Reg::x(rng.gen_range(0..=30u8)),
    }
}

fn pac_key(rng: &mut SmallRng) -> PacKey {
    PacKey::ALL[rng.gen_range(0..4usize)]
}

fn modifier(rng: &mut SmallRng) -> PacModifier {
    if rng.gen_bool(0.5) {
        PacModifier::Zero
    } else {
        PacModifier::Reg(reg(rng))
    }
}

/// A branch offset from instruction `i`, usually landing inside the
/// program, occasionally a few instructions past either end.
fn branch_offset(rng: &mut SmallRng, i: usize, len: usize) -> i32 {
    if rng.gen_bool(0.9) {
        let target = rng.gen_range(0..=len as i64);
        (target - i as i64) as i32
    } else {
        rng.gen_range(-8..=16i32)
    }
}

#[allow(clippy::cast_possible_truncation)]
fn arb_inst(rng: &mut SmallRng, i: usize, len: usize) -> Inst {
    let inst = match rng.gen_range(0..100u32) {
        0..=7 => Inst::MovZ { rd: reg(rng), imm: rng.gen(), shift: rng.gen_range(0..=3) },
        8..=11 => Inst::MovK { rd: reg(rng), imm: rng.gen(), shift: rng.gen_range(0..=3) },
        12..=13 => Inst::MovN { rd: reg(rng), imm: rng.gen(), shift: rng.gen_range(0..=3) },
        14..=16 => Inst::MovReg { rd: reg(rng), rn: reg(rng) },
        17..=19 => Inst::AddImm { rd: reg(rng), rn: reg(rng), imm: rng.gen_range(0..=4095) },
        20..=21 => Inst::SubImm { rd: reg(rng), rn: reg(rng), imm: rng.gen_range(0..=4095) },
        22..=24 => Inst::AddReg { rd: reg(rng), rn: reg(rng), rm: reg(rng) },
        25..=26 => Inst::SubReg { rd: reg(rng), rn: reg(rng), rm: reg(rng) },
        27..=28 => Inst::AndReg { rd: reg(rng), rn: reg(rng), rm: reg(rng) },
        29..=30 => Inst::OrrReg { rd: reg(rng), rn: reg(rng), rm: reg(rng) },
        31..=32 => Inst::EorReg { rd: reg(rng), rn: reg(rng), rm: reg(rng) },
        33..=34 => Inst::LslImm { rd: reg(rng), rn: reg(rng), shift: rng.gen_range(0..=63) },
        35..=36 => Inst::LsrImm { rd: reg(rng), rn: reg(rng), shift: rng.gen_range(0..=63) },
        37 => Inst::Mul { rd: reg(rng), rn: reg(rng), rm: reg(rng) },
        38..=40 => Inst::CmpImm { rn: reg(rng), imm: rng.gen_range(0..=4095) },
        41..=43 => Inst::CmpReg { rn: reg(rng), rm: reg(rng) },
        44 => Inst::Csel { rd: reg(rng), rn: reg(rng), rm: reg(rng), cond: cond(rng) },
        45..=52 => Inst::Ldr { rt: reg(rng), rn: reg(rng), offset: mem_offset(rng) },
        53..=54 => Inst::Ldrb { rt: reg(rng), rn: reg(rng), offset: mem_offset(rng) },
        55..=61 => Inst::Str { rt: reg(rng), rn: reg(rng), offset: mem_offset(rng) },
        62..=63 => Inst::Strb { rt: reg(rng), rn: reg(rng), offset: mem_offset(rng) },
        64..=65 => Inst::Ldp {
            rt: reg(rng),
            rt2: reg(rng),
            rn: reg(rng),
            offset: rng.gen_range(-32..=31i16) * 8,
        },
        66..=67 => Inst::Stp {
            rt: reg(rng),
            rt2: reg(rng),
            rn: reg(rng),
            offset: rng.gen_range(-32..=31i16) * 8,
        },
        68..=71 => Inst::B { offset: branch_offset(rng, i, len) },
        72..=73 => Inst::Bl { offset: branch_offset(rng, i, len) },
        74..=80 => Inst::BCond { cond: cond(rng), offset: branch_offset(rng, i, len) },
        81..=83 => Inst::Cbz { rt: reg(rng), offset: branch_offset(rng, i, len) },
        84..=86 => Inst::Cbnz { rt: reg(rng), offset: branch_offset(rng, i, len) },
        87 => Inst::Tbz {
            rt: reg(rng),
            bit: rng.gen_range(0..=63),
            offset: branch_offset(rng, i, len),
        },
        88 => Inst::Tbnz {
            rt: reg(rng),
            bit: rng.gen_range(0..=63),
            offset: branch_offset(rng, i, len),
        },
        89 => Inst::Br { rn: reg(rng) },
        90 => Inst::Blr { rn: reg(rng) },
        91 => Inst::Ret,
        92..=93 => Inst::Pac { key: pac_key(rng), rd: reg(rng), modifier: modifier(rng) },
        94..=95 => Inst::Aut { key: pac_key(rng), rd: reg(rng), modifier: modifier(rng) },
        96 => Inst::Xpac { data: rng.gen(), rd: reg(rng) },
        97 => Inst::Pacga { rd: reg(rng), rn: reg(rng), rm: reg(rng) },
        98 => Inst::Mrs { rd: reg(rng), sysreg: SYSREGS[rng.gen_range(0..SYSREGS.len())] },
        _ => Inst::Svc { imm: rng.gen_range(0..16) },
    };
    // Anything that slips outside an encodable field degrades to a NOP:
    // both machines run only what the loader can actually encode.
    if encode(&inst).is_ok() {
        inst
    } else {
        Inst::Nop
    }
}

fn cond(rng: &mut SmallRng) -> Cond {
    Cond::ALL[rng.gen_range(0..Cond::ALL.len())]
}

/// A load/store byte offset: usually small and 8-aligned, occasionally
/// unaligned or large enough to cross a page.
fn mem_offset(rng: &mut SmallRng) -> i16 {
    match rng.gen_range(0..10u32) {
        0..=6 => rng.gen_range(-64..=64i16) * 8,
        7..=8 => rng.gen_range(-512..=511i16),
        _ => rng.gen_range(-2048..=2047i16),
    }
}

/// An interesting initial register value: zero, a small integer, a
/// data/code pointer (aligned or not), or 64 wild bits.
fn seed_value(rng: &mut SmallRng) -> u64 {
    match rng.gen_range(0..10u32) {
        0 => 0,
        1..=2 => rng.gen_range(1..=64),
        3..=6 => DATA_BASE + (rng.gen_range(0..DATA_LEN - 16) & !7),
        7 => DATA_BASE + rng.gen_range(0..DATA_LEN - 16),
        8 => CODE_BASE + 4 * rng.gen_range(0..32u64),
        _ => rng.gen(),
    }
}

/// Generates the scenario for `seed` (a pure function of it).
#[must_use]
pub fn generate(seed: u64) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let len = rng.gen_range(12..=40usize);
    let mut program: Vec<Inst> = (0..len).map(|i| arb_inst(&mut rng, i, len)).collect();
    program.push(Inst::Hlt);

    let handler = if rng.gen_bool(0.5) {
        let hlen = rng.gen_range(1..=5usize);
        let mut h: Vec<Inst> = (0..hlen).map(|_| handler_inst(&mut rng)).collect();
        h.push(Inst::Eret);
        h
    } else {
        Vec::new()
    };

    let mut regs = [0u64; 31];
    for r in &mut regs {
        *r = seed_value(&mut rng);
    }
    let sp = DATA_BASE + PAGE_SIZE + u64::from(rng.gen_range(0..256u32)) * 8;
    Scenario { seed, regs, sp, program, handler }
}

/// Handler instructions: ALU work plus the EL1-only system-register
/// writes (PAC key halves, `PMCR0`) that EL0 programs can never reach.
fn handler_inst(rng: &mut SmallRng) -> Inst {
    let inst = match rng.gen_range(0..10u32) {
        0..=2 => Inst::AddImm { rd: reg(rng), rn: reg(rng), imm: rng.gen_range(0..=4095) },
        3..=4 => Inst::MovZ { rd: reg(rng), imm: rng.gen(), shift: rng.gen_range(0..=3) },
        5 => Inst::EorReg { rd: reg(rng), rn: reg(rng), rm: reg(rng) },
        6..=7 => Inst::Msr { sysreg: SYSREGS[rng.gen_range(0..SYSREGS.len())], rn: reg(rng) },
        8 => Inst::Mrs { rd: reg(rng), sysreg: SYSREGS[rng.gen_range(0..SYSREGS.len())] },
        _ => Inst::Str { rt: reg(rng), rn: reg(rng), offset: rng.gen_range(-8..=8i16) * 8 },
    };
    if encode(&inst).is_ok() {
        inst
    } else {
        Inst::Nop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a.program, b.program);
            assert_eq!(a.handler, b.handler);
            assert_eq!(a.regs, b.regs);
            assert_eq!(a.sp, b.sp);
        }
    }

    #[test]
    fn programs_terminate_with_hlt_and_encode() {
        for seed in 0..64u64 {
            let s = generate(seed);
            assert_eq!(*s.program.last().unwrap(), Inst::Hlt);
            for inst in s.program.iter().chain(s.handler.iter()) {
                assert!(encode(inst).is_ok(), "seed {seed}: {inst:?} must encode");
            }
            if !s.handler.is_empty() {
                assert_eq!(*s.handler.last().unwrap(), Inst::Eret);
            }
        }
    }

    #[test]
    fn scenario_seeds_decorrelate_indices() {
        let a = scenario_seed(7, 0);
        let b = scenario_seed(7, 1);
        assert_ne!(a, b);
        assert_eq!(scenario_seed(7, 0), a, "pure function");
    }
}
