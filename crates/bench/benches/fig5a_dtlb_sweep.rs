//! Figure 5(a): dTLB / L2 TLB stride sweep (cache-conflict-free loads).

use pacman_bench::{banner, check, compare, jobs, tolerance, Artifact};
use pacman_core::parallel::{parallel_sweep, SweepKind};
use pacman_core::report::AsciiChart;

fn main() {
    banner("F5a", "Figure 5(a) - data-load sweep, addr[i] = x + i*stride + i*128B");
    let jobs = jobs();
    let tol = tolerance();
    let (series, _) =
        parallel_sweep(SweepKind::DataTlb, &[1, 32, 256, 2048], jobs, &tol).expect("sweep");

    let mut chart = AsciiChart::new("median reload latency (cycles) vs N");
    for s in &series {
        chart.series(
            format!("stride {}", s.label),
            s.points.iter().map(|p| (p.n, p.median)).collect(),
        );
    }
    println!("{chart}");

    let flat = &series[0];
    let s256 = &series[2];
    let s2048 = &series[3];

    let mut art = Artifact::new("fig5a", "Figure 5(a) - data-load dTLB/L2-TLB stride sweep");
    art.chart("latency_vs_n", &chart);
    art.num("baseline_plateau_cycles", flat.at(10).unwrap());
    art.num("dtlb_miss_plateau_cycles", s256.at(14).unwrap());
    art.num("l2_tlb_miss_plateau_cycles", s2048.at(25).unwrap());
    if let Some(n) = s256.knee_above(90) {
        art.num("dtlb_knee_n", n as u64);
    }
    if let Some(n) = s2048.knee_above(110) {
        art.num("l2_tlb_knee_n", n as u64);
    }
    art.write();

    compare(
        "baseline plateau (L1+dTLB hit)",
        "~60 cycles",
        &format!("{} cycles", flat.at(10).unwrap()),
    );
    compare(
        "dTLB-miss plateau (stride>=256x16KB, N>=12)",
        "~95 cycles",
        &format!("{} cycles", s256.at(14).unwrap()),
    );
    compare(
        "L2-TLB-miss plateau (stride>=2048x16KB, N>=23)",
        "~115 cycles",
        &format!("{} cycles", s2048.at(25).unwrap()),
    );
    compare("dTLB knee (finding 1)", "N = 12", &format!("N = {:?}", s256.knee_above(90)));
    compare("L2 TLB knee (finding 2)", "N = 23", &format!("N = {:?}", s2048.knee_above(110)));

    check("non-conflicting strides stay flat", flat.points.iter().all(|p| p.median < 75));
    check("dTLB knee at exactly N=12", s256.knee_above(90) == Some(12));
    check("L2 TLB knee at exactly N=23", s2048.knee_above(110) == Some(23));
    check("plateau ordering 60 < 95 < 115", {
        let a = flat.at(10).unwrap();
        let b = s256.at(14).unwrap();
        let c = s2048.at(25).unwrap();
        a < b && b < c
    });
}
