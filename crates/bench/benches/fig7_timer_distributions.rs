//! Figure 7: latency distributions under PMC0 and the multi-thread timer.

use pacman_bench::{banner, check, compare, quiet_system, scale, Artifact};
use pacman_core::timing::evaluate_timer;
use pacman_telemetry::json::Value;
use pacman_uarch::TimingSource;

fn print_histogram(label: &str, h: &pacman_core::timing::LatencyHistogram) {
    println!("  {label}:");
    let buckets = h.buckets();
    let max = buckets.iter().map(|&(_, n)| n).max().unwrap_or(1);
    for (tick, n) in buckets {
        println!("    {tick:>5} ticks | {n:>5} {}", "#".repeat(n * 40 / max));
    }
}

fn main() {
    banner("F7", "Figure 7 - access-latency distributions per timer");
    let samples = scale("TRIALS", 500);
    let mut sys = quiet_system();

    // (a) Apple performance counter, after the kext unlock (sec 6.1).
    let pmc = sys.pmc;
    pmc.enable(&mut sys.kernel, &mut sys.machine);
    sys.machine.set_timing_source(TimingSource::Pmc0);
    let a = evaluate_timer(&mut sys, samples).expect("pmc0 eval");
    println!("\n(a) Apple performance counter (PMC0), {samples} samples/population");
    print_histogram("L1+dTLB hit", &a.dtlb_hits);
    print_histogram("dTLB miss / L2 TLB hit", &a.dtlb_misses);
    print_histogram("page-table walk", &a.walks);

    // (b) The userspace multi-thread timer.
    sys.machine.set_timing_source(TimingSource::MultiThread);
    let b = evaluate_timer(&mut sys, samples).expect("mt eval");
    println!("\n(b) multi-thread timer, {samples} samples/population");
    print_histogram("L1+dTLB hit", &b.dtlb_hits);
    print_histogram("dTLB miss / L2 TLB hit", &b.dtlb_misses);
    print_histogram("page-table walk", &b.walks);
    println!();

    let mut art = Artifact::new("fig7", "Figure 7 - access-latency distributions per timer");
    art.num("samples", samples as u64);
    art.num("pmc_hit_median_cycles", a.dtlb_hits.median().unwrap_or(0));
    art.num("pmc_miss_median_cycles", a.dtlb_misses.median().unwrap_or(0));
    art.num("pmc_walk_median_cycles", a.walks.median().unwrap_or(0));
    art.num("mt_hit_max_ticks", b.dtlb_hits.max().unwrap_or(0));
    art.num("mt_miss_min_ticks", b.dtlb_misses.min().unwrap_or(0));
    if let Some(t) = b.threshold {
        art.num("mt_threshold_ticks", t);
    }
    art.field("pmc_usable", Value::Bool(a.is_usable()));
    art.field("mt_usable", Value::Bool(b.is_usable()));
    art.write();

    compare(
        "PMC0 hit/miss medians",
        "~60 / ~95 cycles",
        &format!("{:?} / {:?}", a.dtlb_hits.median(), a.dtlb_misses.median()),
    );
    compare("MT-timer hit max (sec 7.4)", "never beyond 27", &format!("{:?}", b.dtlb_hits.max()));
    compare("MT-timer miss min (sec 7.4)", "never below 32", &format!("{:?}", b.dtlb_misses.min()));
    compare("derived threshold", "30", &format!("{:?}", b.threshold));

    check("both timers separate the populations", a.is_usable() && b.is_usable());
    check("MT hits <= 27", b.dtlb_hits.max().unwrap() <= 27);
    check("MT misses >= 32", b.dtlb_misses.min().unwrap() >= 32);
    check("threshold lands on ~30", (28..=34).contains(&b.threshold.unwrap()));
    check("walks are slower than dTLB misses", b.walks.median() > b.dtlb_misses.median());
}
