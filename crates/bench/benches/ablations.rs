//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Speculation window** — the PACMAN gadget body must fit down the
//!    wrong path (§4.3's 8.1-instruction mean distance motivates this).
//! 2. **Timer choice** — the Table 1 motivation, as an attack-level
//!    ablation: the oracle collapses under the 24 MHz counter.
//! 3. **PAC width** — §1 quotes 11–31 possible PAC bits; brute-force
//!    cost scales 2^bits at the measured per-guess time.
//! 4. **Scanner depth** — register-only (the paper's tool) vs
//!    stack-tracking dataflow.

use pacman_bench::{banner, check, compare, scale, Artifact};
use pacman_core::oracle::{DataPacOracle, PacOracle, CORRECT_MISS_THRESHOLD};
use pacman_core::report::Table;
use pacman_core::{System, SystemConfig};
use pacman_gadget::{scan_image, synthesize, ImageSpec, ScanConfig};
use pacman_qarma::pac_field_bits;
use pacman_telemetry::json::Value;
use pacman_uarch::TimingSource;

fn oracle_works(sys: &mut System) -> bool {
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let mut oracle = match DataPacOracle::new(sys) {
        Ok(o) => o,
        Err(_) => return false,
    };
    let mut good = 0;
    let mut bad = 0;
    for i in 0..3u16 {
        if let Ok(m) = oracle.trial(sys, target, true_pac) {
            if m >= CORRECT_MISS_THRESHOLD {
                good += 1;
            }
        }
        if let Ok(m) = oracle.trial(sys, target, true_pac ^ (1 + i)) {
            if m >= CORRECT_MISS_THRESHOLD {
                bad += 1;
            }
        }
    }
    good >= 2 && bad <= 1
}

fn main() {
    banner("ABL", "design-choice ablations");

    // 1. Speculation window. The gadget body is 3 instructions past BR1.
    println!("\n-- ablation 1: speculation window --");
    let mut rows = Vec::new();
    for window in [1u32, 2, 3, 8, 48] {
        let mut cfg = SystemConfig::default();
        cfg.machine.os_noise = 0.0;
        cfg.machine.speculation_window = window;
        let mut sys = System::boot(cfg);
        let works = oracle_works(&mut sys);
        println!("  window {window:>2}: oracle {}", if works { "works" } else { "blind" });
        rows.push((window, works));
    }
    check("window >= gadget length (3) required", {
        let blind_below: bool = rows.iter().filter(|(w, _)| *w < 3).all(|(_, ok)| !ok);
        let works_above: bool = rows.iter().filter(|(w, _)| *w >= 3).all(|(_, ok)| *ok);
        blind_below && works_above
    });

    // 2. Timer choice.
    println!("\n-- ablation 2: timing source --");
    let mut outcomes = Vec::new();
    for source in [TimingSource::SystemCounter, TimingSource::MultiThread] {
        let mut cfg = SystemConfig::default();
        cfg.machine.os_noise = 0.0;
        cfg.timing = source;
        let mut sys = System::boot(cfg);
        let works = oracle_works(&mut sys);
        println!("  {source:?}: oracle {}", if works { "works" } else { "blind" });
        outcomes.push((source, works));
    }
    check("the 24 MHz counter cannot drive the oracle", !outcomes[0].1);
    check("the multi-thread timer can", outcomes[1].1);

    // 3. PAC width. Scale the measured per-guess cost across the §1 range.
    println!();
    let ms_per_guess = 2.65; // measured by sec82_bruteforce_speed
    let mut t = Table::new(
        "ablation 3: PAC width vs expected brute-force time (at 2.65 ms/guess)",
        &["VA bits", "PAC bits", "space", "expected sweep"],
    );
    for va_bits in [53u32, 48, 44, 39, 33] {
        let bits = pac_field_bits(va_bits);
        let space = 1u64 << bits;
        let secs = ms_per_guess * space as f64 / 1000.0;
        let human = if secs < 60.0 {
            format!("{secs:.1} s")
        } else if secs < 3600.0 {
            format!("{:.1} min", secs / 60.0)
        } else {
            format!("{:.1} h", secs / 3600.0)
        };
        t.row(&[va_bits.to_string(), bits.to_string(), format!("2^{bits}"), human]);
    }
    println!("{t}");
    compare("PAC bits on the paper's platform", "16 (48-bit VA)", &pac_field_bits(48).to_string());
    check(
        "the paper's 11..=31-bit range is covered",
        pac_field_bits(53) == 11 && pac_field_bits(33) == 31,
    );

    // 4. Scanner depth.
    println!("-- ablation 4: gadget-scanner dataflow depth --");
    let functions = scale("FUNCTIONS", 800);
    let image = synthesize(&ImageSpec { functions, seed: 9, ..ImageSpec::default() });
    let plain = scan_image(&image.bytes, &ScanConfig::default());
    let deep = scan_image(&image.bytes, &ScanConfig { track_stack: true, ..ScanConfig::default() });
    println!("  register-only dataflow (paper's tool): {} gadgets", plain.total());
    println!("  + stack-slot tracking:                 {} gadgets", deep.total());
    compare(
        "deeper analysis finds more gadgets",
        "predicted (sec 4.3)",
        &format!("+{}", deep.total() - plain.total()),
    );
    check("stack tracking never loses gadgets", deep.total() >= plain.total());

    let mut art = Artifact::new("ablations", "design-choice ablations");
    if let Some(&(w, _)) = rows.iter().filter(|(_, ok)| *ok).min_by_key(|(w, _)| *w) {
        art.num("min_oracle_window", u64::from(w));
    }
    art.field("system_counter_blind", Value::Bool(!outcomes[0].1));
    art.field("multithread_timer_works", Value::Bool(outcomes[1].1));
    art.table("pac_width_sweep", &t);
    art.num("pac_bits_53va", u64::from(pac_field_bits(53)))
        .num("pac_bits_48va", u64::from(pac_field_bits(48)))
        .num("pac_bits_33va", u64::from(pac_field_bits(33)))
        .num("register_only_gadgets", plain.total() as u64)
        .num("stack_tracking_gadgets", deep.total() as u64)
        .num("stack_tracking_gain", (deep.total() - plain.total()) as u64);
    art.write();
}
