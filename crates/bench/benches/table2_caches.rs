//! Table 2: cache configurations read from the simulated config registers.

use pacman_bench::{banner, check, compare, Artifact};
use pacman_core::report::Table;
use pacman_uarch::{ClusterCaches, CoreKind};

fn main() {
    banner("T2", "Table 2 - cache configurations via system registers");
    let mut t =
        Table::new("Table 2: caches", &["cluster", "level", "ways", "sets", "line", "total"]);
    for (name, core) in [("p-core", CoreKind::PCore), ("e-core", CoreKind::ECore)] {
        let c = ClusterCaches::for_core(core);
        for (level, p) in [("L1I", c.l1i), ("L1D", c.l1d), ("L2", c.l2)] {
            t.row(&[
                name.into(),
                level.into(),
                p.ways.to_string(),
                p.sets.to_string(),
                format!("{} B", p.line),
                format!("{} KB", p.total_bytes() / 1024),
            ]);
        }
    }
    println!("{t}");

    let p = ClusterCaches::for_core(CoreKind::PCore);
    let e = ClusterCaches::for_core(CoreKind::ECore);

    let mut art = Artifact::new("table2", "Table 2 - cache configurations via system registers");
    art.table("caches", &t);
    art.num("pcore_l1i_kb", p.l1i.total_bytes() / 1024)
        .num("pcore_l1d_kb", p.l1d.total_bytes() / 1024)
        .num("pcore_l2_mb", p.l2.total_bytes() / 1024 / 1024)
        .num("ecore_l1i_kb", e.l1i.total_bytes() / 1024)
        .num("ecore_l1d_kb", e.l1d.total_bytes() / 1024)
        .num("ecore_l2_mb", e.l2.total_bytes() / 1024 / 1024)
        .num("l1_line_bytes", p.l1d.line)
        .num("l2_line_bytes", p.l2.line)
        .num("pcore_l1d_effective_ways", p.l1d_effective_ways as u64);
    art.write();

    compare(
        "p-core L1I/L1D/L2",
        "192KB/128KB/12MB",
        &format!(
            "{}KB/{}KB/{}MB",
            p.l1i.total_bytes() / 1024,
            p.l1d.total_bytes() / 1024,
            p.l2.total_bytes() / 1024 / 1024
        ),
    );
    compare(
        "e-core L1I/L1D/L2",
        "128KB/64KB/4MB",
        &format!(
            "{}KB/{}KB/{}MB",
            e.l1i.total_bytes() / 1024,
            e.l1d.total_bytes() / 1024,
            e.l2.total_bytes() / 1024 / 1024
        ),
    );
    compare(
        "observed effective L1D ways (footnote 5)",
        "half of reported",
        &format!("{} of {}", p.l1d_effective_ways, p.l1d.ways),
    );

    check(
        "p-core sizes match Table 2",
        p.l1i.total_bytes() == 192 * 1024
            && p.l1d.total_bytes() == 128 * 1024
            && p.l2.total_bytes() == 12 * 1024 * 1024,
    );
    check(
        "e-core sizes match Table 2",
        e.l1i.total_bytes() == 128 * 1024
            && e.l1d.total_bytes() == 64 * 1024
            && e.l2.total_bytes() == 4 * 1024 * 1024,
    );
    check("L1 lines are 64B, L2 lines are 128B", p.l1d.line == 64 && p.l2.line == 128);
}
