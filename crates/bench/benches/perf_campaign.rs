//! Persistent-executor benches: pooled workers, batched campaign
//! submission, streaming aggregation and recycled machines.
//!
//! The `perf_campaign` artefact pins the executor rewrite as claims:
//!
//! - **throughput** — a stream of small campaigns submitted to the
//!   process-lifetime work-stealing pool ([`Executor::global`]) must
//!   beat the spawn-per-campaign scoped baseline by >=3x, because the
//!   baseline pays a full `thread::scope` spawn/join per campaign while
//!   the executor amortises its workers across the whole stream and
//!   pipelines campaigns back to back;
//! - **zero drift** — the executor must produce bit-identical verdicts,
//!   histograms, trial records and telemetry to the scoped pool, and
//!   bit-identical results at `jobs = 1` and `jobs = N` (the fixed
//!   shard-plan + `mix64` seed contract);
//! - **allocator-free steady state** — once warm, leases from the
//!   machine pool recycle every physical frame through
//!   [`System::reboot_into`](pacman_core::System::reboot_into): zero
//!   fresh boots and zero fresh frame allocations across the measured
//!   window ([`pool::stats`] deltas).

use std::time::Instant;

use pacman_bench::{banner, check, compare, quiet_config, scale, Artifact};
use pacman_core::fault::Tolerance;
use pacman_core::parallel::{oracle_distribution, Channel, OracleDistribution};
use pacman_core::pool;
use pacman_gadget::census::parallel_census;
use pacman_gadget::scan::{scan_image, ScanConfig, ScanReport};
use pacman_gadget::synth::{synthesize, ImageSpec};
use pacman_runner::{
    shard_plan, with_backend, Executor, RetryPolicy, RunnerBackend, Shard, DEFAULT_SHARDS,
};

/// Best-of-three: each timed side gets its least scheduler-disturbed
/// run. `better` picks the keeper (higher throughput).
fn best3<R>(mut measure: impl FnMut() -> R, better: impl Fn(&R, &R) -> bool) -> R {
    let mut best = measure();
    for _ in 0..2 {
        let run = measure();
        if better(&run, &best) {
            best = run;
        }
    }
    best
}

fn census_spec(functions: usize, seed: u64) -> ImageSpec {
    ImageSpec { functions, seed, ..ImageSpec::default() }
}

/// The scoped baseline: one spawn-per-run campaign after another.
fn scoped_campaigns_per_sec(specs: &[ImageSpec], cfg: &ScanConfig, jobs: usize) -> f64 {
    with_backend(RunnerBackend::ScopedPool, || {
        best3(
            || {
                let start = Instant::now();
                for spec in specs {
                    std::hint::black_box(parallel_census(spec, cfg, jobs));
                }
                specs.len() as f64 / start.elapsed().as_secs_f64()
            },
            |a, b| a > b,
        )
    })
}

/// The persistent executor: every campaign submitted up front (bounded
/// by the executor's own backpressure), results drained in submission
/// order. Returns campaigns/sec plus per-campaign submit-to-drain
/// latencies in microseconds.
fn executor_campaigns_per_sec(
    exec: &Executor,
    specs: &[ImageSpec],
    cfg: &ScanConfig,
    jobs: usize,
) -> (f64, Vec<f64>) {
    best3(
        || {
            let start = Instant::now();
            let handles: Vec<_> = specs
                .iter()
                .map(|spec| {
                    let plan = shard_plan(spec.functions, DEFAULT_SHARDS, spec.seed);
                    let (spec, cfg) = (*spec, *cfg);
                    let submitted = Instant::now();
                    let handle = exec.submit(
                        plan,
                        jobs,
                        RetryPolicy::no_retries(),
                        move |shard: &Shard,
                              _attempt|
                              -> Result<ScanReport, std::convert::Infallible> {
                            let sub = ImageSpec { functions: shard.len, seed: shard.seed, ..spec };
                            Ok(scan_image(&synthesize(&sub).bytes, &cfg))
                        },
                    );
                    (submitted, handle)
                })
                .collect();
            let mut latencies_us = Vec::with_capacity(handles.len());
            for (submitted, handle) in handles {
                let outcome = handle.wait().expect("campaign completes");
                std::hint::black_box(&outcome.results);
                latencies_us.push(submitted.elapsed().as_secs_f64() * 1e6);
            }
            (specs.len() as f64 / start.elapsed().as_secs_f64(), latencies_us)
        },
        |a, b| a.0 > b.0,
    )
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Fields of two oracle-distribution runs that differ (0 = bit-identical).
fn oracle_drift(a: &OracleDistribution, b: &OracleDistribution) -> u64 {
    u64::from(a.trials != b.trials)
        + u64::from(a.correct_detected != b.correct_detected)
        + u64::from(a.incorrect_clean != b.incorrect_clean)
        + u64::from(a.correct_misses != b.correct_misses)
        + u64::from(a.incorrect_misses != b.incorrect_misses)
        + u64::from(a.crashes != b.crashes)
        + u64::from(a.records != b.records)
        + u64::from(a.target != b.target)
        + u64::from(a.true_pac != b.true_pac)
        + u64::from(a.telemetry.snapshot() != b.telemetry.snapshot())
}

fn oracle_run(trials: usize, jobs: usize) -> OracleDistribution {
    oracle_distribution(
        &quiet_config(),
        Channel::Data,
        1,
        trials,
        jobs,
        true,
        &Tolerance::default(),
        |i, tp| tp ^ (1 + i as u16),
    )
    .expect("oracle distribution")
}

fn main() {
    banner("Bcampaign", "persistent executor: pooled machines + streaming aggregation");
    let campaigns = scale("CAMPAIGNS", 60);
    let functions = scale("CAMPAIGN_FUNCS", 8);
    let trials = scale("CAMPAIGN_TRIALS", 8);
    let leases = scale("CAMPAIGN_LEASES", 10);
    let jobs = pacman_runner::default_jobs().clamp(4, 16);
    // The bench owns its executor so the pool really has `jobs` workers
    // even where `default_jobs()` resolves lower (the global executor is
    // sized for the host).
    let exec = Executor::new(jobs);

    let specs: Vec<ImageSpec> =
        (0..campaigns).map(|i| census_spec(functions, 0xCAFE + i as u64)).collect();
    let scan_cfg = ScanConfig::default();

    // -- throughput: pipelined executor vs spawn-per-campaign baseline --
    let scoped_cps = scoped_campaigns_per_sec(&specs, &scan_cfg, jobs);
    let (exec_cps, mut latencies_us) = executor_campaigns_per_sec(&exec, &specs, &scan_cfg, jobs);
    let speedup = exec_cps / scoped_cps.max(1e-9);
    latencies_us.sort_by(f64::total_cmp);
    let p50 = percentile(&latencies_us, 0.50);
    let p99 = percentile(&latencies_us, 0.99);
    println!("  {campaigns} campaigns x {functions} functions at jobs={jobs}");
    println!("  executor (pipelined):   {exec_cps:10.1} campaigns/s");
    println!("  scoped (spawn per run): {scoped_cps:10.1} campaigns/s");
    println!("  speedup:                {speedup:10.2}x");
    println!("  campaign latency:       p50 {p50:.0} us, p99 {p99:.0} us");

    // -- zero drift: executor vs scoped, and jobs=1 vs jobs=N -----------
    let exec_dist = with_backend(RunnerBackend::Executor, || oracle_run(trials, jobs));
    let scoped_dist = with_backend(RunnerBackend::ScopedPool, || oracle_run(trials, jobs));
    let serial_dist = with_backend(RunnerBackend::Executor, || oracle_run(trials, 1));
    let exec_census = with_backend(RunnerBackend::Executor, || {
        parallel_census(&census_spec(200, 0xC0DE), &scan_cfg, jobs)
    });
    let scoped_census = with_backend(RunnerBackend::ScopedPool, || {
        parallel_census(&census_spec(200, 0xC0DE), &scan_cfg, jobs)
    });
    let serial_census = with_backend(RunnerBackend::Executor, || {
        parallel_census(&census_spec(200, 0xC0DE), &scan_cfg, 1)
    });
    let backend_drift =
        oracle_drift(&exec_dist, &scoped_dist) + u64::from(exec_census != scoped_census);
    let jobs_drift =
        oracle_drift(&exec_dist, &serial_dist) + u64::from(exec_census != serial_census);
    println!("  backend drift (executor vs scoped):  {backend_drift} fields");
    println!("  jobs drift (jobs=1 vs jobs={jobs}):     {jobs_drift} fields");

    // -- allocator-free steady state: warm pool leases ------------------
    // Measured on this thread's own pool (single-threaded, so the global
    // counter deltas are exactly this loop's). The executor workers are
    // idle here: every campaign above has fully drained.
    let steady_lease = |seed: u64| {
        let mut cfg = quiet_config();
        cfg.machine.seed = seed;
        let mut sys = pool::lease(cfg);
        let set = sys.pick_quiet_dtlb_set();
        let target = sys.alloc_target(set);
        std::hint::black_box(sys.true_pac(target));
    };
    pool::clear_thread_pool();
    steady_lease(0);
    steady_lease(1); // warm: the second lease already recycles
    let before = pool::stats();
    for seed in 0..leases as u64 {
        steady_lease(2 + seed);
    }
    let after = pool::stats();
    let fresh_boots = after.fresh_boots - before.fresh_boots;
    let fresh_frames = after.fresh_frames - before.fresh_frames;
    let reboots = after.reboots - before.reboots;
    println!(
        "  pool steady state: {reboots} reboots, {fresh_boots} fresh boots, \
         {fresh_frames} fresh frames over {leases} leases"
    );
    println!();

    let mut art =
        Artifact::new("perf_campaign", "persistent executor: throughput, drift, machine pool");
    art.num("jobs", jobs as u64)
        .num("campaigns", campaigns as u64)
        .float("campaigns_per_sec_executor", exec_cps)
        .float("campaigns_per_sec_scoped", scoped_cps)
        .float("throughput_speedup", speedup)
        .float("p50_latency_us", p50)
        .float("p99_latency_us", p99)
        .num("backend_drift_fields", backend_drift)
        .num("jobs_parity_drift_fields", jobs_drift)
        .num("pool_steady_reboots", reboots)
        .num("pool_steady_fresh_boots", fresh_boots)
        .num("pool_steady_fresh_frames", fresh_frames);
    art.write();

    compare("campaign throughput", ">=3x vs scoped pool", &format!("{speedup:.2}x"));
    compare("backend drift", "0 fields", &format!("{backend_drift}"));
    compare("jobs parity drift", "0 fields", &format!("{jobs_drift}"));
    compare("steady-state fresh frames", "0", &format!("{fresh_frames}"));

    check("executor >=3x the scoped pool on small campaigns", speedup >= 3.0);
    check("executor == scoped pool, bit for bit", backend_drift == 0);
    check("jobs=1 == jobs=N on the executor, bit for bit", jobs_drift == 0);
    check("steady-state leases never boot fresh", fresh_boots == 0);
    check("steady-state reboots allocate no frames", fresh_frames == 0);
    check("measured at real parallelism", jobs >= 4);
}
