//! Figure 6: the TLB hierarchy, derived from timing alone.

use pacman_bench::{banner, check, compare, Artifact};
use pacman_core::sweep::{derive_hierarchy, experiment_machine};
use pacman_telemetry::json::Value;
use pacman_uarch::ClusterTlbs;

fn main() {
    banner("F6", "Figure 6 - TLB hierarchy parameters recovered by measurement");
    let mut m = experiment_machine();
    let f = derive_hierarchy(&mut m).expect("derivation");
    let truth = ClusterTlbs::m1();

    println!("  derived organisation:");
    println!("    L1 iTLB (per privilege): {} ways x 32 sets", f.itlb_ways);
    println!("    L1 dTLB (shared):        {} ways x 256 sets", f.dtlb_ways);
    println!("    L2 TLB  (shared):        {} ways x 2048 sets", f.l2_ways);
    println!(
        "    iTLB victims visible to loads (dTLB backing store): {}",
        f.itlb_victims_visible_to_loads
    );
    println!();

    let mut art = Artifact::new("fig6", "Figure 6 - TLB hierarchy recovered by measurement");
    art.num("itlb_ways", f.itlb_ways as u64)
        .num("dtlb_ways", f.dtlb_ways as u64)
        .num("l2_ways", f.l2_ways as u64)
        .field("itlb_victims_visible_to_loads", Value::Bool(f.itlb_victims_visible_to_loads));
    art.write();

    compare("L1 iTLB ways (finding 3)", "4", &f.itlb_ways.to_string());
    compare("L1 dTLB ways (finding 1)", "12", &f.dtlb_ways.to_string());
    compare("L2 TLB ways (finding 2)", "23", &f.l2_ways.to_string());
    compare(
        "iTLB -> dTLB victim migration (sec 7.3)",
        "yes",
        &f.itlb_victims_visible_to_loads.to_string(),
    );

    check("derived dTLB ways match the configured hierarchy", f.dtlb_ways == truth.dtlb.ways);
    check("derived L2 ways match", f.l2_ways == truth.l2.ways);
    check("derived iTLB ways match", f.itlb_ways == truth.itlb.ways);
    check("backing-store behaviour observed", f.itlb_victims_visible_to_loads);
}
