//! `pacmand` service-load generator: hundreds of concurrent tenant
//! sessions driving real experiment jobs through the daemon's
//! fair-share scheduler onto the shared executor.
//!
//! The `service_load` artefact pins the daemon's production claims:
//!
//! - **scale** — >=200 concurrent sessions, each submitting real
//!   oracle campaigns, all completing;
//! - **latency** — p50/p99 submit-to-`job_done` latency and sustained
//!   jobs/sec under that concurrency;
//! - **isolation** — one session's injected panic yields exactly one
//!   `job_failed` on that session; every other job in every session
//!   completes, the panicking tenant's own later job completes, and
//!   the daemon keeps serving (the multi-tenant contract from
//!   DESIGN.md §12).

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use pacman_bench::{banner, check, compare, quiet_config, scale, Artifact};
use pacman_core::fault::Tolerance;
use pacman_core::parallel::{oracle_distribution, Channel};
use pacman_daemon::{Daemon, DaemonConfig, JobRunner, JobSink};
use pacman_telemetry::json::Value;

/// Job commands: `oracle <seed> <trials>` runs a real PAC-oracle
/// campaign on the shared executor; `boom` is the injected fault.
struct LoadRunner;

impl JobRunner for LoadRunner {
    fn run(&self, command: &str, sink: &JobSink) -> Result<(), String> {
        let mut words = command.split_whitespace();
        match words.next() {
            Some("oracle") => {
                let seed: u64 = words.next().and_then(|w| w.parse().ok()).unwrap_or(1);
                let trials: usize = words.next().and_then(|w| w.parse().ok()).unwrap_or(2);
                let mut cfg = quiet_config();
                cfg.kernel_seed = seed;
                let out = oracle_distribution(
                    &cfg,
                    Channel::Data,
                    1,
                    trials,
                    2,
                    false,
                    &Tolerance::default(),
                    |i, tp| tp ^ (1 + i as u16),
                )
                .map_err(|e| e.to_string())?;
                sink.record(&format!(
                    "{{\"record\":\"verdict\",\"correct_detected\":{},\"trials\":{trials}}}",
                    out.correct_detected
                ));
                Ok(())
            }
            Some("boom") => panic!("injected tenant fault"),
            other => Err(format!("unknown load command {other:?}")),
        }
    }
}

/// One tenant: submits jobs one at a time, measuring submit-to-done
/// latency for each, and reports what failed.
struct SessionReport {
    latencies_us: Vec<f64>,
    completed: u64,
    unexpected_failures: u64,
    injected_failures: u64,
}

fn run_session(daemon: &Daemon, index: usize, jobs: usize, trials: usize) -> SessionReport {
    let name = format!("tenant-{index}");
    let handle = daemon.open_session(&name).expect("open session");
    let mut report = SessionReport {
        latencies_us: Vec::with_capacity(jobs),
        completed: 0,
        unexpected_failures: 0,
        injected_failures: 0,
    };
    // Tenant 0 leads with the fault drill: a panicking job whose
    // failure must stay scoped to this session — its own next jobs
    // included.
    let inject = index == 0;
    let commands: Vec<String> = (0..usize::from(inject))
        .map(|_| "boom".to_string())
        .chain((0..jobs).map(|j| format!("oracle {} {trials}", 0xA11CE + (index * 251 + j) as u64)))
        .collect();
    for command in &commands {
        let submitted = Instant::now();
        let id = handle.submit(command).expect("submit job");
        loop {
            let Some(record) = handle.next_record() else { panic!("stream ended mid-job") };
            match record.get("type").and_then(Value::as_str) {
                Some("job_done") if record.get("job").and_then(Value::as_u64) == Some(id) => {
                    report.latencies_us.push(submitted.elapsed().as_secs_f64() * 1e6);
                    report.completed += 1;
                    break;
                }
                Some("job_failed") if record.get("job").and_then(Value::as_u64) == Some(id) => {
                    if command == "boom" {
                        report.injected_failures += 1;
                    } else {
                        report.unexpected_failures += 1;
                    }
                    break;
                }
                _ => {}
            }
        }
    }
    let _ = handle.close();
    report
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    banner("Bservice", "pacmand under load: concurrent tenants, latency, fault isolation");
    let sessions = scale("SESSIONS", 200);
    let session_jobs = scale("SESSION_JOBS", 2);
    let trials = scale("SERVICE_TRIALS", 2);
    let workers = pacman_runner::default_jobs().clamp(4, 16);
    let daemon = Arc::new(Daemon::start(
        DaemonConfig { workers, session_queue: 8, session_parallel: 1, job_attempts: 1 },
        Arc::new(LoadRunner),
    ));

    let start = Instant::now();
    let reports: Vec<SessionReport> = thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                let daemon = Arc::clone(&daemon);
                scope.spawn(move || run_session(&daemon, i, session_jobs, trials))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("session thread")).collect()
    });
    let wall = start.elapsed().as_secs_f64();

    let mut latencies_us: Vec<f64> =
        reports.iter().flat_map(|r| r.latencies_us.iter().copied()).collect();
    latencies_us.sort_by(f64::total_cmp);
    let completed: u64 = reports.iter().map(|r| r.completed).sum();
    let unexpected: u64 = reports.iter().map(|r| r.unexpected_failures).sum();
    let injected: u64 = reports.iter().map(|r| r.injected_failures).sum();
    let jobs_per_sec = completed as f64 / wall.max(1e-9);
    let p50 = percentile(&latencies_us, 0.50);
    let p99 = percentile(&latencies_us, 0.99);

    // The daemon outlived the drill: it still opens sessions and runs
    // jobs after the injected panic, then drains cleanly.
    let survived = {
        let control = daemon.open_session("control").expect("daemon refused a post-drill session");
        control.submit(&format!("oracle 7 {trials}")).expect("submit control job");
        let mut done = false;
        while let Some(r) = control.next_record() {
            match r.get("type").and_then(Value::as_str) {
                Some("job_done") => {
                    done = true;
                    break;
                }
                Some("job_failed") => break,
                _ => {}
            }
        }
        let _ = control.close();
        done
    };
    let metrics = daemon.metrics();
    let backpressure = metrics.counter_value("daemon.backpressure");
    let drained = daemon.drain();
    let drained_ok = drained.get("type").and_then(Value::as_str) == Some("daemon_drained");
    let isolated = injected == 1 && unexpected == 0 && survived;

    let expected_jobs = (sessions * session_jobs) as u64; // injected 'boom' not counted
    println!("  {sessions} sessions x {session_jobs} jobs on {workers} workers");
    println!("  jobs completed:    {completed} / {expected_jobs} submitted (+1 control)");
    println!("  throughput:        {jobs_per_sec:10.1} jobs/s over {wall:.2} s");
    println!("  job latency:       p50 {p50:.0} us, p99 {p99:.0} us");
    println!("  fault drill:       {injected} injected failure, {unexpected} collateral");
    println!("  backpressure:      {backpressure} blocked submits");
    println!();

    let mut art = Artifact::new(
        "service_load",
        "pacmand service load: concurrent sessions, latency, isolation",
    );
    art.num("sessions", sessions as u64)
        .num("jobs", completed)
        .num("workers", workers as u64)
        .float("jobs_per_sec", jobs_per_sec)
        .float("p50_latency_us", p50)
        .float("p99_latency_us", p99)
        .num("injected_failures", injected)
        .num("unexpected_failed_jobs", unexpected)
        .field("panic_isolated", Value::Bool(isolated))
        .field("daemon_survived", Value::Bool(survived))
        .field("drained_clean", Value::Bool(drained_ok));
    art.write();

    compare("concurrent sessions", ">=200", &format!("{sessions}"));
    compare("job throughput", "sustained", &format!("{jobs_per_sec:.1} jobs/s"));
    compare("fault isolation", "1 injected, 0 collateral", &format!("{injected}, {unexpected}"));

    check("drove >=200 concurrent sessions", sessions >= 200);
    check("every non-injected job completed", completed == expected_jobs);
    check("the injected panic failed exactly its own job", isolated);
    check("the daemon drained cleanly after the load", drained_ok);
}
