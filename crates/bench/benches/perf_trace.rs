//! Tracing/profiling overhead benches: the flight recorder and the
//! per-opcode retire profiler must cost (near) nothing when disabled.
//!
//! The `perf_trace` artefact pins that promise as a claim:
//! `disabled_overhead_ratio` compares the same simulated workload with
//! the profiler compiled in but *off* against the profiler *on* — the
//! disabled run must never be appreciably slower (any excess means the
//! "disabled" path is doing work). The per-call cost of a disabled
//! flight-recorder span is measured directly, and the Chrome-trace
//! exporter is gated on an in-process round-trip through its own
//! parser.

use criterion::{criterion_group, Criterion};
use pacman_isa::{Asm, Inst, Reg};
use pacman_telemetry::json::Value;
use pacman_telemetry::{trace, FlightRecorder};
use pacman_uarch::{Machine, MachineConfig, Perms};

const CODE: u64 = 0x40_0000;
const DATA: u64 = 0x1000_0000;

/// A machine running a load/ALU/branch loop (decode, dispatch and
/// memory phases all exercised), with the retire profiler on or off.
fn machine(profile: bool) -> Machine {
    let cfg = MachineConfig { os_noise: 0.0, profile, ..MachineConfig::default() };
    let mut m = Machine::new(cfg);
    m.map_region(CODE, 4096, Perms::user_rwx());
    m.map_region(DATA, 4096, Perms::user_rw());
    let mut a = Asm::new();
    let top = a.new_label();
    a.mov_imm64(Reg::X0, 200);
    a.mov_imm64(Reg::X2, DATA);
    a.bind(top);
    a.push(Inst::Ldr { rt: Reg::X1, rn: Reg::X2, offset: 0 });
    a.push(Inst::AddImm { rd: Reg::X3, rn: Reg::X3, imm: 1 });
    a.push(Inst::SubImm { rd: Reg::X0, rn: Reg::X0, imm: 1 });
    a.cbnz(Reg::X0, top);
    a.push(Inst::Hlt);
    m.load_program(CODE, &a.assemble().unwrap());
    m
}

fn run_once(m: &mut Machine) {
    m.cpu.pc = CODE;
    m.run(4_000).expect("program runs");
}

fn bench_profiler(c: &mut Criterion) {
    let mut off = machine(false);
    c.bench_function("simulator_loop_profile_off", |b| b.iter(|| run_once(&mut off)));
    let mut on = machine(true);
    c.bench_function("simulator_loop_profile_on", |b| b.iter(|| run_once(&mut on)));
}

fn bench_disabled_recorder(c: &mut Criterion) {
    let rec = FlightRecorder::disabled(1024);
    c.bench_function("flight_recorder_disabled_span", |b| {
        b.iter(|| rec.complete("bench", "bench", 0, None, 0, Vec::new()))
    });
}

criterion_group! {
    name = perf;
    config = Criterion::default().sample_size(20);
    targets = bench_profiler, bench_disabled_recorder
}

/// Mean ns/iteration of `f` over a fixed batch (mirrors the criterion
/// numbers machine-readably for the artefact).
fn time_ns<O>(iters: u32, mut f: impl FnMut() -> O) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Minimum of three measurements: the claim band compares two wall-clock
/// numbers, so each side gets its best (least scheduler-disturbed) run.
fn min3(mut measure: impl FnMut() -> f64) -> f64 {
    (0..3).map(|_| measure()).fold(f64::INFINITY, f64::min)
}

/// Records a couple of spans on a private recorder and gates the
/// exporter on `parse(export(events)) == events`.
fn round_trip_gate() -> usize {
    let rec = FlightRecorder::new(1024);
    let t0 = rec.now_us();
    rec.complete("gate.span", "bench", 0, Some(1), t0, vec![("k".into(), Value::UInt(7))]);
    rec.instant("gate.instant", "bench", 1, None, Vec::new());
    let events = rec.take();
    let text = trace::chrome_trace_json(&events);
    let back = trace::parse_chrome_trace(&text).expect("exported trace parses");
    assert_eq!(back, events, "chrome-trace export must round-trip exactly");
    events.len()
}

fn write_artifact() {
    let iters = pacman_bench::scale("TRACE_ITERS", 200) as u32;
    let mut plain = machine(false);
    let mut profiled = machine(true);
    run_once(&mut plain);
    run_once(&mut profiled);
    let plain_ns = min3(|| time_ns(iters, || run_once(&mut plain)));
    let profiled_ns = min3(|| time_ns(iters, || run_once(&mut profiled)));
    let rec = FlightRecorder::disabled(1024);
    let disabled_span_ns =
        min3(|| time_ns(1_000_000, || rec.complete("bench", "bench", 0, None, 0, Vec::new())));
    let disabled_overhead_ratio = plain_ns / profiled_ns.max(1e-9);
    let trace_events = round_trip_gate();

    println!("simulator loop: profile off {plain_ns:10.1} ns/run");
    println!("                profile on  {profiled_ns:10.1} ns/run");
    println!("disabled span call: {disabled_span_ns:.2} ns");
    println!("disabled/enabled ratio: {disabled_overhead_ratio:.3}");

    let mut art =
        pacman_bench::Artifact::new("perf_trace", "flight-recorder / self-profiler overhead");
    art.float("plain_run_ns", plain_ns)
        .float("profiled_run_ns", profiled_ns)
        .float("disabled_span_ns", disabled_span_ns)
        .float("disabled_overhead_ratio", disabled_overhead_ratio)
        .num("trace_events", trace_events as u64);
    art.write();

    // The CI gate, mirroring the claims-table band: a disabled profiler
    // must not make the simulator slower than running it enabled.
    assert!(
        disabled_overhead_ratio <= 1.25,
        "profiler-off run slower than profiler-on: ratio {disabled_overhead_ratio:.3}"
    );
}

fn main() {
    perf();
    write_artifact();
}
