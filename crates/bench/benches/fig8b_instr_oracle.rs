//! Figure 8(b): PAC-oracle miss-count distributions, instruction gadget.

use pacman_bench::{banner, check, compare, jobs, noisy_config, scale, tolerance, Artifact};
use pacman_core::oracle::CORRECT_MISS_THRESHOLD;
use pacman_core::parallel::{oracle_distribution, Channel};
use pacman_telemetry::json::Value;

fn main() {
    banner("F8b", "Figure 8(b) - PAC oracle via the instruction PACMAN gadget");
    let trials = scale("TRIALS", 300);
    let jobs = jobs();
    let out = oracle_distribution(
        &noisy_config(),
        Channel::Instr,
        1,
        trials,
        jobs,
        false,
        &tolerance(),
        |i, tp| tp ^ ((i as u16).wrapping_mul(40503) | 1),
    )
    .expect("oracle distribution");

    for (name, hist) in
        [("correct PAC", &out.correct_misses), ("incorrect PAC", &out.incorrect_misses)]
    {
        println!("\n  {name} ({trials} trials): misses -> frequency");
        for (m, &n) in hist.iter().enumerate() {
            if n > 0 {
                println!("    {m:>2} | {n:>6} ({:.1}%)", 100.0 * n as f64 / trials as f64);
            }
        }
    }
    println!();

    let good: u64 = out.correct_misses[CORRECT_MISS_THRESHOLD..].iter().sum();
    let clean: u64 = out.incorrect_misses[..=1].iter().sum();
    let good_pct = 100.0 * good as f64 / trials as f64;
    let clean_pct = 100.0 * clean as f64 / trials as f64;
    let miss_hist = |h: &[u64]| Value::Array(h.iter().map(|&n| Value::UInt(n)).collect());
    let mut art = Artifact::new("fig8b", "Figure 8(b) - PAC oracle, instruction PACMAN gadget");
    art.num("trials", trials as u64)
        .num("jobs", jobs as u64)
        .num("threshold_misses", CORRECT_MISS_THRESHOLD as u64)
        .float("correct_detect_pct", good_pct)
        .float("incorrect_clean_pct", clean_pct)
        .num("crashes", out.crashes)
        .field("correct_miss_histogram", miss_hist(&out.correct_misses))
        .field("incorrect_miss_histogram", miss_hist(&out.incorrect_misses));
    art.write();

    compare("correct-PAC trials with >=5 misses", "99.8%", &format!("{good_pct:.1}%"));
    compare("incorrect-PAC trials with <=1 miss", "99.2%", &format!("{clean_pct:.1}%"));
    compare("kernel crashes", "0", &out.crashes.to_string());

    check("correct-PAC detection >= 99%", good_pct >= 99.0);
    check("incorrect-PAC cleanliness >= 99%", clean_pct >= 99.0);
    check("zero crashes", out.crashes == 0);
}
