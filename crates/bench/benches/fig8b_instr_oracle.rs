//! Figure 8(b): PAC-oracle miss-count distributions, instruction gadget.

use pacman_bench::{banner, check, compare, noisy_system, scale, Artifact};
use pacman_core::oracle::{InstrPacOracle, PacOracle, CORRECT_MISS_THRESHOLD};
use pacman_telemetry::json::Value;

fn main() {
    banner("F8b", "Figure 8(b) - PAC oracle via the instruction PACMAN gadget");
    let trials = scale("TRIALS", 300);
    let mut sys = noisy_system();
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let mut oracle = InstrPacOracle::new(&mut sys).expect("oracle");

    let mut correct = vec![0usize; 13];
    let mut incorrect = vec![0usize; 13];
    for i in 0..trials {
        let c = oracle.trial(&mut sys, target, true_pac).expect("trial");
        correct[c.min(12)] += 1;
        let wrong = true_pac ^ ((i as u16).wrapping_mul(40503) | 1);
        let w = oracle.trial(&mut sys, target, wrong).expect("trial");
        incorrect[w.min(12)] += 1;
    }

    for (name, hist) in [("correct PAC", &correct), ("incorrect PAC", &incorrect)] {
        println!("\n  {name} ({trials} trials): misses -> frequency");
        for (m, &n) in hist.iter().enumerate() {
            if n > 0 {
                println!("    {m:>2} | {n:>6} ({:.1}%)", 100.0 * n as f64 / trials as f64);
            }
        }
    }
    println!();

    let good: usize = correct[CORRECT_MISS_THRESHOLD..].iter().sum();
    let clean: usize = incorrect[..=1].iter().sum();
    let good_pct = 100.0 * good as f64 / trials as f64;
    let clean_pct = 100.0 * clean as f64 / trials as f64;
    let miss_hist = |h: &[usize]| Value::Array(h.iter().map(|&n| Value::UInt(n as u64)).collect());
    let mut art = Artifact::new("fig8b", "Figure 8(b) - PAC oracle, instruction PACMAN gadget");
    art.num("trials", trials as u64)
        .num("threshold_misses", CORRECT_MISS_THRESHOLD as u64)
        .float("correct_detect_pct", good_pct)
        .float("incorrect_clean_pct", clean_pct)
        .num("crashes", sys.kernel.crash_count())
        .field("correct_miss_histogram", miss_hist(&correct))
        .field("incorrect_miss_histogram", miss_hist(&incorrect));
    art.write();

    compare("correct-PAC trials with >=5 misses", "99.8%", &format!("{good_pct:.1}%"));
    compare("incorrect-PAC trials with <=1 miss", "99.2%", &format!("{clean_pct:.1}%"));
    compare("kernel crashes", "0", &sys.kernel.crash_count().to_string());

    check("correct-PAC detection >= 99%", good_pct >= 99.0);
    check("incorrect-PAC cleanliness >= 99%", clean_pct >= 99.0);
    check("zero crashes", sys.kernel.crash_count() == 0);
}
