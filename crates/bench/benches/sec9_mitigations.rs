//! §9: the countermeasure matrix and the §4.2 eager-squash ablation.

use pacman_bench::{banner, check, compare, Artifact};
use pacman_core::report::Table;
use pacman_mitigations::{evaluate_all, evaluate_with_squash, AttackSurface};
use pacman_uarch::{Mitigation, SquashPolicy};

fn main() {
    banner("M9", "Section 9 - countermeasures vs the PACMAN oracles");
    let evals = evaluate_all();
    let baseline = evals
        .iter()
        .find(|e| e.report.mitigation == Mitigation::None)
        .expect("baseline present")
        .benign_cycles as f64;

    let mut t = Table::new(
        "mitigation matrix",
        &["mitigation", "data oracle", "instr oracle", "surface", "benign overhead"],
    );
    for e in &evals {
        let overhead = 100.0 * (e.benign_cycles as f64 - baseline) / baseline;
        t.row(&[
            format!("{:?}", e.report.mitigation),
            if e.report.data_oracle_works { "works" } else { "blind" }.into(),
            if e.report.instr_oracle_works { "works" } else { "blind" }.into(),
            format!("{:?}", e.surface),
            format!("{overhead:+.1}%"),
        ]);
    }
    println!("{t}");

    let mut art = Artifact::new("sec9", "Section 9 - countermeasure matrix + squash ablation");
    art.table("mitigation_matrix", &t);

    for e in &evals {
        match e.report.mitigation {
            Mitigation::None => {
                check("baseline is fully vulnerable", e.surface == AttackSurface::FullyVulnerable)
            }
            m => {
                check(&format!("{m:?} blinds both oracles"), e.surface == AttackSurface::Protected)
            }
        }
    }
    let fence = evals.iter().find(|e| e.report.mitigation == Mitigation::FenceAfterAut).unwrap();
    let fence_overhead = 100.0 * (fence.benign_cycles as f64 - baseline) / baseline;
    compare(
        "fence-after-AUT benign overhead",
        "significant (sec 9)",
        &format!("{fence_overhead:+.1}%"),
    );
    check("fence-after-AUT costs benign performance", fence.benign_cycles as f64 > 1.2 * baseline);

    println!("\n  ablation: nested-branch squash policy (sec 4.2)");
    let lazy = evaluate_with_squash(Mitigation::None, SquashPolicy::Lazy);
    compare("lazy squash surface", "data gadget only", &format!("{:?}", lazy.surface));
    check(
        "instruction gadget requires eager squash",
        lazy.surface == AttackSurface::DataGadgetOnly,
    );

    let baseline_eval =
        evals.iter().find(|e| e.report.mitigation == Mitigation::None).expect("baseline");
    let all_protect = evals
        .iter()
        .filter(|e| e.report.mitigation != Mitigation::None)
        .all(|e| e.surface == AttackSurface::Protected);
    art.float("fence_after_aut_overhead_pct", fence_overhead);
    art.text("baseline_surface", &format!("{:?}", baseline_eval.surface));
    art.field("all_mitigations_protect", pacman_telemetry::json::Value::Bool(all_protect));
    art.text("lazy_squash_surface", &format!("{:?}", lazy.surface));
    art.write();
}
