//! Durable-campaign snapshot costs: `System` snapshot/restore latency,
//! daemon checkpoint write/load latency, and — the production gate —
//! the end-to-end overhead periodic checkpointing adds to a real
//! campaign pushed through the daemon.
//!
//! The `snapshot` artefact pins the DESIGN.md §13 claims:
//!
//! - **latency** — how long one `System::snapshot`/`restore` pair and
//!   one daemon checkpoint write/load take;
//! - **fidelity** — a restored system is bit-identical (cycles and the
//!   full telemetry export agree);
//! - **overhead** — running the same campaign with checkpointing on
//!   costs at most 10% more wall time than with it off.

use std::sync::Arc;
use std::time::Instant;

use pacman_bench::{banner, check, compare, quiet_config, scale, Artifact};
use pacman_core::fault::Tolerance;
use pacman_core::parallel::{oracle_distribution, Channel};
use pacman_core::System;
use pacman_daemon::snapshot::DaemonSnapshot;
use pacman_daemon::{CheckpointPolicy, Daemon, DaemonConfig, JobRunner, JobSink};
use pacman_telemetry::json::Value;

/// Job command `campaign <seed> <records>`: a real (small) PAC-oracle
/// campaign, its result fanned out over `records` output records so
/// the stream is long enough to cross checkpoint cadence boundaries.
struct SnapRunner {
    trials: usize,
}

impl JobRunner for SnapRunner {
    fn run(&self, command: &str, sink: &JobSink) -> Result<(), String> {
        let mut words = command.split_whitespace();
        let _ = words.next(); // "campaign"
        let seed: u64 = words.next().and_then(|w| w.parse().ok()).unwrap_or(1);
        let records: usize = words.next().and_then(|w| w.parse().ok()).unwrap_or(1);
        let mut cfg = quiet_config();
        cfg.kernel_seed = seed;
        let out = oracle_distribution(
            &cfg,
            Channel::Data,
            1,
            self.trials,
            2,
            false,
            &Tolerance::default(),
            |i, tp| tp ^ (1 + i as u16),
        )
        .map_err(|e| e.to_string())?;
        for r in 0..records {
            sink.record(&format!(
                "{{\"record\":\"trial\",\"i\":{r},\"correct\":{}}}",
                out.correct_detected
            ));
        }
        Ok(())
    }
}

/// Drives `jobs` campaign jobs through one session and returns
/// (wall seconds, checkpoint_written records observed).
fn drive(daemon: &Daemon, jobs: usize, records: usize) -> (f64, u64) {
    let start = Instant::now();
    let handle = daemon.open_session("bench").expect("open session");
    for j in 0..jobs {
        handle.submit(&format!("campaign {} {records}", 0xBEEF + j as u64)).expect("submit");
    }
    let mut done = 0;
    let mut checkpoints = 0;
    while done < jobs {
        let Some(record) = handle.next_record() else { panic!("stream ended mid-campaign") };
        match record.get("type").and_then(Value::as_str) {
            Some("job_done") => done += 1,
            Some("job_failed") => panic!("bench campaign job failed: {record:?}"),
            Some("checkpoint_written") => checkpoints += 1,
            _ => {}
        }
    }
    (start.elapsed().as_secs_f64(), checkpoints)
}

#[allow(clippy::too_many_lines)]
fn main() {
    banner("Bsnapshot", "durable campaigns: snapshot latency and checkpoint overhead");
    let jobs = scale("SNAP_JOBS", 12);
    let records = scale("SNAP_RECORDS", 32);
    let trials = scale("SNAP_TRIALS", 96);
    let every = scale("SNAP_EVERY", 64) as u64;
    let reps = scale("SNAP_REPS", 10).max(1) as u32;
    let config = DaemonConfig { workers: 4, ..DaemonConfig::default() };
    let runner = || Arc::new(SnapRunner { trials });
    let state = std::env::temp_dir().join(format!("pacman-bench-snapshot-{}", std::process::id()));
    std::fs::create_dir_all(&state).expect("create bench state dir");
    let path = state.join("pacmand.snapshot");

    // -- System snapshot/restore latency and fidelity ------------------
    let sys = System::boot(quiet_config());
    let mut blob = Vec::new();
    let t = Instant::now();
    for _ in 0..reps {
        blob = sys.snapshot();
    }
    let system_snapshot_us = t.elapsed().as_secs_f64() / f64::from(reps) * 1e6;
    let mut restored = System::restore(&blob).expect("snapshot loads");
    let t = Instant::now();
    for _ in 1..reps {
        restored = System::restore(&blob).expect("snapshot loads");
    }
    let system_restore_us = t.elapsed().as_secs_f64() / f64::from(reps.max(2) - 1) * 1e6;
    let roundtrip_ok = restored.machine.cycles == sys.machine.cycles
        && restored.telemetry_snapshot() == sys.telemetry_snapshot();

    // -- campaign overhead: plain vs durable daemon, best-of-2 each ----
    let mut baseline_wall_s = f64::INFINITY;
    for _ in 0..2 {
        let daemon = Daemon::start(config, runner());
        let (wall, _) = drive(&daemon, jobs, records);
        daemon.drain();
        baseline_wall_s = baseline_wall_s.min(wall);
    }
    let mut durable_wall_s = f64::INFINITY;
    let mut checkpoints = 0;
    for _ in 0..2 {
        let daemon = Daemon::start_durable(
            config,
            runner(),
            CheckpointPolicy::new(path.clone(), every),
            false,
        );
        let (wall, n) = drive(&daemon, jobs, records);
        daemon.drain();
        durable_wall_s = durable_wall_s.min(wall);
        checkpoints = n;
    }
    let checkpoint_overhead_pct =
        ((durable_wall_s - baseline_wall_s) / baseline_wall_s * 100.0).max(0.0);

    // -- daemon checkpoint write / load latency ------------------------
    // Measured with a populated daemon (open session, run telemetry,
    // restorable machine-pool blobs are the CLI's concern, not cut here).
    let daemon =
        Daemon::start_durable(config, runner(), CheckpointPolicy::new(path.clone(), every), false);
    let (_, _) = drive(&daemon, 2, records);
    let t = Instant::now();
    for _ in 0..reps {
        daemon.checkpoint_now().expect("checkpoint writes");
    }
    let checkpoint_write_us = t.elapsed().as_secs_f64() / f64::from(reps) * 1e6;
    let t = Instant::now();
    for _ in 0..reps {
        let loaded = DaemonSnapshot::read_file(&path).expect("snapshot loads");
        assert!(loaded.is_some(), "checkpoint file vanished");
    }
    let resume_restore_us = t.elapsed().as_secs_f64() / f64::from(reps) * 1e6;
    daemon.drain();
    let _ = std::fs::remove_dir_all(&state);

    println!("  {jobs} jobs x {records} records, checkpoint every {every} records");
    println!("  System snapshot:   {system_snapshot_us:10.1} us ({} bytes)", blob.len());
    println!("  System restore:    {system_restore_us:10.1} us");
    println!("  checkpoint write:  {checkpoint_write_us:10.1} us");
    println!("  checkpoint load:   {resume_restore_us:10.1} us");
    println!(
        "  campaign wall:     {baseline_wall_s:.3} s plain, {durable_wall_s:.3} s durable \
         ({checkpoints} checkpoints, +{checkpoint_overhead_pct:.1}%)"
    );
    println!();

    let mut art =
        Artifact::new("snapshot", "durable campaigns: snapshot latency and checkpoint overhead");
    art.num("jobs", jobs as u64)
        .num("records_per_job", records as u64)
        .num("checkpoint_every", every)
        .num("snapshot_bytes", blob.len() as u64)
        .float("system_snapshot_us", system_snapshot_us)
        .float("system_restore_us", system_restore_us)
        .float("checkpoint_write_us", checkpoint_write_us)
        .float("resume_restore_us", resume_restore_us)
        .float("baseline_wall_s", baseline_wall_s)
        .float("durable_wall_s", durable_wall_s)
        .float("checkpoint_overhead_pct", checkpoint_overhead_pct)
        .num("checkpoints_written", checkpoints)
        .field("roundtrip_ok", Value::Bool(roundtrip_ok));
    art.write();

    compare(
        "snapshot fidelity",
        "bit-identical",
        if roundtrip_ok { "bit-identical" } else { "DIVERGED" },
    );
    compare(
        "checkpoint overhead",
        "<=10% of campaign wall",
        &format!("{checkpoint_overhead_pct:.1}%"),
    );
    compare("checkpoint cadence", ">=1 periodic checkpoint", &format!("{checkpoints}"));

    check("a restored System is bit-identical", roundtrip_ok);
    check("periodic checkpoints were cut mid-campaign", checkpoints >= 1);
    check("checkpointing costs <=10% of campaign runtime", checkpoint_overhead_pct <= 10.0);
}
