//! Differential conformance: the speculative core versus the in-order
//! architectural reference machine, plus the injected-bug self-test.
//!
//! Not a paper table — this artefact underwrites all the others: every
//! figure rides on the simulator committing exactly the architectural
//! state an in-order machine would (the paper's §5–6 boundary).

use pacman_bench::{banner, check, jobs, scale, tolerance, Artifact};
use pacman_core::conformance::{run_conformance, ConformConfig};
use pacman_core::report::Table;
use pacman_ref::self_test;
use pacman_telemetry::json::Value;

fn main() {
    banner("CONF", "Differential conformance - reference machine vs speculative core");
    let programs = scale("CONFORM_PROGRAMS", 500);
    let jobs = jobs();
    let tol = tolerance();
    let cfg = ConformConfig { programs, ..ConformConfig::default() };
    let report = run_conformance(&cfg, jobs, &tol).expect("conformance run");
    let self_results = self_test(cfg.seed, 64, cfg.max_steps);
    let detected = self_results.iter().filter(|r| r.detected()).count();

    let mut t = Table::new(
        format!("{programs} seeded programs, lockstep retire-boundary equivalence"),
        &["metric", "value"],
    );
    t.row(&["programs".into(), report.programs.to_string()]);
    t.row(&["divergences".into(), report.divergences.len().to_string()]);
    t.row(&["runner retries".into(), report.retries.to_string()]);
    for r in &self_results {
        t.row(&[
            format!("self-test: {}", r.name),
            match &r.divergence {
                Some(d) => format!("detected ({} at step {})", d.kind, d.step),
                None => "NOT DETECTED".into(),
            },
        ]);
    }
    println!("{t}");

    let ok = report.conforms() && detected == self_results.len();
    let mut art = Artifact::new("conform", "differential conformance harness");
    art.table("conformance", &t);
    art.num("programs", report.programs)
        .num("jobs", jobs as u64)
        .num("divergences", report.divergences.len() as u64)
        .num("retries", report.retries)
        .num("self_test_bugs_detected", detected as u64)
        .num("self_test_expected", self_results.len() as u64)
        .field("ok", Value::Bool(ok));
    art.write();

    check("speculative core conforms on every program", report.conforms());
    check("self-test detects the eager-squash bug", self_results[0].detected());
    check("self-test detects the fault-suppression bug", self_results[1].detected());
}
