//! Figure 5(b): cache/TLB interaction sweep (raw-stride loads).

use pacman_bench::{banner, check, compare, jobs, tolerance, Artifact};
use pacman_core::parallel::{parallel_sweep, SweepKind};
use pacman_core::report::AsciiChart;

fn main() {
    banner("F5b", "Figure 5(b) - data-load sweep, addr[i] = x + i*stride");
    let jobs = jobs();
    let strides = [256 * 128, 256 * 16384, 2048 * 16384];
    let tol = tolerance();
    let (series, _) = parallel_sweep(SweepKind::CacheTlb, &strides, jobs, &tol).expect("sweep");

    let mut chart = AsciiChart::new("median reload latency (cycles) vs N");
    for s in &series {
        chart.series(
            format!("stride {}", s.label),
            s.points.iter().map(|p| (p.n, p.median)).collect(),
        );
    }
    println!("{chart}");

    let l1d = &series[0];
    let dtlb = &series[1];
    let l2 = &series[2];

    let mut art = Artifact::new("fig5b", "Figure 5(b) - cache/TLB interaction sweep");
    art.chart("latency_vs_n", &chart);
    art.num("baseline_cycles", l1d.at(2).unwrap());
    art.num("l1d_conflict_plateau_cycles", l1d.at(6).unwrap());
    art.num("dtlb_plateau_cycles", dtlb.at(14).unwrap());
    art.num("l2_tlb_plateau_cycles", l2.at(25).unwrap());
    if let Some(n) = l1d.knee_above(75) {
        art.num("l1d_knee_n", n as u64);
    }
    if let Some(n) = dtlb.knee_above(105) {
        art.num("dtlb_knee_n", n as u64);
    }
    if let Some(n) = l2.knee_above(125) {
        art.num("l2_tlb_knee_n", n as u64);
    }
    art.write();

    compare(
        "L1D-conflict plateau (stride 256x128B, N>=4)",
        "~80 cycles",
        &format!("{} cycles", l1d.at(6).unwrap()),
    );
    compare(
        "dTLB+L2$-plateau (stride 256x16KB, N>=12)",
        "~110 cycles",
        &format!("{} cycles", dtlb.at(14).unwrap()),
    );
    compare(
        "L2TLB+L2$-plateau (stride 2048x16KB, N>=23)",
        "~130 cycles",
        &format!("{} cycles", l2.at(25).unwrap()),
    );
    compare(
        "L1D knee (observed 4-way, footnote 5)",
        "N = 4",
        &format!("N = {:?}", l1d.knee_above(75)),
    );
    compare("dTLB knee", "N = 12", &format!("N = {:?}", dtlb.knee_above(105)));
    compare("L2 TLB knee", "N = 23", &format!("N = {:?}", l2.knee_above(125)));

    check("L1D knee at N=4", l1d.knee_above(75) == Some(4));
    check("dTLB knee at N=12", dtlb.knee_above(105) == Some(12));
    check("L2 TLB knee at N=23", l2.knee_above(125) == Some(23));
    check("staircase 60 -> 80 -> ~110 -> ~130", {
        let base = l1d.at(2).unwrap();
        let a = l1d.at(6).unwrap();
        let b = dtlb.at(14).unwrap();
        let c = l2.at(25).unwrap();
        base < a && a < b && b < c
    });
}
