//! §4.3: the PACMAN-gadget census over a synthetic PA-enabled image.

use pacman_bench::{banner, check, compare, jobs, scale, Artifact};
use pacman_core::report::Table;
use pacman_gadget::{parallel_census, ImageSpec, ScanConfig};

fn main() {
    banner("G43", "Section 4.3 - gadget census (Ghidra-style scan, 32-inst window)");
    let functions = scale("FUNCTIONS", 4000);
    let jobs = jobs();
    let spec = ImageSpec { functions, seed: 0xC0DE, ..ImageSpec::default() };
    let report = parallel_census(&spec, &ScanConfig::default(), jobs);

    let mut t = Table::new(
        format!(
            "census over {} synthetic functions ({} instructions)",
            functions, report.instructions
        ),
        &["metric", "value"],
    );
    t.row(&["conditional branches inspected".into(), report.conditional_branches.to_string()]);
    t.row(&["potential PACMAN gadgets".into(), report.total().to_string()]);
    t.row(&["data gadgets".into(), report.data_count().to_string()]);
    t.row(&["instruction gadgets".into(), report.instruction_count().to_string()]);
    t.row(&["mean branch->transmit distance".into(), format!("{:.1}", report.mean_distance())]);
    println!("{t}");

    let ratio = report.instruction_count() as f64 / report.data_count().max(1) as f64;
    let clean_total =
        parallel_census(&ImageSpec { pa_percent: 0, ..spec }, &ScanConfig::default(), jobs).total();

    let mut art = Artifact::new("sec43", "Section 4.3 - PACMAN-gadget census");
    art.table("census", &t);
    art.num("functions", functions as u64)
        .num("jobs", jobs as u64)
        .num("instructions", report.instructions as u64)
        .num("conditional_branches", report.conditional_branches as u64)
        .num("total_gadgets", report.total() as u64)
        .num("data_gadgets", report.data_count() as u64)
        .num("instruction_gadgets", report.instruction_count() as u64)
        .float("gadgets_per_function", report.total() as f64 / functions as f64)
        .float("instr_to_data_ratio", ratio)
        .float("mean_distance", report.mean_distance())
        .num("gadgets_without_pa", clean_total as u64);
    art.write();

    compare("total gadgets (XNU 12.2.1)", "55,159", &report.total().to_string());
    compare(
        "data / instruction split",
        "13,867 / 41,292",
        &format!("{} / {}", report.data_count(), report.instruction_count()),
    );
    compare("instruction:data ratio", "~2.98", &format!("{ratio:.2}"));
    compare("mean distance (instructions)", "8.1", &format!("{:.1}", report.mean_distance()));

    check("gadgets are abundant (> 1 per function on average)", report.total() > functions);
    check("instruction gadgets dominate", report.instruction_count() > report.data_count());
    check("distances are short (< 32-inst window, mean < 20)", report.mean_distance() < 20.0);
    check("no gadgets without PA", clean_total == 0);
}
