//! §8.2: brute-force speed — time per PAC guess and full-space estimate.

use pacman_bench::{banner, check, compare, jobs, quiet_config, scale, tolerance, Artifact};
use pacman_core::parallel::{parallel_brute, Channel};
use pacman_core::System;

fn main() {
    banner("B82s", "Section 8.2 - brute-force speed (64 training iterations/guess)");
    let guesses = scale("GUESSES", 64) as u16;
    let jobs = jobs();
    let cfg = quiet_config();

    // Sweep a window that deliberately excludes the true PAC so every
    // guess pays the full test cost. The target and its true PAC are a
    // function of the kernel seed, so a probe boot sees the same values
    // as every worker shard.
    let mut probe = System::boot(cfg.clone());
    let set = probe.pick_quiet_dtlb_set();
    let target = probe.alloc_target(set);
    let true_pac = probe.true_pac(target);
    let window: Vec<u16> = (0..guesses).map(|i| true_pac ^ (0x4000 + i)).collect();

    let tol = tolerance();
    let out = parallel_brute(&cfg, Channel::Data, 1, &window, jobs, false, &tol).expect("sweep");
    let outcome = out.outcome;

    let clock = probe.machine.config().clock_hz;
    let ms = outcome.ms_per_guess(clock);
    let minutes = outcome.minutes_for_full_space(clock);
    println!("  guesses tested:            {}", outcome.guesses_tested);
    println!("  syscalls issued:           {}", outcome.syscalls);
    println!("  simulated cycles:          {}", outcome.cycles);
    println!("  simulated ms per guess:    {ms:.3}");
    println!("  est. full 16-bit sweep:    {minutes:.2} simulated minutes");
    println!();

    let mut art = Artifact::new("sec82_speed", "Section 8.2 - brute-force speed");
    art.num("guesses_tested", outcome.guesses_tested)
        .num("jobs", jobs as u64)
        .num("syscalls", outcome.syscalls)
        .num("cycles", outcome.cycles)
        .num("crashes", outcome.crashes)
        .num("syscalls_per_guess", outcome.syscalls / outcome.guesses_tested)
        .float("ms_per_guess", ms)
        .float("full_space_minutes", minutes);
    art.write();

    compare("time per guess", "2.69 ms", &format!("{ms:.2} ms (simulated)"));
    compare("full 2^16 sweep", "~2.94 min", &format!("{minutes:.2} min (simulated)"));
    compare(
        "dominant cost",
        "training syscalls",
        &format!("{} syscalls/guess", outcome.syscalls / outcome.guesses_tested),
    );

    check("every guess was tested (no early exit)", outcome.guesses_tested == guesses as u64);
    check("zero crashes", outcome.crashes == 0);
    check(
        "cost is syscall-dominated (>=65 syscalls/guess)",
        outcome.syscalls / outcome.guesses_tested >= 65,
    );
    check("per-guess time within 2x of the paper's 2.69 ms", (1.35..=5.4).contains(&ms));
}
