//! §8.3: the Jump2Win control-flow hijack, measured end to end.

use pacman_bench::{banner, check, compare, quiet_system, scale, Artifact};
use pacman_core::jump2win::Jump2Win;
use pacman_isa::PacKey;
use pacman_telemetry::json::Value;

fn main() {
    banner("J83", "Section 8.3 - Jump2Win control-flow hijack against the PA-enabled kernel");
    let window = scale("WINDOW", 512) as u32;
    let mut sys = quiet_system();
    println!("  victim object2 at {:#x}", sys.cpp.obj2);
    println!(
        "  win() function at {:#x} (never referenced by any legitimate vtable)",
        sys.cpp.win_fn
    );

    let mut driver = Jump2Win::new().with_samples(3).with_train_iters(16);
    if window < 65536 {
        // Windowed sweep: same per-guess behaviour, bounded runtime.
        let t1 = sys.true_pac_with_salt(PacKey::Ia, sys.cpp.win_fn);
        let t2 = sys.true_pac_with_salt(PacKey::Da, sys.cpp.obj1);
        let centre = |t: u16| (t.wrapping_sub((window / 2) as u16), window);
        driver.phase_windows = Some([centre(t1), centre(t2)]);
        println!(
            "  (windowed sweep: {window} candidates per phase; PACMAN_WINDOW=65536 for full space)"
        );
    }

    let report = driver.run(&mut sys).expect("the hijack must succeed");
    let secs = report.cycles as f64 / sys.machine.config().clock_hz as f64;

    println!();
    println!("  recovered PAC(win, IA key, object salt):    {:#06x}", report.pac_win);
    println!("  recovered PAC(vtable, DA key, object salt): {:#06x}", report.pac_vtable);
    println!("  PAC candidates tested:  {}", report.guesses_tested);
    println!("  syscalls issued:        {}", report.syscalls);
    println!("  simulated attack time:  {secs:.3} s");
    println!();

    let pacs_ok = report.pac_win == sys.true_pac_with_salt(PacKey::Ia, sys.cpp.win_fn)
        && report.pac_vtable == sys.true_pac_with_salt(PacKey::Da, sys.cpp.obj1);
    let mut art = Artifact::new("sec83", "Section 8.3 - Jump2Win control-flow hijack");
    art.num("pac_win", u64::from(report.pac_win))
        .num("pac_vtable", u64::from(report.pac_vtable))
        .num("guesses_tested", report.guesses_tested)
        .num("syscalls", report.syscalls)
        .num("crashes", report.crashes)
        .float("attack_seconds", secs)
        .field("hijacked", Value::Bool(report.hijacked))
        .field("pacs_authenticate", Value::Bool(pacs_ok));
    art.write();

    compare("control-flow hijacked (win() at EL1)", "yes", &report.hijacked.to_string());
    compare("kernel crashes during the attack", "0", &report.crashes.to_string());
    compare("PACs recovered via", "PACMAN oracle", "PACMAN oracle (speculative, crash-free)");

    check("win() executed at EL1", report.hijacked);
    check("zero kernel crashes", report.crashes == 0);
    check("both recovered PACs authenticate", pacs_ok);
}
