//! §8.2: brute-force accuracy under noise — TP / FP / FN over many runs.

use pacman_bench::{banner, check, compare, jobs, noisy_config, scale, tolerance, Artifact};
use pacman_core::parallel::{parallel_accuracy, Channel};

fn main() {
    banner("B82a", "Section 8.2 - brute-force accuracy (5 samples/guess, median rule, noise on)");
    let runs = scale("RUNS", 50);
    let jobs = jobs();

    // Each run sweeps a small window containing the true PAC (the
    // full-space sweep visits it eventually; the window keeps the bench
    // minutes-long with identical per-guess behaviour).
    let tol = tolerance();
    let out = parallel_accuracy(&noisy_config(), Channel::Data, 5, runs, jobs, &tol, |run, tp| {
        let start = tp.wrapping_sub(3).wrapping_add((run % 3) as u16);
        (0..8u16).map(|i| start.wrapping_add(i)).collect()
    })
    .expect("accuracy runs");
    let (tp, fp, fneg) = (out.true_positives, out.false_positives, out.false_negatives);

    println!("  runs:            {runs}");
    println!("  true positives:  {tp}");
    println!("  false positives: {fp}");
    println!("  false negatives: {fneg}");
    println!();
    let mut art = Artifact::new("sec82_accuracy", "Section 8.2 - brute-force accuracy");
    art.num("runs", runs as u64)
        .num("jobs", jobs as u64)
        .num("true_positives", tp)
        .num("false_positives", fp)
        .num("false_negatives", fneg)
        .float("tp_rate_pct", 100.0 * tp as f64 / runs as f64)
        .num("crashes", out.crashes);
    art.write();

    compare(
        "true-positive rate",
        "90% (45/50)",
        &format!("{:.0}% ({tp}/{runs})", 100.0 * tp as f64 / runs as f64),
    );
    compare("false positives", "0 (intolerable)", &fp.to_string());
    compare("false negatives", "10% (tolerable, retry)", &format!("{fneg}"));

    check("no false positives", fp == 0);
    check("true-positive rate >= 90%", tp * 10 >= runs as u64 * 9);
    check("zero kernel crashes", out.crashes == 0);
}
