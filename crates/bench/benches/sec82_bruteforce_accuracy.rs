//! §8.2: brute-force accuracy under noise — TP / FP / FN over many runs.

use pacman_bench::{banner, check, compare, noisy_system, scale, Artifact};
use pacman_core::brute::{BruteForcer, BruteVerdict};
use pacman_core::oracle::DataPacOracle;

fn main() {
    banner("B82a", "Section 8.2 - brute-force accuracy (5 samples/guess, median rule, noise on)");
    let runs = scale("RUNS", 50);
    let mut sys = noisy_system();
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);

    let oracle = DataPacOracle::new(&mut sys).expect("oracle").with_samples(5);
    let mut bf = BruteForcer::new(oracle);

    let mut tp = 0;
    let mut fp = 0;
    let mut fneg = 0;
    for run in 0..runs {
        // Each run sweeps a small window containing the true PAC (the
        // full-space sweep visits it eventually; the window keeps the
        // bench minutes-long with identical per-guess behaviour).
        let start = true_pac.wrapping_sub(3).wrapping_add((run % 3) as u16);
        let outcome =
            bf.brute(&mut sys, target, (0..8u16).map(|i| start.wrapping_add(i))).expect("run");
        assert_eq!(outcome.crashes, 0, "run {run} crashed the kernel");
        match BruteForcer::<DataPacOracle>::classify(&outcome, true_pac) {
            BruteVerdict::TruePositive => tp += 1,
            BruteVerdict::FalsePositive => fp += 1,
            BruteVerdict::FalseNegative => fneg += 1,
        }
    }

    println!("  runs:            {runs}");
    println!("  true positives:  {tp}");
    println!("  false positives: {fp}");
    println!("  false negatives: {fneg}");
    println!();
    let mut art = Artifact::new("sec82_accuracy", "Section 8.2 - brute-force accuracy");
    art.num("runs", runs as u64)
        .num("true_positives", tp as u64)
        .num("false_positives", fp as u64)
        .num("false_negatives", fneg as u64)
        .float("tp_rate_pct", 100.0 * tp as f64 / runs as f64)
        .num("crashes", sys.kernel.crash_count());
    art.write();

    compare(
        "true-positive rate",
        "90% (45/50)",
        &format!("{:.0}% ({tp}/{runs})", 100.0 * tp as f64 / runs as f64),
    );
    compare("false positives", "0 (intolerable)", &fp.to_string());
    compare("false negatives", "10% (tolerable, retry)", &format!("{fneg}"));

    check("no false positives", fp == 0);
    check("true-positive rate >= 90%", tp * 10 >= runs * 9);
    check("zero kernel crashes", sys.kernel.crash_count() == 0);
}
