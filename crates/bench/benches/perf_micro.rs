//! Criterion microbenchmarks of the workspace's own hot paths: QARMA
//! throughput, simulator instruction rate, and end-to-end oracle latency.

use criterion::{criterion_group, Criterion};
use pacman_core::oracle::{DataPacOracle, PacOracle};
use pacman_core::telemetry::{recorded_test_pac, TrialLog};
use pacman_core::{System, SystemConfig};
use pacman_isa::{Asm, Inst, Reg};
use pacman_qarma::{PacComputer, Qarma64, QarmaKey};
use pacman_uarch::{Machine, MachineConfig, Perms};

fn bench_qarma(c: &mut Criterion) {
    let cipher = Qarma64::new(QarmaKey::new(0x0123456789abcdef, 0xfedcba9876543210));
    c.bench_function("qarma64_encrypt", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = cipher.encrypt(std::hint::black_box(x), 0x42);
            x
        })
    });
    let pacs = PacComputer::new(QarmaKey::new(1, 2), 48);
    c.bench_function("pac_compute", |b| {
        let mut p = 0u64;
        b.iter(|| {
            p = pacs.pac(std::hint::black_box(p | 0x4000), 7);
            p
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("simulator_1k_insts", |b| {
        let cfg = MachineConfig { os_noise: 0.0, ..MachineConfig::default() };
        let mut m = Machine::new(cfg);
        let code = 0x40_0000u64;
        m.map_region(code, 4096, Perms::user_rwx());
        let mut a = Asm::new();
        let top = a.new_label();
        a.mov_imm64(Reg::X0, 250);
        a.bind(top);
        a.push(Inst::AddImm { rd: Reg::X1, rn: Reg::X1, imm: 1 });
        a.push(Inst::SubImm { rd: Reg::X0, rn: Reg::X0, imm: 1 });
        a.cbnz(Reg::X0, top);
        a.push(Inst::Hlt);
        m.load_program(code, &a.assemble().unwrap());
        b.iter(|| {
            m.cpu.pc = code;
            m.run(2_000).expect("program runs")
        })
    });
}

fn bench_oracle(c: &mut Criterion) {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    let mut sys = System::boot(cfg);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let mut oracle = DataPacOracle::new(&mut sys).expect("oracle");
    c.bench_function("pac_oracle_single_guess", |b| {
        b.iter(|| oracle.trial(&mut sys, target, std::hint::black_box(true_pac)).expect("trial"))
    });
}

/// The same oracle hot path through [`recorded_test_pac`], with telemetry
/// off (disabled log + registry: the one-branch fast path) and on
/// (enabled registry + per-trial records). The off variant must track
/// `pac_oracle_single_guess` — that is the "disabled path costs nothing"
/// claim, measured.
fn bench_oracle_telemetry(c: &mut Criterion) {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    let mut sys = System::boot(cfg);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let mut oracle = DataPacOracle::new(&mut sys).expect("oracle");

    let mut off_log = TrialLog::disabled();
    c.bench_function("pac_oracle_single_guess_telemetry_off", |b| {
        b.iter(|| {
            recorded_test_pac(
                &mut oracle,
                &mut sys,
                &mut off_log,
                target,
                std::hint::black_box(true_pac),
                Some(true_pac),
            )
            .expect("trial")
        })
    });

    sys.telemetry.set_enabled(true);
    let mut on_log = TrialLog::new();
    c.bench_function("pac_oracle_single_guess_telemetry_on", |b| {
        b.iter(|| {
            let v = recorded_test_pac(
                &mut oracle,
                &mut sys,
                &mut on_log,
                target,
                std::hint::black_box(true_pac),
                Some(true_pac),
            )
            .expect("trial");
            // Drain per iteration so memory stays bounded; the take is
            // part of the telemetry-on cost being measured.
            std::hint::black_box(on_log.take());
            v
        })
    });
}

criterion_group! {
    name = perf;
    config = Criterion::default().sample_size(20);
    targets = bench_qarma, bench_simulator, bench_oracle, bench_oracle_telemetry
}

/// Mean ns/iteration of `f` over a fixed batch (the artefact's own
/// quick measurement — the criterion report stays the reference
/// numbers; these mirror them machine-readably).
fn time_ns<O>(iters: u32, mut f: impl FnMut() -> O) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn write_artifact() {
    let cipher = Qarma64::new(QarmaKey::new(0x0123456789abcdef, 0xfedcba9876543210));
    let mut x = 0u64;
    let qarma_ns = time_ns(200_000, || {
        x = cipher.encrypt(std::hint::black_box(x), 0x42);
        x
    });

    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    let mut sys = System::boot(cfg);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let mut oracle = DataPacOracle::new(&mut sys).expect("oracle");
    let oracle_ns = time_ns(50, || oracle.trial(&mut sys, target, true_pac).expect("trial"));

    let mut off_log = TrialLog::disabled();
    let off_ns = time_ns(50, || {
        recorded_test_pac(&mut oracle, &mut sys, &mut off_log, target, true_pac, Some(true_pac))
            .expect("trial")
    });
    sys.telemetry.set_enabled(true);
    let mut on_log = TrialLog::new();
    let on_ns = time_ns(50, || {
        let v =
            recorded_test_pac(&mut oracle, &mut sys, &mut on_log, target, true_pac, Some(true_pac))
                .expect("trial");
        std::hint::black_box(on_log.take());
        v
    });

    let mut art = pacman_bench::Artifact::new("perf_micro", "workspace hot-path wall-clock");
    art.float("qarma_encrypt_ns", qarma_ns)
        .float("oracle_guess_ns", oracle_ns)
        .float("oracle_guess_telemetry_off_ns", off_ns)
        .float("oracle_guess_telemetry_on_ns", on_ns);
    art.write();
}

fn main() {
    perf();
    write_artifact();
}
