//! Criterion microbenchmarks of the workspace's own hot paths: QARMA
//! throughput, simulator instruction rate, and end-to-end oracle latency.

use criterion::{criterion_group, Criterion};
use pacman_core::oracle::{DataPacOracle, PacOracle};
use pacman_core::parallel::{oracle_distribution, Channel};
use pacman_core::telemetry::{recorded_test_pac, TrialLog};
use pacman_core::{System, SystemConfig};
use pacman_isa::{Asm, Inst, Reg};
use pacman_qarma::{PacComputer, Qarma64, QarmaKey};
use pacman_uarch::{Cache, CacheParams, Machine, MachineConfig, Perms, Tlb, TlbEntry, TlbParams};

fn bench_qarma(c: &mut Criterion) {
    let cipher = Qarma64::new(QarmaKey::new(0x0123456789abcdef, 0xfedcba9876543210));
    c.bench_function("qarma64_encrypt", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = cipher.encrypt(std::hint::black_box(x), 0x42);
            x
        })
    });
    let pacs = PacComputer::new(QarmaKey::new(1, 2), 48);
    c.bench_function("pac_compute", |b| {
        let mut p = 0u64;
        b.iter(|| {
            p = pacs.pac(std::hint::black_box(p | 0x4000), 7);
            p
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("simulator_1k_insts", |b| {
        let cfg = MachineConfig { os_noise: 0.0, ..MachineConfig::default() };
        let mut m = Machine::new(cfg);
        let code = 0x40_0000u64;
        m.map_region(code, 4096, Perms::user_rwx());
        let mut a = Asm::new();
        let top = a.new_label();
        a.mov_imm64(Reg::X0, 250);
        a.bind(top);
        a.push(Inst::AddImm { rd: Reg::X1, rn: Reg::X1, imm: 1 });
        a.push(Inst::SubImm { rd: Reg::X0, rn: Reg::X0, imm: 1 });
        a.cbnz(Reg::X0, top);
        a.push(Inst::Hlt);
        m.load_program(code, &a.assemble().unwrap());
        b.iter(|| {
            m.cpu.pc = code;
            m.run(2_000).expect("program runs")
        })
    });
}

fn bench_oracle(c: &mut Criterion) {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    let mut sys = System::boot(cfg);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let mut oracle = DataPacOracle::new(&mut sys).expect("oracle");
    c.bench_function("pac_oracle_single_guess", |b| {
        b.iter(|| oracle.trial(&mut sys, target, std::hint::black_box(true_pac)).expect("trial"))
    });
}

/// The same oracle hot path through [`recorded_test_pac`], with telemetry
/// off (disabled log + registry: the one-branch fast path) and on
/// (enabled registry + per-trial records). The off variant must track
/// `pac_oracle_single_guess` — that is the "disabled path costs nothing"
/// claim, measured.
fn bench_oracle_telemetry(c: &mut Criterion) {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    let mut sys = System::boot(cfg);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let mut oracle = DataPacOracle::new(&mut sys).expect("oracle");

    let mut off_log = TrialLog::disabled();
    c.bench_function("pac_oracle_single_guess_telemetry_off", |b| {
        b.iter(|| {
            recorded_test_pac(
                &mut oracle,
                &mut sys,
                &mut off_log,
                target,
                std::hint::black_box(true_pac),
                Some(true_pac),
            )
            .expect("trial")
        })
    });

    sys.telemetry.set_enabled(true);
    let mut on_log = TrialLog::new();
    c.bench_function("pac_oracle_single_guess_telemetry_on", |b| {
        b.iter(|| {
            let v = recorded_test_pac(
                &mut oracle,
                &mut sys,
                &mut on_log,
                target,
                std::hint::black_box(true_pac),
                Some(true_pac),
            )
            .expect("trial");
            // Drain per iteration so memory stays bounded; the take is
            // part of the telemetry-on cost being measured.
            std::hint::black_box(on_log.take());
            v
        })
    });
}

criterion_group! {
    name = perf;
    config = Criterion::default().sample_size(20);
    targets = bench_qarma, bench_simulator, bench_oracle, bench_oracle_telemetry
}

/// Mean ns/iteration of `f` over a fixed batch (the artefact's own
/// quick measurement — the criterion report stays the reference
/// numbers; these mirror them machine-readably).
fn time_ns<O>(iters: u32, mut f: impl FnMut() -> O) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn write_artifact() {
    let cipher = Qarma64::new(QarmaKey::new(0x0123456789abcdef, 0xfedcba9876543210));
    let mut x = 0u64;
    let qarma_ns = time_ns(200_000, || {
        x = cipher.encrypt(std::hint::black_box(x), 0x42);
        x
    });

    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    let mut sys = System::boot(cfg);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let mut oracle = DataPacOracle::new(&mut sys).expect("oracle");
    let oracle_ns = time_ns(50, || oracle.trial(&mut sys, target, true_pac).expect("trial"));

    let mut off_log = TrialLog::disabled();
    let off_ns = time_ns(50, || {
        recorded_test_pac(&mut oracle, &mut sys, &mut off_log, target, true_pac, Some(true_pac))
            .expect("trial")
    });
    sys.telemetry.set_enabled(true);
    let mut on_log = TrialLog::new();
    let on_ns = time_ns(50, || {
        let v =
            recorded_test_pac(&mut oracle, &mut sys, &mut on_log, target, true_pac, Some(true_pac))
                .expect("trial");
        std::hint::black_box(on_log.take());
        v
    });

    let mut art = pacman_bench::Artifact::new("perf_micro", "workspace hot-path wall-clock");
    art.float("qarma_encrypt_ns", qarma_ns)
        .float("oracle_guess_ns", oracle_ns)
        .float("oracle_guess_telemetry_off_ns", off_ns)
        .float("oracle_guess_telemetry_on_ns", on_ns);
    art.write();
}

/// Trial pairs for the serial-vs-parallel throughput comparison: enough
/// work per shard that thread startup is amortised, small enough to stay
/// seconds-long on one core.
const PARALLEL_TRIALS: usize = 240;

/// Wrong-guess schedule shared by both timed runs (and thus by every
/// shard): a pure function of the global trial index.
fn wrong_guess(i: usize, true_pac: u16) -> u16 {
    true_pac ^ (1 + i as u16)
}

/// One timed `oracle_distribution` run; returns (seconds, trials/sec).
fn timed_distribution(cfg: &SystemConfig, jobs: usize) -> (f64, f64) {
    let start = std::time::Instant::now();
    let tol = pacman_core::fault::Tolerance::from_env();
    let out =
        oracle_distribution(cfg, Channel::Data, 1, PARALLEL_TRIALS, jobs, false, &tol, wrong_guess)
            .expect("distribution");
    assert_eq!(out.trials as usize, PARALLEL_TRIALS);
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (secs, PARALLEL_TRIALS as f64 / secs)
}

/// Hot-loop ns/access of the flat-storage TLB (insert+lookup over a
/// working set that spans every set and overflows the ways, so the
/// rotation/eviction paths are exercised, not just the MRU hit).
fn tlb_access_ns() -> f64 {
    let mut tlb = Tlb::new(TlbParams { ways: 12, sets: 256 });
    let perms = Perms::user_rwx();
    let span = 256 * 16; // 16 conflicting entries per set
    let mut vpn = 0u64;
    time_ns(400_000, || {
        vpn = (vpn + 257) % span;
        tlb.insert(TlbEntry { vpn, pfn: vpn ^ 0x5a5a, perms });
        tlb.lookup(vpn.wrapping_mul(0x9e37) % span)
    })
}

/// Hot-loop ns/access of the flat-storage L1D model (same mixed
/// fill/probe pattern over a conflict-heavy footprint).
fn cache_access_ns() -> f64 {
    let mut cache = Cache::new(CacheParams { ways: 8, sets: 128, line: 64 }, Some(4));
    let span = 128u64 * 64 * 16;
    let mut pa = 0u64;
    time_ns(400_000, || {
        pa = (pa + 64 * 129) % span;
        cache.access(pa)
    })
}

/// The PR's headline measurement: serial vs sharded trial throughput
/// plus the allocation-free set-storage access latencies, written as the
/// `perf_parallel` artifact. With one resolved worker the parallel path
/// *is* the serial path (inline execution), so the speedup is reported
/// as exactly 1.0; real scaling needs real cores.
fn write_parallel_artifact() {
    let jobs = pacman_bench::jobs();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;

    let (serial_secs, serial_tps) = timed_distribution(&cfg, 1);
    let (parallel_tps, speedup) = if jobs <= 1 {
        (serial_tps, 1.0)
    } else {
        let (par_secs, par_tps) = timed_distribution(&cfg, jobs);
        // On a single core, extra workers can only measure scheduler
        // contention, not scaling — the speedup attributable to
        // parallelism is 1.0 by definition there (the raw throughputs
        // above still expose the contention).
        (par_tps, if cores < 2 { 1.0 } else { serial_secs / par_secs })
    };
    let tlb_ns = tlb_access_ns();
    let cache_ns = cache_access_ns();

    println!("serial:   {serial_tps:8.1} trial pairs/sec (jobs=1)");
    println!("parallel: {parallel_tps:8.1} trial pairs/sec (jobs={jobs}, {cores} cores)");
    println!("speedup:  {speedup:.2}x");
    println!("tlb access:   {tlb_ns:.1} ns  |  cache access: {cache_ns:.1} ns");

    let mut art =
        pacman_bench::Artifact::new("perf_parallel", "parallel runner + flat set storage");
    art.num("jobs", jobs as u64)
        .num("cores", cores as u64)
        .num("trials", PARALLEL_TRIALS as u64)
        .float("trials_per_sec_serial", serial_tps)
        .float("trials_per_sec_parallel", parallel_tps)
        .float("speedup", speedup)
        .float("tlb_access_ns", tlb_ns)
        .float("cache_access_ns", cache_ns);
    art.write();

    // The CI gate: with real parallelism available, sharding must never
    // be a slowdown.
    assert!(
        jobs < 2 || cores < 2 || speedup >= 1.0,
        "parallel execution slower than serial: {speedup:.2}x at jobs={jobs} on {cores} cores"
    );
}

fn main() {
    perf();
    write_artifact();
    write_parallel_artifact();
}
