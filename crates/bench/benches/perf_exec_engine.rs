//! Execution-engine rewrite benches: predecoded block cache, PAC memo,
//! arena-reused trial state and bitsliced QARMA.
//!
//! The `perf_exec_engine` artefact pins the hot-path rewrite as claims:
//! the cached engine ([`ExecEngine::Cached`]) must beat the pre-rewrite
//! interpreter ([`ExecEngine::Interpreted`], kept alive exactly for this
//! comparison and for conformance A/B runs) on the two loops the attack
//! actually spends its time in — the §8.1 oracle trial loop (simulated
//! instructions retired per host second) and the §8.2 brute-force sweep
//! (PAC guesses per host second) — and the bitsliced QARMA core must
//! evaluate 64 lanes per pass faster than 64 scalar cipher calls.
//!
//! The oracle-loop ratio compares bit-identical simulations (the PR 5
//! conformance harness proves the engines agree), so it is a pure
//! host-side win. The brute ratio compares pipelines: the pre-PR
//! brute-forcer re-trains the gadget branch from scratch on every guess
//! on the interpreter, while the rewritten one runs the warm sweep
//! (train once, re-saturate the persistent 2-bit counter between
//! guesses) on the cached engine — same verdicts, pinned by
//! `warm_sweep_matches_the_cold_sweep_verdict_with_fewer_syscalls`.

use std::time::Instant;

use pacman_bench::{banner, check, compare, quiet_config, scale, Artifact};
use pacman_core::brute::{BruteForcer, WARM_RETRAIN_ITERS};
use pacman_core::oracle::{DataPacOracle, PacOracle};
use pacman_core::System;
use pacman_qarma::{PacComputer, QarmaKey, BITSLICE_LANES};
use pacman_uarch::ExecEngine;

/// Boots a quiet system with the requested execution engine.
fn system(engine: ExecEngine) -> System {
    let mut cfg = quiet_config();
    cfg.machine.engine = engine;
    System::boot(cfg)
}

/// Best-of-three: each side of a ratio claim gets its least
/// scheduler-disturbed run.
fn best3(mut measure: impl FnMut() -> f64) -> f64 {
    (0..3).map(|_| measure()).fold(0.0_f64, f64::max)
}

/// Simulated instructions retired per host second across `trials`
/// oracle trials (the Figure 8 inner loop: train, reset, prime,
/// speculate, probe).
fn oracle_instr_per_sec(engine: ExecEngine, trials: usize) -> f64 {
    let mut sys = system(engine);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let wrong = sys.true_pac(target) ^ 0x4000;
    let mut oracle = DataPacOracle::new(&mut sys).expect("oracle");
    // Warm: first trial pays cold TLBs, block-cache decode, memo fill.
    oracle.test_pac(&mut sys, target, wrong).expect("warm trial");
    best3(|| {
        let retired0 = sys.machine.stats.retired;
        let start = Instant::now();
        for _ in 0..trials {
            let v = oracle.test_pac(&mut sys, target, wrong).expect("trial");
            std::hint::black_box(v);
        }
        (sys.machine.stats.retired - retired0) as f64 / start.elapsed().as_secs_f64()
    })
}

/// PAC guesses tested per host second in a §8.2-style sweep over a
/// window that excludes the true PAC (every guess pays full cost).
/// `warm` selects the rewritten warm sweep; the pre-PR pipeline trains
/// cold on every guess.
fn brute_guesses_per_sec(engine: ExecEngine, guesses: u16, warm: bool) -> f64 {
    let mut sys = system(engine);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let true_pac = sys.true_pac(target);
    let window: Vec<u16> = (0..guesses).map(|i| true_pac ^ (0x4000 + i)).collect();
    let oracle = DataPacOracle::new(&mut sys).expect("oracle");
    let mut bf = BruteForcer::new(oracle);
    if warm {
        bf = bf.with_warm_sweep(WARM_RETRAIN_ITERS);
    }
    bf.brute(&mut sys, target, window.iter().copied()).expect("warm sweep");
    best3(|| {
        let start = Instant::now();
        let outcome = bf.brute(&mut sys, target, window.iter().copied()).expect("sweep");
        assert_eq!(outcome.found, None, "window must exclude the true PAC");
        outcome.guesses_tested as f64 / start.elapsed().as_secs_f64()
    })
}

/// Host speedup of one bitsliced 64-lane cipher pass over 64 scalar
/// PAC computations (the §8.2 brute-forcer's guess-generation core).
fn bitslice_speedup(passes: usize) -> (f64, f64, f64) {
    let pc = PacComputer::new(QarmaKey::new(0x84be_85ce_9804_e94b, 0xec29_65a4_efbf_c00f), 48);
    let pointers: Vec<u64> = (0..BITSLICE_LANES as u64).map(|i| 0xFFFF_0000_0000 + 8 * i).collect();
    let block: &[u64; 64] = pointers.as_slice().try_into().expect("64 lanes");
    let scalar_ns = best3(|| {
        let start = Instant::now();
        for _ in 0..passes {
            for &p in pointers.iter() {
                std::hint::black_box(pc.pac(p, 7));
            }
        }
        start.elapsed().as_nanos() as f64 / passes as f64
    });
    let sliced_ns = best3(|| {
        let start = Instant::now();
        for _ in 0..passes {
            std::hint::black_box(pc.pac_batch(block, 7));
        }
        start.elapsed().as_nanos() as f64 / passes as f64
    });
    (scalar_ns, sliced_ns, scalar_ns / sliced_ns.max(1e-9))
}

#[allow(clippy::too_many_lines)]
fn main() {
    banner("Bexec", "execution-engine rewrite: block cache + PAC memo + bitsliced QARMA");
    let trials = scale("ENGINE_TRIALS", 60);
    let guesses = scale("ENGINE_GUESSES", 24) as u16;
    let passes = scale("ENGINE_PASSES", 2000);

    let oracle_cached = oracle_instr_per_sec(ExecEngine::Cached, trials);
    let oracle_interp = oracle_instr_per_sec(ExecEngine::Interpreted, trials);
    let oracle_speedup = oracle_cached / oracle_interp.max(1e-9);
    println!("  oracle loop (cached):       {oracle_cached:12.0} sim instr/s");
    println!("  oracle loop (interpreted):  {oracle_interp:12.0} sim instr/s");
    println!("  oracle speedup:             {oracle_speedup:12.2}x");

    let brute_cached = brute_guesses_per_sec(ExecEngine::Cached, guesses, true);
    let brute_interp = brute_guesses_per_sec(ExecEngine::Interpreted, guesses, false);
    let brute_speedup = brute_cached / brute_interp.max(1e-9);
    println!("  brute sweep (rewritten: warm + cached): {brute_cached:12.1} guesses/s");
    println!("  brute sweep (pre-PR: cold + interp):    {brute_interp:12.1} guesses/s");
    println!("  brute speedup:                          {brute_speedup:12.2}x");

    let (scalar_ns, sliced_ns, slice_speedup) = bitslice_speedup(passes);
    println!("  64 scalar PACs:             {scalar_ns:12.0} ns");
    println!("  one 64-lane bitslice pass:  {sliced_ns:12.0} ns");
    println!("  bitslice speedup:           {slice_speedup:12.2}x");

    // Block-cache effectiveness on the loop the numbers above ran.
    let mut sys = system(ExecEngine::Cached);
    let set = sys.pick_quiet_dtlb_set();
    let target = sys.alloc_target(set);
    let wrong = sys.true_pac(target) ^ 0x4000;
    let mut oracle = DataPacOracle::new(&mut sys).expect("oracle");
    for _ in 0..8 {
        oracle.test_pac(&mut sys, target, wrong).expect("trial");
    }
    let bc = sys.machine.block_cache_stats();
    let hit_rate = 100.0 * bc.hits as f64 / (bc.hits + bc.misses).max(1) as f64;
    println!("  block cache: {} hits / {} misses ({hit_rate:.1}% hit rate)", bc.hits, bc.misses);
    println!();

    let mut art =
        Artifact::new("perf_exec_engine", "hot-path engine: block cache + memo + bitslice");
    art.float("oracle_instr_per_sec_cached", oracle_cached)
        .float("oracle_instr_per_sec_interpreted", oracle_interp)
        .float("oracle_speedup", oracle_speedup)
        .float("brute_guesses_per_sec_cached", brute_cached)
        .float("brute_guesses_per_sec_interpreted", brute_interp)
        .float("brute_speedup", brute_speedup)
        .float("bitslice_pass_ns", sliced_ns)
        .float("bitslice_speedup", slice_speedup)
        .num("bitslice_lanes", BITSLICE_LANES as u64)
        .float("block_cache_hit_rate_pct", hit_rate);
    art.write();

    compare("oracle loop", ">=5x vs interpreter", &format!("{oracle_speedup:.2}x"));
    compare("brute sweep", ">=10x vs pre-PR", &format!("{brute_speedup:.2}x"));
    compare("bitslice lanes", "64 guesses/pass", &format!("{BITSLICE_LANES}"));

    check("cached oracle loop >=5x the interpreter", oracle_speedup >= 5.0);
    check("rewritten brute sweep >=10x the pre-PR pipeline", brute_speedup >= 10.0);
    check("bitslice beats scalar", slice_speedup >= 2.0);
    check("block cache hit rate >=90%", hit_rate >= 90.0);
}
