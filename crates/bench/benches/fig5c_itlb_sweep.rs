//! Figure 5(c): iTLB sweep via branch targets, reload measured as data.

use pacman_bench::{banner, check, compare, jobs, tolerance, Artifact};
use pacman_core::parallel::{parallel_sweep, SweepKind};
use pacman_core::report::AsciiChart;

fn main() {
    banner("F5c", "Figure 5(c) - instruction-fetch sweep, reload as data");
    let jobs = jobs();
    let tol = tolerance();
    let (series, _) = parallel_sweep(SweepKind::Itlb, &[32, 256, 2048], jobs, &tol).expect("sweep");

    let mut chart = AsciiChart::new("median reload latency (cycles) vs N");
    for s in &series {
        chart.series(
            format!("stride {}", s.label),
            s.points.iter().map(|p| (p.n, p.median)).collect(),
        );
    }
    println!("{chart}");

    let s32 = &series[0];
    let s256 = &series[1];
    let s2048 = &series[2];

    let mut art = Artifact::new("fig5c", "Figure 5(c) - instruction-fetch iTLB sweep");
    art.chart("latency_vs_n", &chart);
    art.num("itlb_resident_cycles", s32.at(1).unwrap());
    art.num("post_eviction_cycles", s32.at(6).unwrap());
    if let Some(n) = s32.knee_below(90) {
        art.num("itlb_knee_n", n as u64);
    }
    art.field(
        "migrated_visible_at_n30",
        pacman_telemetry::json::Value::Bool(s32.at(30).unwrap() < 90),
    );
    art.num("dtlb_conflict_cycles", s256.at(30).unwrap());
    art.num("l2_conflict_cycles", s2048.at(30).unwrap());
    art.write();

    compare("iTLB-resident reload (N<4)", ">110 cycles", &format!("{} cycles", s32.at(1).unwrap()));
    compare(
        "after iTLB eviction (stride 32x16KB, N>=4)",
        "~80 cycles",
        &format!("{} cycles", s32.at(6).unwrap()),
    );
    compare("iTLB knee / drop (finding 3)", "N = 4", &format!("N = {:?}", s32.knee_below(90)));
    compare(
        "dTLB refill conflicts (stride 256x16KB, large N)",
        "~110 cycles",
        &format!("{} cycles", s256.at(30).unwrap()),
    );
    compare(
        "L2 TLB conflicts (stride 2048x16KB, large N)",
        "~130 cycles",
        &format!("{} cycles", s2048.at(30).unwrap()),
    );

    check("iTLB entries are invisible to loads (N=1 slow)", s32.at(1).unwrap() > 110);
    check("latency DROPS at N=4: victims migrate into the dTLB", s32.knee_below(90) == Some(4));
    check("victims stay dTLB-visible out to N=30", s32.at(30).unwrap() < 90);
    check(
        "migrated victims eventually thrash the dTLB set (stride 256)",
        s256.at(30).unwrap() > 105,
    );
    check("and the L2 TLB set (stride 2048)", s2048.at(30).unwrap() > 120);
}
