//! §6.2: PacmanOS — bare-metal experiments, including the automated
//! rediscovery of the Figure 6 TLB organisation with no priors.

use pacman_bench::{banner, check, compare, Artifact};
use pacman_os::experiments::{MsrInventory, TimerResolution, TlbParameterSearch, TlbSearchResult};
use pacman_os::{BareMetal, Runner};
use pacman_telemetry::json::Value;

fn main() {
    banner("OS62", "Section 6.2 - PacmanOS bare-metal experiment environment");
    let mut runner = Runner::new(BareMetal::boot_default());

    let mut msr = MsrInventory::new();
    let r1 = runner.run(&mut msr);
    print!("{r1}");
    check("MSR inventory covers the modelled register file", r1.ok);

    let mut timers = TimerResolution::new();
    let r2 = runner.run(&mut timers);
    print!("{r2}");
    check("timer-resolution experiment matches Table 1", r2.ok);

    let mut tlb = TlbParameterSearch::new();
    let r3 = runner.run(&mut tlb);
    print!("{r3}");
    let mut art = Artifact::new("sec62", "Section 6.2 - PacmanOS bare-metal experiments");
    art.field("msr_ok", Value::Bool(r1.ok)).field("timer_ok", Value::Bool(r2.ok));
    art.field("search_ok", Value::Bool(r3.ok));
    for (name, found) in [("dtlb", tlb.dtlb), ("l2", tlb.l2), ("itlb", tlb.itlb)] {
        if let Some(r) = found {
            art.num(&format!("{name}_sets"), r.sets);
            art.num(&format!("{name}_ways"), r.ways as u64);
        }
    }
    art.write();

    compare("dTLB (search, no priors)", "12w x 256s", &format!("{:?}", tlb.dtlb));
    compare("L2 TLB (search, no priors)", "23w x 2048s", &format!("{:?}", tlb.l2));
    compare("iTLB (search, no priors)", "4w x 32s", &format!("{:?}", tlb.itlb));
    check(
        "the automated search rediscovers Figure 6",
        tlb.dtlb == Some(TlbSearchResult { sets: 256, ways: 12 })
            && tlb.l2 == Some(TlbSearchResult { sets: 2048, ways: 23 })
            && tlb.itlb == Some(TlbSearchResult { sets: 32, ways: 4 }),
    );
}
