//! Shared helpers for the experiment harness.
//!
//! Every table and figure in the paper's evaluation has a dedicated bench
//! target in `benches/` (see DESIGN.md §3 for the index). Each target is a
//! `harness = false` binary that regenerates the artefact, prints the
//! paper-style rows/series, and asserts the qualitative shape. The
//! `perf_micro` target uses Criterion for real wall-clock measurements of
//! the workspace's own hot paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pacman_core::{System, SystemConfig};

/// Boots the standard experiment system (OS noise enabled, the attack's
/// default timing source).
pub fn noisy_system() -> System {
    System::boot(SystemConfig::default())
}

/// Boots a noise-free system for experiments that need clean statistics.
pub fn quiet_system() -> System {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    System::boot(cfg)
}

/// Prints the experiment banner.
pub fn banner(id: &str, paper_artifact: &str) {
    println!("==================================================================");
    println!("PACMAN reproduction - {id}: {paper_artifact}");
    println!("==================================================================");
}

/// Prints one paper-vs-measured comparison line.
pub fn compare(metric: &str, paper: &str, measured: &str) {
    println!("  {metric:<46} paper: {paper:<18} measured: {measured}");
}

/// Reads an experiment-scale override from the environment (`PACMAN_<VAR>`).
pub fn scale(var: &str, default: usize) -> usize {
    std::env::var(format!("PACMAN_{var}"))
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Asserts with a visible PASS/FAIL line instead of a bare panic, then
/// panics on failure so `cargo bench` reports it.
pub fn check(name: &str, ok: bool) {
    println!("  [{}] {name}", if ok { "PASS" } else { "FAIL" });
    assert!(ok, "shape check failed: {name}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_reads_env() {
        std::env::set_var("PACMAN_TEST_SCALE_VAR", "17");
        assert_eq!(scale("TEST_SCALE_VAR", 3), 17);
        assert_eq!(scale("TEST_SCALE_VAR_MISSING", 3), 3);
    }

    #[test]
    fn systems_boot() {
        let q = quiet_system();
        assert_eq!(q.kernel.crash_count(), 0);
        let set = q.pick_quiet_dtlb_set();
        assert!(set < 256);
        let n = noisy_system();
        assert!(n.machine.config().os_noise > 0.0);
    }
}
