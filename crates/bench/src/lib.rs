//! Shared helpers for the experiment harness.
//!
//! Every table and figure in the paper's evaluation has a dedicated bench
//! target in `benches/` (see DESIGN.md §3 for the index). Each target is a
//! `harness = false` binary that regenerates the artefact, prints the
//! paper-style rows/series, and asserts the qualitative shape. The
//! `perf_micro` target uses Criterion for real wall-clock measurements of
//! the workspace's own hot paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io;
use std::path::{Path, PathBuf};

use pacman_core::fault::{mix64, FaultPlan, FaultSite, RetryPolicy, Tolerance};
use pacman_core::report::{AsciiChart, Table};
use pacman_core::{System, SystemConfig};
use pacman_telemetry::json::Value;

pub mod claims;

/// The standard experiment configuration (OS noise enabled, the attack's
/// default timing source).
pub fn noisy_config() -> SystemConfig {
    SystemConfig::default()
}

/// A noise-free configuration for experiments that need clean statistics.
pub fn quiet_config() -> SystemConfig {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    cfg
}

/// Boots the standard experiment system (OS noise enabled, the attack's
/// default timing source).
pub fn noisy_system() -> System {
    System::boot(noisy_config())
}

/// Boots a noise-free system for experiments that need clean statistics.
pub fn quiet_system() -> System {
    System::boot(quiet_config())
}

/// The worker count for parallelised experiments (`PACMAN_JOBS`, default:
/// available parallelism), echoed so runs are self-describing.
pub fn jobs() -> usize {
    let jobs = pacman_runner::default_jobs();
    println!("  jobs: {jobs} (override with PACMAN_JOBS)");
    jobs
}

/// The fault-tolerance policy for parallelised experiments
/// (`PACMAN_FAULT_SEED` / `PACMAN_FAULT_RATE`; faults are off unless the
/// environment opts in), echoed when active so runs are self-describing.
pub fn tolerance() -> Tolerance {
    let tol = Tolerance::from_env();
    if tol.faults.is_active() {
        println!(
            "  fault injection: ACTIVE (seed {:#x}, rate {}) — retry budget {}",
            tol.faults.seed(),
            tol.faults.rate(),
            tol.retry.max_attempts
        );
    }
    tol
}

/// Prints the experiment banner.
pub fn banner(id: &str, paper_artifact: &str) {
    println!("==================================================================");
    println!("PACMAN reproduction - {id}: {paper_artifact}");
    println!("==================================================================");
}

/// Prints one paper-vs-measured comparison line.
pub fn compare(metric: &str, paper: &str, measured: &str) {
    println!("  {metric:<46} paper: {paper:<18} measured: {measured}");
}

/// Reads an experiment-scale override from the environment (`PACMAN_<VAR>`).
pub fn scale(var: &str, default: usize) -> usize {
    scale_from(|k| std::env::var(k).ok(), var, default)
}

/// [`scale`] with an injected lookup, so tests can exercise the parsing
/// without mutating process-global environment state.
pub fn scale_from(lookup: impl Fn(&str) -> Option<String>, var: &str, default: usize) -> usize {
    lookup(&format!("PACMAN_{var}")).and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Asserts with a visible PASS/FAIL line instead of a bare panic, then
/// panics on failure so `cargo bench` reports it.
pub fn check(name: &str, ok: bool) {
    println!("  [{}] {name}", if ok { "PASS" } else { "FAIL" });
    assert!(ok, "shape check failed: {name}");
}

/// A machine-readable companion to a bench target's printed output.
///
/// Experiments mirror the numbers they print into named fields (tables
/// and charts are serialized cell-for-cell, so the artefact always
/// matches the console report) and call [`Artifact::write`], which emits
/// `BENCH_<id>.json` into the current directory — or `$PACMAN_BENCH_DIR`
/// when set.
#[derive(Clone, Debug)]
pub struct Artifact {
    id: String,
    fields: Vec<(String, Value)>,
}

impl Artifact {
    /// Starts an artefact for experiment `id` (used in the file name).
    pub fn new(id: &str, description: &str) -> Self {
        Self {
            id: id.to_string(),
            fields: vec![
                ("record".into(), Value::str("bench")),
                ("experiment".into(), Value::str(id)),
                ("description".into(), Value::str(description)),
            ],
        }
    }

    /// Adds an arbitrary JSON field.
    pub fn field(&mut self, key: &str, value: Value) -> &mut Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Adds an unsigned-integer field (counters, cycles, knees).
    pub fn num(&mut self, key: &str, value: u64) -> &mut Self {
        self.field(key, Value::UInt(value))
    }

    /// Adds a floating-point field (overheads, milliseconds).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        self.field(key, Value::Float(value))
    }

    /// Adds a string field.
    pub fn text(&mut self, key: &str, value: &str) -> &mut Self {
        self.field(key, Value::str(value))
    }

    /// Adds a printed [`Table`] verbatim: title, headers and every row's
    /// cells exactly as displayed.
    pub fn table(&mut self, key: &str, table: &Table) -> &mut Self {
        let strs = |v: &[String]| Value::Array(v.iter().map(Value::str).collect());
        self.field(
            key,
            Value::Object(vec![
                ("title".into(), Value::str(&table.title)),
                ("headers".into(), strs(&table.headers)),
                ("rows".into(), Value::Array(table.rows.iter().map(|r| strs(r)).collect())),
            ]),
        )
    }

    /// Adds a printed [`AsciiChart`]'s series as `{label, points:[{x,y}]}`
    /// objects.
    pub fn chart(&mut self, key: &str, chart: &AsciiChart) -> &mut Self {
        let series = chart
            .series
            .iter()
            .map(|(label, points)| {
                Value::Object(vec![
                    ("label".into(), Value::str(label)),
                    (
                        "points".into(),
                        Value::Array(
                            points
                                .iter()
                                .map(|&(x, y)| {
                                    Value::Object(vec![
                                        ("x".into(), Value::UInt(x as u64)),
                                        ("y".into(), Value::UInt(y)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        self.field(
            key,
            Value::Object(vec![
                ("title".into(), Value::str(&chart.title)),
                ("series".into(), Value::Array(series)),
            ]),
        )
    }

    /// The artefact as one JSON object (field order = insertion order).
    pub fn to_json(&self) -> Value {
        Value::Object(self.fields.clone())
    }

    /// Writes `BENCH_<id>.json` under `dir` and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`std::fs::write`] failure.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.id));
        let mut text = self.to_json().to_string();
        text.push('\n');
        std::fs::write(&path, text)?;
        Ok(path)
    }

    /// The artefact's fault-stream index: a stable hash of its id, so
    /// each artefact sees its own deterministic injected-IO decisions.
    fn fault_index(&self) -> u64 {
        self.id.bytes().fold(0u64, |acc, b| mix64(acc, u64::from(b)))
    }

    /// [`Artifact::write_to`] under a fault plan: injected IO errors
    /// (and real ones) retry within the policy's budget; the last error
    /// surfaces only after the budget is exhausted.
    ///
    /// # Errors
    ///
    /// The final attempt's failure — injected or real — once `retry`'s
    /// budget is spent.
    pub fn write_tolerant(
        &self,
        dir: &Path,
        faults: &FaultPlan,
        retry: RetryPolicy,
    ) -> io::Result<PathBuf> {
        let index = self.fault_index();
        let mut last: Option<io::Error> = None;
        for attempt in 0..retry.max_attempts.max(1) {
            let fault_attempt = if retry.reseed { attempt } else { 0 };
            if faults.fires(FaultSite::ArtifactWrite, index, fault_attempt) {
                last = Some(io::Error::other(format!(
                    "injected fault: artifact write for BENCH_{} (attempt {attempt})",
                    self.id
                )));
                continue;
            }
            match self.write_to(dir) {
                Ok(path) => return Ok(path),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("artifact write: empty retry budget")))
    }

    /// Writes the artefact to `$PACMAN_BENCH_DIR` (default: current
    /// directory) and prints where it landed. Runs under the
    /// environment's fault plan: injected write failures retry within
    /// the default budget, and the artefact records whether faults were
    /// active (`faults_active`).
    ///
    /// A failed write always lands on stderr. When `$PACMAN_BENCH_DIR`
    /// was set explicitly the caller asked for the artefact (CI is
    /// collecting them for `pacman-cli verify`), so the failure is fatal:
    /// the process exits nonzero instead of letting a bad directory turn
    /// into a silently missing artefact.
    pub fn write(&self) {
        let faults = FaultPlan::from_env();
        let mut art = self.clone();
        art.field("faults_active", Value::Bool(faults.is_active()));
        let dir = std::env::var("PACMAN_BENCH_DIR").ok();
        let strict = dir.is_some();
        let dir = dir.unwrap_or_else(|| ".".into());
        match art.write_tolerant(Path::new(&dir), &faults, RetryPolicy::default()) {
            Ok(path) => println!("  artefact: {}", path.display()),
            Err(e) => {
                eprintln!("error: failed to write BENCH_{}.json into '{dir}': {e}", self.id);
                if strict {
                    eprintln!("error: $PACMAN_BENCH_DIR was set explicitly; aborting");
                    std::process::exit(2);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_injected_overrides() {
        // Injected lookup instead of std::env::set_var: mutating the
        // process environment races with other tests in the same binary.
        let env = |k: &str| (k == "PACMAN_TEST_SCALE_VAR").then(|| "17".to_string());
        assert_eq!(scale_from(env, "TEST_SCALE_VAR", 3), 17);
        assert_eq!(scale_from(env, "TEST_SCALE_VAR_MISSING", 3), 3);
        assert_eq!(scale_from(|_| Some("banana".into()), "TEST_SCALE_VAR", 3), 3);
        // The real environment of a test run carries no PACMAN_* vars, so
        // the delegating wrapper falls through to the default.
        assert_eq!(scale("TEST_SCALE_VAR_UNSET_IN_TESTS", 5), 5);
    }

    #[test]
    fn artifact_serializes_tables_cell_for_cell() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".to_string(), "x,\"y\"".to_string()]);
        let mut chart = AsciiChart::new("lat");
        chart.series("stride 1".to_string(), vec![(1, 60), (12, 95)]);
        let mut art = Artifact::new("demo", "serialization test");
        art.num("count", 7).float("ratio", 0.5).text("note", "ok");
        art.table("matrix", &t);
        art.chart("sweep", &chart);

        let parsed = pacman_telemetry::json::parse(&art.to_json().to_string()).expect("valid JSON");
        assert_eq!(parsed.get("record").and_then(Value::as_str), Some("bench"));
        assert_eq!(parsed.get("experiment").and_then(Value::as_str), Some("demo"));
        assert_eq!(parsed.get("count").and_then(Value::as_u64), Some(7));
        let matrix = parsed.get("matrix").expect("table field");
        assert_eq!(matrix.get("title").and_then(Value::as_str), Some("demo"));
        let rows = matrix.get("rows").and_then(Value::as_array).expect("rows");
        assert_eq!(rows[0].as_array().unwrap()[1].as_str(), Some("x,\"y\""));
        let series = parsed.get("sweep").and_then(|c| c.get("series")).unwrap();
        let s0 = &series.as_array().unwrap()[0];
        assert_eq!(s0.get("label").and_then(Value::as_str), Some("stride 1"));
        let p1 = &s0.get("points").and_then(Value::as_array).unwrap()[1];
        assert_eq!(p1.get("x").and_then(Value::as_u64), Some(12));
        assert_eq!(p1.get("y").and_then(Value::as_u64), Some(95));
    }

    #[test]
    fn artifact_write_to_produces_the_named_file() {
        let dir = std::env::temp_dir().join(format!("pacman-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut art = Artifact::new("unit", "write test");
        art.num("answer", 42);
        let path = art.write_to(&dir).expect("write");
        assert!(path.ends_with("BENCH_unit.json"));
        let text = std::fs::read_to_string(&path).expect("read back");
        let parsed = pacman_telemetry::json::parse(text.trim()).expect("valid JSON");
        assert_eq!(parsed.get("answer").and_then(Value::as_u64), Some(42));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_write_tolerant_retries_injected_faults_within_budget() {
        let dir = std::env::temp_dir().join(format!("pacman-bench-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut art = Artifact::new("fault_unit", "tolerant write test");
        art.num("answer", 42);
        let index = art.fault_index();
        // A seed whose artifact-write stream fires on attempt 0 but not
        // attempt 1: the write must succeed on the retry.
        let seed = (0..500u64)
            .find(|&s| {
                let probe = FaultPlan::new(s, 0.5);
                probe.fires(FaultSite::ArtifactWrite, index, 0)
                    && !probe.fires(FaultSite::ArtifactWrite, index, 1)
            })
            .expect("a qualifying seed exists in 0..500");
        let plan = FaultPlan::new(seed, 0.5);
        let path = art.write_tolerant(&dir, &plan, RetryPolicy::default()).expect("retry succeeds");
        assert!(path.ends_with("BENCH_fault_unit.json"));
        assert!(plan.injected() >= 1, "the first attempt was injected");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_write_tolerant_exhausts_on_permanent_faults() {
        let dir = std::env::temp_dir().join(format!("pacman-bench-fault2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut art = Artifact::new("fault_unit2", "budget exhaustion test");
        art.num("answer", 42);
        // Rate 1.0 without reseeding replays the firing decision every
        // attempt: the budget must exhaust with the injected error.
        let plan = FaultPlan::new(9, 1.0);
        let err = art
            .write_tolerant(&dir, &plan, RetryPolicy { max_attempts: 3, reseed: false })
            .expect_err("rate-1.0 faults exhaust the budget");
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert!(!dir.join("BENCH_fault_unit2.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_write_tolerant_passes_through_without_faults() {
        let dir = std::env::temp_dir().join(format!("pacman-bench-fault3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut art = Artifact::new("fault_unit3", "disabled-plan test");
        art.num("answer", 42);
        let plan = FaultPlan::disabled();
        let path = art
            .write_tolerant(&dir, &plan, RetryPolicy::default())
            .expect("disabled plan never blocks a write");
        assert!(path.ends_with("BENCH_fault_unit3.json"));
        assert_eq!(plan.injected(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_write_to_surfaces_io_errors() {
        let mut art = Artifact::new("unit_err", "error-path test");
        art.num("answer", 42);
        let missing = std::env::temp_dir().join("pacman-bench-no-such-dir-913/deeper");
        let err = art.write_to(&missing).expect_err("missing directory must error");
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn systems_boot() {
        let q = quiet_system();
        assert_eq!(q.kernel.crash_count(), 0);
        let set = q.pick_quiet_dtlb_set();
        assert!(set < 256);
        let n = noisy_system();
        assert!(n.machine.config().os_noise > 0.0);
    }
}
