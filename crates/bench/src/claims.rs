//! The paper-claims table: every number the reproduction commits to,
//! with an explicit tolerance band per metric.
//!
//! Each bench target mirrors its printed report into a `BENCH_<id>.json`
//! artefact ([`crate::Artifact`]); this module encodes what those
//! artefacts *must* contain for the reproduction to count as faithful.
//! Structural parameters (TLB geometry, cache sizes, PAC widths) are
//! exact; timing distributions and accuracy rates carry bands no tighter
//! than the shape checks the bench targets themselves enforce, so any
//! bench run that printed PASS also verifies. `pacman-cli verify` diffs
//! a directory of artefacts against this table.

use pacman_telemetry::json::Value;

use crate::Artifact;

/// What a claimed metric is allowed to be.
#[derive(Clone, Debug, PartialEq)]
pub enum Expectation {
    /// Exactly this unsigned integer (structural parameters).
    U64(u64),
    /// Exactly this boolean.
    Bool(bool),
    /// Exactly this string.
    Str(&'static str),
    /// An unsigned integer in `min..=max`.
    U64Range {
        /// Inclusive lower bound.
        min: u64,
        /// Inclusive upper bound.
        max: u64,
    },
    /// Any numeric value in `min..=max` (timing bands, rate bands).
    F64Range {
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// Any numeric value `>= min` (rates with no meaningful ceiling).
    AtLeast(
        /// Inclusive lower bound.
        f64,
    ),
    /// Any numeric value `<= max` (counts that must stay near zero).
    AtMost(
        /// Inclusive upper bound.
        f64,
    ),
    /// The field must exist; its value is report-only (charts, tables,
    /// run-dependent values like recovered PACs or wall-clock times).
    Present,
}

impl Expectation {
    /// A compact human rendering of the band (`= 12`, `in [85, 110]`, …).
    pub fn describe(&self) -> String {
        match self {
            Expectation::U64(v) => format!("= {v}"),
            Expectation::Bool(v) => format!("= {v}"),
            Expectation::Str(v) => format!("= \"{v}\""),
            Expectation::U64Range { min, max } => format!("in [{min}, {max}]"),
            Expectation::F64Range { min, max } => format!("in [{min}, {max}]"),
            Expectation::AtLeast(v) => format!(">= {v}"),
            Expectation::AtMost(v) => format!("<= {v}"),
            Expectation::Present => "present".into(),
        }
    }

    /// Checks one artefact value against the band.
    fn admits(&self, v: &Value) -> bool {
        match self {
            Expectation::U64(want) => v.as_u64() == Some(*want),
            Expectation::Bool(want) => v.as_bool() == Some(*want),
            Expectation::Str(want) => v.as_str() == Some(want),
            Expectation::U64Range { min, max } => {
                v.as_u64().is_some_and(|g| (*min..=*max).contains(&g))
            }
            Expectation::F64Range { min, max } => {
                v.as_f64().is_some_and(|g| *min <= g && g <= *max)
            }
            Expectation::AtLeast(min) => v.as_f64().is_some_and(|g| g >= *min),
            Expectation::AtMost(max) => v.as_f64().is_some_and(|g| g <= *max),
            Expectation::Present => true,
        }
    }

    /// An example value inside the band (test-artefact generation).
    fn example(&self) -> Value {
        match self {
            Expectation::U64(v) => Value::UInt(*v),
            Expectation::Bool(v) => Value::Bool(*v),
            Expectation::Str(v) => Value::str(*v),
            Expectation::U64Range { min, max } => Value::UInt(min + (max - min) / 2),
            Expectation::F64Range { min, max } => Value::Float((min + max) / 2.0),
            Expectation::AtLeast(v) => Value::Float(*v),
            Expectation::AtMost(v) => Value::Float(*v),
            Expectation::Present => Value::UInt(1),
        }
    }
}

/// One verifiable claim: a field of one artefact, its paper citation,
/// and the tolerance band.
#[derive(Clone, Debug)]
pub struct Claim {
    /// Artefact id (`BENCH_<id>.json`).
    pub artifact: &'static str,
    /// Top-level field name inside the artefact.
    pub field: &'static str,
    /// Where the paper commits to the value.
    pub paper: &'static str,
    /// The tolerance band.
    pub expect: Expectation,
}

/// Outcome of checking one [`Claim`] against an artefact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The value is inside the band.
    Pass,
    /// The value is outside the band (rendered actual value attached).
    Fail(
        /// What the artefact actually held.
        String,
    ),
    /// The field is absent from the artefact.
    Missing,
}

impl Verdict {
    /// Machine-readable status string for JSONL records.
    pub fn status(&self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Fail(_) => "fail",
            Verdict::Missing => "missing",
        }
    }
}

impl Claim {
    const fn new(
        artifact: &'static str,
        field: &'static str,
        paper: &'static str,
        expect: Expectation,
    ) -> Self {
        Self { artifact, field, paper, expect }
    }

    /// Checks this claim against a parsed artefact object.
    pub fn check(&self, artifact: &Value) -> Verdict {
        match artifact.get(self.field) {
            None => Verdict::Missing,
            Some(v) if self.expect.admits(v) => Verdict::Pass,
            Some(v) => Verdict::Fail(v.to_string()),
        }
    }
}

/// Every artefact id a full bench run produces (one per bench target).
pub const ARTIFACT_IDS: [&str; 24] = [
    "fig5a",
    "fig5b",
    "fig5c",
    "fig6",
    "fig7",
    "fig8a",
    "fig8b",
    "table1",
    "table2",
    "sec43",
    "sec62",
    "sec82_accuracy",
    "sec82_speed",
    "sec83",
    "sec9",
    "ablations",
    "perf_micro",
    "perf_parallel",
    "perf_trace",
    "perf_exec_engine",
    "perf_campaign",
    "service_load",
    "snapshot",
    "conform",
];

use Expectation::{AtLeast, AtMost, Bool, F64Range, Present, Str, U64Range, U64};

/// The full claims table, in artefact order.
#[allow(clippy::too_many_lines)]
pub fn all() -> Vec<Claim> {
    let c = Claim::new;
    vec![
        // ---- Figure 5(a): data-load dTLB / L2 TLB sweep ----------------
        c("fig5a", "latency_vs_n", "Fig. 5(a) latency series", Present),
        c(
            "fig5a",
            "baseline_plateau_cycles",
            "Fig. 5(a): L1+dTLB hit ~60c",
            F64Range { min: 40.0, max: 74.0 },
        ),
        c(
            "fig5a",
            "dtlb_miss_plateau_cycles",
            "Fig. 5(a): dTLB-miss ~95c",
            F64Range { min: 85.0, max: 109.0 },
        ),
        c(
            "fig5a",
            "l2_tlb_miss_plateau_cycles",
            "Fig. 5(a): L2-TLB-miss ~115c",
            F64Range { min: 110.0, max: 140.0 },
        ),
        c("fig5a", "dtlb_knee_n", "§7.2 finding 1: dTLB 12 ways", U64(12)),
        c("fig5a", "l2_tlb_knee_n", "§7.2 finding 2: L2 TLB 23 ways", U64(23)),
        // ---- Figure 5(b): cache/TLB interaction sweep ------------------
        c("fig5b", "latency_vs_n", "Fig. 5(b) latency series", Present),
        c(
            "fig5b",
            "l1d_conflict_plateau_cycles",
            "Fig. 5(b): L1D-conflict ~80c",
            F64Range { min: 75.0, max: 95.0 },
        ),
        c(
            "fig5b",
            "dtlb_plateau_cycles",
            "Fig. 5(b): dTLB+L2$ ~110c",
            F64Range { min: 100.0, max: 125.0 },
        ),
        c(
            "fig5b",
            "l2_tlb_plateau_cycles",
            "Fig. 5(b): L2TLB+L2$ ~130c",
            F64Range { min: 120.0, max: 150.0 },
        ),
        c("fig5b", "l1d_knee_n", "footnote 5: observed 4-way L1D", U64(4)),
        c("fig5b", "dtlb_knee_n", "§7.2 finding 1: dTLB 12 ways", U64(12)),
        c("fig5b", "l2_tlb_knee_n", "§7.2 finding 2: L2 TLB 23 ways", U64(23)),
        // ---- Figure 5(c): instruction-fetch sweep ----------------------
        c("fig5c", "latency_vs_n", "Fig. 5(c) latency series", Present),
        c("fig5c", "itlb_resident_cycles", "Fig. 5(c): iTLB-resident reload >110c", AtLeast(111.0)),
        c(
            "fig5c",
            "post_eviction_cycles",
            "Fig. 5(c): post-eviction ~80c",
            F64Range { min: 60.0, max: 89.0 },
        ),
        c("fig5c", "itlb_knee_n", "§7.2 finding 3: iTLB 4 ways (latency drop)", U64(4)),
        c("fig5c", "migrated_visible_at_n30", "§7.3: victims stay dTLB-visible", Bool(true)),
        c("fig5c", "dtlb_conflict_cycles", "§7.3: refills thrash the dTLB set", AtLeast(106.0)),
        c("fig5c", "l2_conflict_cycles", "§7.3: and the L2 TLB set", AtLeast(121.0)),
        // ---- Figure 6: derived TLB hierarchy ---------------------------
        c("fig6", "itlb_ways", "Fig. 6: L1 iTLB 4 ways x 32 sets", U64(4)),
        c("fig6", "dtlb_ways", "Fig. 6: L1 dTLB 12 ways x 256 sets", U64(12)),
        c("fig6", "l2_ways", "Fig. 6: L2 TLB 23 ways x 2048 sets", U64(23)),
        c("fig6", "itlb_victims_visible_to_loads", "§7.3: dTLB backs the iTLBs", Bool(true)),
        // ---- Figure 7: timer distributions -----------------------------
        c(
            "fig7",
            "pmc_hit_median_cycles",
            "Fig. 7(a): PMC0 hit ~60c",
            F64Range { min: 45.0, max: 75.0 },
        ),
        c(
            "fig7",
            "pmc_miss_median_cycles",
            "Fig. 7(a): PMC0 miss ~95c",
            F64Range { min: 80.0, max: 110.0 },
        ),
        c("fig7", "mt_hit_max_ticks", "§7.4: MT-timer hits never beyond 27", AtMost(27.0)),
        c("fig7", "mt_miss_min_ticks", "§7.4: MT-timer misses never below 32", AtLeast(32.0)),
        c(
            "fig7",
            "mt_threshold_ticks",
            "§7.4: derived threshold ~30",
            U64Range { min: 28, max: 34 },
        ),
        c("fig7", "pmc_usable", "Fig. 7(a): PMC0 separates populations", Bool(true)),
        c("fig7", "mt_usable", "Fig. 7(b): MT timer separates populations", Bool(true)),
        // ---- Figure 8: PAC-oracle accuracy -----------------------------
        c("fig8a", "correct_detect_pct", "Fig. 8(a): correct PAC >=5 misses 99.6%", AtLeast(99.0)),
        c("fig8a", "incorrect_clean_pct", "Fig. 8(a): wrong PAC <=1 miss 99.2%", AtLeast(99.0)),
        c("fig8a", "crashes", "§8.1: the oracle never crashes", U64(0)),
        c("fig8a", "correct_miss_histogram", "Fig. 8(a) distribution", Present),
        c("fig8a", "incorrect_miss_histogram", "Fig. 8(a) distribution", Present),
        c("fig8b", "correct_detect_pct", "Fig. 8(b): correct PAC >=5 misses 99.8%", AtLeast(99.0)),
        c("fig8b", "incorrect_clean_pct", "Fig. 8(b): wrong PAC <=1 miss 99.2%", AtLeast(99.0)),
        c("fig8b", "crashes", "§8.1: the oracle never crashes", U64(0)),
        c("fig8b", "correct_miss_histogram", "Fig. 8(b) distribution", Present),
        c("fig8b", "incorrect_miss_histogram", "Fig. 8(b) distribution", Present),
        // ---- Table 1: timers -------------------------------------------
        c("table1", "timers", "Table 1 rows", Present),
        c("table1", "cntpct_el0_readable", "Table 1: CNTPCT_EL0 at EL0", Bool(true)),
        c("table1", "cntpct_attack_usable", "Table 1: 24 MHz too coarse", Bool(false)),
        c("table1", "pmc0_el0_readable", "Table 1: PMC0 kernel-gated", Bool(false)),
        c("table1", "pmc0_attack_usable", "Table 1: PMC0 resolves hit/miss", Bool(true)),
        c("table1", "multithread_el0_readable", "§7.4: MT timer unprivileged", Bool(true)),
        c("table1", "multithread_attack_usable", "§7.4: MT timer usable", Bool(true)),
        // ---- Table 2: caches -------------------------------------------
        c("table2", "caches", "Table 2 rows", Present),
        c("table2", "pcore_l1i_kb", "Table 2: p-core L1I 192 KB", U64(192)),
        c("table2", "pcore_l1d_kb", "Table 2: p-core L1D 128 KB", U64(128)),
        c("table2", "pcore_l2_mb", "Table 2: p-core L2 12 MB", U64(12)),
        c("table2", "ecore_l1i_kb", "Table 2: e-core L1I 128 KB", U64(128)),
        c("table2", "ecore_l1d_kb", "Table 2: e-core L1D 64 KB", U64(64)),
        c("table2", "ecore_l2_mb", "Table 2: e-core L2 4 MB", U64(4)),
        c("table2", "l1_line_bytes", "Table 2: 64 B L1 lines", U64(64)),
        c("table2", "l2_line_bytes", "Table 2: 128 B L2 lines", U64(128)),
        c("table2", "pcore_l1d_effective_ways", "footnote 5: observed half of reported", U64(4)),
        // ---- §4.3: gadget census (scale-invariant metrics only) --------
        c("sec43", "census", "§4.3 census table", Present),
        c("sec43", "gadgets_per_function", "§4.3: gadgets are abundant", AtLeast(1.0)),
        c(
            "sec43",
            "instr_to_data_ratio",
            "§4.3: 41,292 / 13,867 ~ 2.98",
            F64Range { min: 1.2, max: 4.5 },
        ),
        c(
            "sec43",
            "mean_distance",
            "§4.3: mean distance 8.1 insts",
            F64Range { min: 3.0, max: 20.0 },
        ),
        c("sec43", "gadgets_without_pa", "§4.3: no PA, no gadgets", U64(0)),
        // ---- §6.2: PacmanOS --------------------------------------------
        c("sec62", "msr_ok", "§6.2: MSR inventory holds", Bool(true)),
        c("sec62", "timer_ok", "§6.2: timer resolutions match Table 1", Bool(true)),
        c("sec62", "dtlb_sets", "Fig. 6 via search: dTLB 256 sets", U64(256)),
        c("sec62", "dtlb_ways", "Fig. 6 via search: dTLB 12 ways", U64(12)),
        c("sec62", "l2_sets", "Fig. 6 via search: L2 TLB 2048 sets", U64(2048)),
        c("sec62", "l2_ways", "Fig. 6 via search: L2 TLB 23 ways", U64(23)),
        c("sec62", "itlb_sets", "Fig. 6 via search: iTLB 32 sets", U64(32)),
        c("sec62", "itlb_ways", "Fig. 6 via search: iTLB 4 ways", U64(4)),
        // ---- §8.2: brute-force accuracy --------------------------------
        c("sec82_accuracy", "runs", "§8.2 accuracy runs", Present),
        c("sec82_accuracy", "false_positives", "§8.2: false positives intolerable", U64(0)),
        c("sec82_accuracy", "tp_rate_pct", "§8.2: ~90% true positives", AtLeast(90.0)),
        c("sec82_accuracy", "crashes", "§8.2: crash-free brute force", U64(0)),
        // ---- §8.2: brute-force speed -----------------------------------
        c(
            "sec82_speed",
            "ms_per_guess",
            "§8.2: 2.69 ms per guess",
            F64Range { min: 1.35, max: 5.4 },
        ),
        c(
            "sec82_speed",
            "full_space_minutes",
            "§8.2: 2^16 sweep ~2.94 min",
            F64Range { min: 1.4, max: 6.0 },
        ),
        c(
            "sec82_speed",
            "syscalls_per_guess",
            "§8.2: training syscalls dominate",
            U64Range { min: 65, max: 100_000 },
        ),
        c("sec82_speed", "crashes", "§8.2: crash-free brute force", U64(0)),
        // ---- §8.3: Jump2Win --------------------------------------------
        c("sec83", "hijacked", "§8.3: win() runs at EL1", Bool(true)),
        c("sec83", "crashes", "§8.3: zero kernel panics", U64(0)),
        c("sec83", "pacs_authenticate", "§8.3: both recovered PACs verify", Bool(true)),
        c("sec83", "guesses_tested", "§8.3 sweep size", Present),
        c("sec83", "attack_seconds", "§8.3 end-to-end time", Present),
        // ---- §9: mitigations -------------------------------------------
        c("sec9", "mitigation_matrix", "§9 countermeasure matrix", Present),
        c(
            "sec9",
            "baseline_surface",
            "§9: unmitigated M1 fully vulnerable",
            Str("FullyVulnerable"),
        ),
        c("sec9", "all_mitigations_protect", "§9: each countermeasure blinds both", Bool(true)),
        c("sec9", "fence_after_aut_overhead_pct", "§9: AUT fences cost benign perf", AtLeast(20.0)),
        c(
            "sec9",
            "lazy_squash_surface",
            "§4.2: instr gadget needs eager squash",
            Str("DataGadgetOnly"),
        ),
        // ---- Ablations -------------------------------------------------
        c("ablations", "min_oracle_window", "§4.3: gadget must fit the window", U64(3)),
        c("ablations", "system_counter_blind", "Table 1: 24 MHz can't drive it", Bool(true)),
        c("ablations", "multithread_timer_works", "§7.4: MT timer suffices", Bool(true)),
        c("ablations", "pac_bits_53va", "§1: 11 PAC bits at 53-bit VA", U64(11)),
        c("ablations", "pac_bits_48va", "§2.2: 16 PAC bits at 48-bit VA", U64(16)),
        c("ablations", "pac_bits_33va", "§1: 31 PAC bits at 33-bit VA", U64(31)),
        c("ablations", "stack_tracking_gain", "§4.3: deeper dataflow finds more", AtLeast(0.0)),
        // ---- perf_micro (wall-clock: report-only) ----------------------
        c("perf_micro", "qarma_encrypt_ns", "QARMA-64 throughput", AtLeast(0.1)),
        c("perf_micro", "oracle_guess_ns", "end-to-end oracle latency", AtLeast(0.1)),
        c("perf_micro", "oracle_guess_telemetry_off_ns", "telemetry-off hot path", AtLeast(0.1)),
        c("perf_micro", "oracle_guess_telemetry_on_ns", "telemetry-on hot path", AtLeast(0.1)),
        // ---- perf_parallel (sharded runner + flat set storage) ---------
        c("perf_parallel", "jobs", "resolved worker count", AtLeast(1.0)),
        c("perf_parallel", "cores", "available parallelism", AtLeast(1.0)),
        c("perf_parallel", "trials_per_sec_serial", "serial trial throughput", AtLeast(0.1)),
        c("perf_parallel", "trials_per_sec_parallel", "sharded trial throughput", AtLeast(0.1)),
        c("perf_parallel", "speedup", "sharding is never a slowdown", AtLeast(1.0)),
        c("perf_parallel", "tlb_access_ns", "flat-storage TLB hot path", AtLeast(0.1)),
        c("perf_parallel", "cache_access_ns", "flat-storage cache hot path", AtLeast(0.1)),
        // ---- perf_trace (flight recorder + self-profiler overhead) -----
        c("perf_trace", "plain_run_ns", "profiler-off simulator loop", AtLeast(0.1)),
        c("perf_trace", "profiled_run_ns", "profiler-on simulator loop", AtLeast(0.1)),
        c(
            "perf_trace",
            "disabled_span_ns",
            "disabled recorder span call",
            F64Range { min: 0.0, max: 1000.0 },
        ),
        c(
            "perf_trace",
            "disabled_overhead_ratio",
            "tracing disabled costs nothing",
            F64Range { min: 0.0, max: 1.25 },
        ),
        c("perf_trace", "trace_events", "chrome-trace export round-trips", AtLeast(1.0)),
        // ---- perf_exec_engine (block cache + PAC memo + bitslice) ------
        // Not a paper table: the engine-rewrite regression gate. Bands
        // match the bench's own checks so a printed PASS always verifies.
        c(
            "perf_exec_engine",
            "oracle_instr_per_sec_cached",
            "cached-engine oracle-loop throughput",
            AtLeast(0.1),
        ),
        c(
            "perf_exec_engine",
            "oracle_instr_per_sec_interpreted",
            "pre-PR interpreter oracle-loop throughput",
            AtLeast(0.1),
        ),
        c(
            "perf_exec_engine",
            "oracle_speedup",
            "block cache + memo >=5x on the oracle loop",
            AtLeast(5.0),
        ),
        c(
            "perf_exec_engine",
            "brute_guesses_per_sec_cached",
            "rewritten warm-sweep brute throughput",
            AtLeast(0.1),
        ),
        c(
            "perf_exec_engine",
            "brute_guesses_per_sec_interpreted",
            "pre-PR cold-retrain brute throughput",
            AtLeast(0.1),
        ),
        c(
            "perf_exec_engine",
            "brute_speedup",
            "§8.2 sweep >=10x the pre-PR pipeline",
            AtLeast(10.0),
        ),
        c("perf_exec_engine", "bitslice_lanes", "64 PAC guesses per cipher pass", U64(64)),
        c(
            "perf_exec_engine",
            "bitslice_speedup",
            "bitsliced QARMA beats 64 scalar calls",
            AtLeast(2.0),
        ),
        c(
            "perf_exec_engine",
            "block_cache_hit_rate_pct",
            "steady-state dispatches come from the arena",
            AtLeast(90.0),
        ),
        // ---- perf_campaign (persistent executor + pooled machines) -----
        // Not a paper table: the executor-rewrite regression gate. Bands
        // match the bench's own checks so a printed PASS always verifies.
        c("perf_campaign", "jobs", "measured at real parallelism", AtLeast(4.0)),
        c(
            "perf_campaign",
            "campaigns_per_sec_executor",
            "pipelined small-campaign throughput",
            AtLeast(0.1),
        ),
        c(
            "perf_campaign",
            "campaigns_per_sec_scoped",
            "spawn-per-campaign baseline throughput",
            AtLeast(0.1),
        ),
        c(
            "perf_campaign",
            "throughput_speedup",
            "persistent executor >=3x on small campaigns",
            AtLeast(3.0),
        ),
        c("perf_campaign", "p50_latency_us", "median campaign latency", Present),
        c("perf_campaign", "p99_latency_us", "tail campaign latency", Present),
        c("perf_campaign", "backend_drift_fields", "executor == scoped pool, bit for bit", U64(0)),
        c(
            "perf_campaign",
            "jobs_parity_drift_fields",
            "jobs=1 == jobs=N on the executor, bit for bit",
            U64(0),
        ),
        c(
            "perf_campaign",
            "pool_steady_fresh_boots",
            "steady-state leases come from the pool",
            U64(0),
        ),
        c(
            "perf_campaign",
            "pool_steady_fresh_frames",
            "steady-state reboots allocate no frames",
            U64(0),
        ),
        // ---- service_load (pacmand multi-tenant daemon) ----------------
        // Not a paper table: the daemon's production-readiness gate.
        // Bands match the bench's own checks so a printed PASS always
        // verifies.
        c("service_load", "sessions", "concurrent tenant sessions", AtLeast(200.0)),
        c("service_load", "jobs", "jobs completed under load", AtLeast(1.0)),
        c("service_load", "jobs_per_sec", "sustained service throughput", AtLeast(0.1)),
        c("service_load", "p50_latency_us", "median submit-to-done latency", Present),
        c("service_load", "p99_latency_us", "tail submit-to-done latency", Present),
        c("service_load", "injected_failures", "the fault drill landed exactly once", U64(1)),
        c(
            "service_load",
            "unexpected_failed_jobs",
            "no collateral failures in any session",
            U64(0),
        ),
        c("service_load", "panic_isolated", "a tenant panic never leaves its session", Bool(true)),
        c(
            "service_load",
            "daemon_survived",
            "the daemon keeps serving after the drill",
            Bool(true),
        ),
        c("service_load", "drained_clean", "graceful drain after the load", Bool(true)),
        // ---- snapshot (durable campaigns, DESIGN.md §13) ---------------
        // Not a paper table: the durability gate for long campaigns.
        c("snapshot", "system_snapshot_us", "System snapshot latency", Present),
        c("snapshot", "system_restore_us", "System restore latency", Present),
        c("snapshot", "checkpoint_write_us", "daemon checkpoint write latency", Present),
        c("snapshot", "resume_restore_us", "daemon checkpoint load latency", Present),
        c("snapshot", "roundtrip_ok", "a restored System is bit-identical", Bool(true)),
        c("snapshot", "checkpoints_written", "periodic checkpoints cut mid-campaign", AtLeast(1.0)),
        c(
            "snapshot",
            "checkpoint_overhead_pct",
            "checkpointing costs <=10% of campaign runtime",
            AtMost(10.0),
        ),
        // ---- conform: differential conformance harness -----------------
        // Not a paper table: the harness underwrites the simulator the
        // paper claims ride on (§5-6 committed-vs-speculative boundary).
        c("conform", "programs", "seeded differential program count", AtLeast(1.0)),
        c("conform", "divergences", "speculative core matches the reference", U64(0)),
        c("conform", "self_test_bugs_detected", "oracle catches both injected bugs", U64(2)),
        c("conform", "self_test_expected", "both sabotaged cores were exercised", U64(2)),
        c("conform", "ok", "conformance + self-test verdict", Bool(true)),
    ]
}

/// The claims for one artefact, prefixed with the two structural fields
/// every artefact carries.
pub fn for_artifact(id: &str) -> Vec<Claim> {
    let mut out = Vec::new();
    if let Some(&id) = ARTIFACT_IDS.iter().find(|&&a| a == id) {
        out.push(Claim::new(id, "record", "artefact framing", Str("bench")));
        out.push(Claim::new(id, "experiment", "artefact framing", Str(id)));
    }
    out.extend(all().into_iter().filter(|c| c.artifact == id));
    out
}

/// Builds a synthetic in-tolerance artefact for `id` (every claimed
/// field present with a passing value). Tests use this to exercise the
/// verify path without running the bench targets.
pub fn example_artifact(id: &str) -> Artifact {
    let mut art = Artifact::new(id, "synthetic in-tolerance example");
    for claim in all().into_iter().filter(|c| c.artifact == id) {
        art.field(claim.field, claim.expect.example());
    }
    art
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_artifact_id_has_claims() {
        for id in ARTIFACT_IDS {
            let claims = for_artifact(id);
            assert!(claims.len() > 2, "{id} has only structural claims");
            assert!(claims.iter().all(|c| c.artifact == id));
        }
    }

    #[test]
    fn claims_cover_no_unknown_artifacts() {
        for claim in all() {
            assert!(
                ARTIFACT_IDS.contains(&claim.artifact),
                "claim {}/{} names an unknown artefact",
                claim.artifact,
                claim.field
            );
        }
    }

    #[test]
    fn fields_are_unique_per_artifact() {
        let claims = all();
        for (i, a) in claims.iter().enumerate() {
            for b in &claims[..i] {
                assert!(
                    !(a.artifact == b.artifact && a.field == b.field),
                    "duplicate claim {}/{}",
                    a.artifact,
                    a.field
                );
            }
        }
    }

    #[test]
    fn example_artifacts_pass_their_own_claims() {
        for id in ARTIFACT_IDS {
            let json = example_artifact(id).to_json();
            for claim in for_artifact(id) {
                assert_eq!(
                    claim.check(&json),
                    Verdict::Pass,
                    "example for {id} fails its own claim {}",
                    claim.field
                );
            }
        }
    }

    #[test]
    fn example_artifacts_round_trip_with_declared_fields() {
        // Every artefact id must serialize, re-parse, and still contain
        // every field the claims table declares.
        for id in ARTIFACT_IDS {
            let text = example_artifact(id).to_json().to_string();
            let parsed = pacman_telemetry::json::parse(&text).expect("valid JSON");
            assert_eq!(parsed.get("experiment").and_then(Value::as_str), Some(id));
            for claim in for_artifact(id) {
                assert!(parsed.get(claim.field).is_some(), "{id} lost field {}", claim.field);
            }
        }
    }

    #[test]
    fn bands_admit_and_reject() {
        assert!(U64(12).admits(&Value::UInt(12)));
        assert!(!U64(12).admits(&Value::UInt(13)));
        assert!(!U64(12).admits(&Value::str("12")));
        assert!(F64Range { min: 1.0, max: 2.0 }.admits(&Value::Float(1.5)));
        assert!(F64Range { min: 1.0, max: 2.0 }.admits(&Value::UInt(2)));
        assert!(!F64Range { min: 1.0, max: 2.0 }.admits(&Value::Float(2.01)));
        assert!(U64Range { min: 28, max: 34 }.admits(&Value::UInt(30)));
        assert!(!U64Range { min: 28, max: 34 }.admits(&Value::UInt(35)));
        assert!(AtLeast(99.0).admits(&Value::Float(99.6)));
        assert!(!AtLeast(99.0).admits(&Value::Float(98.9)));
        assert!(AtMost(27.0).admits(&Value::UInt(27)));
        assert!(!AtMost(27.0).admits(&Value::UInt(28)));
        assert!(Bool(true).admits(&Value::Bool(true)));
        assert!(!Bool(true).admits(&Value::Bool(false)));
        assert!(Str("x").admits(&Value::str("x")));
        assert!(Present.admits(&Value::Null));
    }

    #[test]
    fn verdicts_carry_status_and_actuals() {
        let claim = Claim::new("fig6", "dtlb_ways", "test", U64(12));
        let good = Value::Object(vec![("dtlb_ways".into(), Value::UInt(12))]);
        let bad = Value::Object(vec![("dtlb_ways".into(), Value::UInt(8))]);
        let empty = Value::Object(vec![]);
        assert_eq!(claim.check(&good), Verdict::Pass);
        assert_eq!(claim.check(&bad), Verdict::Fail("8".into()));
        assert_eq!(claim.check(&empty), Verdict::Missing);
        assert_eq!(claim.check(&good).status(), "pass");
        assert_eq!(claim.check(&bad).status(), "fail");
        assert_eq!(claim.check(&empty).status(), "missing");
    }
}
