//! Parallel §4.3 gadget census over the `pacman-runner` execution layer.
//!
//! The census workload — synthesize a PA-heavy image, scan it — is
//! embarrassingly parallel at function granularity: the synthesizer is
//! deterministic per `(functions, seed)` and the scanner never looks
//! across function boundaries further than its branch window. The
//! parallel census therefore cuts the requested function count into
//! [`pacman_runner::DEFAULT_SHARDS`] fixed sub-images (seeded
//! `spec.seed ^ shard_index`), scans them concurrently and folds the
//! reports with [`ScanReport::merge`] in shard order.
//!
//! The shard plan is a pure function of the spec — never of the worker
//! count — so for a fixed spec the merged report is byte-identical at
//! any `jobs` value.

use pacman_runner::{
    run_shards, shard_plan, Executor, RetryPolicy, RunnerBackend, Shard, DEFAULT_SHARDS,
};

use crate::scan::{scan_image, ScanConfig, ScanReport};
use crate::synth::{synthesize, ImageSpec};

/// Runs the §4.3 census sharded across `jobs` workers: `spec.functions`
/// functions total, generated as [`DEFAULT_SHARDS`] deterministic
/// sub-images and scanned concurrently. Returns the merged report.
///
/// On the persistent-executor backend (the default) the campaign is
/// submitted to the process-wide worker pool and the sub-reports fold
/// through [`ScanReport::merge`] as the **ordered stream** delivers
/// them — shard `i` merges while later shards still scan. The scoped
/// backend keeps the original spawn-per-campaign [`run_shards`] path.
/// Both are bit-identical for a fixed spec at any `jobs` value.
pub fn parallel_census(spec: &ImageSpec, config: &ScanConfig, jobs: usize) -> ScanReport {
    let plan = shard_plan(spec.functions, DEFAULT_SHARDS, spec.seed);
    let mut merged = ScanReport::default();
    match RunnerBackend::current() {
        RunnerBackend::Executor => {
            let (spec, config) = (*spec, *config);
            let handle = Executor::global().submit(
                plan,
                jobs,
                RetryPolicy::no_retries(),
                move |shard: &Shard, _attempt| -> Result<ScanReport, std::convert::Infallible> {
                    let sub = ImageSpec { functions: shard.len, seed: shard.seed, ..spec };
                    Ok(scan_image(&synthesize(&sub).bytes, &config))
                },
            );
            for (i, r) in handle.ordered() {
                match r {
                    Ok(report) => merged.merge(&report),
                    Err(e) => panic!("census shard {i} failed: {e}"),
                }
            }
        }
        RunnerBackend::ScopedPool => {
            let reports = run_shards(&plan, jobs, |shard: &Shard| {
                let sub = ImageSpec { functions: shard.len, seed: shard.seed, ..*spec };
                scan_image(&synthesize(&sub).bytes, config)
            });
            for r in &reports {
                merged.merge(r);
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(functions: usize) -> ImageSpec {
        ImageSpec { functions, seed: 0xC0DE, ..ImageSpec::default() }
    }

    #[test]
    fn census_is_jobs_invariant() {
        let cfg = ScanConfig::default();
        let serial = parallel_census(&spec(400), &cfg, 1);
        let parallel = parallel_census(&spec(400), &cfg, 4);
        assert_eq!(serial, parallel, "census must not depend on the worker count");
        assert!(serial.total() > 0);
    }

    #[test]
    fn census_scans_every_function() {
        let report = parallel_census(&spec(500), &ScanConfig::default(), 2);
        // PA-heavy synthetic code averages more than one gadget per
        // function (§4.3 scaling), and the sub-images jointly cover the
        // full function budget.
        assert!(report.total() > 500, "expected >1 gadget/function, got {}", report.total());
        assert!(report.conditional_branches >= 500);
    }

    #[test]
    fn clean_images_stay_clean_under_parallel_scan() {
        let clean = ImageSpec { functions: 300, seed: 0xC0DE, pa_percent: 0, ..Default::default() };
        let report = parallel_census(&clean, &ScanConfig::default(), 4);
        assert_eq!(report.total(), 0, "no PA, no gadgets — in any shard");
    }

    #[test]
    fn merge_folds_counts_and_distances_exactly() {
        let cfg = ScanConfig::default();
        let a = scan_image(&synthesize(&spec(100)).bytes, &cfg);
        let b = scan_image(&synthesize(&ImageSpec { seed: 0xBEEF, ..spec(100) }).bytes, &cfg);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total(), a.total() + b.total());
        assert_eq!(merged.data_count(), a.data_count() + b.data_count());
        assert_eq!(merged.instructions, a.instructions + b.instructions);
        assert_eq!(merged.conditional_branches, a.conditional_branches + b.conditional_branches);
        let weighted = a.mean_distance() * a.total() as f64 + b.mean_distance() * b.total() as f64;
        let expected = weighted / (a.total() + b.total()) as f64;
        assert!((merged.mean_distance() - expected).abs() < 1e-9);
    }
}
