//! Synthetic PA-enabled kernel images for the §4.3 census.
//!
//! The paper scanned the release XNU image (macOS 12.2.1) and found
//! 55,159 potential PACMAN gadgets — 13,867 data and 41,292 instruction
//! gadgets — with a mean branch→transmit distance of 8.1 instructions.
//! We cannot ship Apple's binary, so this module generates images made of
//! the same *shapes* that produce those gadgets in real PA-enabled code:
//!
//! - functions whose prologue signs the return address and whose epilogue
//!   authenticates it before `ret` (Figure 2) — each conditional branch
//!   within ~32 instructions of the epilogue contributes an instruction
//!   gadget, which is why instruction gadgets dominate the census;
//! - C++-style virtual dispatch sites (`aut` vtable pointer, load entry,
//!   `aut` entry, `blr`) — instruction gadgets;
//! - data-structure walks that authenticate a data pointer and then
//!   dereference it — data gadgets;
//! - plain leaf code with branches and no PA — no gadgets.

use pacman_isa::{encode, Asm, Cond, Inst, PacKey, PacModifier, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic image.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct ImageSpec {
    /// Number of functions to generate.
    pub functions: usize,
    /// RNG seed (images are deterministic per seed).
    pub seed: u64,
    /// Fraction (percent) of functions protected by PA, as on macOS where
    /// the kernel is built with pointer authentication throughout.
    pub pa_percent: u8,
    /// Fraction (percent) of PA functions containing a virtual-dispatch
    /// site.
    pub vdispatch_percent: u8,
    /// Fraction (percent) of PA functions containing an authenticated
    /// data-pointer walk.
    pub data_walk_percent: u8,
    /// Fraction (percent) of PA functions that spill an authenticated
    /// pointer to the stack and reload it before use (register
    /// pressure) — invisible to register-only dataflow.
    pub spill_percent: u8,
}

impl Default for ImageSpec {
    fn default() -> Self {
        Self {
            functions: 200,
            seed: 1,
            pa_percent: 85,
            vdispatch_percent: 55,
            data_walk_percent: 20,
            spill_percent: 15,
        }
    }
}

/// A generated image.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct SynthImage {
    /// Encoded little-endian instruction stream.
    pub bytes: Vec<u8>,
    /// Number of instructions.
    pub instructions: usize,
    /// Number of generated functions.
    pub functions: usize,
}

fn rand_reg(rng: &mut SmallRng) -> Reg {
    Reg::x(rng.gen_range(2..15))
}

/// Emits a few register-only filler instructions.
fn emit_filler(a: &mut Asm, rng: &mut SmallRng, count: usize) {
    for _ in 0..count {
        let (rd, rn, rm) = (rand_reg(rng), rand_reg(rng), rand_reg(rng));
        match rng.gen_range(0..5) {
            0 => a.push(Inst::AddReg { rd, rn, rm }),
            1 => a.push(Inst::EorReg { rd, rn, rm }),
            2 => a.push(Inst::MovZ { rd, imm: rng.gen(), shift: rng.gen_range(0..4) }),
            3 => a.push(Inst::LslImm { rd, rn, shift: rng.gen_range(0..16) }),
            _ => a.push(Inst::SubImm { rd, rn, imm: rng.gen_range(0..64) }),
        };
    }
}

/// A short conditional region, as compilers emit for error checks.
fn emit_branchy_block(a: &mut Asm, rng: &mut SmallRng) {
    let skip = a.new_label();
    let r = rand_reg(rng);
    match rng.gen_range(0..4) {
        0 => {
            a.cbz(r, skip);
        }
        1 => {
            a.cbnz(r, skip);
        }
        2 => {
            if rng.gen_bool(0.5) {
                a.tbz(r, rng.gen_range(0..64), skip);
            } else {
                a.tbnz(r, rng.gen_range(0..64), skip);
            }
        }
        _ => {
            a.push(Inst::CmpImm { rn: r, imm: rng.gen_range(0..32) });
            let cond = Cond::ALL[rng.gen_range(0..Cond::ALL.len())];
            a.b_cond(cond, skip);
        }
    }
    let n = rng.gen_range(1..5);
    emit_filler(a, rng, n);
    a.bind(skip);
}

/// A C++-style virtual dispatch: authenticate the vtable pointer, index
/// it, authenticate the entry, call it (Listing 2).
fn emit_vdispatch(a: &mut Asm, rng: &mut SmallRng) {
    let obj = rand_reg(rng);
    a.push(Inst::Ldr { rt: Reg::X10, rn: obj, offset: 0 });
    a.push(Inst::Aut { key: PacKey::Da, rd: Reg::X10, modifier: PacModifier::Reg(obj) });
    a.push(Inst::Ldr { rt: Reg::X11, rn: Reg::X10, offset: (8 * rng.gen_range(0..4)) as i16 });
    a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X11, modifier: PacModifier::Reg(obj) });
    a.push(Inst::Blr { rn: Reg::X11 });
}

/// An authenticated pointer spilled to the stack under register
/// pressure, reloaded, then dereferenced — the kind of gadget the
/// paper's register-only dataflow misses (§4.3's undercount caveat).
fn emit_spill_reload(a: &mut Asm, rng: &mut SmallRng) {
    let base = rand_reg(rng);
    a.push(Inst::Ldr { rt: Reg::X12, rn: base, offset: 16 });
    a.push(Inst::Aut { key: PacKey::Da, rd: Reg::X12, modifier: PacModifier::Zero });
    a.push(Inst::Str { rt: Reg::X12, rn: Reg::SP, offset: 0x20 });
    // Register pressure clobbers the live value...
    a.push(Inst::MovZ { rd: Reg::X12, imm: rng.gen(), shift: 0 });
    let n = rng.gen_range(0..3);
    emit_filler(a, rng, n);
    // ...so it is reloaded before the dereference.
    a.push(Inst::Ldr { rt: Reg::X12, rn: Reg::SP, offset: 0x20 });
    a.push(Inst::Ldr { rt: Reg::X13, rn: Reg::X12, offset: 0 });
}

/// An authenticated data-pointer dereference chain.
fn emit_data_walk(a: &mut Asm, rng: &mut SmallRng) {
    let base = rand_reg(rng);
    a.push(Inst::Ldr { rt: Reg::X12, rn: base, offset: 8 });
    a.push(Inst::Aut { key: PacKey::Da, rd: Reg::X12, modifier: PacModifier::Zero });
    let n = rng.gen_range(0..3);
    emit_filler(a, rng, n);
    a.push(Inst::Ldr { rt: Reg::X13, rn: Reg::X12, offset: 0 });
}

/// One function body.
fn emit_function(a: &mut Asm, rng: &mut SmallRng, spec: &ImageSpec) {
    let pa = rng.gen_range(0..100) < spec.pa_percent;
    // Prologue (Figure 2(a)); real compilers spill the frame pair with stp.
    if pa {
        a.push(Inst::Pac { key: PacKey::Ia, rd: Reg::LR, modifier: PacModifier::Reg(Reg::SP) });
        a.push(Inst::SubImm { rd: Reg::SP, rn: Reg::SP, imm: 0x40 });
        if rng.gen_bool(0.5) {
            a.push(Inst::Stp { rt: Reg::X29, rt2: Reg::LR, rn: Reg::SP, offset: 0x30 });
        } else {
            a.push(Inst::Str { rt: Reg::LR, rn: Reg::SP, offset: 0x30 });
        }
    }
    let n = rng.gen_range(1..5);
    emit_filler(a, rng, n);
    for _ in 0..rng.gen_range(1..3) {
        emit_branchy_block(a, rng);
        let n = rng.gen_range(0..3);
        emit_filler(a, rng, n);
    }
    if pa && rng.gen_range(0..100) < spec.vdispatch_percent {
        emit_branchy_block(a, rng);
        emit_vdispatch(a, rng);
    }
    if pa && rng.gen_range(0..100) < spec.data_walk_percent {
        emit_branchy_block(a, rng);
        emit_data_walk(a, rng);
    }
    if pa && rng.gen_range(0..100) < spec.spill_percent {
        emit_branchy_block(a, rng);
        emit_spill_reload(a, rng);
    }
    // Epilogue (Figure 2(b)).
    if pa {
        if rng.gen_bool(0.5) {
            a.push(Inst::Ldp { rt: Reg::X29, rt2: Reg::LR, rn: Reg::SP, offset: 0x30 });
        } else {
            a.push(Inst::Ldr { rt: Reg::LR, rn: Reg::SP, offset: 0x30 });
        }
        a.push(Inst::AddImm { rd: Reg::SP, rn: Reg::SP, imm: 0x40 });
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::LR, modifier: PacModifier::Reg(Reg::SP) });
    }
    a.push(Inst::Ret);
}

/// Generates a synthetic PA-enabled image.
pub fn synthesize(spec: &ImageSpec) -> SynthImage {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut a = Asm::new();
    for _ in 0..spec.functions {
        emit_function(&mut a, &mut rng, spec);
    }
    let program = a.assemble().expect("synthetic image assembles");
    let mut bytes = Vec::with_capacity(program.len() * 4);
    for inst in &program {
        bytes.extend_from_slice(&encode(inst).expect("synthetic image encodes").to_le_bytes());
    }
    SynthImage { bytes, instructions: program.len(), functions: spec.functions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan_image, ScanConfig};

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = ImageSpec { functions: 30, seed: 9, ..ImageSpec::default() };
        assert_eq!(synthesize(&spec), synthesize(&spec));
        let other = ImageSpec { seed: 10, ..spec };
        assert_ne!(synthesize(&spec).bytes, synthesize(&other).bytes);
    }

    #[test]
    fn census_shape_matches_the_paper() {
        // §4.3 on XNU: 55,159 gadgets; 13,867 data vs 41,292 instruction
        // (≈3x); mean distance 8.1. The synthetic image must reproduce the
        // qualitative shape: gadgets are abundant, instruction gadgets
        // dominate, and the mean distance is single-digit instructions.
        let image = synthesize(&ImageSpec { functions: 400, seed: 42, ..ImageSpec::default() });
        let report = scan_image(&image.bytes, &ScanConfig::default());
        assert!(report.total() > 400, "expected abundant gadgets, got {}", report.total());
        assert!(
            report.instruction_count() > report.data_count(),
            "instruction gadgets must dominate ({} vs {})",
            report.instruction_count(),
            report.data_count()
        );
        let d = report.mean_distance();
        assert!((2.0..=16.0).contains(&d), "mean distance {d} not single-digit-ish");
    }

    #[test]
    fn pa_free_code_has_no_gadgets() {
        let spec = ImageSpec { functions: 100, seed: 3, pa_percent: 0, ..ImageSpec::default() };
        let image = synthesize(&spec);
        let report = scan_image(&image.bytes, &ScanConfig::default());
        assert_eq!(report.total(), 0);
        assert!(report.conditional_branches > 0, "the image still has branches");
    }

    #[test]
    fn bigger_images_have_more_gadgets() {
        let small = synthesize(&ImageSpec { functions: 50, seed: 5, ..ImageSpec::default() });
        let large = synthesize(&ImageSpec { functions: 500, seed: 5, ..ImageSpec::default() });
        let cfg = ScanConfig::default();
        assert!(
            scan_image(&large.bytes, &cfg).total() > scan_image(&small.bytes, &cfg).total() * 5
        );
    }

    #[test]
    fn instruction_count_matches_bytes() {
        let image = synthesize(&ImageSpec { functions: 10, seed: 1, ..ImageSpec::default() });
        assert_eq!(image.bytes.len(), image.instructions * 4);
    }
}
