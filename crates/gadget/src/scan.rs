//! The scanner: conditional-branch enumeration + register dataflow.

use pacman_isa::{decode, Inst, Reg};

/// Gadget classification (paper §4.1/§4.2).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum GadgetKind {
    /// Transmit by load/store (Figure 3(a)).
    Data,
    /// Transmit by indirect branch (Figure 3(b)).
    Instruction,
}

/// One detected gadget.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct Gadget {
    /// Word index of the guarding conditional branch (`BR1`).
    pub branch_index: usize,
    /// Word index of the verification (`AUT`) instruction.
    pub aut_index: usize,
    /// Word index of the transmit instruction.
    pub transmit_index: usize,
    /// Data or instruction gadget.
    pub kind: GadgetKind,
    /// Whether the gadget was found on the taken path (vs fall-through).
    pub on_taken_path: bool,
}

impl Gadget {
    /// Instructions between the conditional branch and the transmit
    /// instruction (the paper reports a mean of 8.1 over XNU).
    pub fn distance(&self) -> usize {
        self.transmit_index.abs_diff(self.branch_index)
    }
}

/// Scanner parameters.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct ScanConfig {
    /// How many instructions to inspect down each branch direction
    /// (paper: 32).
    pub window: usize,
    /// Deduplicate gadgets that share the same (aut, transmit) pair but
    /// are guarded by different branches. The paper counts per branch
    /// (the default, `false`).
    pub dedup_by_aut: bool,
    /// Additionally track AUT results spilled to and reloaded from
    /// SP-relative stack slots. The paper's tool "only tracks
    /// data-dependence via registers, not memory" and predicts "more
    /// gadgets can be found with a comprehensive analysis" — this flag is
    /// that analysis (partially: constant SP-relative slots only).
    pub track_stack: bool,
}

impl Default for ScanConfig {
    fn default() -> Self {
        Self { window: 32, dedup_by_aut: false, track_stack: false }
    }
}

/// Scan results.
#[derive(Clone, Eq, PartialEq, Debug, Default)]
pub struct ScanReport {
    /// Every gadget found.
    pub gadgets: Vec<Gadget>,
    /// Number of conditional branches inspected.
    pub conditional_branches: usize,
    /// Number of decodable instructions in the image.
    pub instructions: usize,
}

impl ScanReport {
    /// Total gadget count.
    pub fn total(&self) -> usize {
        self.gadgets.len()
    }

    /// Data-gadget count.
    pub fn data_count(&self) -> usize {
        self.gadgets.iter().filter(|g| g.kind == GadgetKind::Data).count()
    }

    /// Instruction-gadget count.
    pub fn instruction_count(&self) -> usize {
        self.gadgets.iter().filter(|g| g.kind == GadgetKind::Instruction).count()
    }

    /// Mean branch→transmit distance (instructions).
    pub fn mean_distance(&self) -> f64 {
        if self.gadgets.is_empty() {
            return 0.0;
        }
        self.gadgets.iter().map(|g| g.distance()).sum::<usize>() as f64 / self.gadgets.len() as f64
    }

    /// Folds another report into this one: gadget lists concatenate,
    /// branch and instruction counts add. Gadget indices stay relative to
    /// their source image (a merged census spans several images), which
    /// leaves every derived statistic — counts, kind split, distances —
    /// exact. Merging is associative and, for the census aggregates,
    /// order-insensitive.
    pub fn merge(&mut self, other: &ScanReport) {
        self.gadgets.extend_from_slice(&other.gadgets);
        self.conditional_branches += other.conditional_branches;
        self.instructions += other.instructions;
    }
}

/// Decodes a little-endian image into instructions; undecodable words
/// become `None` (data islands are skipped, like a linear-sweep
/// disassembler would).
fn decode_image(bytes: &[u8]) -> Vec<Option<Inst>> {
    bytes
        .chunks_exact(4)
        .map(|w| decode(u32::from_le_bytes(w.try_into().expect("chunk of 4"))).ok())
        .collect()
}

/// Follows one straight-line path from `start`, tracking which registers
/// currently hold an AUT result, and reporting the first gadget if any.
///
/// Register-only dataflow, exactly like the paper's tool: a write to a
/// register clears its taint unless the writer is itself an `AUT`; memory
/// is not tracked (the paper notes this undercounts).
fn walk_path(
    insts: &[Option<Inst>],
    branch_index: usize,
    start: usize,
    config: &ScanConfig,
    on_taken_path: bool,
    out: &mut Vec<Gadget>,
) {
    let mut auted: [Option<usize>; Reg::COUNT] = [None; Reg::COUNT];
    // SP-relative spill slots holding AUT results (track_stack only).
    let mut stack_slots: Vec<(i16, usize)> = Vec::new();
    let mut idx = start;
    for _ in 0..window_of(config) {
        let Some(Some(inst)) = insts.get(idx).copied() else { return };
        // Transmit check first: `aut x0; ldr x1, [x0]` has x0 both as an
        // AUT result and an address source in consecutive instructions.
        // The walk keeps going after a match — one verified pointer can
        // feed several transmits, and the paper counts gadgets, not paths.
        if let Some(src) = inst.address_source() {
            if let Some(aut_index) = auted[src.index() as usize] {
                let kind = if inst.is_indirect_branch() {
                    GadgetKind::Instruction
                } else {
                    GadgetKind::Data
                };
                out.push(Gadget {
                    branch_index,
                    aut_index,
                    transmit_index: idx,
                    kind,
                    on_taken_path,
                });
            }
        }
        // Stack dataflow (track_stack): spills of AUT results create
        // tainted slots; reloads from tainted slots re-taint registers.
        if config.track_stack {
            match inst {
                Inst::Str { rt, rn, offset } if rn == Reg::SP => {
                    stack_slots.retain(|&(o, _)| o != offset);
                    if let Some(src) = auted[rt.index() as usize] {
                        stack_slots.push((offset, src));
                    }
                }
                Inst::Ldr { rt, rn, offset } if rn == Reg::SP => {
                    if let Some(&(_, src)) = stack_slots.iter().find(|&&(o, _)| o == offset) {
                        auted[rt.index() as usize] = Some(src);
                        // Skip the generic destination-clearing below.
                        idx += 1;
                        continue;
                    }
                }
                _ => {}
            }
        }
        if let Some(rd) = inst.aut_destination() {
            auted[rd.index() as usize] = Some(idx);
        } else if let Some(rd) = inst.destination() {
            auted[rd.index() as usize] = None;
            if let Some(rd2) = inst.second_destination() {
                auted[rd2.index() as usize] = None;
            }
        }
        // Straight-line sweep: direct branches redirect the walk;
        // anything that leaves the function ends it.
        match inst {
            Inst::B { offset } => {
                let Some(next) = idx.checked_add_signed(offset as isize) else { return };
                idx = next;
            }
            Inst::Ret | Inst::Br { .. } | Inst::Eret | Inst::Hlt => return,
            _ => idx += 1,
        }
    }
}

fn window_of(config: &ScanConfig) -> usize {
    config.window
}

/// Scans a binary image for PACMAN gadgets (the paper's §4.3 analysis).
pub fn scan_image(bytes: &[u8], config: &ScanConfig) -> ScanReport {
    let insts = decode_image(bytes);
    let mut report = ScanReport {
        instructions: insts.iter().filter(|i| i.is_some()).count(),
        ..ScanReport::default()
    };
    for (i, slot) in insts.iter().enumerate() {
        let Some(inst) = slot else { continue };
        if !inst.is_conditional_branch() {
            continue;
        }
        report.conditional_branches += 1;
        let offset = inst.branch_offset().expect("conditional branches carry an offset") as isize;
        // Taken direction.
        if let Some(taken) = i.checked_add_signed(offset) {
            walk_path(&insts, i, taken, config, true, &mut report.gadgets);
        }
        // Fall-through direction.
        walk_path(&insts, i, i + 1, config, false, &mut report.gadgets);
    }
    if config.dedup_by_aut {
        let mut seen = std::collections::HashSet::new();
        report.gadgets.retain(|g| seen.insert((g.aut_index, g.transmit_index)));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacman_isa::{encode::encode_program, Asm, PacKey, PacModifier};

    fn image(program: &[Inst]) -> Vec<u8> {
        encode_program(program).expect("test program encodes")
    }

    fn data_gadget_program() -> Vec<Inst> {
        // Figure 3(a): if (cond) { v = AUT(x0); load v }
        let mut a = Asm::new();
        let skip = a.new_label();
        a.cbz(Reg::X1, skip);
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X0, modifier: PacModifier::Zero });
        a.push(Inst::Ldr { rt: Reg::X2, rn: Reg::X0, offset: 0 });
        a.bind(skip);
        a.push(Inst::Ret);
        a.assemble().unwrap()
    }

    #[test]
    fn finds_the_minimal_data_gadget() {
        let report = scan_image(&image(&data_gadget_program()), &ScanConfig::default());
        assert_eq!(report.total(), 1);
        let g = report.gadgets[0];
        assert_eq!(g.kind, GadgetKind::Data);
        assert_eq!(g.branch_index, 0);
        assert_eq!(g.aut_index, 1);
        assert_eq!(g.transmit_index, 2);
        assert_eq!(g.distance(), 2);
        assert!(!g.on_taken_path, "the gadget body is the fall-through here");
    }

    #[test]
    fn finds_the_minimal_instruction_gadget() {
        let mut a = Asm::new();
        let skip = a.new_label();
        a.cbz(Reg::X1, skip);
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X0, modifier: PacModifier::Zero });
        a.push(Inst::Blr { rn: Reg::X0 });
        a.bind(skip);
        a.push(Inst::Ret);
        let report = scan_image(&image(&a.assemble().unwrap()), &ScanConfig::default());
        assert_eq!(report.total(), 1);
        assert_eq!(report.gadgets[0].kind, GadgetKind::Instruction);
    }

    #[test]
    fn intervening_arithmetic_does_not_break_detection() {
        // §4.1: "Other instructions between the verification and
        // transmission instructions ... can exist without affecting the
        // attack."
        let mut a = Asm::new();
        let skip = a.new_label();
        a.cbz(Reg::X1, skip);
        a.push(Inst::Aut { key: PacKey::Da, rd: Reg::X0, modifier: PacModifier::Zero });
        a.push(Inst::AddImm { rd: Reg::X3, rn: Reg::X4, imm: 8 });
        a.push(Inst::MovZ { rd: Reg::X5, imm: 1, shift: 0 });
        a.push(Inst::Str { rt: Reg::X3, rn: Reg::X0, offset: 16 });
        a.bind(skip);
        a.push(Inst::Ret);
        let report = scan_image(&image(&a.assemble().unwrap()), &ScanConfig::default());
        assert_eq!(report.total(), 1);
        assert_eq!(report.gadgets[0].distance(), 4);
    }

    #[test]
    fn overwriting_the_verified_register_kills_the_gadget() {
        let mut a = Asm::new();
        let skip = a.new_label();
        a.cbz(Reg::X1, skip);
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X0, modifier: PacModifier::Zero });
        a.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 }); // clobber
        a.push(Inst::Ldr { rt: Reg::X2, rn: Reg::X0, offset: 0 });
        a.bind(skip);
        a.push(Inst::Ret);
        let report = scan_image(&image(&a.assemble().unwrap()), &ScanConfig::default());
        assert_eq!(report.total(), 0);
    }

    #[test]
    fn ret_after_aut_of_lr_is_an_instruction_gadget() {
        // The function-epilogue pattern of Figure 2(b): aut lr; ret.
        let mut a = Asm::new();
        let skip = a.new_label();
        a.cbz(Reg::X1, skip);
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::LR, modifier: PacModifier::Reg(Reg::SP) });
        a.push(Inst::Ret);
        a.bind(skip);
        a.push(Inst::Ret);
        let report = scan_image(&image(&a.assemble().unwrap()), &ScanConfig::default());
        assert_eq!(report.total(), 1);
        assert_eq!(report.gadgets[0].kind, GadgetKind::Instruction);
    }

    #[test]
    fn stack_tracking_finds_spill_reload_gadgets() {
        // aut x0; spill to the stack; clobber x0; reload; transmit.
        // Register-only dataflow (the paper's tool) misses this; the
        // track_stack extension finds it.
        let mut a = Asm::new();
        let skip = a.new_label();
        a.cbz(Reg::X1, skip);
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X0, modifier: PacModifier::Zero });
        a.push(Inst::Str { rt: Reg::X0, rn: Reg::SP, offset: 0x10 });
        a.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 });
        a.push(Inst::Ldr { rt: Reg::X0, rn: Reg::SP, offset: 0x10 });
        a.push(Inst::Ldr { rt: Reg::X2, rn: Reg::X0, offset: 0 });
        a.bind(skip);
        a.push(Inst::Ret);
        let bytes = image(&a.assemble().unwrap());
        let plain = scan_image(&bytes, &ScanConfig::default());
        assert_eq!(plain.total(), 0, "register-only dataflow must miss the spill");
        let deep = scan_image(&bytes, &ScanConfig { track_stack: true, ..ScanConfig::default() });
        assert_eq!(deep.total(), 1, "stack tracking must find it");
        assert_eq!(deep.gadgets[0].kind, GadgetKind::Data);
    }

    #[test]
    fn stack_tracking_respects_slot_overwrites() {
        // The slot is overwritten with a non-AUT value before the reload:
        // no gadget either way.
        let mut a = Asm::new();
        let skip = a.new_label();
        a.cbz(Reg::X1, skip);
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X0, modifier: PacModifier::Zero });
        a.push(Inst::Str { rt: Reg::X0, rn: Reg::SP, offset: 0x10 });
        a.push(Inst::Str { rt: Reg::X3, rn: Reg::SP, offset: 0x10 }); // clobber slot
        a.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 });
        a.push(Inst::Ldr { rt: Reg::X0, rn: Reg::SP, offset: 0x10 });
        a.push(Inst::Ldr { rt: Reg::X2, rn: Reg::X0, offset: 0 });
        a.bind(skip);
        a.push(Inst::Ret);
        let bytes = image(&a.assemble().unwrap());
        let deep = scan_image(&bytes, &ScanConfig { track_stack: true, ..ScanConfig::default() });
        assert_eq!(deep.total(), 0);
    }

    #[test]
    fn stack_tracking_finds_more_gadgets_in_synthetic_images() {
        use crate::synth::{synthesize, ImageSpec};
        let image = synthesize(&ImageSpec { functions: 300, seed: 77, ..ImageSpec::default() });
        let plain = scan_image(&image.bytes, &ScanConfig::default());
        let deep =
            scan_image(&image.bytes, &ScanConfig { track_stack: true, ..ScanConfig::default() });
        assert!(deep.total() >= plain.total(), "deeper analysis can only add gadgets");
    }

    #[test]
    fn gadgets_beyond_the_window_are_missed() {
        // The paper's own caveat: the 32-instruction window undercounts.
        let mut a = Asm::new();
        let skip = a.new_label();
        a.cbz(Reg::X1, skip);
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X0, modifier: PacModifier::Zero });
        for _ in 0..40 {
            a.push(Inst::Nop);
        }
        a.push(Inst::Ldr { rt: Reg::X2, rn: Reg::X0, offset: 0 });
        a.bind(skip);
        a.push(Inst::Ret);
        let prog = a.assemble().unwrap();
        assert_eq!(scan_image(&image(&prog), &ScanConfig::default()).total(), 0);
        let wide = ScanConfig { window: 64, ..ScanConfig::default() };
        assert_eq!(scan_image(&image(&prog), &wide).total(), 1);
    }

    #[test]
    fn both_branch_directions_are_scanned() {
        // Gadget on the *taken* path.
        let mut a = Asm::new();
        let gadget = a.new_label();
        a.cbnz(Reg::X1, gadget);
        a.push(Inst::Ret);
        a.bind(gadget);
        a.push(Inst::Aut { key: PacKey::Ib, rd: Reg::X0, modifier: PacModifier::Zero });
        a.push(Inst::Ldr { rt: Reg::X2, rn: Reg::X0, offset: 0 });
        a.push(Inst::Ret);
        let report = scan_image(&image(&a.assemble().unwrap()), &ScanConfig::default());
        assert_eq!(report.total(), 1);
        assert!(report.gadgets[0].on_taken_path);
    }

    #[test]
    fn undecodable_words_are_tolerated() {
        let mut bytes = image(&data_gadget_program());
        bytes.extend_from_slice(&0xFFFF_FFFFu32.to_le_bytes()); // junk word
        let report = scan_image(&bytes, &ScanConfig::default());
        assert_eq!(report.total(), 1);
    }

    #[test]
    fn unconditional_branch_redirects_the_walk() {
        // aut, then jump over a clobber to the transmit.
        let mut a = Asm::new();
        let skip = a.new_label();
        let over = a.new_label();
        a.cbz(Reg::X1, skip);
        a.push(Inst::Aut { key: PacKey::Ia, rd: Reg::X0, modifier: PacModifier::Zero });
        a.b(over);
        a.push(Inst::MovZ { rd: Reg::X0, imm: 0, shift: 0 }); // skipped clobber
        a.bind(over);
        a.push(Inst::Ldr { rt: Reg::X2, rn: Reg::X0, offset: 0 });
        a.bind(skip);
        a.push(Inst::Ret);
        let report = scan_image(&image(&a.assemble().unwrap()), &ScanConfig::default());
        assert_eq!(report.total(), 1);
    }
}
