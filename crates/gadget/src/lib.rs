//! Static PACMAN-gadget detection (paper §4.3).
//!
//! The paper built a Ghidra script that scans the XNU kernel image for
//! PACMAN gadgets: it enumerates conditional branches, inspects 32
//! instructions down *both* branch directions, and reports a gadget when
//! the destination register of an `AUT` instruction later appears as the
//! address source of a memory access (data gadget) or an indirect branch
//! (instruction gadget), tracking dataflow through registers only.
//!
//! This crate reimplements that analysis from scratch over this
//! workspace's binary encoding, plus a synthetic kernel-image generator
//! with realistic PA-using function shapes so the §4.3 census can be
//! regenerated at any scale:
//!
//! - [`scan`] — the scanner;
//! - [`synth`] — the synthetic kernel-image generator;
//! - [`census`] — the sharded, jobs-invariant parallel census driver.
//!
//! # Example
//!
//! ```
//! use pacman_gadget::scan::{scan_image, ScanConfig};
//! use pacman_gadget::synth::{synthesize, ImageSpec};
//!
//! let image = synthesize(&ImageSpec { functions: 50, seed: 7, ..ImageSpec::default() });
//! let report = scan_image(&image.bytes, &ScanConfig::default());
//! assert!(report.total() > 0, "PA-heavy code must contain gadgets");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod census;
pub mod scan;
pub mod synth;

pub use census::parallel_census;
pub use scan::{scan_image, Gadget, GadgetKind, ScanConfig, ScanReport};
pub use synth::{synthesize, ImageSpec, SynthImage};
