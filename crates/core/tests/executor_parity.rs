//! Backend-parity contract of the persistent executor: for every
//! parallel driver, routing a campaign through the process-lifetime
//! work-stealing [`Executor`](pacman_runner::Executor) must produce
//! results bit-identical to the retained scoped-pool baseline
//! (`run_shards_tolerant`). The shard plan and every per-shard seed are
//! pure functions of the workload and base seed, so which thread pool
//! drains the plan — and how many campaigns it drains at once — must
//! not be observable in any aggregate.
//!
//! The property tests sweep workload shapes, job counts and injected
//! fault patterns; the concurrent test pins that parity survives many
//! interleaved submissions sharing one executor.

use pacman_core::fault::{FaultPlan, RetryPolicy, Tolerance};
use pacman_core::parallel::{
    oracle_distribution, parallel_sweep, Channel, ExperimentError, OracleDistribution, SweepKind,
};
use pacman_core::SystemConfig;
use pacman_gadget::{parallel_census, ImageSpec, ScanConfig};
use pacman_runner::{with_backend, RunnerBackend};
use proptest::prelude::*;

fn quiet_config(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    cfg.machine.seed = seed;
    cfg
}

fn no_faults() -> Tolerance {
    Tolerance::default()
}

fn oracle_run(
    cfg: &SystemConfig,
    trials: usize,
    jobs: usize,
    tol: &Tolerance,
) -> Result<OracleDistribution, ExperimentError> {
    oracle_distribution(cfg, Channel::Data, 1, trials, jobs, true, tol, |i, tp| tp ^ (1 + i as u16))
}

/// Full field-by-field oracle comparison, including trial records and
/// merged telemetry.
fn assert_oracle_eq(a: &OracleDistribution, b: &OracleDistribution) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.trials, b.trials);
    prop_assert_eq!(a.correct_detected, b.correct_detected);
    prop_assert_eq!(a.incorrect_clean, b.incorrect_clean);
    prop_assert_eq!(&a.correct_misses, &b.correct_misses);
    prop_assert_eq!(&a.incorrect_misses, &b.incorrect_misses);
    prop_assert_eq!(a.crashes, b.crashes);
    prop_assert_eq!(a.target, b.target);
    prop_assert_eq!(a.true_pac, b.true_pac);
    prop_assert_eq!(&a.records, &b.records);
    prop_assert_eq!(a.telemetry.snapshot(), b.telemetry.snapshot());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Oracle distributions: executor == scoped baseline for any
    /// machine seed, trial count and job count — verdict histograms,
    /// trial records and telemetry included.
    #[test]
    fn oracle_executor_matches_scoped_baseline(
        seed in any::<u64>(),
        trials in 4usize..16,
        jobs in 1usize..6,
    ) {
        let cfg = quiet_config(seed);
        let exec = with_backend(RunnerBackend::Executor, || {
            oracle_run(&cfg, trials, jobs, &no_faults())
        }).expect("executor run");
        let scoped = with_backend(RunnerBackend::ScopedPool, || {
            oracle_run(&cfg, trials, jobs, &no_faults())
        }).expect("scoped run");
        assert_oracle_eq(&exec, &scoped)?;
    }

    /// Fault-injection parity: the executor replays the same per-attempt
    /// fault decisions (`mix64(shard seed, attempt)` streams) as the
    /// baseline, so a recovered run is bit-identical — retry counters
    /// included — and an exhausted budget surfaces as the same typed
    /// partial failure on both backends.
    #[test]
    fn faulted_oracle_executor_matches_scoped_baseline(
        seed in 0u64..(1u64 << 48),
        rate_milli in 50u64..350,
    ) {
        let cfg = quiet_config(7);
        let tol = Tolerance {
            retry: RetryPolicy::default(),
            faults: FaultPlan::new(seed, rate_milli as f64 / 1000.0),
        };
        let exec = with_backend(RunnerBackend::Executor, || {
            oracle_run(&cfg, 6, 4, &tol)
        });
        let scoped = with_backend(RunnerBackend::ScopedPool, || {
            oracle_run(&cfg, 6, 4, &tol)
        });
        match (exec, scoped) {
            (Ok(e), Ok(s)) => {
                // Same faults, same retries: the full snapshot must
                // match, `runner.*` counters included.
                assert_oracle_eq(&e, &s)?;
            }
            (Err(ExperimentError::Shards(e)), Err(ExperimentError::Shards(s))) => {
                prop_assert_eq!(e.total, s.total);
                prop_assert_eq!(e.completed, s.completed);
                prop_assert_eq!(e.failures.len(), s.failures.len());
            }
            (e, s) => {
                return Err(TestCaseError::fail(format!(
                    "backends disagree on outcome class: executor {:?} vs scoped {:?}",
                    e.map(|_| "ok"),
                    s.map(|_| "ok"),
                )));
            }
        }
    }

    /// Census parity: the pure gadget-census fan-out returns the same
    /// report on either backend for any synthetic image.
    #[test]
    fn census_executor_matches_scoped_baseline(
        functions in 30usize..200,
        seed in any::<u64>(),
        jobs in 1usize..6,
    ) {
        let spec = ImageSpec { functions, seed, ..ImageSpec::default() };
        let cfg = ScanConfig::default();
        let exec = with_backend(RunnerBackend::Executor, || {
            parallel_census(&spec, &cfg, jobs)
        });
        let scoped = with_backend(RunnerBackend::ScopedPool, || {
            parallel_census(&spec, &cfg, jobs)
        });
        prop_assert_eq!(exec, scoped);
    }
}

#[test]
fn sweep_executor_matches_scoped_baseline() {
    for kind in [SweepKind::DataTlb, SweepKind::CacheTlb, SweepKind::Itlb] {
        let strides: &[u64] = match kind {
            SweepKind::DataTlb => &[256, 2048],
            SweepKind::CacheTlb => &[256 * 128, 2048 * 16384],
            SweepKind::Itlb => &[32],
        };
        let (exec, ereg) = with_backend(RunnerBackend::Executor, || {
            parallel_sweep(kind, strides, 4, &no_faults())
        })
        .expect("executor sweep");
        let (scoped, sreg) = with_backend(RunnerBackend::ScopedPool, || {
            parallel_sweep(kind, strides, 4, &no_faults())
        })
        .expect("scoped sweep");
        assert_eq!(exec, scoped, "{kind:?} series differ across backends");
        assert_eq!(ereg.snapshot(), sreg.snapshot());
    }
}

/// Many campaigns interleaved on the shared global executor: each
/// thread pins the executor backend, runs its own oracle campaign with
/// a distinct machine seed, and must reproduce exactly what the scoped
/// baseline computes for that seed in isolation. Cross-campaign
/// stealing inside the pool must never leak between submissions.
#[test]
fn concurrent_interleaved_campaigns_stay_isolated() {
    let seeds: Vec<u64> = (0..4).map(|i| 0xAB5E_ED00 + i).collect();
    let expected: Vec<OracleDistribution> = seeds
        .iter()
        .map(|&seed| {
            with_backend(RunnerBackend::ScopedPool, || {
                oracle_run(&quiet_config(seed), 8, 2, &no_faults())
            })
            .expect("scoped baseline")
        })
        .collect();

    let concurrent: Vec<OracleDistribution> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                scope.spawn(move || {
                    with_backend(RunnerBackend::Executor, || {
                        oracle_run(&quiet_config(seed), 8, 2, &no_faults())
                    })
                    .expect("executor campaign")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("campaign thread")).collect()
    });

    for ((seed, exec), scoped) in seeds.iter().zip(&concurrent).zip(&expected) {
        assert_eq!(
            exec.correct_detected, scoped.correct_detected,
            "seed {seed:#x}: verdict histogram drifted under interleaving"
        );
        assert_eq!(exec.records, scoped.records, "seed {seed:#x}: trial records drifted");
        assert_eq!(
            exec.telemetry.snapshot(),
            scoped.telemetry.snapshot(),
            "seed {seed:#x}: telemetry drifted"
        );
    }
}
