//! Determinism contract of the parallel execution layer: for a fixed
//! base seed, every parallel driver produces **identical aggregates** at
//! `jobs = 1` and `jobs = 4`. The shard plan is a pure function of the
//! workload and the base seed — the job count only controls how many
//! worker threads drain it — so results must not depend on parallelism.

use pacman_core::jump2win::Jump2Win;
use pacman_core::parallel::{
    oracle_distribution, parallel_accuracy, parallel_brute, parallel_jump2win, parallel_sweep,
    Channel, SweepKind,
};
use pacman_core::{System, SystemConfig};

fn quiet_config() -> SystemConfig {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    cfg
}

fn noisy_config() -> SystemConfig {
    // Default config has OS noise on: the harder determinism case,
    // because every shard runs its own noise RNG stream.
    SystemConfig::default()
}

#[test]
fn oracle_distribution_is_jobs_invariant() {
    for cfg in [quiet_config(), noisy_config()] {
        let wrong = |i: usize, tp: u16| tp ^ (1 + i as u16);
        let serial =
            oracle_distribution(&cfg, Channel::Data, 3, 10, 1, true, wrong).expect("jobs=1");
        let parallel =
            oracle_distribution(&cfg, Channel::Data, 3, 10, 4, true, wrong).expect("jobs=4");
        assert_eq!(serial.correct_detected, parallel.correct_detected);
        assert_eq!(serial.incorrect_clean, parallel.incorrect_clean);
        assert_eq!(serial.correct_misses, parallel.correct_misses);
        assert_eq!(serial.incorrect_misses, parallel.incorrect_misses);
        assert_eq!(serial.crashes, parallel.crashes);
        assert_eq!(serial.target, parallel.target);
        assert_eq!(serial.true_pac, parallel.true_pac);
        assert_eq!(serial.records.len(), parallel.records.len());
        for (s, p) in serial.records.iter().zip(&parallel.records) {
            assert_eq!(s.index, p.index);
            assert_eq!(s.guess, p.guess);
            assert_eq!(s.misses, p.misses, "trial {} miss vector differs", s.index);
        }
        assert_eq!(
            serial.telemetry.snapshot(),
            parallel.telemetry.snapshot(),
            "merged telemetry must be jobs-invariant"
        );
    }
}

#[test]
fn oracle_distribution_is_jobs_invariant_on_other_channels() {
    let cfg = quiet_config();
    for channel in [Channel::Instr, Channel::Cache] {
        let wrong = |i: usize, tp: u16| tp ^ (1 + i as u16);
        let serial = oracle_distribution(&cfg, channel, 1, 6, 1, true, wrong).expect("jobs=1");
        let parallel = oracle_distribution(&cfg, channel, 1, 6, 4, true, wrong).expect("jobs=4");
        assert_eq!(serial.correct_detected, parallel.correct_detected);
        assert_eq!(serial.incorrect_clean, parallel.incorrect_clean);
        assert_eq!(serial.correct_misses, parallel.correct_misses);
        assert_eq!(serial.incorrect_misses, parallel.incorrect_misses);
        assert_eq!(serial.telemetry.snapshot(), parallel.telemetry.snapshot());
    }
}

#[test]
fn parallel_brute_is_jobs_invariant() {
    let cfg = noisy_config();
    let mut probe = System::boot(cfg.clone());
    let set = probe.pick_quiet_dtlb_set();
    let target = probe.alloc_target(set);
    let true_pac = probe.true_pac(target);
    let candidates: Vec<u16> =
        (0..32u16).map(|i| true_pac.wrapping_sub(13).wrapping_add(i)).collect();
    let serial = parallel_brute(&cfg, Channel::Data, 3, &candidates, 1, true).expect("jobs=1");
    let parallel = parallel_brute(&cfg, Channel::Data, 3, &candidates, 4, true).expect("jobs=4");
    assert_eq!(serial.outcome.found, parallel.outcome.found);
    assert_eq!(serial.outcome.found, Some(true_pac));
    assert_eq!(serial.outcome.guesses_tested, parallel.outcome.guesses_tested);
    assert_eq!(serial.outcome.syscalls, parallel.outcome.syscalls);
    assert_eq!(serial.outcome.cycles, parallel.outcome.cycles);
    assert_eq!(serial.outcome.crashes, parallel.outcome.crashes);
    assert_eq!(serial.telemetry.snapshot(), parallel.telemetry.snapshot());
}

#[test]
fn parallel_accuracy_is_jobs_invariant() {
    let cfg = noisy_config();
    let window = |run: usize, tp: u16| -> Vec<u16> {
        let start = tp.wrapping_sub(3).wrapping_add((run % 3) as u16);
        (0..8u16).map(|i| start.wrapping_add(i)).collect()
    };
    let serial = parallel_accuracy(&cfg, Channel::Data, 3, 8, 1, window).expect("jobs=1");
    let parallel = parallel_accuracy(&cfg, Channel::Data, 3, 8, 4, window).expect("jobs=4");
    assert_eq!(serial.true_positives, parallel.true_positives);
    assert_eq!(serial.false_positives, parallel.false_positives);
    assert_eq!(serial.false_negatives, parallel.false_negatives);
    assert_eq!(serial.crashes, parallel.crashes);
    assert_eq!(serial.telemetry.snapshot(), parallel.telemetry.snapshot());
}

#[test]
fn parallel_sweep_is_jobs_invariant() {
    for kind in [SweepKind::DataTlb, SweepKind::CacheTlb, SweepKind::Itlb] {
        let strides: &[u64] = match kind {
            SweepKind::DataTlb => &[256, 2048],
            SweepKind::CacheTlb => &[256 * 128, 2048 * 16384],
            SweepKind::Itlb => &[32],
        };
        let (serial, sreg) = parallel_sweep(kind, strides, 1).expect("jobs=1");
        let (parallel, preg) = parallel_sweep(kind, strides, 4).expect("jobs=4");
        assert_eq!(serial, parallel, "{kind:?} series differ across job counts");
        assert_eq!(sreg.snapshot(), preg.snapshot());
    }
}

#[test]
fn parallel_jump2win_is_jobs_invariant() {
    let cfg = noisy_config();
    let probe = System::boot(cfg.clone());
    let true_win = probe.true_pac_with_salt(pacman_isa::PacKey::Ia, probe.cpp.win_fn);
    let true_vt = probe.true_pac_with_salt(pacman_isa::PacKey::Da, probe.cpp.obj1);
    let mut driver = Jump2Win::new().with_samples(3).with_train_iters(16);
    driver.phase_windows = Some([(true_win.wrapping_sub(2), 6), (true_vt.wrapping_sub(2), 6)]);
    let (serial, sreg) = parallel_jump2win(&cfg, &driver, 1, true).expect("jobs=1");
    let (parallel, preg) = parallel_jump2win(&cfg, &driver, 4, true).expect("jobs=4");
    assert!(serial.hijacked && parallel.hijacked);
    assert_eq!(serial, parallel, "full report must be jobs-invariant");
    assert_eq!(serial.pac_win, true_win);
    assert_eq!(serial.pac_vtable, true_vt);
    assert_eq!(sreg.snapshot(), preg.snapshot());
}
