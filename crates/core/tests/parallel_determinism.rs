//! Determinism contract of the parallel execution layer: for a fixed
//! base seed, every parallel driver produces **identical aggregates** at
//! `jobs = 1` and `jobs = 4`. The shard plan is a pure function of the
//! workload and the base seed — the job count only controls how many
//! worker threads drain it — so results must not depend on parallelism.
//!
//! The property tests at the bottom extend the contract to fault
//! tolerance: any injected fault pattern that stays within the retry
//! budget must leave the merged aggregate bit-identical to the
//! fault-free serial run.

use pacman_core::fault::{FaultPlan, RetryPolicy, Tolerance};
use pacman_core::jump2win::Jump2Win;
use pacman_core::parallel::{
    oracle_distribution, parallel_accuracy, parallel_brute, parallel_jump2win, parallel_sweep,
    Channel, ExperimentError, SweepKind,
};
use pacman_core::{System, SystemConfig};
use pacman_telemetry::Snapshot;

fn quiet_config() -> SystemConfig {
    let mut cfg = SystemConfig::default();
    cfg.machine.os_noise = 0.0;
    cfg
}

fn noisy_config() -> SystemConfig {
    // Default config has OS noise on: the harder determinism case,
    // because every shard runs its own noise RNG stream.
    SystemConfig::default()
}

fn no_faults() -> Tolerance {
    Tolerance::default()
}

/// Drops the `runner.*` execution-layer counters from a snapshot: they
/// legitimately differ between a faulted and a fault-free run (retries,
/// injected-fault counts) while every experiment series must not.
fn experiment_only(snap: &Snapshot) -> Snapshot {
    let mut out = snap.clone();
    out.counters.retain(|name, _| !name.starts_with("runner."));
    out
}

#[test]
fn oracle_distribution_is_jobs_invariant() {
    for cfg in [quiet_config(), noisy_config()] {
        let wrong = |i: usize, tp: u16| tp ^ (1 + i as u16);
        let serial = oracle_distribution(&cfg, Channel::Data, 3, 10, 1, true, &no_faults(), wrong)
            .expect("jobs=1");
        let parallel =
            oracle_distribution(&cfg, Channel::Data, 3, 10, 4, true, &no_faults(), wrong)
                .expect("jobs=4");
        assert_eq!(serial.correct_detected, parallel.correct_detected);
        assert_eq!(serial.incorrect_clean, parallel.incorrect_clean);
        assert_eq!(serial.correct_misses, parallel.correct_misses);
        assert_eq!(serial.incorrect_misses, parallel.incorrect_misses);
        assert_eq!(serial.crashes, parallel.crashes);
        assert_eq!(serial.target, parallel.target);
        assert_eq!(serial.true_pac, parallel.true_pac);
        assert_eq!(serial.records.len(), parallel.records.len());
        for (s, p) in serial.records.iter().zip(&parallel.records) {
            assert_eq!(s.index, p.index);
            assert_eq!(s.guess, p.guess);
            assert_eq!(s.misses, p.misses, "trial {} miss vector differs", s.index);
        }
        assert_eq!(
            serial.telemetry.snapshot(),
            parallel.telemetry.snapshot(),
            "merged telemetry must be jobs-invariant"
        );
    }
}

#[test]
fn oracle_distribution_is_jobs_invariant_on_other_channels() {
    let cfg = quiet_config();
    for channel in [Channel::Instr, Channel::Cache] {
        let wrong = |i: usize, tp: u16| tp ^ (1 + i as u16);
        let serial =
            oracle_distribution(&cfg, channel, 1, 6, 1, true, &no_faults(), wrong).expect("jobs=1");
        let parallel =
            oracle_distribution(&cfg, channel, 1, 6, 4, true, &no_faults(), wrong).expect("jobs=4");
        assert_eq!(serial.correct_detected, parallel.correct_detected);
        assert_eq!(serial.incorrect_clean, parallel.incorrect_clean);
        assert_eq!(serial.correct_misses, parallel.correct_misses);
        assert_eq!(serial.incorrect_misses, parallel.incorrect_misses);
        assert_eq!(serial.telemetry.snapshot(), parallel.telemetry.snapshot());
    }
}

#[test]
fn parallel_brute_is_jobs_invariant() {
    let cfg = noisy_config();
    let mut probe = System::boot(cfg.clone());
    let set = probe.pick_quiet_dtlb_set();
    let target = probe.alloc_target(set);
    let true_pac = probe.true_pac(target);
    let candidates: Vec<u16> =
        (0..32u16).map(|i| true_pac.wrapping_sub(13).wrapping_add(i)).collect();
    let serial =
        parallel_brute(&cfg, Channel::Data, 3, &candidates, 1, true, &no_faults()).expect("jobs=1");
    let parallel =
        parallel_brute(&cfg, Channel::Data, 3, &candidates, 4, true, &no_faults()).expect("jobs=4");
    assert_eq!(serial.outcome.found, parallel.outcome.found);
    assert_eq!(serial.outcome.found, Some(true_pac));
    assert_eq!(serial.outcome.guesses_tested, parallel.outcome.guesses_tested);
    assert_eq!(serial.outcome.syscalls, parallel.outcome.syscalls);
    assert_eq!(serial.outcome.cycles, parallel.outcome.cycles);
    assert_eq!(serial.outcome.crashes, parallel.outcome.crashes);
    assert_eq!(serial.telemetry.snapshot(), parallel.telemetry.snapshot());
}

#[test]
fn parallel_accuracy_is_jobs_invariant() {
    let cfg = noisy_config();
    let window = |run: usize, tp: u16| -> Vec<u16> {
        let start = tp.wrapping_sub(3).wrapping_add((run % 3) as u16);
        (0..8u16).map(|i| start.wrapping_add(i)).collect()
    };
    let serial =
        parallel_accuracy(&cfg, Channel::Data, 3, 8, 1, &no_faults(), window).expect("jobs=1");
    let parallel =
        parallel_accuracy(&cfg, Channel::Data, 3, 8, 4, &no_faults(), window).expect("jobs=4");
    assert_eq!(serial.true_positives, parallel.true_positives);
    assert_eq!(serial.false_positives, parallel.false_positives);
    assert_eq!(serial.false_negatives, parallel.false_negatives);
    assert_eq!(serial.crashes, parallel.crashes);
    assert_eq!(serial.telemetry.snapshot(), parallel.telemetry.snapshot());
}

#[test]
fn parallel_sweep_is_jobs_invariant() {
    for kind in [SweepKind::DataTlb, SweepKind::CacheTlb, SweepKind::Itlb] {
        let strides: &[u64] = match kind {
            SweepKind::DataTlb => &[256, 2048],
            SweepKind::CacheTlb => &[256 * 128, 2048 * 16384],
            SweepKind::Itlb => &[32],
        };
        let (serial, sreg) = parallel_sweep(kind, strides, 1, &no_faults()).expect("jobs=1");
        let (parallel, preg) = parallel_sweep(kind, strides, 4, &no_faults()).expect("jobs=4");
        assert_eq!(serial, parallel, "{kind:?} series differ across job counts");
        assert_eq!(sreg.snapshot(), preg.snapshot());
    }
}

#[test]
fn parallel_jump2win_is_jobs_invariant() {
    let cfg = noisy_config();
    let probe = System::boot(cfg.clone());
    let true_win = probe.true_pac_with_salt(pacman_isa::PacKey::Ia, probe.cpp.win_fn);
    let true_vt = probe.true_pac_with_salt(pacman_isa::PacKey::Da, probe.cpp.obj1);
    let mut driver = Jump2Win::new().with_samples(3).with_train_iters(16);
    driver.phase_windows = Some([(true_win.wrapping_sub(2), 6), (true_vt.wrapping_sub(2), 6)]);
    let (serial, sreg) = parallel_jump2win(&cfg, &driver, 1, true, &no_faults()).expect("jobs=1");
    let (parallel, preg) = parallel_jump2win(&cfg, &driver, 4, true, &no_faults()).expect("jobs=4");
    assert!(serial.hijacked && parallel.hijacked);
    assert_eq!(serial, parallel, "full report must be jobs-invariant");
    assert_eq!(serial.pac_win, true_win);
    assert_eq!(serial.pac_vtable, true_vt);
    assert_eq!(sreg.snapshot(), preg.snapshot());
}

mod fault_tolerance_properties {
    use super::*;
    use pacman_gadget::{parallel_census, ImageSpec, ScanConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The gadget census is a pure function of the image spec: for
        /// any synthetic image and any scan configuration, the sharded
        /// census at jobs=4 reproduces the serial report exactly —
        /// gadget list, branch and instruction counts included.
        #[test]
        fn census_parity_holds_for_any_image(
            functions in 50usize..300,
            seed in any::<u64>(),
            pa_percent in 0u8..=100,
            track_stack in any::<bool>(),
        ) {
            let spec = ImageSpec { functions, seed, pa_percent, ..ImageSpec::default() };
            let cfg = ScanConfig { track_stack, ..ScanConfig::default() };
            let serial = parallel_census(&spec, &cfg, 1);
            let sharded = parallel_census(&spec, &cfg, 4);
            prop_assert_eq!(serial, sharded);
        }

        /// Jump2Win under injected faults: any fault pattern that stays
        /// within the retry budget leaves the full report (recovered
        /// PACs, summed costs, hijack verdict) bit-identical to the
        /// fault-free serial run; an exhausted budget must surface as
        /// the typed partial failure.
        #[test]
        fn faulted_jump2win_matches_fault_free_serial(
            seed in 0u64..(1u64 << 48),
            rate_milli in 50u64..350,
        ) {
            let cfg = quiet_config();
            let probe = System::boot(cfg.clone());
            let true_win = probe.true_pac_with_salt(pacman_isa::PacKey::Ia, probe.cpp.win_fn);
            let true_vt = probe.true_pac_with_salt(pacman_isa::PacKey::Da, probe.cpp.obj1);
            let mut driver = Jump2Win::new().with_samples(1).with_train_iters(16);
            driver.phase_windows =
                Some([(true_win.wrapping_sub(1), 4), (true_vt.wrapping_sub(1), 4)]);
            let (baseline, _) = parallel_jump2win(&cfg, &driver, 1, false, &no_faults())
                .expect("fault-free serial run");
            let tol = Tolerance {
                retry: RetryPolicy::default(),
                faults: FaultPlan::new(seed, rate_milli as f64 / 1000.0),
            };
            match parallel_jump2win(&cfg, &driver, 4, false, &tol) {
                Ok((faulted, _)) => prop_assert_eq!(baseline, faulted),
                Err(ExperimentError::Shards(partial)) => {
                    prop_assert!(partial.completed < partial.total);
                    prop_assert!(!partial.failures.is_empty());
                }
                Err(other) => return Err(TestCaseError::fail(format!(
                    "unexpected error class: {other}"
                ))),
            }
        }

        /// Satellite property: for any fault seed and any rate below the
        /// practical retry ceiling, the retried parallel oracle aggregate
        /// is bit-identical to the fault-free serial run. A fault pattern
        /// that (rarely, for high rates) exhausts the budget is an
        /// allowed outcome — but must surface as the typed partial
        /// failure, never as a panic or a silently different aggregate.
        #[test]
        fn faulted_oracle_matches_fault_free_serial(
            seed in 0u64..(1u64 << 48),
            rate_milli in 50u64..350,
        ) {
            let cfg = quiet_config();
            let wrong = |i: usize, tp: u16| tp ^ (1 + i as u16);
            let baseline =
                oracle_distribution(&cfg, Channel::Data, 1, 6, 1, true, &no_faults(), wrong)
                    .expect("fault-free serial run");
            let tol = Tolerance {
                retry: RetryPolicy::default(),
                faults: FaultPlan::new(seed, rate_milli as f64 / 1000.0),
            };
            match oracle_distribution(&cfg, Channel::Data, 1, 6, 4, true, &tol, wrong) {
                Ok(faulted) => {
                    prop_assert_eq!(baseline.correct_detected, faulted.correct_detected);
                    prop_assert_eq!(baseline.incorrect_clean, faulted.incorrect_clean);
                    prop_assert_eq!(&baseline.correct_misses, &faulted.correct_misses);
                    prop_assert_eq!(&baseline.incorrect_misses, &faulted.incorrect_misses);
                    prop_assert_eq!(baseline.crashes, faulted.crashes);
                    prop_assert_eq!(baseline.target, faulted.target);
                    prop_assert_eq!(baseline.records.len(), faulted.records.len());
                    for (b, f) in baseline.records.iter().zip(&faulted.records) {
                        prop_assert_eq!(b.guess, f.guess);
                        prop_assert_eq!(&b.misses, &f.misses);
                    }
                    // Experiment telemetry must not see the faults.
                    prop_assert_eq!(
                        experiment_only(&baseline.telemetry.snapshot()),
                        experiment_only(&faulted.telemetry.snapshot())
                    );
                }
                Err(ExperimentError::Shards(partial)) => {
                    // Budget exhausted: legal, but it must be the typed
                    // partial-result path with real failure records.
                    prop_assert!(partial.completed < partial.total);
                    prop_assert!(!partial.failures.is_empty());
                }
                Err(other) => return Err(TestCaseError::fail(format!(
                    "unexpected error class: {other}"
                ))),
            }
        }

        /// Same property for the brute-force driver.
        #[test]
        fn faulted_brute_matches_fault_free_serial(
            seed in 0u64..(1u64 << 48),
            rate_milli in 50u64..350,
        ) {
            let cfg = quiet_config();
            let mut probe = System::boot(cfg.clone());
            let set = probe.pick_quiet_dtlb_set();
            let target = probe.alloc_target(set);
            let true_pac = probe.true_pac(target);
            let candidates: Vec<u16> =
                (0..16u16).map(|i| true_pac.wrapping_sub(7).wrapping_add(i)).collect();
            let baseline =
                parallel_brute(&cfg, Channel::Data, 1, &candidates, 1, true, &no_faults())
                    .expect("fault-free serial run");
            let tol = Tolerance {
                retry: RetryPolicy::default(),
                faults: FaultPlan::new(seed, rate_milli as f64 / 1000.0),
            };
            match parallel_brute(&cfg, Channel::Data, 1, &candidates, 4, true, &tol) {
                Ok(faulted) => {
                    prop_assert_eq!(baseline.outcome.found, faulted.outcome.found);
                    prop_assert_eq!(
                        baseline.outcome.guesses_tested,
                        faulted.outcome.guesses_tested
                    );
                    prop_assert_eq!(baseline.outcome.syscalls, faulted.outcome.syscalls);
                    prop_assert_eq!(baseline.outcome.cycles, faulted.outcome.cycles);
                    prop_assert_eq!(baseline.outcome.crashes, faulted.outcome.crashes);
                    // Experiment telemetry must not see the faults.
                    prop_assert_eq!(
                        experiment_only(&baseline.telemetry.snapshot()),
                        experiment_only(&faulted.telemetry.snapshot())
                    );
                }
                Err(ExperimentError::Shards(partial)) => {
                    prop_assert!(partial.completed < partial.total);
                    prop_assert!(!partial.failures.is_empty());
                }
                Err(other) => return Err(TestCaseError::fail(format!(
                    "unexpected error class: {other}"
                ))),
            }
        }
    }
}
